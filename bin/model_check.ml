(* Model-based checking CLI: enumerate or sample deterministic schedules of
   small concurrent op scripts against the sequential reference models, and
   manage the shrunk-counterexample corpus.

     model_check sweep  --ds treiber,msqueue --scheme HP,EBR --threads 2 --ops 2
     model_check random --ds hashmap --schedules 200 --kill retire:2
     model_check replay test/check_corpus/*.case
     model_check replay --expect-violation old.case   (pre-fix demonstration)
     model_check show FILE.case

   Exits 0 when clean / all expectations met, 1 on a violation (or a
   missed expected violation), 2 on usage errors. *)

open Cmdliner
module Gen = Check.Gen
module Sut = Check.Sut
module Harness = Check.Harness
module Explore = Check.Explore
module Shrink = Check.Shrink
module Corpus = Check.Corpus

let list_arg name default doc =
  let strings = Arg.list Arg.string in
  Arg.(value & opt strings default & info [ name ] ~doc)

let ds_arg =
  list_arg "ds" [ "treiber"; "msqueue" ]
    "Comma-separated structures (treiber, msqueue, hmlist, hhslist, \
     hashmap, skiplist, shardkv)."

let scheme_arg =
  list_arg "scheme" Sut.(schemes) "Comma-separated schemes (HP, HP++, EBR, PEBR, NR)."

let threads_arg =
  Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Logical threads.")

let ops_arg =
  Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Ops per thread.")

let keyspace_arg =
  Arg.(value & opt int 2 & info [ "keyspace" ] ~doc:"Distinct keys for map scripts.")

let threshold_arg =
  Arg.(
    value & opt int 1
    & info [ "threshold" ]
        ~doc:"Reclaim threshold for the scheme under test (small = aggressive).")

let preemptions_arg =
  Arg.(
    value & opt int 2
    & info [ "preemptions" ] ~doc:"Preemption bound for exhaustive sweeps.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Script-generation seed.")

let schedules_arg =
  Arg.(
    value & opt int 100
    & info [ "schedules" ] ~doc:"Random schedules per case (random mode).")

let max_runs_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-runs" ] ~doc:"Cap on schedules per case (sweep mode).")

let max_wall_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-wall-ms" ] ~doc:"Wall-clock budget per (ds, scheme) case.")

let traced_arg =
  Arg.(
    value & flag
    & info [ "traced" ]
        ~doc:"Record traces and replay them through the protocol checker.")

let kill_arg =
  let doc = "Arm a kill: POINT:AFTER, e.g. retire:2." in
  Arg.(value & opt (some string) None & info [ "kill" ] ~docv:"POINT:AFTER" ~doc)

let out_arg =
  let doc = "Directory for shrunk counterexample .case files." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip counterexample minimization.")

let parse_kill = function
  | None -> None
  | Some s -> (
      match String.split_on_char ':' s with
      | [ p; n ] ->
          let point =
            match
              List.find_opt (fun q -> Fault.point_name q = p) Fault.all_points
            with
            | Some q -> q
            | None -> failwith ("unknown fault point: " ^ p)
          in
          Some (point, int_of_string n)
      | _ -> failwith ("bad --kill (want POINT:AFTER): " ^ s))

let cases ~dss ~schemes ~threads ~ops ~keyspace ~threshold ~seed ~fault ~traced
    =
  List.concat_map
    (fun ds ->
      List.filter_map
        (fun scheme ->
          match Sut.find ~ds ~scheme with
          | None -> None
          | Some m ->
              let module M = (val m : Sut.SUT) in
              let scripts =
                Gen.scripts M.kind ~seed ~threads ~nops:ops ~keyspace
              in
              Some
                { Harness.ds; scheme; threshold; scripts; fault; traced })
        schemes)
    dss

let report_violation ~out ~no_shrink case (report : Harness.report) =
  let v =
    match report.outcome with `Violation v -> v | _ -> assert false
  in
  Printf.printf "VIOLATION %s: %s\n  %s\n" (Harness.vkind_name v.vkind)
    (Harness.case_to_string case) v.detail;
  let case, report =
    if no_shrink then (case, report)
    else begin
      let refind c choices = Explore.refind c choices in
      let c, r = Shrink.shrink ~refind case report in
      Printf.printf "  shrunk to: %s (%d decisions)\n"
        (Harness.case_to_string c)
        (Array.length r.choices);
      (c, r)
    end
  in
  let v =
    match report.outcome with `Violation v -> v | _ -> assert false
  in
  (match out with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let name =
        Printf.sprintf "%s-%s-%s.case" case.Harness.ds
          (String.map
             (function '+' -> 'p' | c -> c)
             case.Harness.scheme)
          (Harness.vkind_name v.vkind)
      in
      let path = Filename.concat dir name in
      Corpus.save path
        {
          Corpus.case;
          choices = report.choices;
          expect = Some v.vkind;
          notes = [ "found by model_check; schedule pinned post-shrink" ];
        };
      Printf.printf "  corpus entry written: %s\n" path);
  ()

let sweep dss schemes threads ops keyspace threshold preemptions seed max_runs
    max_wall traced kill out no_shrink =
  let fault = parse_kill kill in
  let found = ref 0 and clean = ref 0 and budget = ref 0 in
  List.iter
    (fun (case : Harness.case) ->
      if Sys.getenv_opt "MC_DEBUG" <> None then
        Printf.eprintf "case: %s\n%!" (Harness.case_to_string case);
      match
        Explore.dfs ~preemptions ~max_runs ~max_wall_ms:max_wall (fun policy ->
            Harness.run_case ~policy case)
      with
      | `Found (r, runs) ->
          incr found;
          Printf.printf "[%s/%s] violation after %d schedules\n" case.ds
            case.scheme runs;
          report_violation ~out ~no_shrink case r
      | `Clean runs ->
          incr clean;
          Printf.printf "[%s/%s] clean: %d schedules exhausted (preemptions<=%d)\n"
            case.ds case.scheme runs preemptions
      | `Budget runs ->
          incr budget;
          Printf.printf "[%s/%s] budget hit after %d schedules, no violation\n"
            case.ds case.scheme runs)
    (cases ~dss ~schemes ~threads ~ops ~keyspace ~threshold ~seed ~fault
       ~traced);
  Printf.printf "sweep: %d clean, %d budget-capped, %d violating\n" !clean
    !budget !found;
  if !found > 0 then 1 else 0

let random dss schemes threads ops keyspace threshold seed schedules traced
    kill out no_shrink =
  let fault = parse_kill kill in
  let found = ref 0 in
  List.iter
    (fun (case : Harness.case) ->
      let rec go s =
        if s >= schedules then
          Printf.printf "[%s/%s] %d random schedules clean\n" case.ds
            case.scheme schedules
        else begin
          let policy =
            Explore.random_policy ~seed:(seed + (s * 0x9E3779B9)) ()
          in
          let r = Harness.run_case ~policy case in
          match r.outcome with
          | `Violation _ ->
              incr found;
              Printf.printf "[%s/%s] violation at schedule seed %d\n" case.ds
                case.scheme s;
              report_violation ~out ~no_shrink case r
          | `Pass | `Overflow -> go (s + 1)
        end
      in
      go 0)
    (cases ~dss ~schemes ~threads ~ops ~keyspace ~threshold ~seed ~fault
       ~traced);
  if !found > 0 then 1 else 0

let replay expect_violation files =
  if files = [] then begin
    prerr_endline "replay: no .case files given";
    2
  end
  else begin
    let bad = ref 0 in
    List.iter
      (fun path ->
        let e = Corpus.load path in
        let r = Corpus.replay e in
        match (r.outcome, expect_violation) with
        | `Pass, false -> Printf.printf "%s: pass\n" path
        | `Violation v, true
          when match e.expect with
               | None -> true
               | Some k -> k = v.vkind ->
            Printf.printf "%s: reproduced %s violation\n" path
              (Harness.vkind_name v.vkind)
        | `Violation v, false ->
            incr bad;
            Printf.printf "%s: VIOLATION %s — %s\n" path
              (Harness.vkind_name v.vkind) v.detail
        | `Pass, true ->
            incr bad;
            Printf.printf "%s: expected a violation, got pass\n" path
        | `Violation v, true ->
            incr bad;
            Printf.printf "%s: expected %s, got %s — %s\n" path
              (match e.expect with
              | Some k -> Harness.vkind_name k
              | None -> "?")
              (Harness.vkind_name v.vkind) v.detail
        | `Overflow, _ ->
            incr bad;
            Printf.printf "%s: schedule overflow (corpus entry stale?)\n" path)
      files;
    if !bad > 0 then 1 else 0
  end

let show path =
  let e = Corpus.load path in
  print_string (Corpus.to_string e);
  let r = Corpus.replay e in
  Printf.printf "--- outcome: %s; %d steps; trail:\n%s\n"
    (match r.outcome with
    | `Pass -> "pass"
    | `Overflow -> "overflow"
    | `Violation v -> "violation " ^ Harness.vkind_name v.vkind)
    r.steps
    (Harness.render_trail r.trail);
  0

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Bounded-exhaustive schedule enumeration")
    Term.(
      const sweep $ ds_arg $ scheme_arg $ threads_arg $ ops_arg $ keyspace_arg
      $ threshold_arg $ preemptions_arg $ seed_arg $ max_runs_arg
      $ max_wall_arg $ traced_arg $ kill_arg $ out_arg $ no_shrink_arg)

let random_cmd =
  Cmd.v
    (Cmd.info "random" ~doc:"Seeded random schedules")
    Term.(
      const random $ ds_arg $ scheme_arg $ threads_arg $ ops_arg $ keyspace_arg
      $ threshold_arg $ seed_arg $ schedules_arg $ traced_arg $ kill_arg
      $ out_arg $ no_shrink_arg)

let replay_cmd =
  let expect_arg =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Assert each entry reproduces its recorded violation \
                (pre-fix demonstration) instead of asserting it passes.")
  in
  let files_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE.case")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay corpus entries under their pinned schedules")
    Term.(const replay $ expect_arg $ files_arg)

let show_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.case")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a corpus entry and its schedule trail")
    Term.(const show $ file_arg)

let cmd =
  Cmd.group
    (Cmd.info "model_check"
       ~doc:"Model-based checking with a deterministic scheduler")
    [ sweep_cmd; random_cmd; replay_cmd; show_cmd ]

let () = exit (Cmd.eval' cmd)
