(* Replay-check a raw trace artifact (written by shardkv_bench --trace-raw
   or soak --trace-raw) against the SMR protocol invariants. Usage:

     trace_check FILE [FILE...]      (or "-" for stdin)

   Exits 0 if every trace is clean, 1 if any violates an invariant, 2 on a
   malformed file. *)

let check_channel name ic =
  let snap = Obs.Trace.read_raw ic in
  match Obs.Check.run_snapshot snap with
  | Ok summary ->
      Format.printf "%s: clean — %a@." name Obs.Check.pp_summary summary;
      true
  | Error vs ->
      Printf.printf "%s: %d violation(s)\n" name (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Obs.Check.pp_violation v) vs;
      false

let check_file path =
  if path = "-" then check_channel "<stdin>" stdin
  else
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> check_channel path ic)

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        prerr_endline "usage: trace_check FILE [FILE...]  ('-' for stdin)";
        exit 2
  in
  match List.for_all check_file files with
  | true -> ()
  | false -> exit 1
  | exception (Failure msg | Sys_error msg) ->
      Printf.eprintf "trace_check: %s\n" msg;
      exit 2
