(* Closed-loop load generator for the shardkv service layer: every worker
   domain issues the next request only after the previous one returns, the
   service records per-request latency into per-domain histograms, and each
   (shard count, scheme) cell reports throughput, p50/p90/p99/p999 latency,
   per-shard occupancy and the SMR garbage counters — as text tables and,
   with --json FILE, as machine-readable output.

     dune exec bin/shardkv_bench.exe -- --shards 1,4,8 --domains 4 --json out.json

   The use-after-free detector stays armed unless --no-uaf-check is given,
   and after every cell the whole store is swept for reachable-but-freed
   nodes; schemes that never withdraw protection (NR, EBR, RC) are
   additionally checked for spurious protection failures. *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Workload = Bench_harness.Workload
module Report = Bench_harness.Report
module Json = Service.Json
module Key_dist = Service.Key_dist
module St = Service.Service_stats
module Trace = Obs.Trace

type params = {
  domains : int;
  duration : float;
  keys : int;
  workload : Workload.t;
  mg_pct : int; (* share of reads issued as multi_get batches *)
  batch : int;
  dist_name : string;
  theta : float;
  prefill : float;
  async : bool; (* hand retire bags to a background collector domain *)
}

(* With --metrics-listen the exposition listener samples whichever cell is
   currently running: each run_cell installs a closure over its own kv here
   and clears it before teardown. The swap is racy but memory-safe — at
   worst one scrape reads a just-quiesced cell. *)
let live_sample : (Obs.Metrics.t -> unit) ref = ref (fun _ -> ())

type cell = {
  c_scheme : string;
  c_shards : int;
  snap : St.t;
  wall : float;
  keys_checked : int;
  anomalies : int; (* protection failures on schemes that must have none *)
}

module Drive (S : Smr.Smr_intf.S) = struct
  module KV = Service.Shardkv.Make (S)

  let prefill kv ~keys ~ratio =
    let order = Array.init keys Fun.id in
    let rng = Rng.create ~seed:0xabcdef in
    for i = keys - 1 downto 1 do
      let j = Rng.below rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let count = int_of_float (float_of_int keys *. ratio) in
    KV.load kv (Array.init count (fun i -> (order.(i), order.(i))));
    KV.detach kv

  let run_cell p ~shards =
    let config =
      if p.async then
        { Smr.Smr_intf.default_config with async_reclaim = true }
      else Smr.Smr_intf.default_config
    in
    let kv = KV.create ~config ~shards () in
    prefill kv ~keys:p.keys ~ratio:p.prefill;
    let t0 = Unix.gettimeofday () in
    live_sample :=
      (fun m ->
        let elapsed = Unix.gettimeofday () -. t0 in
        let snap = KV.snapshot kv ~elapsed in
        Service.Telemetry.add_service_snapshot m snap;
        let labels = [ ("scheme", S.name) ] in
        Service.Telemetry.add_smr_stats m ~labels (S.stats (KV.scheme kv));
        match S.collector_stats (KV.scheme kv) with
        | Some st -> Service.Telemetry.add_collector_stats m ~labels st
        | None -> ());
    let _ =
      Pool.run_timed ~n:p.domains ~duration:p.duration (fun i ~stop ->
          let rng = Rng.create ~seed:(0x5eed + (i * 7919)) in
          let dist = Key_dist.of_name ~theta:p.theta p.dist_name p.keys in
          let batch_buf = Array.make (max 1 p.batch) 0 in
          while not (stop ()) do
            let key = Key_dist.next dist rng in
            match Workload.pick p.workload rng with
            | Workload.Insert -> ignore (KV.put kv key key)
            | Workload.Delete -> ignore (KV.delete kv key)
            | Workload.Get ->
                if p.mg_pct > 0 && Rng.below rng 100 < p.mg_pct then begin
                  batch_buf.(0) <- key;
                  for j = 1 to Array.length batch_buf - 1 do
                    batch_buf.(j) <- Key_dist.next dist rng
                  done;
                  ignore (KV.multi_get kv batch_buf)
                end
                else ignore (KV.get kv key)
          done;
          KV.detach kv)
    in
    let wall = Unix.gettimeofday () -. t0 in
    live_sample := (fun _ -> ());
    (* quiescent integrity sweep: raises on any reachable-but-freed node *)
    let keys_checked = KV.validate kv in
    let snap = KV.snapshot kv ~elapsed:wall in
    (* stop the collector (if any) so queued bags cannot outlive the cell *)
    KV.shutdown kv;
    let anomalies =
      if (not S.needs_protection) && snap.St.protection_failures > 0 then
        snap.St.protection_failures
      else 0
    in
    { c_scheme = S.name; c_shards = shards; snap; wall; keys_checked; anomalies }
end

let run_cell p ~scheme ~shards =
  match scheme with
  | "HP++" ->
      let module D = Drive (Hp_plus) in
      D.run_cell p ~shards
  | "HP" ->
      let module D = Drive (Hp) in
      D.run_cell p ~shards
  | "EBR" ->
      let module D = Drive (Ebr) in
      D.run_cell p ~shards
  | "PEBR" ->
      let module D = Drive (Pebr) in
      D.run_cell p ~shards
  | "NR" ->
      let module D = Drive (Nr) in
      D.run_cell p ~shards
  | "RC" ->
      let module D = Drive (Rc) in
      D.run_cell p ~shards
  | s -> invalid_arg ("unknown scheme: " ^ s)

let lat_summary cell op = List.assoc_opt op cell.snap.St.per_op

let cell_json p cell =
  let base =
    match St.to_json cell.snap with Json.Obj kvs -> kvs | _ -> assert false
  in
  Json.Obj
    (( "cell",
       Json.Obj
         [
           ("scheme", Json.String cell.c_scheme);
           ("shards", Json.Int cell.c_shards);
           ("domains", Json.Int p.domains);
           ("wall_s", Json.Float cell.wall);
           ("keys_checked", Json.Int cell.keys_checked);
           ("uaf_reports", Json.Int 0);
           ("protection_failure_anomalies", Json.Int cell.anomalies);
         ] )
    :: base)

let summary_table cells =
  let us ns = float_of_int ns /. 1e3 in
  let rows =
    List.map
      (fun c ->
        let get = lat_summary c St.Get in
        let put = lat_summary c St.Put in
        ( Printf.sprintf "%s/%dsh" c.c_scheme c.c_shards,
          [
            Some (c.snap.St.qps /. 1e3);
            Option.map (fun (s : Service.Histogram.summary) -> us s.p50) get;
            Option.map (fun (s : Service.Histogram.summary) -> us s.p99) get;
            Option.map (fun (s : Service.Histogram.summary) -> us s.p999) get;
            Option.map (fun (s : Service.Histogram.summary) -> us s.p99) put;
            Some (float_of_int c.snap.St.peak_unreclaimed);
          ] ))
      cells
  in
  Report.table ~title:"shardkv closed-loop summary" ~row_label:"cell"
    ~columns:
      [ "kqps"; "get p50us"; "get p99us"; "get p999us"; "put p99us"; "peak-garb" ]
    ~rows
    ~fmt:(Printf.sprintf "%.2f")

open Cmdliner

let shards_arg =
  let doc = "Comma-separated shard counts to sweep." in
  Arg.(value & opt string "1,4,8" & info [ "shards" ] ~doc)

let domains_arg =
  let doc = "Worker domains issuing requests." in
  Arg.(value & opt int 4 & info [ "domains" ] ~doc)

let duration_arg =
  let doc = "Seconds of load per cell." in
  Arg.(value & opt float 0.5 & info [ "duration" ] ~doc)

let keys_arg =
  let doc = "Key-space size." in
  Arg.(value & opt int 16384 & info [ "keys" ] ~doc)

let read_pct_arg =
  let doc = "Percentage of requests that are reads (rest split put/delete)." in
  Arg.(value & opt int 90 & info [ "read-pct" ] ~doc)

let mg_pct_arg =
  let doc = "Percentage of reads issued as multi_get batches." in
  Arg.(value & opt int 10 & info [ "mg-pct" ] ~doc)

let batch_arg =
  let doc = "Keys per multi_get batch." in
  Arg.(value & opt int 8 & info [ "batch" ] ~doc)

let dist_arg =
  let doc = "Key distribution: uniform or zipfian." in
  Arg.(value & opt string "uniform" & info [ "dist" ] ~doc)

let theta_arg =
  let doc = "Zipfian skew parameter (0 < theta < 1)." in
  Arg.(value & opt float 0.99 & info [ "theta" ] ~doc)

let prefill_arg =
  let doc = "Fraction of the key space inserted before load." in
  Arg.(value & opt float 0.5 & info [ "prefill" ] ~doc)

let schemes_arg =
  let doc = "Comma-separated reclamation schemes (HP++,EBR,PEBR,HP,NR,RC)." in
  Arg.(value & opt string "HP++,EBR" & info [ "schemes" ] ~doc)

let json_arg =
  let doc = "Write machine-readable results to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let no_uaf_arg =
  let doc = "Disable the use-after-free detector during load." in
  Arg.(value & flag & info [ "no-uaf-check" ] ~doc)

let async_arg =
  let doc =
    "Hand full retire bags to a background collector domain instead of \
     scanning inline (sets $(b,async_reclaim) in the scheme config)."
  in
  Arg.(value & flag & info [ "async-reclaim" ] ~doc)

let trace_arg =
  let doc =
    "Record SMR events and op spans, write a Chrome trace-event JSON \
     (Perfetto-loadable) to $(docv), and replay-check the trace."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_raw_arg =
  let doc =
    "Also write the raw trace ($(b,seq ts dom kind uid a b) lines, the \
     format trace_check.exe reads) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-raw" ] ~docv:"FILE" ~doc)

let trace_depth_arg =
  let doc = "Trace ring capacity per domain, in events." in
  Arg.(value & opt int 65536 & info [ "trace-depth" ] ~doc)

let metrics_arg =
  let doc =
    "Write a Prometheus-style text exposition of every cell's counters to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let span_name =
  let names = Array.of_list (List.map St.op_name St.all_ops) in
  fun op ->
    if op >= 0 && op < Array.length names then names.(op)
    else "op" ^ string_of_int op

let main shards domains duration keys read_pct mg_pct batch dist theta prefill
    schemes json no_uaf async trace trace_raw trace_depth metrics metrics_live =
  if no_uaf then Smr_core.Mem.set_checking false;
  let exposition = Obs_cli.start metrics_live ~sample:(fun m -> !live_sample m) in
  Option.iter
    (fun e ->
      Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
        (Obs.Exposition.port e))
    exposition;
  let tracing = trace <> None || trace_raw <> None in
  if tracing then begin
    (* one clock for instants and span starts, monotonic so the Perfetto
       timeline cannot jump backwards *)
    Trace.set_clock (fun () -> Int64.to_int (Monotonic_clock.now ()));
    Trace.enable ~capacity:trace_depth ()
  end;
  let write_pct = max 0 (100 - read_pct) in
  let insert_pct = (write_pct + 1) / 2 in
  let workload =
    {
      Workload.name = Printf.sprintf "read%d" read_pct;
      insert_pct;
      delete_pct = write_pct - insert_pct;
    }
  in
  let p =
    {
      domains;
      duration;
      keys;
      workload;
      mg_pct;
      batch;
      dist_name = dist;
      theta;
      prefill;
      async;
    }
  in
  let shard_counts = List.map int_of_string (split_commas shards) in
  let schemes = split_commas schemes in
  Printf.printf
    "shardkv closed-loop bench: %d domain(s), %.2fs/cell, %d keys (%s), \
     %d%% reads (%d%% of them multi_get x%d), uaf-check=%b, reclaim=%s\n%!"
    domains duration keys dist read_pct mg_pct batch
    (Smr_core.Mem.checking ())
    (if async then "async" else "inline");
  let cells =
    List.concat_map
      (fun scheme ->
        List.map
          (fun shards ->
            let cell = run_cell p ~scheme ~shards in
            Format.printf "%a@." St.pp cell.snap;
            if cell.anomalies > 0 then
              Printf.printf
                "!! anomaly: %d protection failure(s) under %s, which never \
                 withdraws protection\n%!"
                cell.anomalies scheme;
            cell)
          shard_counts)
      schemes
  in
  summary_table cells;
  Option.iter
    (fun path ->
      Json.write_file path
        (Json.Obj
           [
             ("bench", Json.String "shardkv");
             ("domains", Json.Int domains);
             ("duration_s", Json.Float duration);
             ("keys", Json.Int keys);
             ("read_pct", Json.Int read_pct);
             ("multi_get_pct", Json.Int mg_pct);
             ("batch", Json.Int batch);
             ("dist", Json.String dist);
             ("theta", Json.Float theta);
             ("prefill", Json.Float prefill);
             ("async_reclaim", Json.Bool async);
             ("cells", Json.List (List.map (cell_json p) cells));
           ]);
      Printf.printf "wrote %d cells to %s\n%!" (List.length cells) path)
    json;
  let trace_violations = ref 0 in
  if tracing then begin
    Trace.disable ();
    let snap = Trace.snapshot () in
    Option.iter
      (fun path ->
        Obs.Chrome.write ~span_name path snap;
        Printf.printf "wrote %d trace events to %s (dropped %d)\n%!"
          (Array.length snap.Trace.events)
          path snap.Trace.dropped)
      trace;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Trace.write_raw oc snap);
        Printf.printf "wrote raw trace to %s\n%!" path)
      trace_raw;
    (match Obs.Check.run_snapshot snap with
    | Ok summary ->
        Format.printf "trace check: clean — %a@." Obs.Check.pp_summary summary
    | Error vs ->
        trace_violations := List.length vs;
        Printf.printf "trace check: %d violation(s)\n" !trace_violations;
        List.iteri
          (fun i v ->
            if i < 20 then Format.printf "  %a@." Obs.Check.pp_violation v)
          vs)
  end;
  Option.iter
    (fun path ->
      let m = Obs.Metrics.create () in
      List.iter (fun c -> Service.Telemetry.add_service_snapshot m c.snap) cells;
      if tracing then Service.Telemetry.add_trace_snapshot m (Trace.snapshot ());
      Obs.Metrics.write path m;
      Printf.printf "wrote metrics exposition to %s\n%!" path)
    metrics;
  Option.iter Obs.Exposition.stop exposition;
  let total_anomalies = List.fold_left (fun a c -> a + c.anomalies) 0 cells in
  if total_anomalies > 0 || !trace_violations > 0 then exit 1

let cmd =
  let doc = "Closed-loop load generator for the shardkv service layer" in
  Cmd.v
    (Cmd.info "shardkv-bench" ~doc)
    Term.(
      const main $ shards_arg $ domains_arg $ duration_arg $ keys_arg
      $ read_pct_arg $ mg_pct_arg $ batch_arg $ dist_arg $ theta_arg
      $ prefill_arg $ schemes_arg $ json_arg $ no_uaf_arg $ async_arg
      $ trace_arg $ trace_raw_arg $ trace_depth_arg $ metrics_arg
      $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
