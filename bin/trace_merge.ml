(* Join a client-side raw trace (netkv_bench --trace-raw) with a server-side
   one (netkv_server --trace-raw) into a single timeline on the server's
   clock.

     dune exec bin/trace_merge.exe -- --client c.trace --server s.trace \
       --out merged.trace --chrome merged.json

   The clock offset is estimated NTP-style from every frame id that carries
   all four wire stamps (client send/done, server recv/wire); the merged
   snapshot gets client events rebased and renumbered past the server's,
   plus synthesized Span bars (net.rpc / net.queue / net.serve / net.write)
   so one Perfetto load shows where each request spent its time. The merged
   raw artifact still replay-checks: trace_check.exe ignores wire-level
   kinds. *)

module Trace = Obs.Trace
module Merge = Obs.Merge
module St = Service.Service_stats

let read_snapshot path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Trace.read_raw ic)

let span_name =
  let op_names = Array.of_list (List.map St.op_name St.all_ops) in
  fun op ->
    match Merge.span_name op with
    | Some n -> n
    | None ->
        if op >= 0 && op < Array.length op_names then op_names.(op)
        else "op" ^ string_of_int op

let main client server out chrome check =
  let c = read_snapshot client in
  let s = read_snapshot server in
  let corr, merged = Merge.merge ~client:c ~server:s in
  if corr.Merge.pairs = 0 then
    prerr_endline
      "trace_merge: warning: no frame id carries all four wire stamps; \
       merging with offset 0 (are these traces from the same run?)"
  else
    Printf.printf
      "clock offset: server - client = %d ns (median of %d exchanges, \
       spread %d ns)\n\
       %!"
      corr.Merge.offset_ns corr.Merge.pairs corr.Merge.spread_ns;
  let merged = Merge.synthesize_spans merged in
  Printf.printf "merged: %d events (%d client + %d server + spans)\n%!"
    (Array.length merged.Trace.events)
    (Array.length c.Trace.events)
    (Array.length s.Trace.events);
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Trace.write_raw oc merged);
      Printf.printf "wrote merged raw trace to %s\n%!" path)
    out;
  Option.iter
    (fun path ->
      Obs.Chrome.write ~span_name path merged;
      Printf.printf "wrote Chrome trace JSON to %s\n%!" path)
    chrome;
  if check then
    match Obs.Check.run_snapshot merged with
    | Ok summary ->
        Format.printf "trace check: clean — %a@." Obs.Check.pp_summary summary
    | Error vs ->
        Printf.printf "trace check: %d violation(s)\n" (List.length vs);
        List.iteri
          (fun i v ->
            if i < 20 then Format.printf "  %a@." Obs.Check.pp_violation v)
          vs;
        exit 1

open Cmdliner

let client_arg =
  let doc = "Client-side raw trace (netkv_bench --trace-raw)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "client" ] ~docv:"FILE" ~doc)

let server_arg =
  let doc = "Server-side raw trace (netkv_server --trace-raw)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "server" ] ~docv:"FILE" ~doc)

let out_arg =
  let doc = "Write the merged raw trace (trace_check format) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let chrome_arg =
  let doc =
    "Write the merged timeline as Chrome trace-event JSON \
     (Perfetto-loadable) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc = "Replay-check the merged trace; violations exit nonzero." in
  Arg.(value & flag & info [ "check" ] ~doc)

let cmd =
  let doc = "Merge client and server raw traces into one correlated timeline" in
  Cmd.v
    (Cmd.info "trace-merge" ~doc)
    Term.(
      const main $ client_arg $ server_arg $ out_arg $ chrome_arg $ check_arg)

let () = exit (Cmd.eval cmd)
