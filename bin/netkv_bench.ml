(* Open-loop load generator for the networked shardkv server.

   Unlike shardkv_bench (closed-loop: a stalled server silently stops being
   measured), this bench schedules arrivals by wall clock from a seeded
   plan and charges queueing delay to latency, so overload shows up in the
   numbers instead of disappearing from them. Each cell reports three p99s:
   raw (completion - send, the coordinated-omitting number), backfill
   (HdrHistogram-style correction of the raw sample), and corrected
   (completion - scheduled arrival).

     dune exec bin/netkv_bench.exe -- --schemes HP,EBR --rates 20000,80000

   By default each cell starts its own in-process server on a unix socket
   under the temp dir; --connect ADDR drives an external server instead
   (one cell per rate, scheme column "remote"). --fault-seed arms a seeded
   client-side fault (Net_read/Net_write, kill or stall) after prefill;
   a stalled connection is released by a watchdog after --fault-release
   seconds. With --json FILE every cell lands as a harness Collector row
   with offered_rps/achieved_rps filled in. *)

module Stats = Smr_core.Stats
module Report = Bench_harness.Report
module Bench_types = Bench_harness.Bench_types
module Json = Service.Json
module Histogram = Service.Histogram
module St = Service.Service_stats

type params = {
  conns : int;
  duration : float;
  seed : int;
  keys : int;
  read_pct : int;
  dist : string;
  theta : float;
  drain : float;
  reactors : int;
  shards : int;
  queue_bound : int;
  prefill : int;
  async : bool; (* in-process servers run a background collector domain *)
  fault_seed : int option;
  fault_release : float;
  trace_raw : string option; (* client-side Req_send/Req_done events *)
  trace_depth : int;
}

type cell = {
  b_scheme : string;
  rate : float;
  res : Net.Openloop.result;
  result : Bench_types.result; (* harness row: offered/achieved + garbage *)
  residue : int; (* unreclaimed after stop + final reap *)
  fault : Fault.plan option;
  srv_served : int; (* in-process servers only; 0 for --connect *)
  srv_retries : int;
}

let cfg_of p ~addr ~rate =
  {
    Net.Openloop.addr;
    conns = p.conns;
    rate;
    duration = p.duration;
    seed = p.seed;
    keys = p.keys;
    read_pct = p.read_pct;
    dist = p.dist;
    theta = p.theta;
    drain = p.drain;
  }

let to_result ~stats (res : Net.Openloop.result) =
  let g f = match stats with Some s -> f s | None -> 0 in
  {
    Bench_types.ops = res.Net.Openloop.total_completed;
    wall = res.Net.Openloop.elapsed;
    throughput_mops = res.Net.Openloop.achieved_rps /. 1e6;
    offered_rps = res.Net.Openloop.offered_rps;
    achieved_rps = res.Net.Openloop.achieved_rps;
    peak_unreclaimed = g Stats.peak_unreclaimed;
    avg_unreclaimed = 0.0;
    peak_live = g Stats.peak_live;
    heavy_fences = g Stats.heavy_fences;
    protection_failures = g Stats.protection_failures;
    allocated = g Stats.allocated;
    freed = g Stats.freed;
    retired_total = g Stats.retired_total;
  }

(* Arm the seeded client-side fault and a watchdog that releases a stalled
   victim after [release] seconds (idempotent if nothing stalled), so a
   Stall demonstrates a frozen client without wedging the run. *)
let with_fault p f =
  match p.fault_seed with
  | None -> (None, f ())
  | Some seed ->
      let plan =
        Fault.arm_seeded ~seed ~points:[ Fault.Net_read; Fault.Net_write ] ()
      in
      let watchdog =
        Domain.spawn (fun () ->
            Unix.sleepf p.fault_release;
            Fault.release ())
      in
      let r = f () in
      Domain.join watchdog;
      Fault.reset ();
      (Some plan, r)

module Drive (S : Smr.Smr_intf.S) = struct
  module Srv = Net.Server.Make (S)

  let run_cell p ~rate =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "netkv-%d-%s-%.0f.sock" (Unix.getpid ()) S.name rate)
    in
    let addr = Net.Addr.Unix_sock path in
    let config =
      if p.async then
        { Smr.Smr_intf.default_config with async_reclaim = true }
      else Smr.Smr_intf.default_config
    in
    let srv =
      Srv.start ~reactors:p.reactors ~queue_bound:p.queue_bound ~config
        ~shards:p.shards [ addr ]
    in
    Fun.protect
      ~finally:(fun () -> try Srv.stop srv with _ -> ())
      (fun () ->
        let cfg = cfg_of p ~addr ~rate in
        if p.prefill > 0 then Net.Openloop.prefill cfg ~count:p.prefill;
        let fault, res = with_fault p (fun () -> Net.Openloop.run cfg) in
        Srv.stop srv;
        let stats = S.stats (Srv.Kv.scheme (Srv.kv srv)) in
        let c = Srv.counters srv in
        {
          b_scheme = (if p.async then S.name ^ "+async" else S.name);
          rate;
          res;
          result = to_result ~stats:(Some stats) res;
          residue = Srv.residue srv;
          fault;
          srv_served = Atomic.get c.Net.Reactor.served;
          srv_retries = Atomic.get c.Net.Reactor.retries;
        })
end

let run_cell p ~scheme ~rate =
  match scheme with
  | "HP++" ->
      let module D = Drive (Hp_plus) in
      D.run_cell p ~rate
  | "HP" ->
      let module D = Drive (Hp) in
      D.run_cell p ~rate
  | "EBR" ->
      let module D = Drive (Ebr) in
      D.run_cell p ~rate
  | "PEBR" ->
      let module D = Drive (Pebr) in
      D.run_cell p ~rate
  | "NR" ->
      let module D = Drive (Nr) in
      D.run_cell p ~rate
  | "RC" ->
      let module D = Drive (Rc) in
      D.run_cell p ~rate
  | s -> invalid_arg ("unknown scheme: " ^ s)

let run_remote p ~addr ~rate =
  let cfg = cfg_of p ~addr ~rate in
  if p.prefill > 0 then Net.Openloop.prefill cfg ~count:p.prefill;
  let fault, res = with_fault p (fun () -> Net.Openloop.run cfg) in
  {
    b_scheme = "remote";
    rate;
    res;
    result = to_result ~stats:None res;
    residue = 0;
    fault;
    srv_served = 0;
    srv_retries = 0;
  }

let openloop_json (res : Net.Openloop.result) =
  let summary h = St.summary_json (Histogram.summary h) in
  Json.Obj
    [
      ("sent", Json.Int res.Net.Openloop.total_sent);
      ("completed", Json.Int res.Net.Openloop.total_completed);
      ("retried", Json.Int res.Net.Openloop.total_retried);
      ("abandoned", Json.Int res.Net.Openloop.total_abandoned);
      ("kills", Json.Int res.Net.Openloop.kills);
      ("latency_uncorrected", summary res.Net.Openloop.r_uncorrected);
      ("latency_backfill", summary res.Net.Openloop.r_backfill);
      ("latency_corrected", summary res.Net.Openloop.r_corrected);
    ]

let print_cell c =
  let res = c.res in
  let p99 h = float_of_int (Histogram.percentile h 99.0) /. 1e3 in
  Printf.printf
    "%-6s offered %8.0f rps: achieved %8.0f rps, sent %d done %d retry %d \
     abandoned %d kills %d, p99 us raw/backfill/corrected = %.1f/%.1f/%.1f, \
     residue %d\n%!"
    c.b_scheme res.Net.Openloop.offered_rps res.Net.Openloop.achieved_rps
    res.Net.Openloop.total_sent res.Net.Openloop.total_completed
    res.Net.Openloop.total_retried res.Net.Openloop.total_abandoned
    res.Net.Openloop.kills
    (p99 res.Net.Openloop.r_uncorrected)
    (p99 res.Net.Openloop.r_backfill)
    (p99 res.Net.Openloop.r_corrected)
    c.residue;
  if c.srv_served > 0 || c.srv_retries > 0 then
    Printf.printf "       server: served %d, retries %d\n%!" c.srv_served
      c.srv_retries;
  Option.iter
    (fun (plan : Fault.plan) ->
      Printf.printf "       fault: %s %s after %d hit(s)%s\n%!"
        (Fault.action_name plan.Fault.action)
        (Fault.point_name plan.Fault.point)
        plan.Fault.after
        (if res.Net.Openloop.kills > 0 then " — fired (kill)"
         else if
           List.exists
             (fun (cr : Net.Openloop.conn_result) -> cr.stalled_ns > 0)
             res.Net.Openloop.per_conn
         then " — fired (stall, released)"
         else ""))
    c.fault

let summary_table cells =
  let rows =
    List.map
      (fun c ->
        let p99 h = float_of_int (Histogram.percentile h 99.0) /. 1e3 in
        ( Printf.sprintf "%s@%.0fk" c.b_scheme (c.rate /. 1e3),
          [
            Some (c.res.Net.Openloop.offered_rps /. 1e3);
            Some (c.res.Net.Openloop.achieved_rps /. 1e3);
            Some (p99 c.res.Net.Openloop.r_uncorrected);
            Some (p99 c.res.Net.Openloop.r_backfill);
            Some (p99 c.res.Net.Openloop.r_corrected);
            Some (float_of_int c.res.Net.Openloop.total_retried);
            Some (float_of_int c.residue);
          ] ))
      cells
  in
  Report.table ~title:"netkv open-loop summary" ~row_label:"cell"
    ~columns:
      [
        "off-krps";
        "ach-krps";
        "p99us-raw";
        "p99us-bf";
        "p99us-corr";
        "retries";
        "residue";
      ]
    ~rows
    ~fmt:(Printf.sprintf "%.1f")

open Cmdliner

let schemes_arg =
  let doc = "Comma-separated schemes for in-process servers." in
  Arg.(value & opt string "HP,EBR" & info [ "schemes" ] ~doc)

let rates_arg =
  let doc = "Comma-separated offered loads, requests/sec across all conns." in
  Arg.(value & opt string "20000" & info [ "rates" ] ~doc)

let connect_arg =
  let doc =
    "Drive an external server at $(docv) (unix:/path or tcp:host:port) \
     instead of starting one per cell."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let conns_arg =
  let doc = "Client connections (one domain each)." in
  Arg.(value & opt int 4 & info [ "conns" ] ~doc)

let duration_arg =
  let doc = "Seconds of scheduled arrivals per cell." in
  Arg.(value & opt float 2.0 & info [ "duration" ] ~doc)

let drain_arg =
  let doc = "Extra seconds to wait for in-flight responses." in
  Arg.(value & opt float 2.0 & info [ "drain" ] ~doc)

let seed_arg =
  let doc = "Seed for the arrival plan and key draws." in
  Arg.(value & opt int 0x0b5e55ed & info [ "seed" ] ~doc)

let keys_arg =
  let doc = "Key-space size." in
  Arg.(value & opt int 16384 & info [ "keys" ] ~doc)

let read_pct_arg =
  let doc = "Percentage of requests that are GETs (rest split PUT/DELETE)." in
  Arg.(value & opt int 80 & info [ "read-pct" ] ~doc)

let dist_arg =
  let doc = "Key distribution: uniform or zipfian." in
  Arg.(value & opt string "uniform" & info [ "dist" ] ~doc)

let theta_arg =
  let doc = "Zipfian skew parameter." in
  Arg.(value & opt float 0.99 & info [ "theta" ] ~doc)

let prefill_arg =
  let doc = "PUTs sent over the wire before measurement (windowed)." in
  Arg.(value & opt int 8192 & info [ "prefill" ] ~doc)

let reactors_arg =
  let doc = "Reactor domains for in-process servers." in
  Arg.(value & opt int 2 & info [ "reactors" ] ~doc)

let shards_arg =
  let doc = "Shards for in-process servers." in
  Arg.(value & opt int 4 & info [ "shards" ] ~doc)

let queue_bound_arg =
  let doc = "Per-session request-queue bound." in
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~doc)

let async_arg =
  let doc =
    "In-process servers hand full retire bags to a background collector \
     domain instead of scanning inline (sets $(b,async_reclaim) in the \
     scheme config; cells are labelled $(i,SCHEME+async))."
  in
  Arg.(value & flag & info [ "async-reclaim" ] ~doc)

let fault_seed_arg =
  let doc =
    "Arm a seeded client-side fault (Net_read/Net_write, kill or stall) \
     after prefill."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let fault_release_arg =
  let doc = "Seconds before the watchdog releases a stalled client." in
  Arg.(value & opt float 0.5 & info [ "fault-release" ] ~doc)

let trace_raw_arg =
  let doc =
    "Record client-side wire events (send/completion per frame id) and \
     write the raw trace to $(docv) on exit — trace_merge.exe joins it \
     with a server-side --trace-raw dump into one timeline."
  in
  Arg.(value & opt (some string) None & info [ "trace-raw" ] ~docv:"FILE" ~doc)

let trace_depth_arg =
  let doc = "Trace ring capacity per domain, in events." in
  Arg.(value & opt int 65536 & info [ "trace-depth" ] ~doc)

let json_arg =
  let doc = "Write harness Collector rows to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let main schemes rates connect conns duration drain seed keys read_pct dist
    theta prefill reactors shards queue_bound async fault_seed fault_release
    trace_raw trace_depth json =
  let p =
    {
      conns;
      duration;
      seed;
      keys;
      read_pct;
      dist;
      theta;
      drain;
      reactors;
      shards;
      queue_bound;
      prefill;
      async;
      fault_seed;
      fault_release;
      trace_raw;
      trace_depth;
    }
  in
  if p.trace_raw <> None then begin
    Obs.Trace.set_clock (fun () -> Int64.to_int (Monotonic_clock.now ()));
    Obs.Trace.enable ~capacity:p.trace_depth ()
  end;
  let rates = List.map float_of_string (split_commas rates) in
  Printf.printf
    "netkv open-loop bench: %d conn(s), %.2fs/cell + %.2fs drain, %d keys \
     (%s), %d%% reads, prefill %d, seed %#x, reclaim=%s\n%!"
    conns duration drain keys dist read_pct prefill seed
    (if async then "async" else "inline");
  Bench_harness.Collector.set_experiment "netkv-openloop";
  let cells =
    match connect with
    | Some addr_s ->
        let addr = Net.Addr.parse addr_s in
        List.map
          (fun rate ->
            let c = run_remote p ~addr ~rate in
            print_cell c;
            c)
          rates
    | None ->
        List.concat_map
          (fun scheme ->
            List.map
              (fun rate ->
                let c = run_cell p ~scheme ~rate in
                print_cell c;
                c)
              rates)
          (split_commas schemes)
  in
  (match p.trace_raw with
  | None -> ()
  | Some path ->
      Obs.Trace.disable ();
      let snap = Obs.Trace.snapshot () in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.Trace.write_raw oc snap);
      Printf.printf "wrote client raw trace to %s\n%!" path);
  summary_table cells;
  List.iter
    (fun c ->
      Bench_harness.Collector.add
        ~extra:[ ("openloop", openloop_json c.res) ]
        ~ds:"netkv" ~scheme:c.b_scheme ~threads:p.conns ~key_range:p.keys
        ~workload:(Printf.sprintf "openloop-read%d" p.read_pct)
        c.result)
    cells;
  Option.iter Bench_harness.Collector.write json

let cmd =
  let doc = "Open-loop load generator for the networked shardkv server" in
  Cmd.v
    (Cmd.info "netkv-bench" ~doc)
    Term.(
      const main $ schemes_arg $ rates_arg $ connect_arg $ conns_arg
      $ duration_arg $ drain_arg $ seed_arg $ keys_arg $ read_pct_arg
      $ dist_arg $ theta_arg $ prefill_arg $ reactors_arg $ shards_arg
      $ queue_bound_arg $ async_arg $ fault_seed_arg $ fault_release_arg
      $ trace_raw_arg $ trace_depth_arg $ json_arg)

let () = exit (Cmd.eval cmd)
