(* smr_lint: static SMR-discipline analyzer for the tree.

   Usage: smr_lint [--json|--sarif] [--show-suppressed] [--v1]
                   [--prune-pragmas] [--summaries-out FILE]
                   [--summaries-in FILE] [--max-wall-ms N] PATH...

   Exits 1 when any unsuppressed finding remains, 2 when --max-wall-ms is
   exceeded, 0 otherwise. *)

let usage =
  "smr_lint [--json|--sarif] [--show-suppressed] [--v1] [--prune-pragmas] \
   [--summaries-out FILE] [--summaries-in FILE] [--max-wall-ms N] PATH..."

let () =
  let json = ref false in
  let sarif = ref false in
  let show_suppressed = ref false in
  let v1 = ref false in
  let prune = ref false in
  let summaries_out = ref "" in
  let summaries_in = ref "" in
  let max_wall_ms = ref 0 in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ("--sarif", Arg.Set sarif, " emit findings as SARIF 2.1.0 on stdout");
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " also list pragma-suppressed findings (human mode)" );
      ("--v1", Arg.Set v1, " additionally run the legacy syntactic R1 rule");
      ( "--prune-pragmas",
        Arg.Set prune,
        " report only stale suppressions (P1 findings)" );
      ( "--summaries-out",
        Arg.Set_string summaries_out,
        "FILE write the run's function-summary sidecar as JSON" );
      ( "--summaries-in",
        Arg.Set_string summaries_in,
        "FILE preload a function-summary sidecar from a previous run" );
      ( "--max-wall-ms",
        Arg.Set_int max_wall_ms,
        "N exit 2 if the run takes longer than N ms of wall clock" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps
  in
  let t0 = Unix.gettimeofday () in
  let table =
    if !summaries_in = "" then None
    else
      let ic = open_in_bin !summaries_in in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Some (Analysis.Summary.table_of_json text)
  in
  let report = Analysis.Engine.run ~v1:!v1 ?table paths in
  let elapsed_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
  if !summaries_out <> "" then begin
    let oc = open_out !summaries_out in
    output_string oc (Analysis.Summary.table_to_json report.summaries);
    close_out oc
  end;
  let findings =
    if !prune then
      List.filter
        (fun (f : Analysis.Finding.t) -> f.rule.id = "P1")
        report.findings
    else report.findings
  in
  if !sarif then print_string (Analysis.Sarif.render findings)
  else if !json then begin
    let items = List.map Analysis.Finding.to_json findings in
    print_string "[";
    List.iteri
      (fun i item ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string item)
      items;
    if items <> [] then print_string "\n";
    print_string "]\n"
  end
  else begin
    List.iter (fun f -> print_endline (Analysis.Finding.to_human f)) findings;
    if !show_suppressed then
      List.iter
        (fun (f, reason) ->
          Printf.printf "%s  [suppressed: %s]\n"
            (Analysis.Finding.to_human f)
            reason)
        report.suppressed
  end;
  Printf.eprintf "smr_lint: %d file%s, %d finding%s, %d suppressed, %d ms\n"
    report.files
    (if report.files = 1 then "" else "s")
    (List.length findings)
    (if List.length findings = 1 then "" else "s")
    (List.length report.suppressed)
    elapsed_ms;
  if !max_wall_ms > 0 && elapsed_ms > !max_wall_ms then begin
    Printf.eprintf "smr_lint: wall-clock budget exceeded (%d ms > %d ms)\n"
      elapsed_ms !max_wall_ms;
    exit 2
  end;
  if findings <> [] then exit 1
