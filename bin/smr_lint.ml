(* smr_lint: static SMR-discipline analyzer for the tree.

   Usage: smr_lint [--json] [--show-suppressed] PATH...
   Exits 1 when any unsuppressed finding remains, 0 otherwise. *)

let usage = "smr_lint [--json] [--show-suppressed] PATH..."

let () =
  let json = ref false in
  let show_suppressed = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " also list pragma-suppressed findings (human mode)" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let report = Analysis.Engine.run paths in
  if !json then begin
    let items = List.map Analysis.Finding.to_json report.findings in
    print_string "[";
    List.iteri
      (fun i item ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string item)
      items;
    if items <> [] then print_string "\n";
    print_string "]\n"
  end
  else begin
    List.iter
      (fun f -> print_endline (Analysis.Finding.to_human f))
      report.findings;
    if !show_suppressed then
      List.iter
        (fun (f, reason) ->
          Printf.printf "%s  [suppressed: %s]\n"
            (Analysis.Finding.to_human f)
            reason)
        report.suppressed
  end;
  Printf.eprintf "smr_lint: %d file%s, %d finding%s, %d suppressed\n"
    report.files
    (if report.files = 1 then "" else "s")
    (List.length report.findings)
    (if List.length report.findings = 1 then "" else "s")
    (List.length report.suppressed);
  if report.findings <> [] then exit 1
