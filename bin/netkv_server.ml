(* Standalone networked shardkv server: listeners (unix:/path and/or
   tcp:host:port), a reactor pool, and a chosen SMR scheme behind the store.

     dune exec bin/netkv_server.exe -- --listen unix:/tmp/netkv.sock --scheme HP++

   Runs until --duration expires or SIGTERM/SIGINT arrives, then stops
   gracefully: the acceptor dies first, reactors close their connections
   cleanly, a final reap recovers anything client churn left dead, and the
   final service/net stats are printed as JSON. With --trace-raw the SMR
   event trace is dumped in trace_check.exe's format and replay-checked
   in-process; protocol violations make the exit code nonzero. *)

module Trace = Obs.Trace
module Json = Service.Json

type params = {
  addrs : Net.Addr.t list;
  scheme : string;
  shards : int;
  reactors : int;
  queue_bound : int;
  duration : float; (* <= 0.0: run until a signal *)
  async : bool; (* background collector domain behind the store *)
  trace_raw : string option;
  trace_depth : int;
  metrics : Obs_cli.t;
}

module Run (S : Smr.Smr_intf.S) = struct
  module Srv = Net.Server.Make (S)

  let go p =
    let tracing = p.trace_raw <> None in
    if tracing then begin
      Trace.set_clock (fun () -> Int64.to_int (Monotonic_clock.now ()));
      Trace.enable ~capacity:p.trace_depth ()
    end;
    let config =
      if p.async then
        { Smr.Smr_intf.default_config with async_reclaim = true }
      else Smr.Smr_intf.default_config
    in
    let srv =
      Srv.start ~reactors:p.reactors ~queue_bound:p.queue_bound ~config
        ~shards:p.shards
        ?metrics:(Obs_cli.metrics_of p.metrics)
        p.addrs
    in
    Printf.printf
      "netkv server: scheme=%s shards=%d reactors=%d reclaim=%s listening on \
       %s\n\
       %!"
      S.name p.shards p.reactors
      (if p.async then "async" else "inline")
      (String.concat ", " (List.map Net.Addr.to_string p.addrs));
    Option.iter
      (fun port ->
        Printf.printf "netkv server: metrics on http://127.0.0.1:%d/metrics\n%!"
          port)
      (Srv.metrics_port srv);
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let t0 = Unix.gettimeofday () in
    while
      (not (Atomic.get stop))
      && (p.duration <= 0.0 || Unix.gettimeofday () -. t0 < p.duration)
    do
      (* a signal interrupts the sleep; the loop re-checks the flag *)
      try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    let final = Srv.stats_json srv in
    Srv.stop srv;
    Printf.printf "netkv server: final stats %s\n%!" (Json.to_string final);
    Printf.printf "netkv server: residue after stop+reap = %d unreclaimed\n%!"
      (Srv.residue srv);
    let violations = ref 0 in
    if tracing then begin
      Trace.disable ();
      let snap = Trace.snapshot () in
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> Trace.write_raw oc snap);
          Printf.printf "wrote raw trace to %s\n%!" path)
        p.trace_raw;
      match Obs.Check.run_snapshot snap with
      | Ok summary ->
          Format.printf "trace check: clean — %a@." Obs.Check.pp_summary summary
      | Error vs ->
          violations := List.length vs;
          Printf.printf "trace check: %d violation(s)\n" !violations;
          List.iteri
            (fun i v ->
              if i < 20 then Format.printf "  %a@." Obs.Check.pp_violation v)
            vs
    end;
    if !violations > 0 then exit 1
end

let run p =
  match p.scheme with
  | "HP++" ->
      let module R = Run (Hp_plus) in
      R.go p
  | "HP" ->
      let module R = Run (Hp) in
      R.go p
  | "EBR" ->
      let module R = Run (Ebr) in
      R.go p
  | "PEBR" ->
      let module R = Run (Pebr) in
      R.go p
  | "NR" ->
      let module R = Run (Nr) in
      R.go p
  | "RC" ->
      let module R = Run (Rc) in
      R.go p
  | s -> invalid_arg ("unknown scheme: " ^ s)

open Cmdliner

let listen_arg =
  let doc = "Listen address (repeatable): unix:/path or tcp:host:port." in
  Arg.(
    value
    & opt_all string [ "unix:/tmp/netkv.sock" ]
    & info [ "listen" ] ~docv:"ADDR" ~doc)

let scheme_arg =
  let doc = "Reclamation scheme (HP++, HP, EBR, PEBR, NR, RC)." in
  Arg.(value & opt string "HP" & info [ "scheme" ] ~doc)

let shards_arg =
  let doc = "Shard count (rounded up to a power of two)." in
  Arg.(value & opt int 4 & info [ "shards" ] ~doc)

let reactors_arg =
  let doc = "Reactor domains serving connections." in
  Arg.(value & opt int 2 & info [ "reactors" ] ~doc)

let queue_bound_arg =
  let doc = "Per-session request-queue bound (RETRY beyond it)." in
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~doc)

let duration_arg =
  let doc = "Seconds to serve; 0 means until SIGTERM/SIGINT." in
  Arg.(value & opt float 0.0 & info [ "duration" ] ~doc)

let async_arg =
  let doc =
    "Hand full retire bags to a background collector domain instead of \
     scanning inline (sets $(b,async_reclaim) in the scheme config)."
  in
  Arg.(value & flag & info [ "async-reclaim" ] ~doc)

let trace_raw_arg =
  let doc =
    "Record SMR events, write the raw trace (the format trace_check.exe \
     reads) to $(docv) on exit, and replay-check it in-process."
  in
  Arg.(value & opt (some string) None & info [ "trace-raw" ] ~docv:"FILE" ~doc)

let trace_depth_arg =
  let doc = "Trace ring capacity per domain, in events." in
  Arg.(value & opt int 65536 & info [ "trace-depth" ] ~doc)

let main listen scheme shards reactors queue_bound duration async trace_raw
    trace_depth metrics =
  run
    {
      addrs = List.map Net.Addr.parse listen;
      scheme;
      shards;
      reactors;
      queue_bound;
      duration;
      async;
      trace_raw;
      trace_depth;
      metrics;
    }

let cmd =
  let doc = "Networked shardkv server (binary wire protocol over unix/tcp)" in
  Cmd.v
    (Cmd.info "netkv-server" ~doc)
    Term.(
      const main $ listen_arg $ scheme_arg $ shards_arg $ reactors_arg
      $ queue_bound_arg $ duration_arg $ async_arg $ trace_raw_arg
      $ trace_depth_arg $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
