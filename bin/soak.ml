(* Long-running randomized soak of every data structure x scheme pair with
   the use-after-free detector on.

   Usage: soak [ROUNDS] [DOMAINS] [options] — see --help; beyond the trace
   and chaos flags it accepts the shared --metrics-listen ADDR /
   --metrics-every SECS pair, serving live per-pair reclamation counters at
   /metrics while the soak runs (and --metrics FILE still writes the final
   exposition to disk).

   A recorded trace is replay-checked in-process before exit; protocol
   violations fail the soak. In chaos mode only the four scheme-defining
   pairs run (hmlist/HP, hhslist/{HP++,EBR,PEBR}) — each once inline and
   once with the asynchronous reclamation pipeline on, where the plan may
   also stall or kill the background collector domain — every round ends
   with crash recovery and a structural UAF sweep, and the same SEED
   replays the same plans. *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Stats = Smr_core.Stats
module Trace = Obs.Trace

(* The knobs stay refs (the Drive functors below read them directly); the
   cmdliner command at the bottom fills them in before running. *)

let rounds = ref 5
let domains = ref 4
let every = ref 0.0 (* 0 = no progress ticker *)
let trace_out = ref None
let trace_raw_out = ref None
let metrics_out = ref None
let trace_depth = ref 65536
let chaos = ref None

(* --- progress ticker ----------------------------------------------------- *)

(* One writer per field; the ticker domain reads racily, which is fine for a
   progress line. Workers batch their op counts to keep the shared counter
   off the hot path. *)
type progress = {
  mutable label : string;
  ops : int Atomic.t;
  mutable stats : Stats.t option;
}

let progress = { label = "startup"; ops = Atomic.make 0; stats = None }
let ticker_stop = Atomic.make false

let spawn_ticker period =
  Domain.spawn (fun () ->
      let t0 = Unix.gettimeofday () in
      let last_ops = ref 0 and last_t = ref t0 in
      while not (Atomic.get ticker_stop) do
        Unix.sleepf period;
        let now = Unix.gettimeofday () in
        let ops = Atomic.get progress.ops in
        let rate = float_of_int (ops - !last_ops) /. (now -. !last_t) in
        last_ops := ops;
        last_t := now;
        match progress.stats with
        | None -> ()
        | Some s ->
            Printf.printf
              "[%6.1fs] %-16s %8.0f ops/s | retired %d, reclaimed %d, \
               unreclaimed %d (peak %d)\n\
               %!"
              (now -. t0) progress.label rate (Stats.retired_total s)
              (Stats.freed s) (Stats.unreclaimed s) (Stats.peak_unreclaimed s)
      done)

let metrics_reg = Obs.Metrics.create ()

module Drive
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val to_list : 'v t -> (int * 'v) list
    end) =
struct
  let run name =
    progress.label <- name;
    for round = 1 to !rounds do
      let scheme = S.create () in
      progress.stats <- Some (S.stats scheme);
      let t = L.create scheme in
      let _ =
        Pool.run_timed ~n:!domains ~duration:0.25 (fun i ~stop ->
            let h = S.register scheme in
            let lo = L.make_local h in
            let rng = Rng.create ~seed:((round * 97) + i) in
            let local_ops = ref 0 in
            while not (stop ()) do
              let key = Rng.below rng 48 in
              (match Rng.below rng 4 with
              | 0 | 1 -> ignore (L.get t lo key)
              | 2 -> ignore (L.insert t lo key key)
              | _ -> ignore (L.remove t lo key));
              incr local_ops;
              if !local_ops land 1023 = 0 then begin
                ignore (Atomic.fetch_and_add progress.ops 1024)
              end
            done;
            ignore (Atomic.fetch_and_add progress.ops (!local_ops land 1023));
            L.clear_local lo;
            S.unregister h)
      in
      let contents = L.to_list t in
      let keys = List.map fst contents in
      assert (keys = List.sort_uniq compare keys);
      if round = !rounds && !metrics_out <> None then
        Service.Telemetry.add_smr_stats metrics_reg
          ~labels:[ ("pair", name) ]
          (S.stats scheme)
    done;
    Printf.printf "soak ok: %s (%d rounds x %d domains)\n%!" name !rounds
      !domains
end

(* --- chaos mode ---------------------------------------------------------- *)

(* Each round arms one seeded plan before the worker pool starts. A killed
   worker abandons its handle exactly where the exception found it — slots
   set, epoch pinned, invalidation pending — and the round ends by handing
   every such corpse to report_crashed, draining through a fresh survivor,
   and sweeping the structure for reachable-but-freed nodes. A stalled
   worker is released by a watchdog domain after the round's duration so
   the pool can join. *)
module Chaos_drive
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val to_list : 'v t -> (int * 'v) list
      val assert_reachable_not_freed : 'v t -> unit
    end) =
struct
  let run ?(config = Smr.Smr_intf.default_config) name ~seed ~salt ~points =
    progress.label <- name;
    for round = 1 to !rounds do
      let scheme = S.create ~config () in
      progress.stats <- Some (S.stats scheme);
      let t = L.create scheme in
      let plan =
        Fault.arm_seeded ~seed:((seed * 31) + (salt * 7919) + round) ~points ()
      in
      Printf.printf "chaos %-14s round %d: %s at %s after %d hit(s)\n%!" name
        round
        (Fault.action_name plan.Fault.action)
        (Fault.point_name plan.Fault.point)
        plan.Fault.after;
      let victims = Array.make !domains None in
      let watchdog =
        if plan.Fault.action = Fault.Stall then
          Some
            (Domain.spawn (fun () ->
                 Unix.sleepf 0.35;
                 Fault.release ()))
        else None
      in
      let _ =
        Pool.run_timed ~n:!domains ~duration:0.25 (fun i ~stop ->
            let h = S.register scheme in
            let lo = L.make_local h in
            let rng = Rng.create ~seed:((round * 97) + i) in
            try
              while not (stop ()) do
                let key = Rng.below rng 48 in
                match Rng.below rng 4 with
                | 0 | 1 -> ignore (L.get t lo key)
                | 2 -> ignore (L.insert t lo key key)
                | _ -> ignore (L.remove t lo key)
              done;
              L.clear_local lo;
              S.unregister h
            with Fault.Killed _ -> victims.(i) <- Some h)
      in
      Option.iter Domain.join watchdog;
      Fault.reset ();
      Array.iter (function Some h -> S.report_crashed h | None -> ()) victims;
      (* Async rounds: stop the background collector (it may itself be the
         round's kill/stall victim), salvaging queued and pending bags into
         the orphanage; the survivor's flushes below adopt and free them.
         Inline rounds: a no-op. *)
      S.shutdown scheme;
      let survivor = S.register scheme in
      S.flush survivor;
      S.flush survivor;
      S.flush survivor;
      S.unregister survivor;
      L.assert_reachable_not_freed t;
      let contents = L.to_list t in
      let keys = List.map fst contents in
      assert (keys = List.sort_uniq compare keys);
      (* Recovery must leave at most a handful of counted-but-lost headers
         (a kill inside an unlink batch's marking loop), never churn-sized
         garbage. *)
      let residue = Stats.unreclaimed (S.stats scheme) in
      if residue > 64 then begin
        Printf.printf "chaos %s round %d: %d blocks unreclaimed after recovery\n"
          name round residue;
        exit 1
      end
    done;
    Printf.printf "chaos ok: %s (%d rounds x %d domains)\n%!" name !rounds
      !domains
end

let run_chaos seed =
  let module C1 = Chaos_drive (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  C1.run "hmlist/HP" ~seed ~salt:1
    ~points:[ Fault.Retire; Fault.Protect; Fault.Reclaim ];
  let module C2 = Chaos_drive (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  C2.run "hhslist/HP++" ~seed ~salt:2
    ~points:[ Fault.Retire; Fault.Protect; Fault.Unlink; Fault.Reclaim ];
  let module C3 = Chaos_drive (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  C3.run "hhslist/EBR" ~seed ~salt:3
    ~points:[ Fault.Retire; Fault.Crit; Fault.Reclaim ];
  let module C4 = Chaos_drive (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  C4.run "hhslist/PEBR" ~seed ~salt:4
    ~points:[ Fault.Retire; Fault.Protect; Fault.Crit; Fault.Reclaim ];
  (* Asynchronous-pipeline rounds: same pairs with the background collector
     on and [Fault.Collector] in the point set, so seeded plans also stall
     the collector mid-pipeline (the ring fills, mutators fall back inline)
     or kill its domain outright (queued bags must be salvaged on
     shutdown). The residue bound at the end of each round is the same. *)
  let async = { Smr.Smr_intf.default_config with async_reclaim = true } in
  C1.run "hmlist/HP+async" ~config:async ~seed ~salt:5
    ~points:[ Fault.Retire; Fault.Protect; Fault.Reclaim; Fault.Collector ];
  let module C5 = Chaos_drive (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  C5.run "hhslist/HP+++async" ~config:async ~seed ~salt:6
    ~points:[ Fault.Retire; Fault.Unlink; Fault.Reclaim; Fault.Collector ];
  let module C6 = Chaos_drive (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  C6.run "hhslist/EBR+async" ~config:async ~seed ~salt:7
    ~points:[ Fault.Retire; Fault.Crit; Fault.Collector ];
  let module C7 = Chaos_drive (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  C7.run "hhslist/PEBR+async" ~config:async ~seed ~salt:8
    ~points:[ Fault.Retire; Fault.Crit; Fault.Reclaim; Fault.Collector ]

let run_standard () =
  let module M1 = Drive (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  M1.run "hmlist/HP";
  let module M2 = Drive (Hp_plus) (Smr_ds.Hmlist.Make (Hp_plus)) in
  M2.run "hmlist/HP++";
  let module M3 = Drive (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  M3.run "hhslist/HP++";
  let module M4 = Drive (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  M4.run "hhslist/PEBR";
  let module M5 = Drive (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  M5.run "hhslist/EBR";
  let module M6 = Drive (Rc) (Smr_ds.Hhslist.Make (Rc)) in
  M6.run "hhslist/RC";
  let module M7 = Drive (Hp_plus) (Smr_ds.Hashmap.Make (Hp_plus)) in
  M7.run "hashmap/HP++";
  let module M8 = Drive (Hp) (Smr_ds.Skiplist.Make (Hp)) in
  M8.run "skiplist/HP";
  let module M9 = Drive (Hp_plus) (Smr_ds.Skiplist.Make (Hp_plus)) in
  M9.run "skiplist/HP++";
  let module M10 = Drive (Hp_plus) (Smr_ds.Nmtree.Make (Hp_plus)) in
  M10.run "nmtree/HP++";
  let module M11 = Drive (Pebr) (Smr_ds.Nmtree.Make (Pebr)) in
  M11.run "nmtree/PEBR";
  let module M12 = Drive (Hp) (Smr_ds.Efrbtree.Make (Hp)) in
  M12.run "efrbtree/HP";
  let module M13 = Drive (Hp_plus) (Smr_ds.Efrbtree.Make (Hp_plus)) in
  M13.run "efrbtree/HP++";
  let module M14 = Drive (Nr) (Smr_ds.Efrbtree.Make (Nr)) in
  M14.run "efrbtree/NR";
  let module M15 = Drive (Pebr) (Smr_ds.Efrbtree.Make (Pebr)) in
  M15.run "efrbtree/PEBR";
  let module M16 = Drive (Hp_plus) (Smr_ds.Lazylist.Make (Hp_plus)) in
  M16.run "lazylist/HP++";
  let module M17 = Drive (Pebr) (Smr_ds.Lazylist.Make (Pebr)) in
  M17.run "lazylist/PEBR";
  let module M18 = Drive (Hp_plus) (Smr_ds.Bonsai.Make (Hp_plus)) in
  M18.run "bonsai/HP++";
  let module M19 = Drive (Pebr) (Smr_ds.Bonsai.Make (Pebr)) in
  M19.run "bonsai/PEBR";
  let module M20 = Drive (Rc) (Smr_ds.Bonsai.Make (Rc)) in
  M20.run "bonsai/RC"

(* Live scrape: the current pair's SMR counters (labelled by pair name) plus
   a whole-soak op counter. [progress] has one writer per field and is read
   racily here, same as the ticker. *)
let live_sample m =
  Obs.Metrics.counter m ~help:"Operations completed across all soak pairs"
    "soak_ops_total"
    (float_of_int (Atomic.get progress.ops));
  match progress.stats with
  | None -> ()
  | Some s ->
      Service.Telemetry.add_smr_stats m
        ~labels:[ ("pair", progress.label) ]
        s

let run metrics_live =
  let tracing = !trace_out <> None || !trace_raw_out <> None in
  if tracing then Trace.enable ~capacity:!trace_depth ();
  let exposition = Obs_cli.start metrics_live ~sample:live_sample in
  Option.iter
    (fun e ->
      Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
        (Obs.Exposition.port e))
    exposition;
  let ticker = if !every > 0.0 then Some (spawn_ticker !every) else None in
  (match !chaos with
  | Some seed -> run_chaos seed
  | None -> run_standard ());
  Option.iter
    (fun t ->
      Atomic.set ticker_stop true;
      Domain.join t)
    ticker;
  let violations = ref 0 in
  if tracing then begin
    Trace.disable ();
    let snap = Trace.snapshot () in
    Option.iter
      (fun path ->
        Obs.Chrome.write path snap;
        Printf.printf "wrote %d trace events to %s (dropped %d)\n%!"
          (Array.length snap.Trace.events)
          path snap.Trace.dropped)
      !trace_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Trace.write_raw oc snap);
        Printf.printf "wrote raw trace to %s\n%!" path)
      !trace_raw_out;
    match Obs.Check.run_snapshot snap with
    | Ok summary ->
        Format.printf "trace check: clean — %a@." Obs.Check.pp_summary summary
    | Error vs ->
        violations := List.length vs;
        Printf.printf "trace check: %d violation(s)\n" !violations;
        List.iteri
          (fun i v ->
            if i < 20 then Format.printf "  %a@." Obs.Check.pp_violation v)
          vs
  end;
  Option.iter
    (fun path ->
      Obs.Metrics.write path metrics_reg;
      Printf.printf "wrote metrics exposition to %s\n%!" path)
    !metrics_out;
  Option.iter Obs.Exposition.stop exposition;
  if !violations > 0 then exit 1;
  print_endline "all soaks passed"

open Cmdliner

let rounds_arg =
  let doc = "Soak rounds per data-structure x scheme pair." in
  Arg.(value & pos 0 int 5 & info [] ~docv:"ROUNDS" ~doc)

let domains_arg =
  let doc = "Worker domains per round." in
  Arg.(value & pos 1 int 4 & info [] ~docv:"DOMAINS" ~doc)

let every_arg =
  let doc = "Print a one-line progress snapshot every $(docv) seconds." in
  Arg.(value & opt float 0.0 & info [ "every" ] ~docv:"SEC" ~doc)

let trace_arg =
  let doc = "Record SMR events and write Chrome trace JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_raw_arg =
  let doc =
    "Write the raw trace artifact (the format trace_check.exe reads) to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-raw" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write per-pair reclamation counters (Prometheus text) to $(docv) on \
     exit."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_depth_arg =
  let doc = "Trace ring capacity per domain, in events." in
  Arg.(value & opt int 65536 & info [ "trace-depth" ] ~doc)

let chaos_arg =
  let doc =
    "Fault-injection mode: each round arms one seeded kill or stall at a \
     random SMR protocol point; killed handles are recovered via \
     report_crashed."
  in
  Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED" ~doc)

let main r d ev tr traw m depth ch metrics_live =
  rounds := r;
  domains := d;
  every := ev;
  trace_out := tr;
  trace_raw_out := traw;
  metrics_out := m;
  trace_depth := depth;
  chaos := ch;
  run metrics_live

let cmd =
  let doc = "Randomized soak of every data structure x scheme pair" in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(
      const main $ rounds_arg $ domains_arg $ every_arg $ trace_arg
      $ trace_raw_arg $ metrics_arg $ trace_depth_arg $ chaos_arg
      $ Obs_cli.term)

let () = exit (Cmd.eval cmd)
