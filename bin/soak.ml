(* Long-running randomized soak of every data structure x scheme pair with
   the use-after-free detector on.

   Usage: soak [rounds] [domains] [options]
     --every SEC        print a one-line progress snapshot every SEC seconds
     --trace FILE       record SMR events, write Chrome trace JSON to FILE
     --trace-raw FILE   write the raw trace artifact (trace_check format)
     --metrics FILE     write per-pair reclamation counters (Prometheus text)
     --trace-depth N    trace ring capacity per domain (default 65536)

   A recorded trace is replay-checked in-process before exit; protocol
   violations fail the soak. *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Stats = Smr_core.Stats
module Trace = Obs.Trace

(* --- minimal argv parsing: positionals then --flag VALUE pairs ----------- *)

let usage () =
  prerr_endline
    "usage: soak [rounds] [domains] [--every SEC] [--trace FILE]\n\
    \            [--trace-raw FILE] [--metrics FILE] [--trace-depth N]";
  exit 2

let rounds = ref 5
let domains = ref 4
let every = ref 0.0 (* 0 = no progress ticker *)
let trace_out = ref None
let trace_raw_out = ref None
let metrics_out = ref None
let trace_depth = ref 65536

let () =
  let rec parse pos = function
    | [] -> ()
    | "--every" :: v :: rest ->
        every := float_of_string v;
        parse pos rest
    | "--trace" :: v :: rest ->
        trace_out := Some v;
        parse pos rest
    | "--trace-raw" :: v :: rest ->
        trace_raw_out := Some v;
        parse pos rest
    | "--metrics" :: v :: rest ->
        metrics_out := Some v;
        parse pos rest
    | "--trace-depth" :: v :: rest ->
        trace_depth := int_of_string v;
        parse pos rest
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
        (match pos with
        | 0 -> rounds := int_of_string a
        | 1 -> domains := int_of_string a
        | _ -> usage ());
        parse (pos + 1) rest
  in
  match parse 0 (List.tl (Array.to_list Sys.argv)) with
  | () -> ()
  | exception _ -> usage ()

(* --- progress ticker ----------------------------------------------------- *)

(* One writer per field; the ticker domain reads racily, which is fine for a
   progress line. Workers batch their op counts to keep the shared counter
   off the hot path. *)
type progress = {
  mutable label : string;
  ops : int Atomic.t;
  mutable stats : Stats.t option;
}

let progress = { label = "startup"; ops = Atomic.make 0; stats = None }
let ticker_stop = Atomic.make false

let spawn_ticker period =
  Domain.spawn (fun () ->
      let t0 = Unix.gettimeofday () in
      let last_ops = ref 0 and last_t = ref t0 in
      while not (Atomic.get ticker_stop) do
        Unix.sleepf period;
        let now = Unix.gettimeofday () in
        let ops = Atomic.get progress.ops in
        let rate = float_of_int (ops - !last_ops) /. (now -. !last_t) in
        last_ops := ops;
        last_t := now;
        match progress.stats with
        | None -> ()
        | Some s ->
            Printf.printf
              "[%6.1fs] %-16s %8.0f ops/s | retired %d, reclaimed %d, \
               unreclaimed %d (peak %d)\n\
               %!"
              (now -. t0) progress.label rate (Stats.retired_total s)
              (Stats.freed s) (Stats.unreclaimed s) (Stats.peak_unreclaimed s)
      done)

let metrics_reg = Obs.Metrics.create ()

module Drive
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val to_list : 'v t -> (int * 'v) list
    end) =
struct
  let run name =
    progress.label <- name;
    for round = 1 to !rounds do
      let scheme = S.create () in
      progress.stats <- Some (S.stats scheme);
      let t = L.create scheme in
      let _ =
        Pool.run_timed ~n:!domains ~duration:0.25 (fun i ~stop ->
            let h = S.register scheme in
            let lo = L.make_local h in
            let rng = Rng.create ~seed:((round * 97) + i) in
            let local_ops = ref 0 in
            while not (stop ()) do
              let key = Rng.below rng 48 in
              (match Rng.below rng 4 with
              | 0 | 1 -> ignore (L.get t lo key)
              | 2 -> ignore (L.insert t lo key key)
              | _ -> ignore (L.remove t lo key));
              incr local_ops;
              if !local_ops land 1023 = 0 then begin
                ignore (Atomic.fetch_and_add progress.ops 1024)
              end
            done;
            ignore (Atomic.fetch_and_add progress.ops (!local_ops land 1023));
            L.clear_local lo;
            S.unregister h)
      in
      let contents = L.to_list t in
      let keys = List.map fst contents in
      assert (keys = List.sort_uniq compare keys);
      if round = !rounds && !metrics_out <> None then
        Service.Telemetry.add_smr_stats metrics_reg
          ~labels:[ ("pair", name) ]
          (S.stats scheme)
    done;
    Printf.printf "soak ok: %s (%d rounds x %d domains)\n%!" name !rounds
      !domains
end

let () =
  let tracing = !trace_out <> None || !trace_raw_out <> None in
  if tracing then Trace.enable ~capacity:!trace_depth ();
  let ticker = if !every > 0.0 then Some (spawn_ticker !every) else None in
  let module M1 = Drive (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  M1.run "hmlist/HP";
  let module M2 = Drive (Hp_plus) (Smr_ds.Hmlist.Make (Hp_plus)) in
  M2.run "hmlist/HP++";
  let module M3 = Drive (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  M3.run "hhslist/HP++";
  let module M4 = Drive (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  M4.run "hhslist/PEBR";
  let module M5 = Drive (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  M5.run "hhslist/EBR";
  let module M6 = Drive (Rc) (Smr_ds.Hhslist.Make (Rc)) in
  M6.run "hhslist/RC";
  let module M7 = Drive (Hp_plus) (Smr_ds.Hashmap.Make (Hp_plus)) in
  M7.run "hashmap/HP++";
  let module M8 = Drive (Hp) (Smr_ds.Skiplist.Make (Hp)) in
  M8.run "skiplist/HP";
  let module M9 = Drive (Hp_plus) (Smr_ds.Skiplist.Make (Hp_plus)) in
  M9.run "skiplist/HP++";
  let module M10 = Drive (Hp_plus) (Smr_ds.Nmtree.Make (Hp_plus)) in
  M10.run "nmtree/HP++";
  let module M11 = Drive (Pebr) (Smr_ds.Nmtree.Make (Pebr)) in
  M11.run "nmtree/PEBR";
  let module M12 = Drive (Hp) (Smr_ds.Efrbtree.Make (Hp)) in
  M12.run "efrbtree/HP";
  let module M13 = Drive (Hp_plus) (Smr_ds.Efrbtree.Make (Hp_plus)) in
  M13.run "efrbtree/HP++";
  let module M14 = Drive (Nr) (Smr_ds.Efrbtree.Make (Nr)) in
  M14.run "efrbtree/NR";
  let module M15 = Drive (Pebr) (Smr_ds.Efrbtree.Make (Pebr)) in
  M15.run "efrbtree/PEBR";
  let module M16 = Drive (Hp_plus) (Smr_ds.Lazylist.Make (Hp_plus)) in
  M16.run "lazylist/HP++";
  let module M17 = Drive (Pebr) (Smr_ds.Lazylist.Make (Pebr)) in
  M17.run "lazylist/PEBR";
  let module M18 = Drive (Hp_plus) (Smr_ds.Bonsai.Make (Hp_plus)) in
  M18.run "bonsai/HP++";
  let module M19 = Drive (Pebr) (Smr_ds.Bonsai.Make (Pebr)) in
  M19.run "bonsai/PEBR";
  let module M20 = Drive (Rc) (Smr_ds.Bonsai.Make (Rc)) in
  M20.run "bonsai/RC";
  Option.iter
    (fun t ->
      Atomic.set ticker_stop true;
      Domain.join t)
    ticker;
  let violations = ref 0 in
  if tracing then begin
    Trace.disable ();
    let snap = Trace.snapshot () in
    Option.iter
      (fun path ->
        Obs.Chrome.write path snap;
        Printf.printf "wrote %d trace events to %s (dropped %d)\n%!"
          (Array.length snap.Trace.events)
          path snap.Trace.dropped)
      !trace_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Trace.write_raw oc snap);
        Printf.printf "wrote raw trace to %s\n%!" path)
      !trace_raw_out;
    match Obs.Check.run_snapshot snap with
    | Ok summary ->
        Format.printf "trace check: clean — %a@." Obs.Check.pp_summary summary
    | Error vs ->
        violations := List.length vs;
        Printf.printf "trace check: %d violation(s)\n" !violations;
        List.iteri
          (fun i v ->
            if i < 20 then Format.printf "  %a@." Obs.Check.pp_violation v)
          vs
  end;
  Option.iter
    (fun path ->
      Obs.Metrics.write path metrics_reg;
      Printf.printf "wrote metrics exposition to %s\n%!" path)
    !metrics_out;
  if !violations > 0 then exit 1;
  print_endline "all soaks passed"
