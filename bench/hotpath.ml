(* SMR hot-path microbenchmarks: isolates the three costs every scheme pays
   on every operation — statistics accounting, header allocation, and the
   retire→reclaim cycle — plus the per-reclaim hazard scan, away from any
   data-structure traversal. Each cost is measured on the current (striped)
   implementation AND on a measured-legacy replica of the seed's hot path
   (one shared stats cache line with a per-op peak CAS, one global uid
   counter, list retire bags drained through a per-reclaim Hashtbl), so the
   before/after ratio is visible in one run.

   Wired as [bench/main.exe exp hotpath]; rows flow into [--json] via
   {!Bench_harness.Collector}. The run fails loudly (nonzero exit) if any
   scheme trips the UAF detector or records a protection failure, which is
   what the CI hotpath-smoke job asserts. *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Retire_bag = Smr.Retire_bag
module Domain_pool = Smr_core.Domain_pool
module Collector = Bench_harness.Collector
module Bench_types = Bench_harness.Bench_types
module Histogram = Service.Histogram
module Json = Service.Json

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* --- Measured-legacy replicas of the seed hot path ----------------------- *)

(* The seed's Stats: eight shared atomics bumped on every event, with a
   CAS-loop peak update on every alloc and retire. *)
module Legacy_stats = struct
  type t = {
    allocated : int Atomic.t;
    freed : int Atomic.t;
    retired_total : int Atomic.t;
    unreclaimed : int Atomic.t;
    peak_unreclaimed : int Atomic.t;
    peak_live : int Atomic.t;
  }

  let create () =
    {
      allocated = Atomic.make 0;
      freed = Atomic.make 0;
      retired_total = Atomic.make 0;
      unreclaimed = Atomic.make 0;
      peak_unreclaimed = Atomic.make 0;
      peak_live = Atomic.make 0;
    }

  let rec update_peak peak v =
    let cur = Atomic.get peak in
    if v > cur && not (Atomic.compare_and_set peak cur v) then
      update_peak peak v

  let on_alloc t =
    Atomic.incr t.allocated;
    update_peak t.peak_live (Atomic.get t.allocated - Atomic.get t.freed)

  let on_retire t =
    Atomic.incr t.retired_total;
    let v = 1 + Atomic.fetch_and_add t.unreclaimed 1 in
    update_peak t.peak_unreclaimed v

  let on_free t =
    Atomic.incr t.freed;
    ignore (Atomic.fetch_and_add t.unreclaimed (-1))
end

(* The seed's Mem.make: every header allocation hits one global uid counter.
   The header shape (uid, state, refcount) and the retire/free state-machine
   CASes match Mem exactly so the comparison isolates the uid/stats/bag/scan
   changes, not the detector's cost. *)
module Legacy_alloc = struct
  let uid_counter = Atomic.make 0

  type header = { uid : int; state : int Atomic.t; refcount : int Atomic.t }

  let make stats =
    Legacy_stats.on_alloc stats;
    {
      uid = Atomic.fetch_and_add uid_counter 1;
      state = Atomic.make 0;
      refcount = Atomic.make 1;
    }

  let retire_mark h = ignore (Atomic.compare_and_set h.state 0 1)
  let free_mark h = ignore (Atomic.compare_and_set h.state 1 2)
end

(* The seed's HP retire→reclaim: a header list bag consed per retire, a
   Hashtbl of every hazard slot rebuilt per reclaim, a List.filter rebuild
   of the bag, and a List.length recount of the survivors. *)
module Legacy_hp = struct
  type handle = {
    stats : Legacy_stats.t;
    registry : Slots.registry;
    mutable retireds : Legacy_alloc.header list;
    mutable retired_count : int;
  }

  let make ~registry ~stats = { stats; registry; retireds = []; retired_count = 0 }

  let reclaim h =
    let protected_ = Slots.protected_set h.registry in
    let keep =
      List.filter
        (fun (hdr : Legacy_alloc.header) ->
          if Hashtbl.mem protected_ hdr.uid then true
          else begin
            Legacy_alloc.free_mark hdr;
            Legacy_stats.on_free h.stats;
            false
          end)
        h.retireds
    in
    h.retireds <- keep;
    h.retired_count <- List.length keep

  let retire h hdr =
    Legacy_alloc.retire_mark hdr;
    Legacy_stats.on_retire h.stats;
    h.retireds <- hdr :: h.retireds;
    h.retired_count <- h.retired_count + 1;
    if h.retired_count >= 128 then reclaim h
end

(* --- Timing helpers ------------------------------------------------------ *)

let time_loop ~duration f =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let ops = ref 0 in
  while Unix.gettimeofday () < deadline do
    (* batch so the clock read is off the measured path *)
    for _ = 1 to 256 do
      f ()
    done;
    ops := !ops + 256
  done;
  (!ops, Unix.gettimeofday () -. t0)

let result_of ~ops ~wall ?(stats : Stats.t option) () : Bench_types.result =
  {
    ops;
    wall;
    throughput_mops = float_of_int ops /. wall /. 1e6;
    offered_rps = 0.0;
    achieved_rps = (if wall > 0.0 then float_of_int ops /. wall else 0.0);
    peak_unreclaimed =
      (match stats with Some s -> Stats.peak_unreclaimed s | None -> 0);
    avg_unreclaimed = 0.;
    peak_live = (match stats with Some s -> Stats.peak_live s | None -> 0);
    heavy_fences = (match stats with Some s -> Stats.heavy_fences s | None -> 0);
    protection_failures =
      (match stats with Some s -> Stats.protection_failures s | None -> 0);
    allocated = (match stats with Some s -> Stats.allocated s | None -> 0);
    freed = (match stats with Some s -> Stats.freed s | None -> 0);
    retired_total =
      (match stats with Some s -> Stats.retired_total s | None -> 0);
  }

let report ?extra ?(workload = "hotpath") ~ds ~scheme ~threads ~key_range r =
  Collector.add ?extra ~ds ~scheme ~threads ~key_range ~workload r;
  Printf.printf "  %-14s %-22s threads=%d n=%-6d  %8.3f Mops/s\n%!" ds scheme
    threads key_range r.Bench_types.throughput_mops

(* Per-op latency columns appended to the row's JSON (satellite of the
   async-reclamation PR: the throughput tables hide the tail that the
   background collector exists to shave). *)
let lat_extra ~mode (s : Histogram.summary) =
  [
    ("mode", Json.String mode);
    ("lat_p50_ns", Json.Int s.Histogram.p50);
    ("lat_p99_ns", Json.Int s.Histogram.p99);
    ("lat_p999_ns", Json.Int s.Histogram.p999);
    ("lat_mean_ns", Json.Float s.Histogram.mean);
    ("lat_max_ns", Json.Int s.Histogram.max);
  ]

let print_lat scheme (s : Histogram.summary) =
  Printf.printf
    "    %-22s latency p50=%dns p99=%dns p999=%dns max=%dns\n%!" scheme
    s.Histogram.p50 s.Histogram.p99 s.Histogram.p999 s.Histogram.max

(* --- 1. retire→reclaim throughput per scheme ----------------------------- *)

module Retire_loop (S : Smr.Smr_intf.S) = struct
  (* Allocate-and-retire as fast as possible: every iteration pays the
     alloc, stats and retire costs, and every reclaim_threshold-th pays a
     full reclaim pass (inline mode) or a bag handoff (async mode). No data
     structure in the way. Each op is clocked individually into a
     per-domain histogram — the clock overhead is uniform across schemes
     and modes, and the tail is the whole point: inline reclaim spikes at
     p99/p999 are what the background collector exists to shave. *)
  let run ?(config = Smr.Smr_intf.default_config) ~threads ~duration () =
    let t = S.create ~config () in
    let stats = S.stats t in
    let outs =
      Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
          let h = S.register t in
          let hist = Histogram.create () in
          let n = ref 0 in
          while not (stop ()) do
            for _ = 1 to 64 do
              let t0 = now_ns () in
              let hdr = Mem.make stats in
              S.crit_enter h;
              S.retire h hdr;
              S.crit_exit h;
              Histogram.record hist (now_ns () - t0)
            done;
            n := !n + 64
          done;
          S.flush h;
          S.unregister h;
          (!n, hist))
    in
    S.shutdown t;
    let ops = Array.fold_left (fun acc (n, _) -> acc + n) 0 outs in
    let hist =
      Histogram.merge (Array.to_list (Array.map snd outs))
    in
    (ops, stats, hist)
end

module Hp_loop = Retire_loop (Hp)
module Hpp_loop = Retire_loop (Hp_plus)
module Ebr_loop = Retire_loop (Ebr)
module Pebr_loop = Retire_loop (Pebr)
module Rc_loop = Retire_loop (Rc)

let legacy_retire_loop ~threads ~duration =
  let stats = Legacy_stats.create () in
  let registry = Slots.create () in
  let outs =
    Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
        let local = Slots.register registry in
        let h = Legacy_hp.make ~registry ~stats in
        let hist = Histogram.create () in
        let n = ref 0 in
        while not (stop ()) do
          for _ = 1 to 64 do
            let t0 = now_ns () in
            Legacy_hp.retire h (Legacy_alloc.make stats);
            Histogram.record hist (now_ns () - t0)
          done;
          n := !n + 64
        done;
        Legacy_hp.reclaim h;
        ignore local;
        (!n, hist))
  in
  let ops = Array.fold_left (fun acc (n, _) -> acc + n) 0 outs in
  (ops, Histogram.merge (Array.to_list (Array.map snd outs)))

(* Paired rows per scheme: the inline baseline ([workload = "hotpath"]) and
   the asynchronous pipeline ([workload = "hotpath-async"]) over the
   identical loop, so the JSON carries the p99 comparison the
   collector-smoke CI job gates on. The async rows use a short (2-bag)
   ring: handed-off bags are capped at half the baseline by the adaptive
   policy and a starved ring is stolen back into the mutator's own
   baseline scans, so worst-case garbage (own bag + stolen ring, 128 +
   2*64) stays within the epoch schemes' inline envelope while the common
   case sheds the snapshot+scan from the mutator path entirely. *)
let async_config =
  { Smr.Smr_intf.default_config with async_reclaim = true; handoff_capacity = 2 }

let retire_reclaim_bench ~threads ~duration =
  let schemes =
    [
      ("HP", fun config -> Hp_loop.run ~config ~threads ~duration ());
      ("HP++", fun config -> Hpp_loop.run ~config ~threads ~duration ());
      ("EBR", fun config -> Ebr_loop.run ~config ~threads ~duration ());
      ("PEBR", fun config -> Pebr_loop.run ~config ~threads ~duration ());
      ("RC", fun config -> Rc_loop.run ~config ~threads ~duration ());
    ]
  in
  let one ~mode ~workload config (name, f) =
    let t0 = Unix.gettimeofday () in
    let ops, stats, hist = f config in
    let wall = Unix.gettimeofday () -. t0 in
    let s = Histogram.summary hist in
    report
      ~extra:(lat_extra ~mode s)
      ~workload ~ds:"retire-reclaim" ~scheme:name ~threads ~key_range:0
      (result_of ~ops ~wall ~stats ());
    print_lat name s
  in
  List.iter
    (one ~mode:"inline" ~workload:"hotpath" Smr.Smr_intf.default_config)
    schemes;
  List.iter (one ~mode:"async" ~workload:"hotpath-async" async_config) schemes;
  let t0 = Unix.gettimeofday () in
  let ops, hist = legacy_retire_loop ~threads ~duration in
  let wall = Unix.gettimeofday () -. t0 in
  report
    ~extra:(lat_extra ~mode:"inline" (Histogram.summary hist))
    ~ds:"retire-reclaim" ~scheme:"HP/legacy-seed" ~threads ~key_range:0
    (result_of ~ops ~wall ())

(* --- 2. hazard-scan cost vs registered-handle count ---------------------- *)

let scan_bench ~handles ~duration =
  let registry = Slots.create () in
  let stats = Stats.create () in
  (* Each handle protects half its chunk, the realistic shape: most slots
     of most handles are empty during a scan. *)
  let locals =
    List.init handles (fun _ ->
        let l = Slots.register registry in
        for _ = 1 to 32 do
          let s = Slots.acquire l in
          Slots.set s (Mem.make stats)
        done;
        l)
  in
  let retired = Array.init 256 (fun _ -> Mem.uid (Mem.make stats)) in
  (* sorted scan: snapshot once, then binary-search every retired uid —
     one simulated reclaim pass per iteration *)
  let scan = Slots.scan_create () in
  let sorted_pass () =
    Slots.scan_snapshot registry scan;
    Array.iter (fun uid -> ignore (Slots.scan_mem scan uid)) retired
  in
  let ops, wall = time_loop ~duration sorted_pass in
  report ~ds:"hazard-scan" ~scheme:"sorted-array" ~threads:1 ~key_range:handles
    (result_of ~ops ~wall ());
  (* legacy scan: rebuild the Hashtbl of every slot per pass *)
  let legacy_pass () =
    let tbl = Slots.protected_set registry in
    Array.iter (fun uid -> ignore (Hashtbl.mem tbl uid)) retired
  in
  let ops, wall = time_loop ~duration legacy_pass in
  report ~ds:"hazard-scan" ~scheme:"hashtbl-legacy" ~threads:1
    ~key_range:handles
    (result_of ~ops ~wall ());
  List.iter Slots.unregister locals

(* --- 3. statistics accounting: striped vs seed --------------------------- *)

let stats_bench ~threads ~duration =
  let striped = Stats.create () in
  let counts =
    Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          for _ = 1 to 64 do
            Stats.on_alloc striped;
            Stats.on_retire striped;
            Stats.on_free striped
          done;
          n := !n + 64
        done;
        !n)
  in
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"stats" ~scheme:"striped" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ());
  let legacy = Legacy_stats.create () in
  let counts =
    Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          for _ = 1 to 64 do
            Legacy_stats.on_alloc legacy;
            Legacy_stats.on_retire legacy;
            Legacy_stats.on_free legacy
          done;
          n := !n + 64
        done;
        !n)
  in
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"stats" ~scheme:"shared-legacy" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ())

(* --- 4. header allocation: per-domain uid blocks vs global counter ------- *)

let alloc_bench ~threads ~duration =
  let stats = Stats.create () in
  let counts =
    Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          for _ = 1 to 64 do
            ignore (Sys.opaque_identity (Mem.make stats))
          done;
          n := !n + 64
        done;
        !n)
  in
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"alloc" ~scheme:"uid-blocks" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ());
  let legacy = Legacy_stats.create () in
  let counts =
    Domain_pool.run_timed ~n:threads ~duration (fun _ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          for _ = 1 to 64 do
            ignore (Sys.opaque_identity (Legacy_alloc.make legacy))
          done;
          n := !n + 64
        done;
        !n)
  in
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"alloc" ~scheme:"global-counter-legacy" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ())

(* --- 5. tracer cost: disabled branch, enabled ring write, traced retire -- *)

module Trace = Obs.Trace

let tracer_bench ~threads ~duration =
  let emit_loop _ ~stop =
    let n = ref 0 in
    while not (stop ()) do
      for _ = 1 to 64 do
        Trace.emit Trace.Retire 1 0 0
      done;
      n := !n + 64
    done;
    !n
  in
  let counts = Domain_pool.run_timed ~n:threads ~duration emit_loop in
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"tracer" ~scheme:"emit-disabled" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ());
  Trace.enable ~capacity:4096 ();
  let counts = Domain_pool.run_timed ~n:threads ~duration emit_loop in
  Trace.disable ();
  Trace.reset ();
  let ops = Array.fold_left ( + ) 0 counts in
  report ~ds:"tracer" ~scheme:"emit-enabled" ~threads ~key_range:0
    (result_of ~ops ~wall:duration ())

(* The acceptance row for the <2% disabled-overhead budget is the plain
   retire-reclaim bench above (its hooks all take the disabled branch);
   these rows show what fully enabled tracing costs the same loop. *)
let traced_retire_bench ~threads ~duration =
  Trace.enable ~capacity:16384 ();
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      let ops, stats, _ = f () in
      let wall = Unix.gettimeofday () -. t0 in
      report ~ds:"retire-reclaim-traced" ~scheme:name ~threads ~key_range:0
        (result_of ~ops ~wall ~stats ()))
    [
      ("HP", fun () -> Hp_loop.run ~threads ~duration ());
      ("HP++", fun () -> Hpp_loop.run ~threads ~duration ());
    ];
  Trace.disable ();
  Trace.reset ()

(* --- Anomaly gate (CI hotpath-smoke fails on nonzero exit) --------------- *)

let check_anomalies schemes_stats =
  List.iter
    (fun (name, stats) ->
      let pf = Stats.protection_failures stats in
      if pf > 0 then
        failwith
          (Printf.sprintf
             "hotpath anomaly: %s recorded %d protection failures in a \
              contention-free bench"
             name pf))
    schemes_stats

let run ~threads_list ~duration =
  print_endline "hotpath: SMR hot-path microbenchmarks (current vs measured-legacy seed path)";
  Printf.printf "  uaf-detector=%b\n%!" (Mem.checking ());
  List.iter
    (fun threads ->
      retire_reclaim_bench ~threads ~duration;
      stats_bench ~threads ~duration;
      alloc_bench ~threads ~duration;
      tracer_bench ~threads ~duration;
      traced_retire_bench ~threads ~duration)
    threads_list;
  List.iter (fun handles -> scan_bench ~handles ~duration) [ 1; 4; 16; 64 ];
  (* A final guarded retire run with stats retained for the anomaly gate —
     once inline, once through the async pipeline. *)
  let _, hp_stats, _ = Hp_loop.run ~threads:2 ~duration:(duration /. 2.) () in
  let _, hpp_stats, _ = Hpp_loop.run ~threads:2 ~duration:(duration /. 2.) () in
  let _, hp_async_stats, _ =
    Hp_loop.run ~config:async_config ~threads:2 ~duration:(duration /. 2.) ()
  in
  check_anomalies
    [ ("HP", hp_stats); ("HP++", hpp_stats); ("HP/async", hp_async_stats) ];
  print_endline "hotpath: no UAF / protection-failure anomalies"
