(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index).

   Default invocation runs the full set at container-friendly sizes:
     dune exec bench/main.exe
   Individual experiments:
     dune exec bench/main.exe -- exp fig8 fig11 --threads 1,2,4
   Paper-scale key ranges and longer runs:
     dune exec bench/main.exe -- exp fig8 --paper-scale --duration 2 *)

module E = Bench_harness.Experiments

let parse_threads s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let run_exps settings exps with_micro =
  let default_run = exps = [] in
  let exps = if default_run then E.known @ [ "hotpath" ] else exps in
  Printf.printf
    "HP++ reproduction benchmark suite\n\
     host: %d cores | threads=%s duration=%.2fs paper_scale=%b\n\
     note: 1-core container; thread counts > 1 measure preemptive \
     interleaving, not parallel speedup (DESIGN.md section 2)\n%!"
    (Domain.recommended_domain_count ())
    (String.concat "," (List.map string_of_int settings.E.threads_list))
    settings.E.duration settings.E.paper_scale;
  List.iter
    (fun exp ->
      if exp = "hotpath" then begin
        Bench_harness.Collector.set_experiment "hotpath";
        Hotpath.run ~threads_list:settings.E.threads_list
          ~duration:settings.E.duration
      end
      else E.run settings exp)
    exps;
  if with_micro || default_run then Micro.run ()

open Cmdliner

let threads_arg =
  let doc = "Comma-separated worker counts for thread sweeps." in
  Arg.(value & opt string "1,2,4" & info [ "threads" ] ~doc)

let duration_arg =
  let doc = "Seconds per measured point." in
  Arg.(value & opt float 0.25 & info [ "duration" ] ~doc)

let paper_scale_arg =
  let doc =
    "Use the paper's key ranges (10K for lists, 100K for the rest) instead \
     of container-sized ones."
  in
  Arg.(value & flag & info [ "paper-scale" ] ~doc)

let micro_arg =
  let doc = "Also run the bechamel micro-benchmarks of SMR primitives." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let no_uaf_arg =
  let doc = "Disable the use-after-free detector during measurement." in
  Arg.(value & flag & info [ "no-uaf-check" ] ~doc)

let exps_arg =
  let doc =
    "Experiments to run: fig8..fig23, tab1, tab2, alg5, thresholds, \
     stalled, hotpath. Default: all."
  in
  Arg.(value & pos_right (-1) string [] & info [] ~docv:"EXP" ~doc)

let json_arg =
  let doc =
    "Also serialize every measured (experiment, structure, scheme, threads) \
     row as JSON to $(docv), for tracking benchmark trajectories across \
     commits."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let main threads duration paper_scale micro no_uaf json exps =
  if no_uaf then Smr_core.Mem.set_checking false;
  let settings =
    {
      E.threads_list = parse_threads threads;
      duration;
      paper_scale;
    }
  in
  (* strip a leading "exp" subcommand word if present *)
  let exps = List.filter (fun e -> e <> "exp") exps in
  run_exps settings exps micro;
  Option.iter Bench_harness.Collector.write json

let cmd =
  let doc = "Regenerate the tables and figures of the HP++ paper" in
  Cmd.v
    (Cmd.info "hp-plus-bench" ~doc)
    Term.(
      const main $ threads_arg $ duration_arg $ paper_scale_arg $ micro_arg
      $ no_uaf_arg $ json_arg $ exps_arg)

let () = exit (Cmd.eval cmd)
