(* HashMap and SkipList across schemes, re-using the generic list suite
   (same map-like interface). *)

module Suite = Test_support.Suite
module Hashmap = Smr_ds.Hashmap
module Skiplist = Smr_ds.Skiplist

module Map_hp = Suite (Hp) (Hashmap.Make (Hp))
module Map_hpp = Suite (Hp_plus) (Hashmap.Make (Hp_plus))
module Map_ebr = Suite (Ebr) (Hashmap.Make (Ebr))
module Map_pebr = Suite (Pebr) (Hashmap.Make (Pebr))
module Map_rc = Suite (Rc) (Hashmap.Make (Rc))
module Map_nr = Suite (Nr) (Hashmap.Make (Nr))
module Sk_hp = Suite (Hp) (Skiplist.Make (Hp))
module Sk_hpp = Suite (Hp_plus) (Skiplist.Make (Hp_plus))
module Sk_ebr = Suite (Ebr) (Skiplist.Make (Ebr))
module Sk_pebr = Suite (Pebr) (Skiplist.Make (Pebr))
module Sk_rc = Suite (Rc) (Skiplist.Make (Rc))
module Sk_nr = Suite (Nr) (Skiplist.Make (Nr))

(* Skiplist-specific: towers taller than one level exercise the per-level
   unlink accounting; insert+remove cycles must drain completely. *)
let test_skiplist_tall_towers_drain () =
  let module Sk = Skiplist.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = Sk.create scheme in
  let h = Hp_plus.register scheme in
  let lo = Sk.make_local h in
  for round = 1 to 20 do
    for k = 1 to 200 do
      assert (Sk.insert t lo k (k * round))
    done;
    for k = 1 to 200 do
      assert (Sk.remove t lo k)
    done;
    Alcotest.(check int) "empty between rounds" 0 (Sk.size t)
  done;
  Sk.clear_local lo;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "all towers reclaimed" 0
    (Smr_core.Stats.unreclaimed (Hp_plus.stats scheme));
  Hp_plus.unregister h

let test_skiplist_order_iteration () =
  let module Sk = Skiplist.Make (Ebr) in
  let scheme = Ebr.create () in
  let t = Sk.create scheme in
  let h = Ebr.register scheme in
  let lo = Sk.make_local h in
  let keys = [ 42; 7; 19; 3; 88; 21; 64; 1 ] in
  List.iter (fun k -> assert (Sk.insert t lo k (k * 10))) keys;
  Alcotest.(check (list (pair int int)))
    "sorted iteration"
    (List.map (fun k -> (k, k * 10)) (List.sort compare keys))
    (Sk.to_list t);
  Sk.clear_local lo;
  Ebr.unregister h

let () =
  Alcotest.run "maps"
    [
      ("hashmap:HP", Map_hp.tests);
      ("hashmap:HP++", Map_hpp.tests);
      ("hashmap:EBR", Map_ebr.tests);
      ("hashmap:PEBR", Map_pebr.tests);
      ("hashmap:RC", Map_rc.tests);
      ("hashmap:NR", Map_nr.tests);
      ("skiplist:HP", Sk_hp.tests);
      ("skiplist:HP++", Sk_hpp.tests);
      ("skiplist:EBR", Sk_ebr.tests);
      ("skiplist:PEBR", Sk_pebr.tests);
      ("skiplist:RC", Sk_rc.tests);
      ("skiplist:NR", Sk_nr.tests);
      ( "skiplist extras",
        [
          Alcotest.test_case "tall towers drain" `Quick
            test_skiplist_tall_towers_drain;
          Alcotest.test_case "sorted iteration" `Quick
            test_skiplist_order_iteration;
        ] );
    ]
