test/test_smr_core.ml: Alcotest Array List QCheck2 QCheck_alcotest Smr_core
