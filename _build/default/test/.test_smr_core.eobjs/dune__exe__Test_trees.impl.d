test/test_trees.ml: Alcotest Ebr Hp Hp_plus Nr Pebr Rc Smr Smr_core Smr_ds Test_support
