test/test_queues.mli:
