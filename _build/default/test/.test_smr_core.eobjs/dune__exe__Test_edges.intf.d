test/test_edges.mli:
