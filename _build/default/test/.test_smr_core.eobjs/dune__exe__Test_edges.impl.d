test/test_edges.ml: Alcotest Ebr Hp Hp_plus List Smr_core Smr_ds
