test/test_queues.ml: Alcotest Array Ebr Hashtbl Hp Hp_plus List Nr Pebr Rc Smr Smr_core Smr_ds
