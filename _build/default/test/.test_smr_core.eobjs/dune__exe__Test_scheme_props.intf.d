test/test_scheme_props.mli:
