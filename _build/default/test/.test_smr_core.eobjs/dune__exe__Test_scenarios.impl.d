test/test_scenarios.ml: Alcotest Hp_plus Smr Smr_core Smr_ds
