test/test_schemes.ml: Alcotest Ebr Hp Hp_plus List Nr Pebr Rc Smr Smr_core Smr_ds
