test/test_linearizability.ml: Alcotest Array Ebr Hashtbl Hp Hp_plus List Nr Pebr QCheck2 QCheck_alcotest Rc Smr Smr_core Smr_ds Test_support
