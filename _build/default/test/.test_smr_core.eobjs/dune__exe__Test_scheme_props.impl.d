test/test_scheme_props.ml: Alcotest Array Ebr Hp Hp_plus List Nr Pebr QCheck2 QCheck_alcotest Rc Smr Smr_core
