test/test_bonsai.ml: Alcotest Atomic Ebr Hp Hp_plus List Nr Pebr Rc Smr Smr_core Smr_ds Test_support
