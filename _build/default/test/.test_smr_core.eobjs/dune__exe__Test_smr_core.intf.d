test/test_smr_core.mli:
