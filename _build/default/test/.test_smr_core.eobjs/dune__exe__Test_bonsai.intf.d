test/test_bonsai.mli:
