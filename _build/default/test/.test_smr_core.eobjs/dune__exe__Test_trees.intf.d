test/test_trees.mli:
