test/test_lists.mli:
