test/test_maps.ml: Alcotest Ebr Hp Hp_plus List Nr Pebr Rc Smr_core Smr_ds Test_support
