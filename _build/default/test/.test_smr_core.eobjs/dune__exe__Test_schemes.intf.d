test/test_schemes.mli:
