test/test_maps.mli:
