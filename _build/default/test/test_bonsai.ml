(* Bonsai tree across all schemes, plus balance/snapshot specifics. *)

module Suite = Test_support.Suite
module Bonsai = Smr_ds.Bonsai
module Stats = Smr_core.Stats
module Pool = Smr_core.Domain_pool

module B_hp = Suite (Hp) (Bonsai.Make (Hp))
module B_hpp = Suite (Hp_plus) (Bonsai.Make (Hp_plus))
module B_ebr = Suite (Ebr) (Bonsai.Make (Ebr))
module B_pebr = Suite (Pebr) (Bonsai.Make (Pebr))
module B_rc = Suite (Rc) (Bonsai.Make (Rc))
module B_nr = Suite (Nr) (Bonsai.Make (Nr))

let test_balance_invariant () =
  let module B = Bonsai.Make (Ebr) in
  let scheme = Ebr.create () in
  let t = B.create scheme in
  let h = Ebr.register scheme in
  let lo = B.make_local h in
  (* ascending insertions are the classic rebalancing stress *)
  for k = 1 to 1000 do
    assert (B.insert t lo k k)
  done;
  B.assert_balanced t;
  for k = 1 to 1000 do
    if k mod 3 <> 0 then assert (B.remove t lo k)
  done;
  B.assert_balanced t;
  Alcotest.(check int) "remaining" 333 (B.size t);
  B.clear_local lo;
  Ebr.unregister h

(* RC on Bonsai must reclaim shared subtrees exactly once: churn then drain
   to zero live nodes. *)
let test_rc_drains_completely () =
  let module B = Bonsai.Make (Rc) in
  let scheme = Rc.create () in
  let t = B.create scheme in
  let h = Rc.register scheme in
  let lo = B.make_local h in
  for round = 1 to 10 do
    for k = 1 to 100 do
      assert (B.insert t lo k (k * round))
    done;
    for k = 1 to 100 do
      assert (B.remove t lo k)
    done
  done;
  Alcotest.(check int) "empty" 0 (B.size t);
  B.clear_local lo;
  Rc.flush h;
  Rc.flush h;
  Alcotest.(check int) "no live nodes leak" 0 (Stats.live (Rc.stats scheme));
  Rc.unregister h

let test_snapshot_fold_consistent () =
  let module B = Bonsai.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = B.create scheme in
  let h = Hp_plus.register scheme in
  let lo = B.make_local h in
  for k = 1 to 200 do
    assert (B.insert t lo k k)
  done;
  let sum = B.fold t lo ~init:0 ~f:(fun acc _ v -> acc + v) in
  Alcotest.(check int) "sum over snapshot" (200 * 201 / 2) sum;
  B.clear_local lo;
  Hp_plus.unregister h

(* Concurrent snapshot folds while writers churn: every fold must observe a
   consistent snapshot (sorted strictly increasing keys), and never trip the
   UAF detector. *)
let test_concurrent_snapshots () =
  let module B = Bonsai.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = B.create scheme in
  let setup = Hp_plus.register scheme in
  let lo0 = B.make_local setup in
  for k = 0 to 63 do
    if k mod 2 = 0 then ignore (B.insert t lo0 k k)
  done;
  B.clear_local lo0;
  let _ =
    Pool.run_timed ~n:4 ~duration:0.3 (fun i ~stop ->
        let h = Hp_plus.register scheme in
        let lo = B.make_local h in
        let rng = Smr_core.Rng.create ~seed:(31 * (i + 1)) in
        while not (stop ()) do
          if i < 2 then begin
            (* writers *)
            let k = Smr_core.Rng.below rng 64 in
            if Smr_core.Rng.below rng 2 = 0 then ignore (B.insert t lo k k)
            else ignore (B.remove t lo k)
          end
          else begin
            (* snapshot readers *)
            let keys =
              B.fold t lo ~init:[] ~f:(fun acc k _ -> k :: acc)
            in
            let sorted_desc = List.sort (fun a b -> compare b a) keys in
            assert (keys = sorted_desc);
            assert (List.length (List.sort_uniq compare keys) = List.length keys)
          end
        done;
        B.clear_local lo;
        Hp_plus.unregister h)
  in
  B.assert_reachable_not_freed t;
  B.assert_balanced t;
  Hp_plus.unregister setup

(* Regression: the cross-batch variant of the paper's Figure 6 second
   scenario. A reader stands on an old node p (replaced by update U1 but not
   yet invalidated) while a later update U2 retires and reclaims p's shared
   child c. U1's frontier protection of c must keep it alive until U1's
   invalidation batch runs. *)
let test_cross_batch_frontier () =
  let module B = Bonsai.Make (Hp_plus) in
  let module Mem = Smr_core.Mem in
  let module Tagged = Smr_core.Tagged in
  let module Link = Smr_core.Link in
  let cfg =
    {
      Smr.Smr_intf.default_config with
      invalidate_threshold = 1_000_000;
      reclaim_threshold = 1_000_000;
      epoched_fence = false;
    }
  in
  let scheme = Hp_plus.create ~config:cfg () in
  let t = B.create scheme in
  let u1 = Hp_plus.register scheme in
  let u2 = Hp_plus.register scheme in
  let lo1 = B.make_local u1 in
  let lo2 = B.make_local u2 in
  (* balanced 3-node tree: root 2, children 1 and 3 *)
  assert (B.insert t lo1 2 2);
  assert (B.insert t lo1 1 1);
  assert (B.insert t lo1 3 3);
  let find_from root k =
    let rec go = function
      | None -> Alcotest.failf "key %d not found" k
      | Some n ->
          if n.B.key = k then n
          else if k < n.B.key then go n.B.left
          else go n.B.right
    in
    go root
  in
  (* drain the builder inserts' own batches first *)
  Hp_plus.flush u1;
  let old_root = Tagged.ptr (Link.get t.B.root) in
  let p = find_from old_root 2 in
  let c = find_from old_root 1 in
  (* U1 replaces the path root(2) -> 3 by inserting 4; child 1 is shared
     and becomes U1's frontier. *)
  assert (B.insert t lo1 4 4);
  Alcotest.(check bool) "p replaced but not yet invalidated" false
    (Atomic.get p.B.invalid);
  Alcotest.(check int) "U1 batch pending" 2 (Hp_plus.pending_unlinked u1);
  (* U2 removes 1: c retired in U2's batch and reclaimed hard. *)
  assert (B.remove t lo2 1);
  B.clear_local lo2;
  Hp_plus.do_invalidation u2;
  Hp_plus.reclaim u2;
  Alcotest.(check bool) "frontier protection keeps shared child alive" false
    (Mem.is_freed c.B.hdr);
  (* U1 finishes its batch: p invalidated, frontier released. *)
  B.clear_local lo1;
  Hp_plus.do_invalidation u1;
  Alcotest.(check bool) "p invalidated with its batch" true
    (Atomic.get p.B.invalid);
  Hp_plus.reclaim u2;
  Hp_plus.reclaim u1;
  Alcotest.(check bool) "shared child reclaimed afterwards" true
    (Mem.is_freed c.B.hdr);
  Hp_plus.unregister u1;
  Hp_plus.unregister u2

let () =
  Alcotest.run "bonsai"
    [
      ("bonsai:HP", B_hp.tests);
      ("bonsai:HP++", B_hpp.tests);
      ("bonsai:EBR", B_ebr.tests);
      ("bonsai:PEBR", B_pebr.tests);
      ("bonsai:RC", B_rc.tests);
      ("bonsai:NR", B_nr.tests);
      ( "bonsai extras",
        [
          Alcotest.test_case "balance invariant" `Quick test_balance_invariant;
          Alcotest.test_case "RC drains completely" `Quick
            test_rc_drains_completely;
          Alcotest.test_case "snapshot fold" `Quick test_snapshot_fold_consistent;
          Alcotest.test_case "concurrent snapshots" `Slow
            test_concurrent_snapshots;
          Alcotest.test_case "cross-batch frontier protection" `Quick
            test_cross_batch_frontier;
        ] );
    ]
