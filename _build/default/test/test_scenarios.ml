(* Deterministic replays of the paper's use-after-free scenarios (Figures 5
   and 6) on a real Harris list, driven step by step through multiple
   handles from a single test thread.

   These tests reach into the list's internals (node links) to park the
   world in exactly the states the paper draws, then check that HP++'s two
   unlinker obligations — invalidate-all-before-freeing-any and
   protect-the-frontier — make the optimistic traversal safe, and that
   without them the access would have been a use-after-free. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module L = Smr_ds.Hhslist.Make (Hp_plus)
module C = Smr_ds.Ds_common.Make (Hp_plus)

let cfg =
  (* defer everything so the test controls invalidation/reclamation time *)
  {
    Smr.Smr_intf.default_config with
    invalidate_threshold = 1_000_000;
    reclaim_threshold = 1_000_000;
    epoched_fence = false;
  }

(* Build h -> 1 -> 2 -> 3 and return the three nodes. *)
let build_list scheme t lo =
  assert (L.insert t lo 1 "p");
  assert (L.insert t lo 2 "q");
  assert (L.insert t lo 3 "r");
  ignore scheme;
  let node k =
    let rec find tg =
      match Tagged.ptr tg with
      | None -> Alcotest.failf "node %d not found" k
      | Some n -> if n.L.key = k then n else find (Link.get n.L.next)
    in
    find (Link.get t.L.head)
  in
  (node 1, node 2, node 3)

(* Logically delete a node in place: the stalled remover of the paper's
   figures, frozen after its mark CAS. *)
let mark n =
  let r = Link.get n.L.next in
  assert (Link.cas n.L.next r (Tagged.set_bits r Tagged.deleted_bit))

let is_invalid n = Tagged.is_invalid (Link.get n.L.next)

(* Figure 6, first scenario + Figure 5: T1 stands on p (validated); T2
   unlinks the chain p,q at once and starts reclaiming. With the original
   HP, q could be freed and T1's step p->q would dereference freed memory
   (Figure 5b). With HP++, either q is still unreclaimed or p is already
   invalidated, so TryProtect refuses the step. *)
let test_scenario_one () =
  let scheme = Hp_plus.create ~config:cfg () in
  let t = L.create scheme in
  let t1 = Hp_plus.register scheme in
  let t2 = Hp_plus.register scheme in
  let lo2 = L.make_local t2 in
  let p, q, _r = build_list scheme t lo2 in
  (* T1 walks h->p and validates protection of p. *)
  let hp_prev = Hp_plus.guard t1 and hp_cur = Hp_plus.guard t1 in
  (match
     C.try_protect ~node_header:L.node_header hp_cur t1 ~src_link:t.L.head
       (Link.get t.L.head)
   with
  | C.Ok tg -> assert (Tagged.ptr tg = Some p)
  | C.Invalid -> Alcotest.fail "protection of p must succeed");
  (* A stalled remover marked p and q; T2's traversal (any operation
     passing by) unlinks the whole chain with one CAS. *)
  mark p;
  mark q;
  assert (L.get t lo2 3 = Some "r");
  (* the wait-free get does not unlink; a search does: *)
  assert (L.remove t lo2 3);
  (* p,q unlinked by the search's TryUnlink, r by the remove's own. *)
  Alcotest.(check int) "chain awaiting invalidation" 3
    (Hp_plus.pending_unlinked t2);
  (* T2 reclaims as far as HP++ allows right now. *)
  Hp_plus.reclaim t2;
  (* Guarantee (1): nothing of the chain is freed before invalidation. *)
  Alcotest.(check bool) "q unreclaimable before invalidation" false
    (Mem.is_freed q.L.hdr);
  (* T1 now tries the optimistic step p -> q. p is not invalidated yet, so
     the step is allowed — and it is SAFE, because q is not freed. *)
  (match
     C.try_protect ~node_header:L.node_header hp_prev t1 ~src_link:p.L.next
       (Link.get p.L.next)
   with
  | C.Ok tg ->
      assert (Tagged.same_ptr tg (Tagged.make (Some q)));
      Mem.check_access q.L.hdr (* would raise on a use-after-free *)
  | C.Invalid -> Alcotest.fail "p is not invalidated yet");
  (* T1 releases q and moves on; T2 completes its deferred invalidation. *)
  Hp_plus.release hp_prev;
  Hp_plus.release hp_cur;
  Hp_plus.do_invalidation t2;
  Alcotest.(check bool) "p invalidated" true (is_invalid p);
  Alcotest.(check bool) "q invalidated" true (is_invalid q);
  (* T2's own traversal guards still cover parts of the chain: drop them *)
  L.clear_local lo2;
  Hp_plus.reclaim t2;
  Alcotest.(check bool) "q freed after invalidation" true
    (Mem.is_freed q.L.hdr);
  (* Figure 5's unsafe access, had the traverser ignored invalidation: *)
  Alcotest.check_raises "naive HP step would be use-after-free"
    (Mem.Use_after_free (Mem.uid q.L.hdr)) (fun () ->
      Mem.check_access q.L.hdr);
  (* And the HP++ traverser is told to restart instead: *)
  (match
     C.try_protect ~node_header:L.node_header hp_cur t1 ~src_link:p.L.next
       (Link.get p.L.next)
   with
  | C.Invalid -> ()
  | C.Ok _ -> Alcotest.fail "step from invalidated p must fail");
  Hp_plus.unregister t1;
  Hp_plus.unregister t2

(* Figure 6, second scenario: T1 has stepped through the unlinked chain all
   the way to the frontier r; T3 then deletes r. Guarantee (2) — the
   unlinker T2 protected r before unlinking — keeps r alive until T2's
   invalidation batch completes. *)
let test_scenario_two () =
  let scheme = Hp_plus.create ~config:cfg () in
  let t = L.create scheme in
  let t1 = Hp_plus.register scheme in
  let t2 = Hp_plus.register scheme in
  let t3 = Hp_plus.register scheme in
  let lo2 = L.make_local t2 in
  let lo3 = L.make_local t3 in
  let p, q, r = build_list scheme t lo2 in
  mark p;
  mark q;
  (* T2's search unlinks the chain p,q; its frontier protection of r is now
     pending until its DoInvalidation. *)
  assert (L.get t lo2 3 <> None);
  assert (
    match L.search_attempt t lo2 3 with
    | `Done (found, _, _, _) -> found
    | `Prot | `Retry -> false);
  Alcotest.(check int) "chain pending" 2 (Hp_plus.pending_unlinked t2);
  (* T1 (stale) walks p -> q -> r optimistically; every step validates
     against invalidation and succeeds because T2 has not invalidated. *)
  let g1 = Hp_plus.guard t1 and g2 = Hp_plus.guard t1 in
  (match
     C.try_protect ~node_header:L.node_header g1 t1 ~src_link:p.L.next
       (Link.get p.L.next)
   with
  | C.Ok tg -> assert (Tagged.same_ptr tg (Tagged.make (Some q)))
  | C.Invalid -> Alcotest.fail "q step");
  (match
     C.try_protect ~node_header:L.node_header g2 t1 ~src_link:q.L.next
       (Link.get q.L.next)
   with
  | C.Ok tg -> assert (Tagged.same_ptr tg (Tagged.make (Some r)))
  | C.Invalid -> Alcotest.fail "r step");
  (* T3 deletes r and reclaims hard. *)
  assert (L.remove t lo3 3);
  Hp_plus.do_invalidation t3;
  Hp_plus.reclaim t3;
  (* r survives: it is protected by T1's hazard pointers, by leftover
     traversal guards, and by T2's pending frontier protection. Release
     everything except the frontier slot to isolate guarantee (2): *)
  Mem.check_access r.L.hdr;
  Hp_plus.release g1;
  Hp_plus.release g2;
  L.clear_local lo2;
  L.clear_local lo3;
  Hp_plus.reclaim t3;
  Alcotest.(check bool) "frontier protection alone keeps r alive" false
    (Mem.is_freed r.L.hdr);
  (* Once T2 finishes its invalidation batch, its frontier protection is
     revoked and T3 may finally reclaim r. *)
  Hp_plus.do_invalidation t2;
  Hp_plus.reclaim t3;
  Alcotest.(check bool) "r reclaimed after T2's batch" true
    (Mem.is_freed r.L.hdr);
  Hp_plus.unregister t1;
  Hp_plus.unregister t2;
  Hp_plus.unregister t3

(* §4.4 robustness of Algorithm 5: epoched frontier hazard pointers are
   revoked by Reclaim even if no other thread fences. *)
let test_epoched_slots_bounded () =
  let config =
    {
      Smr.Smr_intf.default_config with
      epoched_fence = true;
      invalidate_threshold = 1;
      reclaim_threshold = 1_000_000;
    }
  in
  let scheme = Hp_plus.create ~config () in
  let t = L.create scheme in
  let h = Hp_plus.register scheme in
  let lo = L.make_local h in
  for k = 1 to 300 do
    assert (L.insert t lo k k)
  done;
  for k = 1 to 300 do
    assert (L.remove t lo k)
  done;
  (* every remove deferred a frontier slot under some fence epoch *)
  L.clear_local lo;
  Hp_plus.do_invalidation h;
  Hp_plus.reclaim h;
  Hp_plus.reclaim h;
  Alcotest.(check int) "everything drained by reclaim alone" 0
    (Smr_core.Stats.unreclaimed (Hp_plus.stats scheme));
  Hp_plus.unregister h

let () =
  Alcotest.run "scenarios"
    [
      ( "paper figures",
        [
          Alcotest.test_case "figure 5+6 first scenario" `Quick
            test_scenario_one;
          Alcotest.test_case "figure 6 second scenario" `Quick
            test_scenario_two;
          Alcotest.test_case "algorithm 5 slot revocation" `Quick
            test_epoched_slots_bounded;
        ] );
    ]
