(* Shared test infrastructure. *)

module Linearizability = Linearizability

(* Generic correctness suite for map-like concurrent structures:
   sequential oracle checks, qcheck properties, and multi-domain stress with
   the use-after-free detector on. Shared by the list, hashmap, skiplist and
   tree tests. *)

module Stats = Smr_core.Stats
module Rng = Smr_core.Rng
module Domain_pool = Smr_core.Domain_pool

module Suite
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val to_list : 'v t -> (int * 'v) list
      val size : 'v t -> int
      val assert_reachable_not_freed : 'v t -> unit
    end) =
struct
  let with_list f =
    let scheme = S.create () in
    let t = L.create scheme in
    let h = S.register scheme in
    let lo = L.make_local h in
    let finally () =
      L.clear_local lo;
      S.unregister h
    in
    Fun.protect ~finally (fun () -> f scheme t h lo)

  let test_sequential_basics () =
    with_list (fun _ t _ lo ->
        Alcotest.(check bool) "insert 5" true (L.insert t lo 5 50);
        Alcotest.(check bool) "insert 3" true (L.insert t lo 3 30);
        Alcotest.(check bool) "insert 8" true (L.insert t lo 8 80);
        Alcotest.(check bool) "dup rejected" false (L.insert t lo 5 55);
        Alcotest.(check (option int)) "get 3" (Some 30) (L.get t lo 3);
        Alcotest.(check (option int)) "get missing" None (L.get t lo 4);
        Alcotest.(check (list (pair int int)))
          "sorted" [ (3, 30); (5, 50); (8, 80) ] (L.to_list t);
        Alcotest.(check bool) "remove 5" true (L.remove t lo 5);
        Alcotest.(check bool) "remove 5 again" false (L.remove t lo 5);
        Alcotest.(check (option int)) "5 gone" None (L.get t lo 5);
        Alcotest.(check int) "size" 2 (L.size t))

  let test_sequential_oracle () =
    with_list (fun scheme t h lo ->
        let rng = Rng.create ~seed:42 in
        let oracle = Hashtbl.create 64 in
        for _ = 1 to 3000 do
          let key = Rng.below rng 48 in
          match Rng.below rng 3 with
          | 0 ->
              let expected = not (Hashtbl.mem oracle key) in
              Alcotest.(check bool) "insert agrees" expected
                (L.insert t lo key (key * 2));
              Hashtbl.replace oracle key (key * 2)
          | 1 ->
              let expected = Hashtbl.mem oracle key in
              Alcotest.(check bool) "remove agrees" expected (L.remove t lo key);
              Hashtbl.remove oracle key
          | _ ->
              let expected = Hashtbl.find_opt oracle key in
              Alcotest.(check (option int)) "get agrees" expected
                (L.get t lo key)
        done;
        let expected =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
          |> List.sort compare
        in
        Alcotest.(check (list (pair int int))) "final contents" expected
          (L.to_list t);
        L.assert_reachable_not_freed t;
        (* Release all hazard slots before asserting drainage: retired
           blocks still protected by this local's guards are correctly
           withheld from reclamation. *)
        L.clear_local lo;
        S.flush h;
        S.flush h;
        if S.name <> "NR" then
          Alcotest.(check int) "garbage drained" 0
            (Stats.unreclaimed (S.stats scheme)))

  let prop_oracle =
    QCheck2.Test.make ~name:("oracle agreement (" ^ S.name ^ ")") ~count:30
      QCheck2.Gen.(list (pair (int_range 0 2) (int_range 0 15)))
      (fun ops ->
        with_list (fun _ t _ lo ->
            let oracle = Hashtbl.create 16 in
            List.for_all
              (fun (op, key) ->
                match op with
                | 0 ->
                    let expected = not (Hashtbl.mem oracle key) in
                    Hashtbl.replace oracle key key;
                    L.insert t lo key key = expected
                | 1 ->
                    let expected = Hashtbl.mem oracle key in
                    Hashtbl.remove oracle key;
                    L.remove t lo key = expected
                | _ -> L.get t lo key = Hashtbl.find_opt oracle key)
              ops))

  let check_wellformed t =
    let contents = L.to_list t in
    let keys = List.map fst contents in
    Alcotest.(check (list int)) "sorted, no duplicates"
      (List.sort_uniq compare keys)
      keys;
    L.assert_reachable_not_freed t

  let test_concurrent_disjoint_inserts () =
    let scheme = S.create () in
    let t = L.create scheme in
    let n = 4 and per = 50 in
    let _ =
      Domain_pool.run ~n (fun i ->
          let h = S.register scheme in
          let lo = L.make_local h in
          for k = 0 to per - 1 do
            assert (L.insert t lo ((k * n) + i) k)
          done;
          L.clear_local lo;
          S.unregister h)
    in
    Alcotest.(check int) "all present" (n * per) (L.size t);
    check_wellformed t

  (* Each domain owns the keys congruent to its index and cycles
     insert/remove on them; afterwards membership must match each owner's
     last action exactly. *)
  let test_concurrent_owned_churn () =
    let scheme = S.create () in
    let t = L.create scheme in
    let n = 4 and keys_per = 8 and rounds = 300 in
    let finals =
      Domain_pool.run ~n (fun i ->
          let h = S.register scheme in
          let lo = L.make_local h in
          let rng = Rng.create ~seed:(1000 + i) in
          let state = Array.make keys_per false in
          for _ = 1 to rounds do
            let j = Rng.below rng keys_per in
            let key = (j * n) + i in
            if state.(j) then assert (L.remove t lo key)
            else assert (L.insert t lo key i);
            state.(j) <- not state.(j)
          done;
          L.clear_local lo;
          S.unregister h;
          state)
    in
    let fresh = S.register scheme in
    let lo = L.make_local fresh in
    Array.iteri
      (fun i state ->
        Array.iteri
          (fun j present ->
            let key = (j * n) + i in
            Alcotest.(check bool)
              (Printf.sprintf "key %d membership" key)
              present
              (L.get t lo key <> None))
          state)
      finals;
    check_wellformed t;
    L.clear_local lo;
    S.flush fresh;
    S.flush fresh;
    if S.name <> "NR" then
      Alcotest.(check int) "garbage drained" 0
        (Stats.unreclaimed (S.stats scheme));
    S.unregister fresh

  (* Free-for-all stress under the UAF detector: any unsafe reclamation
     raises inside a worker and fails the test. *)
  let test_concurrent_stress () =
    let scheme = S.create () in
    let t = L.create scheme in
    let counts =
      Domain_pool.run_timed ~n:4 ~duration:0.2 (fun i ~stop ->
          let h = S.register scheme in
          let lo = L.make_local h in
          let rng = Rng.create ~seed:(7 * (i + 1)) in
          let ops = ref 0 in
          while not (stop ()) do
            let key = Rng.below rng 32 in
            (match Rng.below rng 4 with
            | 0 | 1 -> ignore (L.get t lo key)
            | 2 -> ignore (L.insert t lo key key)
            | _ -> ignore (L.remove t lo key));
            incr ops
          done;
          L.clear_local lo;
          S.unregister h;
          !ops)
    in
    Array.iter
      (fun c -> Alcotest.(check bool) "worker made progress" true (c > 0))
      counts;
    check_wellformed t

  let tests =
    [
      Alcotest.test_case "sequential basics" `Quick test_sequential_basics;
      Alcotest.test_case "sequential oracle" `Quick test_sequential_oracle;
      QCheck_alcotest.to_alcotest prop_oracle;
      Alcotest.test_case "concurrent disjoint inserts" `Quick
        test_concurrent_disjoint_inserts;
      Alcotest.test_case "concurrent owned churn" `Quick
        test_concurrent_owned_churn;
      Alcotest.test_case "concurrent stress" `Slow test_concurrent_stress;
    ]
end

