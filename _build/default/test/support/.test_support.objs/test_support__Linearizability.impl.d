test/support/linearizability.ml: Array Atomic Hashtbl List Option
