test/support/test_support.ml: Alcotest Array Fun Hashtbl Linearizability List Printf QCheck2 QCheck_alcotest Smr Smr_core
