(* A linearizability checker for concurrent set histories.

   Workers record every operation with invocation/response timestamps drawn
   from one global atomic counter, giving a sound real-time partial order:
   op A precedes op B iff A responded before B was invoked.

   Sets (and maps keyed by disjoint operations) are products of independent
   one-key objects, so a history is linearizable iff each per-key
   subhistory is. Each per-key subhistory is checked exactly with the
   Wing–Gong search: repeatedly pick an operation that no other remaining
   operation wholly precedes, apply the sequential set specification to its
   observed result, and backtrack on contradiction; memoization on
   (remaining set, abstract state) keeps it fast for test-sized
   histories. *)

type op = Insert | Remove | Get

type event = {
  op : op;
  key : int;
  ok : bool; (* insert/remove success; get = found *)
  inv : int;
  res : int;
}

type recorder = { clock : int Atomic.t; mutable events : event list }

let make_recorder () = { clock = Atomic.make 0; events = [] }

(* One per worker; merge after the run (workers are joined first, so the
   merge is race-free). *)
type thread_log = { recorder : recorder; mutable log : event list }

let thread_log recorder = { recorder; log = [] }

let record tl ~op ~key f =
  let inv = Atomic.fetch_and_add tl.recorder.clock 1 in
  let ok = f () in
  let res = Atomic.fetch_and_add tl.recorder.clock 1 in
  tl.log <- { op; key; ok; inv; res } :: tl.log;
  ok

let merge recorder logs =
  recorder.events <-
    List.concat_map (fun tl -> tl.log) logs @ recorder.events

(* Sequential one-key set spec: state is presence. Returns the new state
   when the observed result is consistent, or None. *)
let step present (e : event) =
  match (e.op, e.ok, present) with
  | Insert, true, false -> Some true
  | Insert, false, true -> Some true
  | Remove, true, true -> Some false
  | Remove, false, false -> Some false
  | Get, found, p when found = p -> Some p
  | _ -> None

exception Not_linearizable of int (* offending key *)

let check_key key (events : event array) =
  let n = Array.length events in
  if n > 62 then
    invalid_arg "Linearizability.check: more than 62 events on one key";
  let all_mask = if n = 62 then -1 lsr 1 else (1 lsl n) - 1 in
  let memo = Hashtbl.create 256 in
  (* [go remaining present] = can the remaining ops be linearized from
     [present]? *)
  let rec go remaining present =
    if remaining = 0 then true
    else
      let memo_key = (remaining * 2) + if present then 1 else 0 in
      match Hashtbl.find_opt memo memo_key with
      | Some r -> r
      | None ->
          (* an op is a candidate iff no other remaining op responded
             before it was invoked *)
          let min_res = ref max_int in
          for i = 0 to n - 1 do
            if remaining land (1 lsl i) <> 0 && events.(i).res < !min_res
            then min_res := events.(i).res
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let bit = 1 lsl !i in
            if remaining land bit <> 0 && events.(!i).inv < !min_res then begin
              match step present events.(!i) with
              | Some present' ->
                  if go (remaining land lnot bit) present' then ok := true
              | None -> ()
            end;
            incr i
          done;
          Hashtbl.replace memo memo_key !ok;
          !ok
  in
  if not (go all_mask false) then raise (Not_linearizable key)

let check recorder =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace by_key e.key
        (e :: Option.value ~default:[] (Hashtbl.find_opt by_key e.key)))
    recorder.events;
  Hashtbl.iter
    (fun key events ->
      let arr = Array.of_list events in
      (* sort by invocation for deterministic candidate iteration *)
      Array.sort (fun a b -> compare a.inv b.inv) arr;
      check_key key arr)
    by_key

let total_events recorder = List.length recorder.events
