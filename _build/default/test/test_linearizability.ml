(* Linearizability checking of concurrent histories for every data
   structure, using the exact per-key checker in Test_support. A failure
   here means some interleaving produced results no sequential set could
   have produced. *)

module Lin = Test_support.Linearizability
module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

module Check
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
    end) =
struct
  let run () =
    for round = 1 to 3 do
      let scheme = S.create () in
      let t = L.create scheme in
      let recorder = Lin.make_recorder () in
      let keys = 24 in
      let logs =
        Pool.run ~n:3 (fun i ->
            let h = S.register scheme in
            let lo = L.make_local h in
            let tl = Lin.thread_log recorder in
            let rng = Rng.create ~seed:(round * 1000 + i) in
            for _ = 1 to 100 do
              let key = Rng.below rng keys in
              ignore
                (match Rng.below rng 3 with
                | 0 ->
                    Lin.record tl ~op:Lin.Insert ~key (fun () ->
                        L.insert t lo key key)
                | 1 ->
                    Lin.record tl ~op:Lin.Remove ~key (fun () ->
                        L.remove t lo key)
                | _ ->
                    Lin.record tl ~op:Lin.Get ~key (fun () ->
                        L.get t lo key <> None))
            done;
            L.clear_local lo;
            S.unregister h;
            tl)
      in
      Lin.merge recorder (Array.to_list logs);
      Alcotest.(check int) "recorded" 300 (Lin.total_events recorder);
      match Lin.check recorder with
      | () -> ()
      | exception Lin.Not_linearizable k ->
          Alcotest.failf "history not linearizable at key %d (round %d)" k
            round
    done
end

(* The checker itself must reject impossible histories. *)
let test_checker_rejects () =
  let r = Lin.make_recorder () in
  (* two sequential successful inserts of the same key, no remove *)
  r.Lin.events <-
    [
      { Lin.op = Lin.Insert; key = 1; ok = true; inv = 0; res = 1 };
      { Lin.op = Lin.Insert; key = 1; ok = true; inv = 2; res = 3 };
    ];
  Alcotest.check_raises "double insert rejected" (Lin.Not_linearizable 1)
    (fun () -> Lin.check r)

let test_checker_accepts_overlap () =
  let r = Lin.make_recorder () in
  (* two overlapping inserts: one may succeed, one must fail - here they
     overlap so either order works with these results *)
  r.Lin.events <-
    [
      { Lin.op = Lin.Insert; key = 1; ok = true; inv = 0; res = 3 };
      { Lin.op = Lin.Insert; key = 1; ok = false; inv = 1; res = 2 };
      { Lin.op = Lin.Get; key = 1; ok = true; inv = 4; res = 5 };
    ];
  Lin.check r

(* Property: a history whose operations each contain their linearization
   point inside the [inv, res] interval is accepted. Build it by executing a
   random op sequence against a sequential set, placing each op's interval
   around its execution order with random slack (overlapping freely). *)
let prop_checker_accepts_valid =
  QCheck2.Test.make ~name:"checker accepts interval-consistent histories"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 2) (int_range 0 4)))
    (fun script ->
      let present = Hashtbl.create 8 in
      let events =
        List.mapi
          (fun i (opc, key) ->
            let lin_point = (i * 10) + 5 in
            let op, ok =
              match opc with
              | 0 ->
                  let ok = not (Hashtbl.mem present key) in
                  Hashtbl.replace present key ();
                  (Lin.Insert, ok)
              | 1 ->
                  let ok = Hashtbl.mem present key in
                  Hashtbl.remove present key;
                  (Lin.Remove, ok)
              | _ -> (Lin.Get, Hashtbl.mem present key)
            in
            (* intervals may overlap neighbours by up to 9 ticks *)
            let slack_l = 1 + ((i * 7) mod 9) and slack_r = 1 + ((i * 3) mod 9) in
            { Lin.op; key; ok; inv = lin_point - slack_l; res = lin_point + slack_r })
          script
      in
      let r = Lin.make_recorder () in
      r.Lin.events <- events;
      match Lin.check r with
      | () -> true
      | exception Lin.Not_linearizable _ -> false)

let case name f = Alcotest.test_case name `Quick f

let () =
  let module C1 = Check (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  let module C2 = Check (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  let module C3 = Check (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  let module C4 = Check (Pebr) (Smr_ds.Hashmap.Make (Pebr)) in
  let module C5 = Check (Hp_plus) (Smr_ds.Skiplist.Make (Hp_plus)) in
  let module C6 = Check (Hp) (Smr_ds.Skiplist.Make (Hp)) in
  let module C7 = Check (Hp_plus) (Smr_ds.Nmtree.Make (Hp_plus)) in
  let module C8 = Check (Hp) (Smr_ds.Efrbtree.Make (Hp)) in
  let module C9 = Check (Nr) (Smr_ds.Efrbtree.Make (Nr)) in
  let module C10 = Check (Hp_plus) (Smr_ds.Bonsai.Make (Hp_plus)) in
  let module C11 = Check (Rc) (Smr_ds.Bonsai.Make (Rc)) in
  let module C12 = Check (Hp_plus) (Smr_ds.Lazylist.Make (Hp_plus)) in
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          case "rejects impossible history" test_checker_rejects;
          case "accepts overlapping history" test_checker_accepts_overlap;
          QCheck_alcotest.to_alcotest prop_checker_accepts_valid;
        ] );
      ( "structures",
        [
          case "hmlist/HP" C1.run;
          case "hhslist/HP++" C2.run;
          case "hhslist/EBR" C3.run;
          case "hashmap/PEBR" C4.run;
          case "skiplist/HP++" C5.run;
          case "skiplist/HP" C6.run;
          case "nmtree/HP++" C7.run;
          case "efrbtree/HP" C8.run;
          case "efrbtree/NR" C9.run;
          case "bonsai/HP++" C10.run;
          case "bonsai/RC" C11.run;
          case "lazylist/HP++" C12.run;
        ] );
    ]
