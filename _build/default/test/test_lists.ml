(* Correctness tests for HMList and HHSList across all applicable schemes:
   sequential oracle checks, qcheck properties, and multi-domain stress with
   the use-after-free detector on. *)

module Stats = Smr_core.Stats
module Suite = Test_support.Suite

module Hm_hp = Suite (Hp) (Smr_ds.Hmlist.Make (Hp))
module Hm_hpp = Suite (Hp_plus) (Smr_ds.Hmlist.Make (Hp_plus))
module Hm_ebr = Suite (Ebr) (Smr_ds.Hmlist.Make (Ebr))
module Hm_pebr = Suite (Pebr) (Smr_ds.Hmlist.Make (Pebr))
module Hm_rc = Suite (Rc) (Smr_ds.Hmlist.Make (Rc))
module Hm_nr = Suite (Nr) (Smr_ds.Hmlist.Make (Nr))
module Hhs_hpp = Suite (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus))
module Hhs_ebr = Suite (Ebr) (Smr_ds.Hhslist.Make (Ebr))
module Hhs_pebr = Suite (Pebr) (Smr_ds.Hhslist.Make (Pebr))
module Hhs_rc = Suite (Rc) (Smr_ds.Hhslist.Make (Rc))
module Hhs_nr = Suite (Nr) (Smr_ds.Hhslist.Make (Nr))
module Lz_hpp = Suite (Hp_plus) (Smr_ds.Lazylist.Make (Hp_plus))
module Lz_ebr = Suite (Ebr) (Smr_ds.Lazylist.Make (Ebr))
module Lz_pebr = Suite (Pebr) (Smr_ds.Lazylist.Make (Pebr))
module Lz_rc = Suite (Rc) (Smr_ds.Lazylist.Make (Rc))
module Lz_nr = Suite (Nr) (Smr_ds.Lazylist.Make (Nr))

(* The paper's applicability matrix, enforced at runtime: Harris's list
   cannot be protected by the original HP. *)
let test_hhslist_rejects_hp () =
  let module L = Smr_ds.Hhslist.Make (Hp) in
  let scheme = Hp.create () in
  match L.create scheme with
  | (_ : int L.t) -> Alcotest.fail "HHSList must reject HP"
  | exception Smr.Smr_intf.Unsupported_scheme _ -> ()

let test_lazylist_rejects_hp () =
  let module L = Smr_ds.Lazylist.Make (Hp) in
  let scheme = Hp.create () in
  match L.create scheme with
  | (_ : int L.t) -> Alcotest.fail "Lazylist must reject HP"
  | exception Smr.Smr_intf.Unsupported_scheme _ -> ()

(* HP++ variant ablation: both fence strategies drive the lists safely. *)
let test_hpp_plain_fence_list () =
  let module L = Smr_ds.Hhslist.Make (Hp_plus) in
  let scheme =
    Hp_plus.create
      ~config:{ Smr.Smr_intf.default_config with epoched_fence = false }
      ()
  in
  let t = L.create scheme in
  let h = Hp_plus.register scheme in
  let lo = L.make_local h in
  for k = 1 to 100 do
    assert (L.insert t lo k k)
  done;
  for k = 1 to 100 do
    if k mod 2 = 0 then assert (L.remove t lo k)
  done;
  Alcotest.(check int) "odd keys remain" 50 (L.size t);
  L.clear_local lo;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "drained" 0 (Stats.unreclaimed (Hp_plus.stats scheme));
  Hp_plus.unregister h

let () =
  Alcotest.run "lists"
    [
      ("hmlist:HP", Hm_hp.tests);
      ("hmlist:HP++", Hm_hpp.tests);
      ("hmlist:EBR", Hm_ebr.tests);
      ("hmlist:PEBR", Hm_pebr.tests);
      ("hmlist:RC", Hm_rc.tests);
      ("hmlist:NR", Hm_nr.tests);
      ("hhslist:HP++", Hhs_hpp.tests);
      ("hhslist:EBR", Hhs_ebr.tests);
      ("hhslist:PEBR", Hhs_pebr.tests);
      ("hhslist:RC", Hhs_rc.tests);
      ("hhslist:NR", Hhs_nr.tests);
      ("lazylist:HP++", Lz_hpp.tests);
      ("lazylist:EBR", Lz_ebr.tests);
      ("lazylist:PEBR", Lz_pebr.tests);
      ("lazylist:RC", Lz_rc.tests);
      ("lazylist:NR", Lz_nr.tests);
      ( "applicability",
        [
          Alcotest.test_case "HHSList rejects HP" `Quick test_hhslist_rejects_hp;
          Alcotest.test_case "Lazylist rejects HP" `Quick
            test_lazylist_rejects_hp;
          Alcotest.test_case "HP++ plain fence" `Quick test_hpp_plain_fence_list;
        ] );
    ]
