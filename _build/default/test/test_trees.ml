(* Tree data structures across applicable schemes. *)

module Suite = Test_support.Suite
module Nmtree = Smr_ds.Nmtree
module Efrbtree = Smr_ds.Efrbtree

module Nm_hpp = Suite (Hp_plus) (Nmtree.Make (Hp_plus))
module Nm_ebr = Suite (Ebr) (Nmtree.Make (Ebr))
module Nm_pebr = Suite (Pebr) (Nmtree.Make (Pebr))
module Nm_rc = Suite (Rc) (Nmtree.Make (Rc))
module Nm_nr = Suite (Nr) (Nmtree.Make (Nr))

module Ef_hp = Suite (Hp) (Efrbtree.Make (Hp))
module Ef_hpp = Suite (Hp_plus) (Efrbtree.Make (Hp_plus))
module Ef_ebr = Suite (Ebr) (Efrbtree.Make (Ebr))
module Ef_pebr = Suite (Pebr) (Efrbtree.Make (Pebr))
module Ef_nr = Suite (Nr) (Efrbtree.Make (Nr))

let test_efrbtree_rejects_rc () =
  let module T = Efrbtree.Make (Rc) in
  let scheme = Rc.create () in
  match T.create scheme with
  | (_ : int T.t) -> Alcotest.fail "EFRBTree must reject RC"
  | exception Smr.Smr_intf.Unsupported_scheme _ -> ()

let test_nmtree_rejects_hp () =
  let module T = Nmtree.Make (Hp) in
  let scheme = Hp.create () in
  match T.create scheme with
  | (_ : int T.t) -> Alcotest.fail "NMTree must reject HP"
  | exception Smr.Smr_intf.Unsupported_scheme _ -> ()

let test_nmtree_key_bound () =
  let module T = Nmtree.Make (Ebr) in
  let scheme = Ebr.create () in
  let t = T.create scheme in
  let h = Ebr.register scheme in
  let lo = T.make_local h in
  Alcotest.check_raises "rejects sentinel keys"
    (Invalid_argument "Nmtree: key too large") (fun () ->
      ignore (T.insert t lo max_int 0));
  T.clear_local lo;
  Ebr.unregister h

(* Splicing a chain of pending deletions in one CAS is the NMTree behaviour
   HP++ exists for; drive deep towers of deletions sequentially. *)
let test_nmtree_bulk_delete_drains () =
  let module T = Nmtree.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = T.create scheme in
  let h = Hp_plus.register scheme in
  let lo = T.make_local h in
  for k = 0 to 499 do
    assert (T.insert t lo k k)
  done;
  Alcotest.(check int) "filled" 500 (T.size t);
  for k = 0 to 499 do
    assert (T.remove t lo k)
  done;
  Alcotest.(check int) "emptied" 0 (T.size t);
  T.clear_local lo;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "drained" 0
    (Smr_core.Stats.unreclaimed (Hp_plus.stats scheme));
  Hp_plus.unregister h

let () =
  Alcotest.run "trees"
    [
      ("efrbtree:HP", Ef_hp.tests);
      ("efrbtree:HP++", Ef_hpp.tests);
      ("efrbtree:EBR", Ef_ebr.tests);
      ("efrbtree:PEBR", Ef_pebr.tests);
      ("efrbtree:NR", Ef_nr.tests);
      ( "efrbtree extras",
        [ Alcotest.test_case "rejects RC" `Quick test_efrbtree_rejects_rc ] );
      ("nmtree:HP++", Nm_hpp.tests);
      ("nmtree:EBR", Nm_ebr.tests);
      ("nmtree:PEBR", Nm_pebr.tests);
      ("nmtree:RC", Nm_rc.tests);
      ("nmtree:NR", Nm_nr.tests);
      ( "nmtree extras",
        [
          Alcotest.test_case "rejects HP" `Quick test_nmtree_rejects_hp;
          Alcotest.test_case "key bound" `Quick test_nmtree_key_bound;
          Alcotest.test_case "bulk delete drains" `Quick
            test_nmtree_bulk_delete_drains;
        ] );
    ]
