(* Treiber stack and Michael-Scott queue across schemes. *)

module Stack = Smr_ds.Treiber_stack
module Queue_ = Smr_ds.Ms_queue
module Stats = Smr_core.Stats
module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

module Stack_suite (S : Smr.Smr_intf.S) = struct
  module T = Stack.Make (S)

  let test_sequential () =
    let scheme = S.create () in
    let t = T.create scheme in
    let h = S.register scheme in
    let lo = T.make_local h in
    Alcotest.(check (option int)) "pop empty" None (T.pop t lo);
    T.push t lo 1;
    T.push t lo 2;
    T.push t lo 3;
    Alcotest.(check (option int)) "peek" (Some 3) (T.peek t lo);
    Alcotest.(check (option int)) "pop lifo" (Some 3) (T.pop t lo);
    Alcotest.(check (option int)) "pop lifo" (Some 2) (T.pop t lo);
    Alcotest.(check int) "length" 1 (T.length t);
    T.clear_local lo;
    S.flush h;
    S.unregister h

  let test_concurrent_push_pop () =
    let scheme = S.create () in
    let t = T.create scheme in
    let popped = Array.make 4 [] in
    let _ =
      Pool.run ~n:4 (fun i ->
          let h = S.register scheme in
          let lo = T.make_local h in
          for k = 0 to 199 do
            T.push t lo ((i * 1000) + k)
          done;
          let mine = ref [] in
          for _ = 0 to 199 do
            match T.pop t lo with
            | Some v -> mine := v :: !mine
            | None -> ()
          done;
          popped.(i) <- !mine;
          T.clear_local lo;
          S.unregister h)
    in
    (* every pushed element is popped exactly once or still on the stack *)
    let all_popped = List.concat (Array.to_list popped) in
    let remaining = T.to_list t in
    let together = List.sort compare (all_popped @ remaining) in
    Alcotest.(check int) "nothing lost or duplicated" 800
      (List.length (List.sort_uniq compare together));
    Alcotest.(check int) "count" 800 (List.length together)

  let tests =
    [
      Alcotest.test_case "sequential" `Quick test_sequential;
      Alcotest.test_case "concurrent push/pop" `Quick test_concurrent_push_pop;
    ]
end

module Queue_suite (S : Smr.Smr_intf.S) = struct
  module Q = Queue_.Make (S)

  let test_sequential () =
    let scheme = S.create () in
    let t = Q.create scheme in
    let h = S.register scheme in
    let lo = Q.make_local h in
    Alcotest.(check (option int)) "dequeue empty" None (Q.dequeue t lo);
    Q.enqueue t lo 1;
    Q.enqueue t lo 2;
    Q.enqueue t lo 3;
    Alcotest.(check (option int)) "fifo" (Some 1) (Q.dequeue t lo);
    Alcotest.(check (option int)) "fifo" (Some 2) (Q.dequeue t lo);
    Q.enqueue t lo 4;
    Alcotest.(check (option int)) "fifo" (Some 3) (Q.dequeue t lo);
    Alcotest.(check (option int)) "fifo" (Some 4) (Q.dequeue t lo);
    Alcotest.(check (option int)) "empty again" None (Q.dequeue t lo);
    Q.clear_local lo;
    S.flush h;
    S.unregister h

  let test_concurrent_fifo_per_producer () =
    let scheme = S.create () in
    let t = Q.create scheme in
    (* producers 0,1 enqueue increasing sequences; consumers 2,3 drain; per
       producer order must be preserved in the interleaving each consumer
       sees *)
    let consumed = Array.make 4 [] in
    let _ =
      Pool.run ~n:4 (fun i ->
          let h = S.register scheme in
          let lo = Q.make_local h in
          if i < 2 then
            for k = 0 to 299 do
              Q.enqueue t lo ((i * 10000) + k)
            done
          else begin
            let mine = ref [] in
            let misses = ref 0 in
            while !misses < 1000 do
              match Q.dequeue t lo with
              | Some v ->
                  mine := v :: !mine;
                  misses := 0
              | None -> incr misses
            done;
            consumed.(i) <- List.rev !mine
          end;
          Q.clear_local lo;
          S.unregister h)
    in
    let rest = Q.to_list t in
    let all = consumed.(2) @ consumed.(3) @ rest in
    Alcotest.(check int) "nothing lost or duplicated" 600
      (List.length (List.sort_uniq compare all));
    (* per-producer FIFO within each consumer's stream *)
    Array.iter
      (fun stream ->
        let last = Hashtbl.create 2 in
        List.iter
          (fun v ->
            let producer = v / 10000 in
            (match Hashtbl.find_opt last producer with
            | Some prev ->
                Alcotest.(check bool) "per-producer order" true (v > prev)
            | None -> ());
            Hashtbl.replace last producer v)
          stream)
      [| consumed.(2); consumed.(3) |]

  let tests =
    [
      Alcotest.test_case "sequential" `Quick test_sequential;
      Alcotest.test_case "concurrent fifo" `Quick test_concurrent_fifo_per_producer;
    ]
end

module St_hp = Stack_suite (Hp)
module St_hpp = Stack_suite (Hp_plus)
module St_ebr = Stack_suite (Ebr)
module St_pebr = Stack_suite (Pebr)
module St_rc = Stack_suite (Rc)
module St_nr = Stack_suite (Nr)
module Qu_hp = Queue_suite (Hp)
module Qu_hpp = Queue_suite (Hp_plus)
module Qu_ebr = Queue_suite (Ebr)
module Qu_pebr = Queue_suite (Pebr)
module Qu_rc = Queue_suite (Rc)
module Qu_nr = Queue_suite (Nr)

let () =
  Alcotest.run "queues"
    [
      ("treiber:HP", St_hp.tests);
      ("treiber:HP++", St_hpp.tests);
      ("treiber:EBR", St_ebr.tests);
      ("treiber:PEBR", St_pebr.tests);
      ("treiber:RC", St_rc.tests);
      ("treiber:NR", St_nr.tests);
      ("msqueue:HP", Qu_hp.tests);
      ("msqueue:HP++", Qu_hpp.tests);
      ("msqueue:EBR", Qu_ebr.tests);
      ("msqueue:PEBR", Qu_pebr.tests);
      ("msqueue:RC", Qu_rc.tests);
      ("msqueue:NR", Qu_nr.tests);
    ]
