(* Property-based fuzzing of the SMR lifecycle contract, per scheme.

   A random script of API calls is run against a pool of blocks while an
   oracle tracks what the scheme is allowed to do:
   - a block that was protected before being retired must never be freed
     while the protection is held (for protecting schemes);
   - a block must never be freed without having been retired (the Mem state
     machine raises on that by itself);
   - after releasing all protections and flushing, every retired block must
     be freed (except under NR, which never frees). *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats

module Fuzz (S : Smr.Smr_intf.S) = struct
  (* Script ops over a pool of [blocks] block slots and [guards] guards:
     0 = retire block i (if live and unretired)
     1 = protect block i with guard g (only meaningful pre-retirement)
     2 = release guard g
     3 = flush *)
  let interpret script =
    let t = S.create () in
    let h = S.register t in
    let n_blocks = 8 and n_guards = 3 in
    let blocks = Array.init n_blocks (fun _ -> Mem.make (S.stats t)) in
    let retired = Array.make n_blocks false in
    let guards = Array.init n_guards (fun _ -> S.guard h) in
    let guarding = Array.make n_guards (-1) in
    let ok = ref true in
    List.iter
      (fun (op, i, g) ->
        let i = i mod n_blocks and g = g mod n_guards in
        match op mod 4 with
        | 0 ->
            if not retired.(i) then begin
              retired.(i) <- true;
              S.retire h blocks.(i)
            end
        | 1 ->
            (* protect only blocks not yet retired: that is the regime in
               which HP-family protection is guaranteed to stick (a data
               structure validates reachability for exactly this reason) *)
            if not retired.(i) then begin
              S.protect guards.(g) blocks.(i);
              guarding.(g) <- i
            end
        | 2 ->
            S.release guards.(g);
            guarding.(g) <- -1
        | _ ->
            S.flush h;
            (* no block protected since before its retirement may be freed *)
            if S.needs_protection then
              Array.iter
                (fun b ->
                  if b >= 0 && Mem.is_freed blocks.(b) then ok := false)
                guarding)
      script;
    (* teardown: release everything, flush twice; all retired blocks must
       now be reclaimed (except NR) *)
    Array.iter S.release guards;
    S.flush h;
    S.flush h;
    Array.iteri
      (fun i b ->
        if retired.(i) then begin
          let freed = Mem.is_freed b in
          if S.name = "NR" then (if freed then ok := false)
          else if not freed then ok := false
        end)
      blocks;
    S.unregister h;
    !ok

  let prop =
    QCheck2.Test.make
      ~name:("SMR lifecycle fuzz (" ^ S.name ^ ")")
      ~count:100
      QCheck2.Gen.(
        list_size (int_range 1 60)
          (triple (int_range 0 3) (int_range 0 7) (int_range 0 2)))
      interpret
end

module F_hp = Fuzz (Hp)
module F_hpp = Fuzz (Hp_plus)
module F_ebr = Fuzz (Ebr)
module F_pebr = Fuzz (Pebr)
module F_rc = Fuzz (Rc)
module F_nr = Fuzz (Nr)

let () =
  Alcotest.run "scheme_props"
    [
      ( "lifecycle fuzz",
        [
          QCheck_alcotest.to_alcotest F_hp.prop;
          QCheck_alcotest.to_alcotest F_hpp.prop;
          QCheck_alcotest.to_alcotest F_ebr.prop;
          QCheck_alcotest.to_alcotest F_pebr.prop;
          QCheck_alcotest.to_alcotest F_rc.prop;
          QCheck_alcotest.to_alcotest F_nr.prop;
        ] );
    ]
