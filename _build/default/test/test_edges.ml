(* Targeted edge cases that the generic suites don't isolate. *)

module Stats = Smr_core.Stats

(* Every key colliding into one bucket turns the hash map into a single
   deep list: exercises bucket-chain traversal and reclamation. *)
let test_hashmap_single_bucket () =
  let module M = Smr_ds.Hashmap.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = M.create_sized ~buckets:1 scheme in
  let h = Hp_plus.register scheme in
  let lo = M.make_local h in
  for k = 0 to 199 do
    assert (M.insert t lo k (k * 3))
  done;
  Alcotest.(check int) "all in one bucket" 200 (M.size t);
  for k = 0 to 199 do
    Alcotest.(check (option int)) "get" (Some (k * 3)) (M.get t lo k)
  done;
  for k = 0 to 199 do
    if k mod 2 = 1 then assert (M.remove t lo k)
  done;
  Alcotest.(check int) "evens remain" 100 (M.size t);
  M.clear_local lo;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "drained" 0 (Stats.unreclaimed (Hp_plus.stats scheme));
  Hp_plus.unregister h

(* Negative and extreme keys on the lists and skiplist (the BSTs document
   their sentinel bound and reject keys >= max_int - 1). *)
let test_negative_and_extreme_keys () =
  let module L = Smr_ds.Hhslist.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = L.create scheme in
  let h = Hp_plus.register scheme in
  let lo = L.make_local h in
  let keys = [ min_int; -1_000_000; -1; 0; 1; 1_000_000; max_int ] in
  List.iter (fun k -> assert (L.insert t lo k (k lxor 1))) keys;
  Alcotest.(check (list int)) "sorted over full int range"
    (List.sort compare keys)
    (List.map fst (L.to_list t));
  List.iter
    (fun k -> Alcotest.(check (option int)) "get" (Some (k lxor 1)) (L.get t lo k))
    keys;
  List.iter (fun k -> assert (L.remove t lo k)) keys;
  Alcotest.(check int) "empty" 0 (L.size t);
  L.clear_local lo;
  Hp_plus.unregister h

let test_skiplist_negative_keys () =
  let module Sk = Smr_ds.Skiplist.Make (Ebr) in
  let scheme = Ebr.create () in
  let t = Sk.create scheme in
  let h = Ebr.register scheme in
  let lo = Sk.make_local h in
  for k = -50 to 50 do
    assert (Sk.insert t lo k k)
  done;
  Alcotest.(check int) "size" 101 (Sk.size t);
  Alcotest.(check (option int)) "negative get" (Some (-37)) (Sk.get t lo (-37));
  assert (Sk.remove t lo (-50));
  assert (not (Sk.remove t lo (-50)));
  Sk.clear_local lo;
  Ebr.unregister h

(* BST boundary keys: largest legal key and the sentinel rejection. *)
let test_tree_boundary_keys () =
  let module T = Smr_ds.Nmtree.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = T.create scheme in
  let h = Hp_plus.register scheme in
  let lo = T.make_local h in
  let biggest = max_int - 2 in
  assert (T.insert t lo 0 0);
  assert (T.insert t lo biggest 99);
  Alcotest.(check (option int)) "largest legal key" (Some 99)
    (T.get t lo biggest);
  assert (T.remove t lo biggest);
  Alcotest.check_raises "sentinel key rejected"
    (Invalid_argument "Nmtree: key too large") (fun () ->
      ignore (T.insert t lo (max_int - 1) 0));
  T.clear_local lo;
  Hp_plus.unregister h

(* Emptying and refilling repeatedly must not confuse reclamation, for a
   structure with sentinels (tree) and one without (list). *)
let test_refill_cycles () =
  let module L = Smr_ds.Hmlist.Make (Hp) in
  let scheme = Hp.create () in
  let t = L.create scheme in
  let h = Hp.register scheme in
  let lo = L.make_local h in
  for round = 1 to 50 do
    for k = 1 to 20 do
      assert (L.insert t lo k (k * round))
    done;
    for k = 1 to 20 do
      assert (L.remove t lo k)
    done;
    Alcotest.(check int) "empty between rounds" 0 (L.size t)
  done;
  L.clear_local lo;
  Hp.flush h;
  Alcotest.(check int) "all reclaimed" 0 (Stats.unreclaimed (Hp.stats scheme));
  Hp.unregister h

(* Guards can be re-acquired and reused across many operations without
   leaking slots: the slot registry stays constant after warm-up. *)
let test_slot_reuse () =
  let module L = Smr_ds.Hhslist.Make (Hp_plus) in
  let scheme = Hp_plus.create () in
  let t = L.create scheme in
  let h = Hp_plus.register scheme in
  let lo = L.make_local h in
  for k = 1 to 500 do
    assert (L.insert t lo k k);
    assert (L.remove t lo k)
  done;
  (* allocation count is bounded: exactly one node per insert, plus the
     insert code never leaks discarded nodes *)
  let st = Hp_plus.stats scheme in
  Alcotest.(check int) "one allocation per insert" 500 (Stats.allocated st);
  L.clear_local lo;
  Hp_plus.flush h;
  Hp_plus.flush h;
  Alcotest.(check int) "all freed" 500 (Stats.freed st);
  Hp_plus.unregister h

let () =
  Alcotest.run "edges"
    [
      ( "edge cases",
        [
          Alcotest.test_case "hashmap single bucket" `Quick
            test_hashmap_single_bucket;
          Alcotest.test_case "negative/extreme keys" `Quick
            test_negative_and_extreme_keys;
          Alcotest.test_case "skiplist negative keys" `Quick
            test_skiplist_negative_keys;
          Alcotest.test_case "tree boundary keys" `Quick
            test_tree_boundary_keys;
          Alcotest.test_case "refill cycles" `Quick test_refill_cycles;
          Alcotest.test_case "allocation accounting" `Quick test_slot_reuse;
        ] );
    ]
