(* Bechamel micro-benchmarks for the per-operation costs the paper's Table 1
   describes qualitatively: protection, validation, retirement, frontier
   protection + invalidation (TryUnlink), and critical-section entry. *)

open Bechamel
open Toolkit
module Mem = Smr_core.Mem

let test_hp_protect =
  let t = Hp.create () in
  let h = Hp.register t in
  let g = Hp.guard h in
  let hdr = Mem.make (Hp.stats t) in
  Test.make ~name:"hp/protect+release"
    (Staged.stage (fun () ->
         Hp.protect g hdr;
         Hp.release g))

let test_hpp_protect =
  let t = Hp_plus.create () in
  let h = Hp_plus.register t in
  let g = Hp_plus.guard h in
  let hdr = Mem.make (Hp_plus.stats t) in
  Test.make ~name:"hp_plus/protect+release"
    (Staged.stage (fun () ->
         Hp_plus.protect g hdr;
         Hp_plus.release g))

let test_ebr_crit =
  let t = Ebr.create () in
  let h = Ebr.register t in
  Test.make ~name:"ebr/crit_enter+exit"
    (Staged.stage (fun () ->
         Ebr.crit_enter h;
         Ebr.crit_exit h))

let test_pebr_crit =
  let t = Pebr.create () in
  let h = Pebr.register t in
  let g = Pebr.guard h in
  let hdr = Mem.make (Pebr.stats t) in
  Test.make ~name:"pebr/crit+shield"
    (Staged.stage (fun () ->
         Pebr.crit_enter h;
         Pebr.protect g hdr;
         ignore (Pebr.protection_valid h);
         Pebr.release g;
         Pebr.crit_exit h))

let test_retire scheme_name (module S : Smr.Smr_intf.S) =
  let t = S.create () in
  let h = S.register t in
  Test.make
    ~name:(scheme_name ^ "/retire(+amortized reclaim)")
    (Staged.stage (fun () -> S.retire h (Mem.make (S.stats t))))

let unlink_cycle config =
  let t = Hp_plus.create ~config () in
  let h = Hp_plus.register t in
  fun () ->
    let stats = Hp_plus.stats t in
    let frontier_hdr = Mem.make stats in
    let node = (Mem.make stats, Smr_core.Link.null ()) in
    ignore
      (Hp_plus.try_unlink h
         ~frontier:[ frontier_hdr ]
         ~do_unlink:(fun () -> Some [ node ])
         ~node_header:fst
         ~invalidate:
           (List.iter (fun (_, link) -> Smr_core.Link.mark_invalid link)));
    (* the frontier header itself is left live: it stands in for a
       neighbouring node owned by the structure *)
    ignore stats

let test_try_unlink_epoched =
  Test.make ~name:"hp_plus/try_unlink (alg5 epoched)"
    (Staged.stage (unlink_cycle Smr.Smr_intf.default_config))

let test_try_unlink_plain =
  Test.make ~name:"hp_plus/try_unlink (alg3 plain)"
    (Staged.stage
       (unlink_cycle { Smr.Smr_intf.default_config with epoched_fence = false }))

let test_rc_counts =
  let hdr = Mem.make (Smr_core.Stats.create ()) in
  Test.make ~name:"rc/incr_ref+decr"
    (Staged.stage (fun () ->
         Rc.incr_ref hdr;
         ignore (Atomic.fetch_and_add (Mem.refcount hdr) (-1))))

let tests =
  Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
    [
      test_hp_protect;
      test_hpp_protect;
      test_ebr_crit;
      test_pebr_crit;
      test_retire "hp" (module Hp);
      test_retire "hp_plus" (module Hp_plus);
      test_retire "ebr" (module Ebr);
      test_retire "pebr" (module Pebr);
      test_try_unlink_epoched;
      test_try_unlink_plain;
      test_rc_counts;
    ]

let run () =
  print_endline "== micro: per-operation primitive costs (bechamel)";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-45s %12.1f ns/op\n" name ns)
    (List.sort compare !rows);
  flush stdout
