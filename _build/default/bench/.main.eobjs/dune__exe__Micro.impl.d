bench/micro.ml: Analyze Atomic Bechamel Benchmark Ebr Hashtbl Hp Hp_plus Instance List Measure Pebr Printf Rc Smr Smr_core Staged Test Time Toolkit
