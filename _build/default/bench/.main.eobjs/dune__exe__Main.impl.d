bench/main.ml: Arg Bench_harness Cmd Cmdliner Domain List Micro Printf Smr_core String Term
