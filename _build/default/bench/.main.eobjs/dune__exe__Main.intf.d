bench/main.mli:
