(* Long-running randomized soak of every data structure x scheme pair with
   the use-after-free detector on. Usage: soak [rounds] [domains]. *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

let rounds = try int_of_string Sys.argv.(1) with _ -> 5
let domains = try int_of_string Sys.argv.(2) with _ -> 4

module Drive
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val to_list : 'v t -> (int * 'v) list
    end) =
struct
  let run name =
    for round = 1 to rounds do
      let scheme = S.create () in
      let t = L.create scheme in
      let _ =
        Pool.run_timed ~n:domains ~duration:0.25 (fun i ~stop ->
            let h = S.register scheme in
            let lo = L.make_local h in
            let rng = Rng.create ~seed:((round * 97) + i) in
            while not (stop ()) do
              let key = Rng.below rng 48 in
              match Rng.below rng 4 with
              | 0 | 1 -> ignore (L.get t lo key)
              | 2 -> ignore (L.insert t lo key key)
              | _ -> ignore (L.remove t lo key)
            done;
            L.clear_local lo;
            S.unregister h)
      in
      let contents = L.to_list t in
      let keys = List.map fst contents in
      assert (keys = List.sort_uniq compare keys)
    done;
    Printf.printf "soak ok: %s (%d rounds x %d domains)\n%!" name rounds
      domains
end

let () =
  let module M1 = Drive (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  M1.run "hmlist/HP";
  let module M2 = Drive (Hp_plus) (Smr_ds.Hmlist.Make (Hp_plus)) in
  M2.run "hmlist/HP++";
  let module M3 = Drive (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  M3.run "hhslist/HP++";
  let module M4 = Drive (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  M4.run "hhslist/PEBR";
  let module M5 = Drive (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  M5.run "hhslist/EBR";
  let module M6 = Drive (Rc) (Smr_ds.Hhslist.Make (Rc)) in
  M6.run "hhslist/RC";
  let module M7 = Drive (Hp_plus) (Smr_ds.Hashmap.Make (Hp_plus)) in
  M7.run "hashmap/HP++";
  let module M8 = Drive (Hp) (Smr_ds.Skiplist.Make (Hp)) in
  M8.run "skiplist/HP";
  let module M9 = Drive (Hp_plus) (Smr_ds.Skiplist.Make (Hp_plus)) in
  M9.run "skiplist/HP++";
  let module M10 = Drive (Hp_plus) (Smr_ds.Nmtree.Make (Hp_plus)) in
  M10.run "nmtree/HP++";
  let module M11 = Drive (Pebr) (Smr_ds.Nmtree.Make (Pebr)) in
  M11.run "nmtree/PEBR";
  let module M12 = Drive (Hp) (Smr_ds.Efrbtree.Make (Hp)) in
  M12.run "efrbtree/HP";
  let module M13 = Drive (Hp_plus) (Smr_ds.Efrbtree.Make (Hp_plus)) in
  M13.run "efrbtree/HP++";
  let module M14 = Drive (Nr) (Smr_ds.Efrbtree.Make (Nr)) in
  M14.run "efrbtree/NR";
  let module M15 = Drive (Pebr) (Smr_ds.Efrbtree.Make (Pebr)) in
  M15.run "efrbtree/PEBR";
  let module M16 = Drive (Hp_plus) (Smr_ds.Lazylist.Make (Hp_plus)) in
  M16.run "lazylist/HP++";
  let module M17 = Drive (Pebr) (Smr_ds.Lazylist.Make (Pebr)) in
  M17.run "lazylist/PEBR";
  let module M18 = Drive (Hp_plus) (Smr_ds.Bonsai.Make (Hp_plus)) in
  M18.run "bonsai/HP++";
  let module M19 = Drive (Pebr) (Smr_ds.Bonsai.Make (Pebr)) in
  M19.run "bonsai/PEBR";
  let module M20 = Drive (Rc) (Smr_ds.Bonsai.Make (Rc)) in
  M20.run "bonsai/RC";
  print_endline "all soaks passed"
