(* Quickstart: a lock-free ordered set protected by HP++.

   Build and run:
     dune exec examples/quickstart.exe

   The three moving parts of the library:
   1. a reclamation scheme instance (here HP++, the paper's contribution);
   2. a data structure functor applied to it (here Harris's list with
      wait-free get — a structure the original hazard pointers cannot
      protect at all);
   3. per-domain handles: every domain that touches the structure registers
      once and passes its local around. *)

module List_set = Smr_ds.Hhslist.Make (Hp_plus)

let () =
  (* One reclamation domain for the whole structure. *)
  let smr = Hp_plus.create () in
  let set = List_set.create smr in

  (* Each thread registers itself once... *)
  let handle = Hp_plus.register smr in
  let local = List_set.make_local handle in

  (* ...and then uses the structure like any set. *)
  assert (List_set.insert set local 42 "answer");
  assert (List_set.insert set local 7 "lucky");
  assert (not (List_set.insert set local 42 "dup"));
  assert (List_set.get set local 42 = Some "answer");
  assert (List_set.remove set local 7);
  assert (List_set.get set local 7 = None);

  Printf.printf "contents: %s\n"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%d->%s" k v)
          (List_set.to_list set)));

  (* Removed nodes were retired through TryUnlink: physically unlinked,
     frontier-protected, invalidated, and only then reclaimed. The library
     tracks every block's lifecycle: *)
  let stats = Hp_plus.stats smr in
  Printf.printf "allocated=%d freed=%d still-unreclaimed=%d\n"
    (Smr_core.Stats.allocated stats)
    (Smr_core.Stats.freed stats)
    (Smr_core.Stats.unreclaimed stats);

  (* Force the deferred invalidation + a reclamation pass and release the
     thread's hazard slots. *)
  List_set.clear_local local;
  Hp_plus.flush handle;
  Printf.printf "after flush: unreclaimed=%d\n"
    (Smr_core.Stats.unreclaimed stats);
  Hp_plus.unregister handle;
  print_endline "quickstart ok"
