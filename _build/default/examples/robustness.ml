(* Robustness (paper §4.4): what happens to memory when one thread stalls
   inside an operation?

   Under EBR a stalled critical section pins the epoch and garbage grows
   without bound. Under HP++ the stalled thread withholds only the blocks
   its hazard pointers name, so garbage stays bounded no matter how long the
   stall lasts. This example stalls a reader mid-structure and lets a writer
   churn, printing the garbage backlog as it grows.

     dune exec examples/robustness.exe -- [churn-ops]                  *)

module Stats = Smr_core.Stats

let churn = try int_of_string Sys.argv.(1) with _ -> 20_000

module Probe (S : Smr.Smr_intf.S) = struct
  module L = Smr_ds.Hmlist.Make (S)

  let run () =
    let smr = S.create () in
    let list = L.create smr in
    let stats = S.stats smr in
    (* The "stalled" participant: it begins an operation (enters a critical
       section / takes protections) and then never progresses. Handles are
       first-class, so the stall is simulated in-line. *)
    let sleeper = S.register smr in
    S.crit_enter sleeper;
    let sleeper_guard = S.guard sleeper in
    (* The worker inserts and removes keys forever; every removal retires a
       node. *)
    let worker = S.register smr in
    let lo = L.make_local worker in
    (* give the sleeper something concrete to protect *)
    ignore (L.insert list lo 0 0);
    (match L.to_list list with
    | (k, _) :: _ -> ignore k
    | [] -> ());
    S.protect sleeper_guard (Smr_core.Mem.make stats);
    let report at =
      Printf.printf "  %-5s after %6d churn ops: %6d unreclaimed blocks\n%!"
        S.name at (Stats.unreclaimed stats)
    in
    let quarter = churn / 4 in
    for i = 1 to churn do
      let k = 1 + (i mod 64) in
      ignore (L.insert list lo k k);
      ignore (L.remove list lo k);
      if i mod quarter = 0 then report i
    done;
    (* the stalled thread finally finishes *)
    S.crit_exit sleeper;
    S.release sleeper_guard;
    S.flush worker;
    S.flush worker;
    Printf.printf "  %-5s after the stalled thread exits + flush: %d\n%!"
      S.name (Stats.unreclaimed stats);
    L.clear_local lo;
    S.unregister worker;
    S.unregister sleeper
end

let () =
  Printf.printf
    "robustness: one participant stalls mid-operation while another churns \
     %d ops\n%!"
    churn;
  print_endline "EBR (not robust: garbage grows with the churn):";
  let module E = Probe (Ebr) in
  E.run ();
  print_endline "HP++ (robust: garbage bounded by the reclamation threshold):";
  let module H = Probe (Hp_plus) in
  H.run ();
  print_endline "PEBR (robust via neutralizing the stalled thread):";
  let module P = Probe (Pebr) in
  P.run ();
  print_endline "robustness ok"
