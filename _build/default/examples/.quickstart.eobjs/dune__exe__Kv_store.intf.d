examples/kv_store.mli:
