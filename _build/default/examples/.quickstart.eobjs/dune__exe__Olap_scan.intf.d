examples/olap_scan.mli:
