examples/robustness.mli:
