examples/quickstart.ml: Hp_plus List Printf Smr_core Smr_ds String
