examples/robustness.ml: Array Ebr Hp_plus Pebr Printf Smr Smr_core Smr_ds Sys
