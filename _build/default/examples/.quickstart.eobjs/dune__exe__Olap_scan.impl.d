examples/olap_scan.ml: Array Atomic Ebr Hp_plus Pebr Printf Smr Smr_core Smr_ds Sys
