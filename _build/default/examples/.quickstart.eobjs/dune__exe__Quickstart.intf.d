examples/quickstart.mli:
