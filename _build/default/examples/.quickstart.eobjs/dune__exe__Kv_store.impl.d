examples/kv_store.ml: Array Ebr Hp_plus Printf Smr Smr_core Smr_ds Sys
