(* A concurrent key-value store on the chaining hash map, exercised by
   mixed reader/writer domains — the paper's HashMap workload as an
   application. Runs the same store twice, once reclaimed by HP++ and once
   by EBR, and reports throughput plus the memory behaviour that
   distinguishes them.

     dune exec examples/kv_store.exe -- [domains] [seconds]            *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Stats = Smr_core.Stats

let domains = try int_of_string Sys.argv.(1) with _ -> 4
let seconds = try float_of_string Sys.argv.(2) with _ -> 0.5
let key_space = 4096

module Drive (S : Smr.Smr_intf.S) = struct
  module Map = Smr_ds.Hashmap.Make (S)

  let run () =
    let smr = S.create () in
    let store = Map.create smr in
    let ops =
      Pool.run_timed ~n:domains ~duration:seconds (fun i ~stop ->
          let handle = S.register smr in
          let local = Map.make_local handle in
          let rng = Rng.create ~seed:(0xcafe + i) in
          let ops = ref 0 in
          while not (stop ()) do
            let key = Rng.below rng key_space in
            (match Rng.below rng 10 with
            | 0 | 1 | 2 ->
                (* write: store a "document" for the key *)
                ignore (Map.insert store local key (key * key))
            | 3 -> ignore (Map.remove store local key)
            | _ -> ignore (Map.get store local key));
            incr ops
          done;
          Map.clear_local local;
          S.unregister handle;
          !ops)
    in
    let total = Array.fold_left ( + ) 0 ops in
    let stats = S.stats smr in
    Printf.printf
      "%-5s %d domains x %.1fs: %8d ops (%.3f Mops/s) | peak garbage %6d \
       blocks, peak live %6d\n%!"
      S.name domains seconds total
      (float_of_int total /. seconds /. 1e6)
      (Stats.peak_unreclaimed stats)
      (Stats.peak_live stats)
end

let () =
  Printf.printf "kv_store: %d domains, %.1fs per scheme, %d keys\n%!" domains
    seconds key_space;
  let module H = Drive (Hp_plus) in
  H.run ();
  let module E = Drive (Ebr) in
  E.run ();
  print_endline "kv_store ok"
