(* Long-running analytical scans over a Bonsai tree while OLTP writers
   churn it — the situation of the paper's Figure 10 and its OLAP
   discussion (§2.4): neutralization-based schemes forcibly abort long
   operations to keep reclamation going; HP++'s protection failure is
   fine-grained, so a scan only restarts if a node it stands on is
   invalidated.

   The example runs the same scan workload under HP++ and under PEBR and
   reports completed scans vs restarts.

     dune exec examples/olap_scan.exe -- [seconds]                     *)

module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng
module Stats = Smr_core.Stats

let seconds = try float_of_string Sys.argv.(1) with _ -> 0.5
let key_space = 16384

module Drive (S : Smr.Smr_intf.S) = struct
  module Tree = Smr_ds.Bonsai.Make (S)

  let run () =
    (* aggressive reclamation so the schemes' long-operation behaviour shows
       within a short demo: small batches, low neutralization pressure *)
    let smr =
      S.create
        ~config:
          {
            Smr.Smr_intf.default_config with
            reclaim_threshold = 32;
            invalidate_threshold = 8;
            neutralize_lag = 1;
          }
        ()
    in
    let tree = Tree.create smr in
    (* preload half the key space, shuffled *)
    let setup = S.register smr in
    let lo = Tree.make_local setup in
    let rng = Rng.create ~seed:1 in
    for _ = 1 to key_space / 2 do
      let k = Rng.below rng key_space in
      ignore (Tree.insert tree lo k k)
    done;
    Tree.clear_local lo;
    let scans = Atomic.make 0 in
    let rows = Atomic.make 0 in
    let _ =
      Pool.run_timed ~n:4 ~duration:seconds (fun i ~stop ->
          let handle = S.register smr in
          let local = Tree.make_local handle in
          let rng = Rng.create ~seed:(100 + i) in
          if i < 3 then
            (* OLTP writers: point updates *)
            while not (stop ()) do
              let k = Rng.below rng key_space in
              if Rng.below rng 2 = 0 then ignore (Tree.insert tree local k k)
              else ignore (Tree.remove tree local k)
            done
          else
            (* OLAP reader: full-table aggregation, over and over *)
            while not (stop ()) do
              let n =
                Tree.fold tree local ~init:0 ~f:(fun acc _ _ -> acc + 1)
              in
              Atomic.incr scans;
              ignore (Atomic.fetch_and_add rows n)
            done;
          Tree.clear_local local;
          S.unregister handle)
    in
    let stats = S.stats smr in
    let completed = Atomic.get scans in
    Printf.printf
      "%-5s %.1fs: %5d full scans (%9d rows aggregated) | scan restarts \
       forced by the scheme: %d | peak garbage %d\n%!"
      S.name seconds completed (Atomic.get rows)
      (Stats.protection_failures stats)
      (Stats.peak_unreclaimed stats);
    S.unregister setup
end

let () =
  Printf.printf
    "olap_scan: 3 writer domains + 1 scanning domain over %d keys\n%!"
    key_space;
  let module H = Drive (Hp_plus) in
  H.run ();
  let module P = Drive (Pebr) in
  P.run ();
  let module E = Drive (Ebr) in
  E.run ();
  print_endline "olap_scan ok"
