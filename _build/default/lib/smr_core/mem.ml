exception Use_after_free of int
exception Double_retire of int
exception Invalid_free of int

let state_live = 0
let state_retired = 1
let state_freed = 2

type header = { uid : int; state : int Atomic.t; refcount : int Atomic.t }

let uid_counter = Atomic.make 0
let enabled = Atomic.make true

let make stats =
  Stats.on_alloc stats;
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    state = Atomic.make state_live;
    refcount = Atomic.make 1;
  }

let refcount h = h.refcount

let uid h = h.uid
let is_live h = Atomic.get h.state = state_live
let is_retired h = Atomic.get h.state = state_retired
let is_freed h = Atomic.get h.state = state_freed

let retire_mark h =
  if not (Atomic.compare_and_set h.state state_live state_retired) then
    raise (Double_retire h.uid)

let free_mark h =
  if not (Atomic.compare_and_set h.state state_retired state_freed) then
    raise (Invalid_free h.uid)

let free_mark_cascade h =
  let s = Atomic.get h.state in
  if s = state_freed || not (Atomic.compare_and_set h.state s state_freed)
  then raise (Invalid_free h.uid)

let check_access h =
  if Atomic.get enabled && Atomic.get h.state = state_freed then
    raise (Use_after_free h.uid)

let set_checking b = Atomic.set enabled b
let checking () = Atomic.get enabled
