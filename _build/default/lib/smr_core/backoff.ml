type t = { min_spins : int; max_spins : int; mutable spins : int }

let create ?(min_spins = 4) ?(max_spins = 1024) () =
  { min_spins; max_spins; spins = min_spins }

let once t =
  for _ = 1 to t.spins do
    Domain.cpu_relax ()
  done;
  if t.spins < t.max_spins then t.spins <- t.spins * 2

let reset t = t.spins <- t.min_spins
