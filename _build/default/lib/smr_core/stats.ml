type t = {
  allocated : int Atomic.t;
  freed : int Atomic.t;
  retired_total : int Atomic.t;
  unreclaimed : int Atomic.t;
  peak_unreclaimed : int Atomic.t;
  peak_live : int Atomic.t;
  heavy_fences : int Atomic.t;
  protection_failures : int Atomic.t;
}

let create () =
  {
    allocated = Atomic.make 0;
    freed = Atomic.make 0;
    retired_total = Atomic.make 0;
    unreclaimed = Atomic.make 0;
    peak_unreclaimed = Atomic.make 0;
    peak_live = Atomic.make 0;
    heavy_fences = Atomic.make 0;
    protection_failures = Atomic.make 0;
  }

let reset t =
  Atomic.set t.allocated 0;
  Atomic.set t.freed 0;
  Atomic.set t.retired_total 0;
  Atomic.set t.unreclaimed 0;
  Atomic.set t.peak_unreclaimed 0;
  Atomic.set t.peak_live 0;
  Atomic.set t.heavy_fences 0;
  Atomic.set t.protection_failures 0

(* Monotone max update; contention is rare (only on new peaks). *)
let rec update_peak peak v =
  let cur = Atomic.get peak in
  if v > cur && not (Atomic.compare_and_set peak cur v) then update_peak peak v

let allocated t = Atomic.get t.allocated
let freed t = Atomic.get t.freed
let live t = allocated t - freed t
let unreclaimed t = Atomic.get t.unreclaimed
let peak_unreclaimed t = Atomic.get t.peak_unreclaimed
let peak_live t = Atomic.get t.peak_live
let retired_total t = Atomic.get t.retired_total
let heavy_fences t = Atomic.get t.heavy_fences
let protection_failures t = Atomic.get t.protection_failures

let on_alloc t =
  Atomic.incr t.allocated;
  update_peak t.peak_live (live t)

let on_retire t =
  Atomic.incr t.retired_total;
  let v = 1 + Atomic.fetch_and_add t.unreclaimed 1 in
  update_peak t.peak_unreclaimed v

let on_free t =
  Atomic.incr t.freed;
  ignore (Atomic.fetch_and_add t.unreclaimed (-1))

let on_discard t = Atomic.incr t.freed
let on_heavy_fence t = Atomic.incr t.heavy_fences
let on_protection_failure t = Atomic.incr t.protection_failures

let pp ppf t =
  Format.fprintf ppf
    "alloc=%d freed=%d live=%d unreclaimed=%d peak_unreclaimed=%d \
     peak_live=%d heavy_fences=%d protection_failures=%d"
    (allocated t) (freed t) (live t) (unreclaimed t) (peak_unreclaimed t)
    (peak_live t) (heavy_fences t) (protection_failures t)
