(** SplitMix64: a tiny, fast, per-thread deterministic PRNG for workload
    generation. Each worker owns one state; no sharing, no locks. *)

type t

val create : seed:int -> t
val next : t -> int64
val below : t -> int -> int
(** Uniform int in [\[0, n)]. [n] must be positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)
