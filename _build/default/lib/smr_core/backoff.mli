(** Truncated exponential backoff for CAS retry loops. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
val once : t -> unit
(** Spin for the current budget, then double it (up to the cap). *)

val reset : t -> unit
