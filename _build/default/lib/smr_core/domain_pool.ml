module Barrier = struct
  type t = { size : int; arrived : int Atomic.t; generation : int Atomic.t }

  let create size = { size; arrived = Atomic.make 0; generation = Atomic.make 0 }

  let wait t =
    let gen = Atomic.get t.generation in
    if 1 + Atomic.fetch_and_add t.arrived 1 = t.size then begin
      Atomic.set t.arrived 0;
      Atomic.incr t.generation
    end
    else
      while Atomic.get t.generation = gen do
        Domain.cpu_relax ()
      done
end

type 'a outcome = Value of 'a | Raised of exn

let collect results =
  Array.map (function Value v -> v | Raised e -> raise e) results

let run ~n f =
  let barrier = Barrier.create n in
  let body i () =
    Barrier.wait barrier;
    match f i with v -> Value v | exception e -> Raised e
  in
  let domains = Array.init n (fun i -> Domain.spawn (body i)) in
  collect (Array.map Domain.join domains)

let run_timed ~n ~duration f =
  let stop_flag = Atomic.make false in
  let stop () = Atomic.get stop_flag in
  (* A dedicated timer domain flips [stop_flag]; workers poll it. The timer
     sleeps, so on a single-core host it barely perturbs the workload. *)
  let barrier = Barrier.create (n + 1) in
  let worker i () =
    Barrier.wait barrier;
    match f i ~stop with v -> Value v | exception e -> Raised e
  in
  let domains = Array.init n (fun i -> Domain.spawn (worker i)) in
  let timer =
    Domain.spawn (fun () ->
        Barrier.wait barrier;
        Unix.sleepf duration;
        Atomic.set stop_flag true)
  in
  let results = Array.map Domain.join domains in
  Domain.join timer;
  collect results
