(** Spawn-and-join helpers for multi-domain tests and benchmarks. *)

val run : n:int -> (int -> 'a) -> 'a array
(** [run ~n f] spawns [n] domains, releases them through a start barrier so
    work begins simultaneously, runs [f i] on domain [i], joins all, and
    returns the results in index order. If any domain raises, the exception
    is re-raised in the caller after all domains are joined. *)

val run_timed : n:int -> duration:float -> (int -> stop:(unit -> bool) -> 'a) -> 'a array
(** Like {!run} but hands each worker a [stop] predicate that flips to [true]
    after [duration] seconds (measured by domain 0's wall clock proxy in the
    caller). Workers must poll [stop] frequently. *)

module Barrier : sig
  type t

  val create : int -> t
  val wait : t -> unit
end
