type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let below t n =
  if n <= 0 then invalid_arg "Rng.below";
  let v = Int64.to_int (next t) land max_int in
  v mod n

let float t =
  let v = Int64.to_int (next t) land ((1 lsl 53) - 1) in
  Float.of_int v /. Float.of_int (1 lsl 53)
