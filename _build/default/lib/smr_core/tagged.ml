type 'a t = { ptr : 'a option; tag : int }

let deleted_bit = 1
let invalid_bit = 2

let make ?(tag = 0) ptr = { ptr; tag }
let null = { ptr = None; tag = 0 }
let ptr t = t.ptr
let tag t = t.tag

let get_exn t =
  match t.ptr with
  | Some v -> v
  | None -> invalid_arg "Tagged.get_exn: null pointer"

let is_null t = t.ptr = None
let is_deleted t = t.tag land deleted_bit <> 0
let is_invalid t = t.tag land invalid_bit <> 0
let with_tag t tag = { t with tag }
let set_bits t bits = { t with tag = t.tag lor bits }
let untagged t = if t.tag = 0 then t else { t with tag = 0 }

let same_ptr a b =
  match (a.ptr, b.ptr) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false
