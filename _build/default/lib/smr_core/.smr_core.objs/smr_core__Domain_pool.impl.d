lib/smr_core/domain_pool.ml: Array Atomic Domain Unix
