lib/smr_core/tagged.mli:
