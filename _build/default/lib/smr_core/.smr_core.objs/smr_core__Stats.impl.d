lib/smr_core/stats.ml: Atomic Format
