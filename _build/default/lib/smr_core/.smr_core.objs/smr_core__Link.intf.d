lib/smr_core/link.mli: Tagged
