lib/smr_core/backoff.mli:
