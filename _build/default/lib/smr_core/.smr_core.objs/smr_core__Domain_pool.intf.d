lib/smr_core/domain_pool.mli:
