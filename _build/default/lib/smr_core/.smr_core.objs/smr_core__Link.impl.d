lib/smr_core/link.ml: Atomic Tagged
