lib/smr_core/backoff.ml: Domain
