lib/smr_core/mem.mli: Atomic Stats
