lib/smr_core/mem.ml: Atomic Stats
