lib/smr_core/tagged.ml:
