lib/smr_core/stats.mli: Format
