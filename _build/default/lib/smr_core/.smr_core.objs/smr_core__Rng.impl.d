lib/smr_core/rng.ml: Float Int64
