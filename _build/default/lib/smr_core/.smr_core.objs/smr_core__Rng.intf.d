lib/smr_core/rng.mli:
