(** Tagged pointers, the paper's low-bit encoding lifted to records.

    The C/Rust implementations pack mark bits into pointer low bits. Here a
    tagged pointer is an immutable record [{ptr; tag}] stored in an
    [Atomic.t]; CAS compares the record physically, which gives the same
    single-word CAS semantics. Bit 0 ([deleted]) is logical deletion
    (Harris); bit 1 ([invalid]) is HP++ invalidation (§3.2). *)

type 'a t = private { ptr : 'a option; tag : int }

val deleted_bit : int
val invalid_bit : int

val make : ?tag:int -> 'a option -> 'a t
val null : 'a t
(** [{ptr = None; tag = 0}]. *)

val ptr : 'a t -> 'a option
val tag : 'a t -> int

val get_exn : 'a t -> 'a
(** @raise Invalid_argument on null. *)

val is_null : 'a t -> bool
val is_deleted : 'a t -> bool
val is_invalid : 'a t -> bool

val with_tag : 'a t -> int -> 'a t
(** Same pointer, new tag (fresh record: safe wrt physical-equality CAS). *)

val set_bits : 'a t -> int -> 'a t
(** OR extra bits into the tag. *)

val untagged : 'a t -> 'a t
(** Same pointer, tag 0. Used by HP++ validation, which must ignore logical
    deletion marks (Algorithm 3 line 9). *)

val same_ptr : 'a t -> 'a t -> bool
(** Physical equality of targets, ignoring tags. *)
