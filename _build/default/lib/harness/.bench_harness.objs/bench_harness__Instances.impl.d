lib/harness/instances.ml: Bench_types Ebr Hp Hp_plus List Nr Pebr Rc Runner Smr Smr_ds
