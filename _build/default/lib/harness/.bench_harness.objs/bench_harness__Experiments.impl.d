lib/harness/experiments.ml: Bench_types Float Fmt Instances List Option Printf Report Smr String Workload
