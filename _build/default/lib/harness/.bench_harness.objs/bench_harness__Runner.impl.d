lib/harness/runner.ml: Array Atomic Bench_types Domain Fun Smr Smr_core Unix Workload
