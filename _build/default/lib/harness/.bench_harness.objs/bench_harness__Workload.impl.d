lib/harness/workload.ml: Smr_core
