lib/harness/report.ml: List Printf String
