lib/harness/bench_types.ml: Workload
