(** Static metadata behind the paper's qualitative tables.

    Table 1 compares robust, widely applicable schemes on system
    requirements, failure condition/handling, overhead, and the bound on
    unreclaimed objects. Table 2 is the applicability matrix of schemes to
    concurrent data structures. Both are regenerated (and the implemented
    subset of Table 2 is cross-checked against the functors' runtime
    [Unsupported_scheme] behaviour) by [bench/main.exe exp tab1|tab2]. *)

type scheme_criteria = {
  scheme : string;
  system_requirement : string;
  failure_condition : string;
  failure_handling : string;
  overhead : string;
  unreclaimed_bound : string;
}

val table1 : scheme_criteria list

type support = Yes | No | No_wait_freedom | Custom_recovery | Restructuring

val pp_support : Format.formatter -> support -> unit

type applicability_row = {
  structure : string;
  implemented_as : string option;
      (** module in [smr_ds] when this repo implements the structure *)
  hp : support;
  debra_plus : support;
  nbr : support;
  ebr : support;
  hp_plus_class : support;  (** HP++, PEBR, VBR column *)
}

val table2 : applicability_row list
