(** Hazard-pointer slot machinery shared by HP, HP++ and PEBR.

    A {e slot} is a single-writer multi-reader cell announcing protection of
    one block. Slots live in per-handle chunks that are registered in a
    global chunk list, so reclaimers can always scan every slot ever
    published; chunks are never removed, which keeps scans safe without
    locks (the paper's [hazards: ConcurrentList<HazptrRecord>]). *)

type registry
type local
type slot

val create : unit -> registry

val register : registry -> local
(** Create this thread's slot block. Single-threaded use per [local]. *)

val acquire : local -> slot
(** Get an empty slot (paper's MakeHazptr). *)

val set : slot -> Smr_core.Mem.header -> unit
val clear : slot -> unit

val get : slot -> Smr_core.Mem.header option

val release : local -> slot -> unit
(** Clear the slot and return it to the owner's free list. *)

val protected_set : registry -> (int, unit) Hashtbl.t
(** Snapshot of the uids of all currently protected blocks (the hazard
    scan). Linear in the total number of slots. *)

val total_slots : registry -> int
