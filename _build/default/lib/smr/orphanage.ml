type t = Smr_core.Mem.header list Atomic.t

let create () = Atomic.make []

let rec add t hdrs =
  match hdrs with
  | [] -> ()
  | _ ->
      let cur = Atomic.get t in
      if not (Atomic.compare_and_set t cur (List.rev_append hdrs cur)) then
        add t hdrs

let rec pop_all t =
  let cur = Atomic.get t in
  match cur with
  | [] -> []
  | _ -> if Atomic.compare_and_set t cur [] then cur else pop_all t
