(** A shared bag where unregistering handles leave blocks that are retired
    but still protected by others; any later reclamation pass adopts them.
    (The paper's global [retireds: ConcurrentStack<void*>].) *)

type t

val create : unit -> t
val add : t -> Smr_core.Mem.header list -> unit
val pop_all : t -> Smr_core.Mem.header list
