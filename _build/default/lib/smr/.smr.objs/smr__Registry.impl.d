lib/smr/registry.ml: Format
