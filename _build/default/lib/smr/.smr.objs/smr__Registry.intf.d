lib/smr/registry.mli: Format
