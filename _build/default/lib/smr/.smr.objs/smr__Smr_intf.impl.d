lib/smr/smr_intf.ml: Smr_core
