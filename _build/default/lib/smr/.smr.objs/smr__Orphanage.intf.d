lib/smr/orphanage.mli: Smr_core
