lib/smr/orphanage.ml: Atomic List Smr_core
