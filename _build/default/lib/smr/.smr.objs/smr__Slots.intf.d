lib/smr/slots.mli: Hashtbl Smr_core
