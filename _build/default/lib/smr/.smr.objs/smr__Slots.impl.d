lib/smr/slots.ml: Array Atomic Hashtbl List Smr_core
