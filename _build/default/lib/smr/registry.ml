type scheme_criteria = {
  scheme : string;
  system_requirement : string;
  failure_condition : string;
  failure_handling : string;
  overhead : string;
  unreclaimed_bound : string;
}

let table1 =
  [
    {
      scheme = "PEBR";
      system_requirement = "heavy fence (optional)";
      failure_condition = "neutralization";
      failure_handling = "custom handling";
      overhead =
        "protection, validation, critical section protection on phase \
         change, critical section validation";
      unreclaimed_bound = "O(hazards + neutralization threshold)";
    };
    {
      scheme = "NBR";
      system_requirement = "signal, non-local jump";
      failure_condition = "neutralization";
      failure_handling = "only applicable to access-aware DS";
      overhead = "critical section protection on phase change";
      unreclaimed_bound = "O(hazards + neutralization threshold)";
    };
    {
      scheme = "VBR";
      system_requirement = "custom allocator, wide CAS";
      failure_condition = "outdated object/field";
      failure_handling = "custom handling";
      overhead = "validation";
      unreclaimed_bound = "O(threads)";
    };
    {
      scheme = "HP++";
      system_requirement = "heavy fence (optional)";
      failure_condition = "invalidated object";
      failure_handling = "custom handling";
      overhead = "protection, validation, frontier protection, invalidation";
      unreclaimed_bound = "O(hazards + frontiers + reclamation threshold)";
    };
  ]

type support = Yes | No | No_wait_freedom | Custom_recovery | Restructuring

let pp_support ppf = function
  | Yes -> Format.pp_print_string ppf "v"
  | No -> Format.pp_print_string ppf "x"
  | No_wait_freedom -> Format.pp_print_string ppf "^" (* wait-freedom lost *)
  | Custom_recovery -> Format.pp_print_string ppf "*"
  | Restructuring -> Format.pp_print_string ppf "**"

type applicability_row = {
  structure : string;
  implemented_as : string option;
  hp : support;
  debra_plus : support;
  nbr : support;
  ebr : support;
  hp_plus_class : support;
}

(* Paper Table 2 (adapted from Singh et al. with the paper's fixes). Rows
   with [implemented_as = Some m] are built in this repo and their HP /
   HP++-class cells are enforced at runtime by the functors. *)
let table2 =
  [
    {
      structure = "linked list (Heller et al. lazy list) [32]";
      implemented_as = Some "Lazylist";
      hp = No;
      debra_plus = No;
      nbr = No_wait_freedom;
      ebr = Yes;
      hp_plus_class = No_wait_freedom;
    };
    {
      structure = "linked list (Harris) [30]";
      implemented_as = Some "Hhslist";
      hp = No;
      debra_plus = Custom_recovery;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "linked list (Harris-Michael) [44]";
      implemented_as = Some "Hmlist";
      hp = Yes;
      debra_plus = Custom_recovery;
      nbr = No;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "partially ext. BST (Drachsler et al.) [24]";
      implemented_as = None;
      hp = No;
      debra_plus = No;
      nbr = Restructuring;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. BST (Ellen et al.) [26]";
      implemented_as = Some "Efrbtree";
      hp = Yes;
      debra_plus = Custom_recovery;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. BST (Natarajan-Mittal) [48]";
      implemented_as = Some "Nmtree";
      hp = No;
      debra_plus = Custom_recovery;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. BST (Ellen et al., amortized) [25]";
      implemented_as = None;
      hp = Yes;
      debra_plus = Custom_recovery;
      nbr = No;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. BST (David et al.) [18]";
      implemented_as = None;
      hp = No;
      debra_plus = No;
      nbr = No_wait_freedom;
      ebr = Yes;
      hp_plus_class = No_wait_freedom;
    };
    {
      structure = "int. BST (Howley-Jones) [36]";
      implemented_as = None;
      hp = No;
      debra_plus = Custom_recovery;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "int. BST (Ramachandran-Mittal) [50]";
      implemented_as = None;
      hp = No;
      debra_plus = No;
      nbr = No;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "partially ext. AVL (Bronson et al.) [6]";
      implemented_as = None;
      hp = Yes;
      debra_plus = No;
      nbr = No;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "partially ext. AVL (Drachsler et al.) [24]";
      implemented_as = None;
      hp = No;
      debra_plus = No;
      nbr = No;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. relaxed AVL (He-Li) [31]";
      implemented_as = None;
      hp = No;
      debra_plus = Yes;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. AVL (Brown) [8]";
      implemented_as = None;
      hp = No;
      debra_plus = Yes;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "patricia trie (Shafiei) [53]";
      implemented_as = None;
      hp = No;
      debra_plus = Custom_recovery;
      nbr = No_wait_freedom;
      ebr = Yes;
      hp_plus_class = No_wait_freedom;
    };
    {
      structure = "ext. chromatic tree (Brown et al.) [9]";
      implemented_as = None;
      hp = No;
      debra_plus = Yes;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. (a,b)-tree (Brown) [8]";
      implemented_as = None;
      hp = No;
      debra_plus = Yes;
      nbr = Yes;
      ebr = Yes;
      hp_plus_class = Yes;
    };
    {
      structure = "ext. interpolation tree (Brown et al.) [10]";
      implemented_as = None;
      hp = No;
      debra_plus = No;
      nbr = No;
      ebr = Yes;
      hp_plus_class = No_wait_freedom;
    };
  ]
