module Mem = Smr_core.Mem

type slot = Mem.header option Atomic.t

let chunk_size = 64

type chunk = slot array

type registry = { chunks : chunk list Atomic.t }

type local = {
  registry : registry;
  mutable free : slot list;
  mutable owned : int; (* slots handed out, for diagnostics *)
}

let create () = { chunks = Atomic.make [] }

let rec push_chunk registry chunk =
  let cur = Atomic.get registry.chunks in
  if not (Atomic.compare_and_set registry.chunks cur (chunk :: cur)) then
    push_chunk registry chunk

let new_chunk () = Array.init chunk_size (fun _ -> Atomic.make None)

let register registry =
  let chunk = new_chunk () in
  push_chunk registry chunk;
  { registry; free = Array.to_list chunk; owned = 0 }

let acquire local =
  match local.free with
  | s :: rest ->
      local.free <- rest;
      local.owned <- local.owned + 1;
      s
  | [] ->
      let chunk = new_chunk () in
      push_chunk local.registry chunk;
      local.free <- List.tl (Array.to_list chunk);
      local.owned <- local.owned + 1;
      chunk.(0)

let set slot hdr = Atomic.set slot (Some hdr)
let clear slot = Atomic.set slot None
let get slot = Atomic.get slot

let release local slot =
  clear slot;
  local.owned <- local.owned - 1;
  local.free <- slot :: local.free

let protected_set registry =
  let table = Hashtbl.create 64 in
  let scan_chunk chunk =
    Array.iter
      (fun slot ->
        match Atomic.get slot with
        | Some hdr -> Hashtbl.replace table (Mem.uid hdr) ()
        | None -> ())
      chunk
  in
  List.iter scan_chunk (Atomic.get registry.chunks);
  table

let total_slots registry = chunk_size * List.length (Atomic.get registry.chunks)
