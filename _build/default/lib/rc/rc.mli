(** RC — concurrent deferred reference counting, CDRC's EBR flavour
    (Anderson et al., PLDI 2022), simplified.

    Each block carries an incoming-link counter ({!Smr_core.Mem.refcount},
    born 1). Readers are protected by EBR critical sections (CDRC's deferred
    snapshots); unlinking a block defers the decrement of its counter
    through EBR, and a block whose counter reaches zero is destroyed,
    cascading decrements to the children it still points to
    ([retire_with_children]). Structures that share subobjects (Bonsai)
    announce extra incoming links with [incr_ref]; that per-link-update
    counter traffic is exactly what makes RC slow where link updates are
    plentiful (paper §5, Bonsai discussion).

    The paper notes the "retired but unreclaimed" metric is not well-defined
    for reference counting (its Figure 11 footnote); we report deferred
    decrements as retired and completed destructions as freed, which tracks
    the underlying EBR as the paper's appendix observes. *)

include Smr.Smr_intf.S
