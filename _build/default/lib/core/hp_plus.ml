module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage

let name = "HP++"
let robust = true
let supports_optimistic = true
let needs_protection = true
let counts_references = false

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  fence_epoch : int Atomic.t;
  orphans : Orphanage.t;
}

(* One successful TryUnlink, awaiting DoInvalidation: the closure invalidates
   every unlinked node; [hdrs] are their headers; [frontier_slots] hold the
   protections that must outlive invalidation (paper: thread-local
   [unlinkeds]). *)
type deferred = {
  invalidate_all : unit -> unit;
  hdrs : Mem.header list;
  frontier_slots : Slots.slot list;
}

type handle = {
  shared : t;
  local : Slots.local;
  mutable unlinkeds : deferred list;
  mutable unlinks_since_invalidation : int;
  mutable unlinks_since_reclaim : int;
  mutable retireds : Mem.header list;
  mutable retired_count : int;
  mutable epoched_hps : (int * Slots.slot list) list;
}

type guard = { slot : Slots.slot }

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    registry = Slots.create ();
    stats = Stats.create ();
    config;
    fence_epoch = Atomic.make 0;
    orphans = Orphanage.create ();
  }

let stats t = t.stats

let register shared =
  {
    shared;
    local = Slots.register shared.registry;
    unlinkeds = [];
    unlinks_since_invalidation = 0;
    unlinks_since_reclaim = 0;
    retireds = [];
    retired_count = 0;
    epoched_hps = [];
  }

(* Critical sections: HP-family schemes have none. *)
let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

(* Algorithm 5 FenceEpoch: a heavy fence wrapped in an epoch increment. Our
   atomics are SC, so the fence itself is subsumed; the epoch movement, which
   drives piggybacked hazard revocation, is implemented literally. *)
let heavy_fence t =
  let epoch = Atomic.get t.fence_epoch in
  ignore (Atomic.compare_and_set t.fence_epoch epoch (epoch + 1));
  Stats.on_heavy_fence t.stats

(* Algorithm 5 ReadEpoch: a light fence bracketed by two reads that must
   agree, guaranteeing a heavy fence separates any two reads two epochs
   apart. *)
let read_epoch t =
  let rec loop epoch =
    let fresh = Atomic.get t.fence_epoch in
    if fresh = epoch then epoch else loop fresh
  in
  loop (Atomic.get t.fence_epoch)

let fence_epoch t = Atomic.get t.fence_epoch

let release_epoched h =
  List.iter
    (fun (_, slots) -> List.iter (Slots.release h.local) slots)
    h.epoched_hps;
  h.epoched_hps <- []

(* Paper Algorithm 3 lines 22-31 / Algorithm 5 lines 3-10. *)
let do_invalidation h =
  let t = h.shared in
  match h.unlinkeds with
  | [] -> h.unlinks_since_invalidation <- 0
  | batch ->
      h.unlinkeds <- [];
      h.unlinks_since_invalidation <- 0;
      List.iter (fun d -> d.invalidate_all ()) batch;
      let hdrs = List.concat_map (fun d -> d.hdrs) batch in
      let slots = List.concat_map (fun d -> d.frontier_slots) batch in
      if t.config.epoched_fence then begin
        (* Revoke lazily: tag this batch's frontier slots with the current
           epoch and only release batches at least two epochs old — a heavy
           fence is guaranteed to have happened in between (Lemma A.2). *)
        let epoch = read_epoch t in
        let stale, fresh =
          List.partition (fun (e, _) -> e + 2 <= epoch) h.epoched_hps
        in
        List.iter (fun (_, ss) -> List.iter (Slots.release h.local) ss) stale;
        h.epoched_hps <- (epoch, slots) :: fresh
      end
      else begin
        (* Algorithm 3: one fence per batch, then revoke immediately. *)
        Stats.on_heavy_fence t.stats;
        List.iter (Slots.release h.local) slots
      end;
      h.retireds <- List.rev_append hdrs h.retireds;
      h.retired_count <- h.retired_count + List.length hdrs

(* Paper Algorithm 3 lines 32-35 / Algorithm 5 lines 11-16. *)
let reclaim h =
  let t = h.shared in
  let rs = List.rev_append (Orphanage.pop_all t.orphans) h.retireds in
  h.retireds <- [];
  h.retired_count <- 0;
  h.unlinks_since_reclaim <- 0;
  if t.config.epoched_fence then begin
    heavy_fence t;
    release_epoched h
  end;
  let protected_ = Slots.protected_set t.registry in
  let keep =
    List.filter
      (fun hdr ->
        if Hashtbl.mem protected_ (Mem.uid hdr) then true
        else begin
          Mem.free_mark hdr;
          Stats.on_free t.stats;
          false
        end)
      rs
  in
  h.retireds <- keep;
  h.retired_count <- List.length keep

let maybe_collect h =
  let c = h.shared.config in
  if h.unlinks_since_invalidation >= c.invalidate_threshold then
    do_invalidation h;
  if
    h.unlinks_since_reclaim >= c.reclaim_threshold
    || h.retired_count >= c.reclaim_threshold
  then reclaim h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  h.retireds <- hdr :: h.retireds;
  h.retired_count <- h.retired_count + 1;
  if h.retired_count >= h.shared.config.reclaim_threshold then reclaim h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier ~do_unlink ~node_header ~invalidate =
  let slots =
    List.map
      (fun hdr ->
        let s = Slots.acquire h.local in
        Slots.set s hdr;
        s)
      frontier
  in
  match do_unlink () with
  | None ->
      List.iter (Slots.release h.local) slots;
      false
  | Some nodes ->
      let hdrs = List.map node_header nodes in
      List.iter
        (fun hdr ->
          Mem.retire_mark hdr;
          Stats.on_retire h.shared.stats)
        hdrs;
      h.unlinkeds <-
        {
          invalidate_all = (fun () -> invalidate nodes);
          hdrs;
          frontier_slots = slots;
        }
        :: h.unlinkeds;
      h.unlinks_since_invalidation <- h.unlinks_since_invalidation + 1;
      h.unlinks_since_reclaim <- h.unlinks_since_reclaim + 1;
      maybe_collect h;
      true

let flush h =
  do_invalidation h;
  reclaim h

let unregister h =
  do_invalidation h;
  (* The frontier protections may still be needed by concurrent traversals
     only until their targets are invalidated, which do_invalidation just
     did; a final fence orders the revocation. *)
  heavy_fence h.shared;
  release_epoched h;
  reclaim h;
  Orphanage.add h.shared.orphans h.retireds;
  h.retireds <- [];
  h.retired_count <- 0

let pending_unlinked h =
  List.fold_left (fun acc d -> acc + List.length d.hdrs) 0 h.unlinkeds

let pending_retired h = h.retired_count
