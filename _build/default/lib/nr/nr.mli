(** NR — the no-reclamation baseline of the paper's evaluation.

    Every operation is free of reclamation overhead and every retired block
    leaks. It bounds the best possible throughput and the worst possible
    memory footprint of any real scheme. *)

include Smr.Smr_intf.S
