module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage

let name = "HP"
let robust = true
let supports_optimistic = false
let counts_references = false
let needs_protection = true

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  orphans : Orphanage.t;
}

type handle = {
  shared : t;
  local : Slots.local;
  mutable retireds : Mem.header list;
  mutable retired_count : int;
}

type guard = { slot : Slots.slot }

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    registry = Slots.create ();
    stats = Stats.create ();
    config;
    orphans = Orphanage.create ();
  }

let stats t = t.stats

let register shared =
  { shared; local = Slots.register shared.registry; retireds = []; retired_count = 0 }

let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

(* Paper Algorithm 2 Reclaim. The asymmetric-fence optimization makes the
   reclaimer pay the (counted) heavy fence so that TryProtect pays none. *)
let reclaim h =
  let t = h.shared in
  let rs = List.rev_append (Orphanage.pop_all t.orphans) h.retireds in
  h.retireds <- [];
  h.retired_count <- 0;
  Stats.on_heavy_fence t.stats;
  let protected_ = Slots.protected_set t.registry in
  let keep =
    List.filter
      (fun hdr ->
        if Hashtbl.mem protected_ (Mem.uid hdr) then true
        else begin
          Mem.free_mark hdr;
          Stats.on_free t.stats;
          false
        end)
      rs
  in
  h.retireds <- keep;
  h.retired_count <- List.length keep

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  h.retireds <- hdr :: h.retireds;
  h.retired_count <- h.retired_count + 1;
  if h.retired_count >= h.shared.config.reclaim_threshold then reclaim h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

(* No frontier protection, no invalidation: unlink then classic retire. *)
let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h = reclaim h

let unregister h =
  reclaim h;
  Orphanage.add h.shared.orphans h.retireds;
  h.retireds <- [];
  h.retired_count <- 0
