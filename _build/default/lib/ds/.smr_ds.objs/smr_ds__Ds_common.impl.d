lib/ds/ds_common.ml: Smr Smr_core
