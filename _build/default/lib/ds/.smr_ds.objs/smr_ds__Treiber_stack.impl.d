lib/ds/treiber_stack.ml: Ds_common List Smr Smr_core
