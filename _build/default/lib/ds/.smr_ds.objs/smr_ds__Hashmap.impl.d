lib/ds/hashmap.ml: Array Hhslist Hmlist List Smr
