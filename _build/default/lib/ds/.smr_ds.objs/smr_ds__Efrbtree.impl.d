lib/ds/efrbtree.ml: Atomic Ds_common List Option Smr Smr_core
