lib/ds/lazylist.ml: Atomic Ds_common List Mutex Smr Smr_core
