lib/ds/hmlist.ml: Ds_common List Option Smr Smr_core
