lib/ds/nmtree.ml: Ds_common List Option Smr Smr_core
