lib/ds/hhslist.ml: Ds_common List Option Smr Smr_core
