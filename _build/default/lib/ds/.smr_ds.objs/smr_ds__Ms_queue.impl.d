lib/ds/ms_queue.ml: Ds_common List Smr Smr_core
