lib/ds/skiplist.ml: Array Atomic Ds_common Int64 List Option Smr Smr_core
