lib/ds/bonsai.ml: Atomic Ds_common List Option Smr Smr_core
