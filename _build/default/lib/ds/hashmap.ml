(** Chaining hash table (Michael, SPAA 2002): a fixed array of lock-free
    ordered-list buckets. As in the paper's evaluation, buckets are
    Harris–Michael lists when the scheme cannot protect optimistic traversal
    (HP) and Harris lists with wait-free get otherwise. *)

module Make (S : Smr.Smr_intf.S) = struct
  module HM = Hmlist.Make (S)
  module HHS = Hhslist.Make (S)

  type 'v buckets =
    | Pessimistic of 'v HM.t array
    | Optimistic of 'v HHS.t array

  type 'v t = { scheme : S.t; buckets : 'v buckets; mask : int }

  type local = { hm : HM.local; hhs : HHS.local }

  let default_buckets = 512

  (* Fibonacci hashing spreads consecutive integer keys across buckets. *)
  let hash_key mask key = (key * 0x2545F4914F6CDD1D) lsr 13 land mask

  let create_sized ~buckets scheme =
    if buckets < 1 then invalid_arg "Hashmap.create_sized";
    let n =
      (* round up to a power of two *)
      let rec up n = if n >= buckets then n else up (n * 2) in
      up 1
    in
    let buckets =
      if S.supports_optimistic then
        Optimistic (Array.init n (fun _ -> HHS.create scheme))
      else Pessimistic (Array.init n (fun _ -> HM.create scheme))
    in
    { scheme; buckets; mask = n - 1 }

  let create scheme = create_sized ~buckets:default_buckets scheme

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    { hm = HM.make_local handle; hhs = HHS.make_local handle }

  let clear_local l =
    HM.clear_local l.hm;
    HHS.clear_local l.hhs

  let get t l key =
    let i = hash_key t.mask key in
    match t.buckets with
    | Pessimistic b -> HM.get b.(i) l.hm key
    | Optimistic b -> HHS.get b.(i) l.hhs key

  let insert t l key value =
    let i = hash_key t.mask key in
    match t.buckets with
    | Pessimistic b -> HM.insert b.(i) l.hm key value
    | Optimistic b -> HHS.insert b.(i) l.hhs key value

  let remove t l key =
    let i = hash_key t.mask key in
    match t.buckets with
    | Pessimistic b -> HM.remove b.(i) l.hm key
    | Optimistic b -> HHS.remove b.(i) l.hhs key

  (* Quiescent helpers. *)

  let to_list t =
    let all =
      match t.buckets with
      | Pessimistic b -> Array.to_list b |> List.concat_map HM.to_list
      | Optimistic b -> Array.to_list b |> List.concat_map HHS.to_list
    in
    List.sort compare all

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    match t.buckets with
    | Pessimistic b -> Array.iter HM.assert_reachable_not_freed b
    | Optimistic b -> Array.iter HHS.assert_reachable_not_freed b
end
