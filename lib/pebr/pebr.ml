module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Collector = Smr.Collector
module Trace = Obs.Trace

let name = "PEBR"
let robust = true
let supports_optimistic = true
let counts_references = false
let needs_protection = true

let quiescent = 0
let pinned_at epoch = (epoch lsl 1) lor 1
let is_pinned status = status land 1 = 1
let pinned_epoch status = status lsr 1

type entry = int * Mem.header

type t = {
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  global_epoch : int Atomic.t;
  participants : participant list Atomic.t;
  registry : Slots.registry;
  orphans : entry Orphanage.t;
  (* Adaptive retire threshold; see lib/hp/hp.ml. *)
  adaptive : int Atomic.t;
  (* Collector-domain-private accumulation and scan scratch. *)
  pending : entry Retire_bag.t;
  cscan : Slots.scan;
  (* smr-lint: allow R3 — written once in [create] before [t] escapes; read-only afterwards *)
  mutable collector : entry Retire_bag.t Collector.t option;
}

and participant = {
  status : int Atomic.t;
  alive : bool Atomic.t;
  neutralized : bool Atomic.t;
}

type handle = {
  shared : t;
  me : participant;
  local : Slots.local;
  (* Single-owner: swaps only on the owning domain's handoff path. *)
  mutable bag : entry Retire_bag.t;
  scan : Slots.scan;
  mutable retires_since_collect : int;
  (* Retires since the last event that covered this handle's garbage — an
     inline pass or a successful handoff. Gates the async fallback pass:
     bag {e length} would ratchet (unripe survivors keep it high after
     every pass), driving scans denser than the inline cadence. *)
  mutable retires_since_pass : int;
}

type guard = { slot : Slots.slot }

let entry_dummy : entry = (0, Mem.phantom)
let stats t = t.stats
let global_epoch t = Atomic.get t.global_epoch

let rec push_participant t p =
  let cur = Atomic.get t.participants in
  if not (Atomic.compare_and_set t.participants cur (p :: cur)) then
    push_participant t p

let crit_enter h =
  Atomic.set h.me.neutralized false;
  Atomic.set h.me.status (pinned_at (Atomic.get h.shared.global_epoch));
  (* Crash window: pinned critical section. Unlike EBR, an unreported
     victim only stalls reclamation until memory pressure neutralizes it
     (PEBR's robustness); report_crashed additionally reaps its shields. *)
  if Fault.enabled () then Fault.hit Fault.Crit

let crit_exit h = Atomic.set h.me.status quiescent
let crit_refresh h = crit_enter h

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

let neutralized h = Atomic.get h.me.neutralized
let protection_valid h = not (neutralized h)

(* Advance the epoch. Without [force], this is EBR's rule: every live
   pinned participant must have observed the current epoch. With [force]
   (reclamation under memory pressure), laggards are {e neutralized} — their
   blanket epoch protection is withdrawn, only their shields remain — and
   the advance proceeds regardless. Either way, a participant that stays
   non-neutralized and pinned at epoch [e] guarantees the global epoch is at
   most [e + 1], which is the grace period the freeing rule relies on. *)
let try_advance ?(force = false) t =
  let epoch = Atomic.get t.global_epoch in
  let ps = Atomic.get t.participants in
  let all_clear = ref true and any_dead = ref false in
  List.iter
    (fun p ->
      if not (Atomic.get p.alive) then any_dead := true
      else
        let s = Atomic.get p.status in
        if is_pinned s && pinned_epoch s <> epoch then
          if force then Atomic.set p.neutralized true
          else all_clear := false)
    ps;
  (* Prune dead participants (best-effort CAS) so they are not rescanned on
     every future advance attempt. *)
  if !any_dead then begin
    let pruned = List.filter (fun p -> Atomic.get p.alive) ps in
    ignore (Atomic.compare_and_set t.participants ps pruned)
  end;
  if !all_clear && Atomic.compare_and_set t.global_epoch epoch (epoch + 1)
  then
    (* b = 1 marks a forced advance, i.e. laggards were neutralized. *)
    Trace.emit Trace.Epoch_advance (-1) (epoch + 1) (if force then 1 else 0)

let skip_in_salvage (_, hdr) =
  Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr

let entry_uid (_, hdr) = Mem.uid hdr

(* Free blocks that are both epoch-ripe (grace period passed wrt
   non-neutralized threads) and unshielded. The neutralization writes in
   [try_advance] precede this shield snapshot, which is what makes the
   shield-then-validate pattern of clients sound. Shared by the inline pass
   and the collector drain; the caller has advanced the epoch and adopted
   orphans already. *)
let scan_and_free t ~scan bag =
  let epoch = Atomic.get t.global_epoch in
  Stats.on_heavy_fence t.stats;
  Slots.scan_snapshot t.registry scan;
  let before = Retire_bag.length bag in
  Retire_bag.filter_in_place
    (fun (e, hdr) ->
      (* Crash window: a kill mid-filter tears the bag; report_crashed (or
         scheme shutdown, for the collector's pending bag) salvages it with
         dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if e + 2 <= epoch && not (Slots.scan_mem scan (Mem.uid hdr)) then begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end
      else true)
    bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length bag)
      (Slots.scan_size scan)

let collect h =
  let t = h.shared in
  h.retires_since_collect <- 0;
  h.retires_since_pass <- 0;
  Stats.note_peaks t.stats;
  try_advance t;
  (* Memory pressure: the local bag outgrew [neutralize_lag] reclamation
     thresholds, so force the epoch forward, ejecting stragglers. *)
  if
    Retire_bag.length h.bag
    >= t.config.neutralize_lag * t.config.reclaim_threshold
  then try_advance ~force:true t;
  Orphanage.adopt_into t.orphans ~dst:h.bag;
  scan_and_free t ~scan:h.scan h.bag

(* Collector drain: fold handed-off bags and orphans into [t.pending], then
   one epoch advance (forced under pressure), one heavy fence and one
   shield snapshot for the whole batch. Runs only on the collector
   domain. *)
let drain t bags n =
  for i = 0 to n - 1 do
    Retire_bag.transfer ~src:bags.(i) ~dst:t.pending
  done;
  Orphanage.adopt_into t.orphans ~dst:t.pending;
  if not (Retire_bag.is_empty t.pending) then begin
    Stats.note_peaks t.stats;
    try_advance t;
    if
      Retire_bag.length t.pending
      >= t.config.neutralize_lag * t.config.reclaim_threshold
    then begin
      (* Force twice: entries retired at the stalled epoch [e] need the
         global epoch to reach [e + 2] before the freeing rule admits them,
         and one forced advance only gets to [e + 1]. The second call
         re-ejects the same laggards, so robustness is unchanged. *)
      try_advance ~force:true t;
      try_advance ~force:true t
    end;
    scan_and_free t ~scan:t.cscan t.pending
  end;
  let left = Retire_bag.length t.pending in
  if Trace.enabled () then Trace.emit Trace.Drain (-1) n left;
  let garbage = Stats.unreclaimed t.stats in
  let cur = Atomic.get t.adaptive in
  let next =
    (* the handoff grain is pinned: a bigger batch would amortize the
       snapshot only slightly better, but every queued bag is unreclaimed
       garbage, and growing the grain also widens the ring and drain-batch
       terms of the peak — own-bag + queued-ring must fit the inline peak
       envelope. The clamp still guards the policy arithmetic. *)
    Collector.adapt_threshold ~cur
      ~lo:(max 16 (t.config.reclaim_threshold / 8))
      ~hi:(max 16 (t.config.reclaim_threshold / 8))
      ~pending:garbage
  in
  if next <> cur then begin
    Atomic.set t.adaptive next;
    if Trace.enabled () then Trace.emit Trace.Adapt (-1) next garbage
  end;
  left

let create ?(config = Smr.Smr_intf.default_config) () =
  let t =
    {
      stats = Stats.create ();
      config;
      global_epoch = Atomic.make 0;
      participants = Atomic.make [];
      registry = Slots.create ();
      orphans = Orphanage.create ();
      adaptive =
        (* async mode starts at the low bound: hand off small bags early
           and often (a ring push costs nanoseconds), so queued garbage
           stays near the inline peak; the drain-side policy grows the
           batch only while garbage stays low *)
        Atomic.make
          (if config.async_reclaim then
             min config.reclaim_threshold
               (max 16 (config.reclaim_threshold / 8))
           else config.reclaim_threshold);
      pending = Retire_bag.create entry_dummy;
      cscan = Slots.scan_create ();
      collector = None;
    }
  in
  if config.async_reclaim then
    t.collector <-
      Some
        (Collector.spawn ~capacity:config.handoff_capacity ~length:Retire_bag.length
           ~drain:(drain t)
           ~dummy:(Retire_bag.create ~capacity:1 entry_dummy)
           ());
  t

let register shared =
  let me =
    {
      status = Atomic.make quiescent;
      alive = Atomic.make true;
      neutralized = Atomic.make false;
    }
  in
  push_participant shared me;
  {
    shared;
    me;
    local = Slots.register shared.registry;
    bag =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        entry_dummy;
    scan = Slots.scan_create ();
    retires_since_collect = 0;
    retires_since_pass = 0;
  }

(* Threshold crossed: hand the full bag over (taking a recycled empty one
   back) or keep accumulating until the configured baseline before the
   inline pass — a starved collector degrades this path to exactly the
   inline cadence, never a denser one. *)
(* Fold every queued bag into [dst] so the caller's imminent pass covers
   them too: the ring drains even when the collector is starved of cpu or
   dead, pinning async peak garbage near the inline envelope. *)
let absorb_queued c ~dst =
  let rec go () =
    match Collector.steal c with
    | Some b ->
        Retire_bag.transfer ~src:b ~dst;
        Collector.recycle c b;
        go ()
    | None -> ()
  in
  go ()

let collect_or_handoff h =
  let t = h.shared in
  let baseline = t.config.reclaim_threshold in
  match t.collector with
  | Some c when Collector.running c ->
      let full = h.bag in
      let len = Retire_bag.length full in
      h.retires_since_collect <- 0;
      (* Only small bags enter the ring. A bag that grew toward baseline
         during a ring-full spell — or that carries unripe epoch survivors
         after an inline pass — would park a near-baseline slug of garbage
         in the queue behind a starved collector (one ill-timed admission
         is exactly an inline peak's worth on top of the steady state).
         Oversized stragglers finish the inline path instead, which
         absorbs the queue anyway. *)
      if len <= 2 * Atomic.get t.adaptive && Collector.offer c full then begin
        (* the ring owns [full] now; replace it before the next push *)
        h.bag <-
          (match Collector.take_bag c with
          | Some b -> b
          | None ->
              Retire_bag.create ~capacity:(2 * Atomic.get t.adaptive)
                entry_dummy);
        h.retires_since_pass <- 0;
        if Trace.enabled () then
          Trace.emit Trace.Handoff (-1) len (Collector.occupancy c);
        (* Keep the epoch ticking at handoff cadence: the collector frees a
           handed-off entry only once its grace period has passed, and on a
           busy machine the collector's own advance attempts may lag. An
           attempt is one participant-list scan + CAS — noise next to the
           scan it saves the drain from re-running. *)
        try_advance t
      end
      else begin
        (* Advance even on a failed offer: the queued and local garbage
           keeps ripening while the ring is backed up, so the eventual
           pass (here or on the collector) frees it wholesale. *)
        try_advance t;
        if h.retires_since_pass >= baseline then begin
          absorb_queued c ~dst:h.bag;
          collect h
        end
      end
  | Some c ->
      Collector.note_fallback c;
      h.retires_since_collect <- 0;
      if h.retires_since_pass >= baseline then begin
        absorb_queued c ~dst:h.bag;
        collect h
      end
  | None -> collect h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.bag (Atomic.get h.shared.global_epoch, hdr);
  h.retires_since_collect <- h.retires_since_collect + 1;
  h.retires_since_pass <- h.retires_since_pass + 1;
  if h.retires_since_collect >= Atomic.get h.shared.adaptive then
    collect_or_handoff h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h =
  collect h;
  collect h;
  collect h

let unregister h =
  crit_exit h;
  collect h;
  Orphanage.add h.shared.orphans h.bag;
  Slots.unregister h.local;
  Atomic.set h.me.alive false

let shutdown t =
  match t.collector with
  | None -> ()
  | Some c ->
      Collector.shutdown c ~recover:(Orphanage.add t.orphans);
      (* The pending bag may be torn by a mid-filter collector kill:
         salvage in place, then donate whole. *)
      Retire_bag.salvage ~uid:entry_uid ~skip:skip_in_salvage t.pending;
      Orphanage.add t.orphans t.pending

(* Crash recovery: announce the crash (closing the victim's shield
   intervals in the trace), mark the participant dead so try_advance prunes
   it, reap its shield slots, and salvage the bag — possibly torn by a
   mid-reclaim death — into the orphanage with retirement epochs intact. *)
let report_crashed h =
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  Atomic.set h.me.alive false;
  Slots.reap h.local;
  Retire_bag.salvage ~uid:entry_uid ~skip:skip_in_salvage h.bag;
  Orphanage.add h.shared.orphans h.bag

let collector_counters t = Option.map Collector.counters t.collector
let collector_stats t = Option.map Collector.stats t.collector
