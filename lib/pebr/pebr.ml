module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Retire_bag = Smr.Retire_bag
module Trace = Obs.Trace

let name = "PEBR"
let robust = true
let supports_optimistic = true
let counts_references = false
let needs_protection = true

let quiescent = 0
let pinned_at epoch = (epoch lsl 1) lor 1
let is_pinned status = status land 1 = 1
let pinned_epoch status = status lsr 1

type t = {
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  global_epoch : int Atomic.t;
  participants : participant list Atomic.t;
  registry : Slots.registry;
  orphans : (int * Mem.header) list Atomic.t;
}

and participant = {
  status : int Atomic.t;
  alive : bool Atomic.t;
  neutralized : bool Atomic.t;
}

type handle = {
  shared : t;
  me : participant;
  local : Slots.local;
  bag : (int * Mem.header) Retire_bag.t;
  scan : Slots.scan;
  mutable retires_since_collect : int;
}

type guard = { slot : Slots.slot }

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    stats = Stats.create ();
    config;
    global_epoch = Atomic.make 0;
    participants = Atomic.make [];
    registry = Slots.create ();
    orphans = Atomic.make [];
  }

let stats t = t.stats
let global_epoch t = Atomic.get t.global_epoch

let rec push_participant t p =
  let cur = Atomic.get t.participants in
  if not (Atomic.compare_and_set t.participants cur (p :: cur)) then
    push_participant t p

let register shared =
  let me =
    {
      status = Atomic.make quiescent;
      alive = Atomic.make true;
      neutralized = Atomic.make false;
    }
  in
  push_participant shared me;
  {
    shared;
    me;
    local = Slots.register shared.registry;
    bag =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        (0, Mem.phantom);
    scan = Slots.scan_create ();
    retires_since_collect = 0;
  }

let crit_enter h =
  Atomic.set h.me.neutralized false;
  Atomic.set h.me.status (pinned_at (Atomic.get h.shared.global_epoch));
  (* Crash window: pinned critical section. Unlike EBR, an unreported
     victim only stalls reclamation until memory pressure neutralizes it
     (PEBR's robustness); report_crashed additionally reaps its shields. *)
  if Fault.enabled () then Fault.hit Fault.Crit

let crit_exit h = Atomic.set h.me.status quiescent
let crit_refresh h = crit_enter h

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

let neutralized h = Atomic.get h.me.neutralized
let protection_valid h = not (neutralized h)

(* Advance the epoch. Without [force], this is EBR's rule: every live
   pinned participant must have observed the current epoch. With [force]
   (reclamation under memory pressure), laggards are {e neutralized} — their
   blanket epoch protection is withdrawn, only their shields remain — and
   the advance proceeds regardless. Either way, a participant that stays
   non-neutralized and pinned at epoch [e] guarantees the global epoch is at
   most [e + 1], which is the grace period the freeing rule relies on. *)
let try_advance ?(force = false) t =
  let epoch = Atomic.get t.global_epoch in
  let ps = Atomic.get t.participants in
  let all_clear = ref true and any_dead = ref false in
  List.iter
    (fun p ->
      if not (Atomic.get p.alive) then any_dead := true
      else
        let s = Atomic.get p.status in
        if is_pinned s && pinned_epoch s <> epoch then
          if force then Atomic.set p.neutralized true
          else all_clear := false)
    ps;
  (* Prune dead participants (best-effort CAS) so they are not rescanned on
     every future advance attempt. *)
  if !any_dead then begin
    let pruned = List.filter (fun p -> Atomic.get p.alive) ps in
    ignore (Atomic.compare_and_set t.participants ps pruned)
  end;
  if !all_clear && Atomic.compare_and_set t.global_epoch epoch (epoch + 1)
  then
    (* b = 1 marks a forced advance, i.e. laggards were neutralized. *)
    Trace.emit Trace.Epoch_advance (-1) (epoch + 1) (if force then 1 else 0)

let rec adopt_orphans t =
  let cur = Atomic.get t.orphans in
  match cur with
  | [] -> []
  | _ -> if Atomic.compare_and_set t.orphans cur [] then cur else adopt_orphans t

(* Free blocks that are both epoch-ripe (grace period passed wrt
   non-neutralized threads) and unshielded. The neutralization writes in
   [try_advance] precede this shield snapshot, which is what makes the
   shield-then-validate pattern of clients sound. *)
let collect h =
  let t = h.shared in
  h.retires_since_collect <- 0;
  Stats.note_peaks t.stats;
  try_advance t;
  (* Memory pressure: the local bag outgrew [neutralize_lag] reclamation
     thresholds, so force the epoch forward, ejecting stragglers. *)
  if
    Retire_bag.length h.bag
    >= t.config.neutralize_lag * t.config.reclaim_threshold
  then try_advance ~force:true t;
  let epoch = Atomic.get t.global_epoch in
  Stats.on_heavy_fence t.stats;
  Slots.scan_snapshot t.registry h.scan;
  List.iter (Retire_bag.push h.bag) (adopt_orphans t);
  let before = Retire_bag.length h.bag in
  Retire_bag.filter_in_place
    (fun (e, hdr) ->
      (* Crash window: a kill mid-filter tears the bag; report_crashed
         salvages it with dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if e + 2 <= epoch && not (Slots.scan_mem h.scan (Mem.uid hdr)) then begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end
      else true)
    h.bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length h.bag)
      (Slots.scan_size h.scan)

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.bag (Atomic.get h.shared.global_epoch, hdr);
  h.retires_since_collect <- h.retires_since_collect + 1;
  if h.retires_since_collect >= h.shared.config.reclaim_threshold then collect h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h =
  collect h;
  collect h;
  collect h

let rec add_orphans t entries =
  match entries with
  | [] -> ()
  | _ ->
      let cur = Atomic.get t.orphans in
      if not (Atomic.compare_and_set t.orphans cur (List.rev_append entries cur))
      then add_orphans t entries

let unregister h =
  crit_exit h;
  collect h;
  add_orphans h.shared (Retire_bag.to_list h.bag);
  Retire_bag.clear h.bag;
  Slots.unregister h.local;
  Atomic.set h.me.alive false

(* Crash recovery: announce the crash (closing the victim's shield
   intervals in the trace), mark the participant dead so try_advance prunes
   it, reap its shield slots, and salvage the bag — possibly torn by a
   mid-reclaim death — into the orphanage with retirement epochs intact. *)
let report_crashed h =
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  Atomic.set h.me.alive false;
  Slots.reap h.local;
  add_orphans h.shared
    (Retire_bag.salvage
       ~uid:(fun (_, hdr) -> Mem.uid hdr)
       ~skip:(fun (_, hdr) -> Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr)
       h.bag)
