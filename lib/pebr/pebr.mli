(** PEBR — pointer- and epoch-based reclamation (Kang & Jung, PLDI 2020),
    simplified but behaviour-preserving.

    Threads pin epochs like EBR, but a reclaimer under pressure {e advances
    the epoch anyway}, {e neutralizing} the laggards: their blanket epoch
    protection is withdrawn and only their explicitly shielded pointers
    (HP-style slots) stay safe. A neutralized thread discovers it at its next
    protection validation ([protection_valid] returns [false]) and must
    restart from a safe point ([crit_refresh]).

    Neutralization is coarse-grained: when a reclaimer's bag exceeds
    [config.neutralize_lag * reclaim_threshold] blocks, {e every} lagging
    critical section is ejected whether or not it was going to touch
    contested memory — which is why long-running read
    operations collapse under heavy reclamation (paper Figure 10), the
    behaviour this implementation exists to reproduce. Robust: garbage is
    bounded by shields + the neutralization threshold (paper Table 1). *)

include Smr.Smr_intf.S

val neutralized : handle -> bool
val global_epoch : t -> int

val collector_counters : t -> Smr.Collector.counters option
(** Handoff/fallback/drain counters of the background collector, when
    [config.async_reclaim] started one; [None] in inline mode. *)
