type point =
  | Retire
  | Protect
  | Unlink
  | Reclaim
  | Crit
  | Net_read
  | Net_write
  | Collector

type action = Kill | Stall

exception Killed of point

let all_points =
  [ Retire; Protect; Unlink; Reclaim; Crit; Net_read; Net_write; Collector ]

let point_name = function
  | Retire -> "retire"
  | Protect -> "protect"
  | Unlink -> "unlink"
  | Reclaim -> "reclaim"
  | Crit -> "crit"
  | Net_read -> "net_read"
  | Net_write -> "net_write"
  | Collector -> "collector"

let action_name = function Kill -> "kill" | Stall -> "stall"

type plan = { point : point; action : action; after : int }

(* [armed] carries the plan and its countdown; [on] mirrors "armed and not
   yet fired" so the hook guard is one load of one atomic. The countdown is
   a fetch_and_add race: exactly one hitter observes the transition 1 -> 0
   and fires, no matter how many domains hammer the point. *)
let on = Atomic.make false
let armed : (plan * int Atomic.t) option Atomic.t = Atomic.make None
let fired_flag = Atomic.make false
let victim = Atomic.make (-1)
let stall_gate = Atomic.make false (* true while a victim must stay parked *)
let stalled_flag = Atomic.make false

let[@inline] enabled () = Atomic.get on
let fired () = Atomic.get fired_flag

let victim_dom () =
  match Atomic.get victim with -1 -> None | d -> Some d

let stalled () = Atomic.get stalled_flag
let release () = Atomic.set stall_gate false

let reset () =
  Atomic.set on false;
  Atomic.set armed None;
  release ();
  Atomic.set fired_flag false;
  Atomic.set stalled_flag false;
  Atomic.set victim (-1)

let arm ~point ~action ?(after = 1) () =
  if after < 1 then invalid_arg "Fault.arm: after";
  reset ();
  Atomic.set armed (Some ({ point; action; after }, Atomic.make after));
  Atomic.set on true

let hit p =
  match Atomic.get armed with
  | Some (plan, countdown)
    when plan.point = p && Atomic.fetch_and_add countdown (-1) = 1 ->
      Atomic.set on false;
      Atomic.set victim (Domain.self () :> int);
      Atomic.set fired_flag true;
      (match plan.action with
      | Kill -> raise (Killed p)
      | Stall ->
          Atomic.set stall_gate true;
          Atomic.set stalled_flag true;
          while Atomic.get stall_gate do
            Domain.cpu_relax ()
          done;
          Atomic.set stalled_flag false)
  | _ -> ()

let await_stalled () =
  while not (Atomic.get stalled_flag) do
    Domain.cpu_relax ()
  done

(* Private splitmix64 step: this module must sit below smr_core, so it
   cannot borrow Smr_core.Rng. *)
let mix64 x =
  let ( * ) = Int64.mul and ( ^^ ) = Int64.logxor in
  let shr = Int64.shift_right_logical in
  let x = Int64.add (Int64.of_int x) 0x9E3779B97F4A7C15L in
  let x = (x ^^ shr x 30) * 0xBF58476D1CE4E5B9L in
  let x = (x ^^ shr x 27) * 0x94D049BB133111EBL in
  Int64.to_int (x ^^ shr x 31) land max_int

let arm_seeded ~seed ~points ?(actions = [ Kill; Stall ]) () =
  if points = [] then invalid_arg "Fault.arm_seeded: points";
  if actions = [] then invalid_arg "Fault.arm_seeded: actions";
  let point = List.nth points (mix64 seed mod List.length points) in
  let action = List.nth actions (mix64 (seed + 1) mod List.length actions) in
  let after = 1 + (mix64 (seed + 2) mod 400) in
  arm ~point ~action ~after ();
  { point; action; after }
