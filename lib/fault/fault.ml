module Hook = Hook

type point =
  | Retire
  | Protect
  | Unlink
  | Reclaim
  | Crit
  | Net_read
  | Net_write
  | Collector

type action = Kill | Stall

exception Killed of point

let all_points =
  [ Retire; Protect; Unlink; Reclaim; Crit; Net_read; Net_write; Collector ]

let point_name = function
  | Retire -> "retire"
  | Protect -> "protect"
  | Unlink -> "unlink"
  | Reclaim -> "reclaim"
  | Crit -> "crit"
  | Net_read -> "net_read"
  | Net_write -> "net_write"
  | Collector -> "collector"

let action_name = function Kill -> "kill" | Stall -> "stall"

let point_code = function
  | Retire -> 0
  | Protect -> 1
  | Unlink -> 2
  | Reclaim -> 3
  | Crit -> 4
  | Net_read -> 5
  | Net_write -> 6
  | Collector -> 7

type plan = { point : point; action : action; after : int }

(* [armed] carries the plan and its countdown; [Hook.fault_bit] mirrors
   "armed and not yet fired" so the hook guard is one load of one atomic
   (the combined {!Hook} word, shared with tracing and the scheduler). The
   countdown is a fetch_and_add race: exactly one hitter observes the
   transition 1 -> 0 and fires, no matter how many domains hammer the
   point. *)
let armed : (plan * int Atomic.t) option Atomic.t = Atomic.make None
let fired_flag = Atomic.make false
let victim = Atomic.make (-1)
let stall_gate = Atomic.make false (* true while a victim must stay parked *)
let stalled_flag = Atomic.make false

(* Module-local binding of the shared word — same hot-guard discipline as
   Obs.Trace (see hook.mli). *)
let hook_flags = Hook.flags

(* True when a plan is armed OR the deterministic scheduler is installed:
   either way [hit] has work to do at this protocol point, and the guard
   stays one load + branch. *)
let[@inline] enabled () =
  Atomic.get hook_flags land (Hook.fault_bit lor Hook.sched_bit) <> 0

let armed_now () = Atomic.get hook_flags land Hook.fault_bit <> 0
let fired () = Atomic.get fired_flag

let victim_dom () =
  match Atomic.get victim with -1 -> None | d -> Some d

let stalled () = Atomic.get stalled_flag
let release () = Atomic.set stall_gate false

let reset () =
  Hook.clear_bit Hook.fault_bit;
  Atomic.set armed None;
  release ();
  Atomic.set fired_flag false;
  Atomic.set stalled_flag false;
  Atomic.set victim (-1)

let arm ~point ~action ?(after = 1) () =
  if after < 1 then invalid_arg "Fault.arm: after";
  reset ();
  Atomic.set armed (Some ({ point; action; after }, Atomic.make after));
  Hook.set_bit Hook.fault_bit

let fire p =
  match Atomic.get armed with
  | Some (plan, countdown)
    when plan.point = p && Atomic.fetch_and_add countdown (-1) = 1 ->
      Hook.clear_bit Hook.fault_bit;
      Atomic.set victim (Domain.self () :> int);
      Atomic.set fired_flag true;
      (match plan.action with
      | Kill -> raise (Killed p)
      | Stall ->
          Atomic.set stall_gate true;
          Atomic.set stalled_flag true;
          while Atomic.get stall_gate do
            Domain.cpu_relax ()
          done;
          Atomic.set stalled_flag false)
  | _ -> ()

(* The scheduler yield runs BEFORE the plan check: a schedule that parks
   this thread right at the protocol point still sees the armed countdown
   decremented by whoever the scheduler runs through the point first, so
   (schedule, plan) pairs replay deterministically. *)
let hit p =
  let f = Atomic.get hook_flags in
  if f land Hook.sched_bit <> 0 then
    Hook.yield (Hook.site_fault_base + point_code p);
  if f land Hook.fault_bit <> 0 then fire p

let await_stalled () =
  while not (Atomic.get stalled_flag) do
    Domain.cpu_relax ()
  done

(* Private splitmix64 step: this module must sit below smr_core, so it
   cannot borrow Smr_core.Rng. *)
let mix64 x =
  let ( * ) = Int64.mul and ( ^^ ) = Int64.logxor in
  let shr = Int64.shift_right_logical in
  let x = Int64.add (Int64.of_int x) 0x9E3779B97F4A7C15L in
  let x = (x ^^ shr x 30) * 0xBF58476D1CE4E5B9L in
  let x = (x ^^ shr x 27) * 0x94D049BB133111EBL in
  Int64.to_int (x ^^ shr x 31) land max_int

let arm_seeded ~seed ~points ?(actions = [ Kill; Stall ]) () =
  if points = [] then invalid_arg "Fault.arm_seeded: points";
  if actions = [] then invalid_arg "Fault.arm_seeded: actions";
  let point = List.nth points (mix64 seed mod List.length points) in
  let action = List.nth actions (mix64 (seed + 1) mod List.length actions) in
  let after = 1 + (mix64 (seed + 2) mod 400) in
  arm ~point ~action ~after ();
  { point; action; after }
