(** Seeded, deterministic fault injection for SMR protocol points.

    The schemes carry cheap guarded hooks
    ([if Fault.enabled () then Fault.hit P]) at the places where a real
    thread could die or stall mid-protocol: between [Mem.retire_mark] and
    the retire-bag push, while publishing a hazard slot, after a TryUnlink
    succeeded but before its DoInvalidation, in the middle of a reclamation
    pass, and inside an EBR/PEBR critical section. When disarmed (the
    default), every hook is one atomic load and a branch — the same
    discipline as {!Obs.Trace.enabled}.

    The networked service layer ([lib/net]) adds two {e client-side} socket
    points, [Net_read]/[Net_write], hit by the open-loop generator before
    each socket read/write: a [Stall] there models a slow (frozen) client
    deterministically, and a [Kill] models a client dying mid-request with
    its connection dropped on the floor. They are deliberately not hit on
    the server's reactor path — stalling a reactor domain would stall every
    session it serves, which is not the failure mode being modelled.

    An armed plan fires exactly once, on the [after]-th hit of its point,
    in whichever domain gets there first:

    - {e Kill} raises {!Killed} out of the victim's operation. A test or
      driver that catches it must abandon the handle without running
      [unregister] — that is the crash being simulated — and may later hand
      the dead handle to a survivor via the scheme's [report_crashed].
    - {e Stall} parks the victim inside the hook (hazard slots still
      published, critical section still pinned) until {!release}. The
      driver must release before joining the victim's domain.

    This module depends on nothing (it sits below [smr_core]), so plans
    are derived from a seed with a private splitmix64 mixer rather than
    [Smr_core.Rng]. *)

module Hook : module type of Hook
(** The combined trace/fault/sched flags word — see [hook.mli]. Re-exported
    here because this library wraps behind [Fault]. *)

type point =
  | Retire  (** after [Mem.retire_mark], before the retire-bag push *)
  | Protect  (** while publishing a hazard slot ([Slots.set]) *)
  | Unlink  (** TryUnlink succeeded, DoInvalidation not yet run (HP++) *)
  | Reclaim  (** inside a reclamation pass *)
  | Crit  (** inside an EBR/PEBR critical section *)
  | Net_read  (** client socket, before reading responses ([lib/net]) *)
  | Net_write  (** client socket, before sending a request ([lib/net]) *)
  | Collector
      (** top of the background collector's drain cycle ([lib/smr]): a
          [Kill] crashes the collector domain (mutators must fall back to
          inline reclamation), a [Stall] freezes it mid-pipeline with
          handed-off bags pending *)

type action = Kill | Stall

exception Killed of point
(** Raised out of the victim's operation by a [Kill] plan. *)

val all_points : point list
val point_name : point -> string
val action_name : action -> string

val point_code : point -> int
(** Stable small-int code for a point, also its {!Hook} yield-site offset
    ([Hook.site_fault_base + point_code p]). *)

val enabled : unit -> bool
(** True iff the protocol-point hooks have work to do: a plan is armed and
    has not fired, {e or} the deterministic scheduler ([lib/check]) is
    installed and wants a yield at this point. One load of the combined
    {!Hook} word. Hook guard. *)

val armed_now : unit -> bool
(** True iff a plan is armed and has not fired (the pre-scheduler meaning
    of {!enabled}). *)

val hit : point -> unit
(** Count one arrival at [point]: yield to the scheduler if one is
    installed, then fire the armed plan if this is the [after]-th arrival.
    Called only under an {!enabled} guard. *)

type plan = { point : point; action : action; after : int }

val arm : point:point -> action:action -> ?after:int -> unit -> unit
(** Arm one plan ([after] defaults to 1: fire on the first hit). Any
    previously armed plan is replaced. *)

val arm_seeded : seed:int -> points:point list -> ?actions:action list -> unit -> plan
(** Derive a plan deterministically from [seed] (same seed, same plan) over
    the given points (and [actions], default both) and arm it. [after] is
    drawn from [1..400]. Returns the plan so drivers can log it. *)

val fired : unit -> bool
(** The armed plan has gone off. *)

val victim_dom : unit -> int option
(** Domain id that tripped the plan, once {!fired}. *)

val stalled : unit -> bool
(** A [Stall] plan fired and its victim is parked in the hook. *)

val await_stalled : unit -> unit
(** Spin (with [Domain.cpu_relax]) until {!stalled}. Only meaningful when a
    [Stall] plan is armed and some thread is driving its point. *)

val release : unit -> unit
(** Unpark a stalled victim. Idempotent; harmless when nothing stalled. *)

val reset : unit -> unit
(** Disarm, release any stalled victim, clear [fired]/[victim_dom]. *)
