(** One atomic word gating every instrumentation concern on the SMR hot
    paths.

    The schemes, [Mem], [Slots] and the data structures carry guarded hooks
    of the shape [if X.enabled () then X.slow_path ...] at the protocol
    points where tracing records events, fault plans fire, and the
    deterministic scheduler ([lib/check]) switches logical threads. Before
    this module each concern kept its own [Atomic.t bool], so a site
    combining tracing and faults paid two loads; a third concern would have
    made it three.

    Now all three share {e one} flags word: bit 0 = tracing enabled, bit 1 =
    a fault plan armed, bit 2 = the cooperative scheduler installed.
    [Obs.Trace.enabled]/[Fault.enabled] read this word with a mask, so a
    fully disarmed hook is still exactly one atomic load and one branch —
    the discipline PR 3 benchmarked — and a site that consults both tracing
    and faults reads the word once per concern but never spawns extra
    atomics.

    The scheduler piggybacks on the {e existing} guards: when [sched] is
    set, [Obs.Trace.emit] and [Fault.hit] call {!yield} before doing their
    own (bit-gated) work. Crucially the yield fires on the sched bit alone,
    independent of whether tracing or a fault plan is also on — so a given
    program takes the {e same} sequence of yield points whether or not the
    tracer records, which is what makes schedule trails comparable across
    instrumented and bare runs. *)

val trace_bit : int
val fault_bit : int
val sched_bit : int

val flags : int Atomic.t
(** The word itself. Hot guards bind this to a module-local at init
    ([let flags = Hook.flags]) so the disarmed check is one load off their
    own module block plus the atomic read — going through {!word} on every
    call adds a cross-module indirection that costs ~40% on the
    emit-disabled hotpath row. Read-only for callers: mutate through
    {!set_bit}/{!clear_bit}. *)

val word : unit -> int
(** One atomic load of the combined flags word. *)

val any : unit -> bool
(** [word () <> 0]. *)

val set_bit : int -> unit
val clear_bit : int -> unit

(** {1 Yield sites}

    Sites are small ints namespaced by concern: a fault protocol point
    [p] yields as [site_fault_base + Fault.point_code p], a trace event of
    kind [k] as [site_trace_base + Obs.Trace.kind_code k]. *)

val site_fault_base : int
val site_trace_base : int

val yield : int -> unit
(** Call the installed scheduler callback. Callers must gate on the sched
    bit; calling with no scheduler installed is a harmless no-op. Never
    inlined: the disarmed fast path should not carry its frame. *)

val install_sched : (int -> unit) -> unit
(** Install the scheduler callback and set the sched bit. The callback runs
    on whichever domain hits an instrumented site; it must itself decide
    (e.g. via domain-local state) whether the caller is a scheduled logical
    thread or a bystander. *)

val uninstall_sched : unit -> unit
