(* The combined hook word. See hook.mli for the discipline. *)

let trace_bit = 1
let fault_bit = 2
let sched_bit = 4

let flags = Atomic.make 0

let[@inline] word () = Atomic.get flags
let[@inline] any () = Atomic.get flags <> 0

let rec set_bit b =
  let cur = Atomic.get flags in
  if not (Atomic.compare_and_set flags cur (cur lor b)) then set_bit b

let rec clear_bit b =
  let cur = Atomic.get flags in
  if not (Atomic.compare_and_set flags cur (cur land lnot b)) then clear_bit b

(* Yield-site namespace: fault protocol points sit at [site_fault_base +
   point code], trace kinds at [site_trace_base + kind code]. The mapping
   lives with the caller (Fault / Obs.Trace); this module only transports
   the integer. *)
let site_fault_base = 0
let site_trace_base = 32

let nop (_ : int) = ()
let yield_fn : (int -> unit) Atomic.t = Atomic.make nop

let[@inline never] yield site = (Atomic.get yield_fn) site

let install_sched f =
  Atomic.set yield_fn f;
  set_bit sched_bit

let uninstall_sched () =
  clear_bit sched_bit;
  Atomic.set yield_fn nop
