(* smr-lint: allow R5 — functor over Smr_intf.S wiring lib/net plumbing to the shardkv service; consumed only by bin/ and test/, documented inline *)
(** The networked shardkv server: listeners (Unix-domain and/or TCP
    loopback), one accept-loop domain, and a small pool of {!Reactor}
    domains, each owning its connections end to end.

    Per connection the reactor attaches one {e explicit} shardkv session,
    so the connection's SMR registration has exactly one owner. The two
    ways a connection ends map onto the service's session lifecycle:

    - peer closed / reset / sent garbage / died mid-request →
      [Kv.crash] — the registration is abandoned exactly as a crashed
      domain would leave it, and the reactor's periodic tick
      ([Kv.reap_dead]) has a survivor complete its protocol obligations;
    - server shutdown → [Kv.detach_session] — a clean [unregister].

    Connection churn therefore exercises the crash-recovery machinery
    continuously, which is the point: the acceptance check is that a
    client kill mid-request leaves no residue a reap cannot recover. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Kv = Service.Shardkv.Make (S)
  module Json = Service.Json

  type t = {
    kv : int Kv.t;
    addrs : Addr.t list;
    listeners : Unix.file_descr list;
    reactors : Reactor.t array;
    accept_stop : bool Atomic.t;
    (* smr-lint: allow R3 — lifecycle field touched only by the controlling domain (start/stop); spawned domains never read it *)
    mutable domains : unit Domain.t list;
    counters : Reactor.counters;
    started_at : float;
    (* smr-lint: allow R3 — lifecycle field touched only by the controlling domain (start/stop) *)
    mutable exposition : Obs.Exposition.t option;
  }

  let kv t = t.kv
  let counters t = t.counters
  let reap t = Kv.reap_dead t.kv

  let residue t =
    Smr_core.Stats.unreclaimed (S.stats (Kv.scheme t.kv))

  let stats_json t =
    let elapsed = Unix.gettimeofday () -. t.started_at in
    let snap = Kv.snapshot t.kv ~elapsed in
    let c = t.counters in
    Json.Obj
      [
        ("service", Service.Service_stats.to_json snap);
        ( "net",
          Json.Obj
            [
              ("accepted", Json.Int (Atomic.get c.Reactor.accepted));
              ("crashed", Json.Int (Atomic.get c.Reactor.crashed));
              ("closed", Json.Int (Atomic.get c.Reactor.closed));
              ("served", Json.Int (Atomic.get c.Reactor.served));
              ("retries", Json.Int (Atomic.get c.Reactor.retries));
              ("queued", Json.Int (Atomic.get c.Reactor.queued));
              ( "open_conns",
                Json.Int
                  (Array.fold_left
                     (fun acc r -> acc + Reactor.conn_count r)
                     0 t.reactors) );
            ] );
      ]

  let metrics_port t = Option.map Obs.Exposition.port t.exposition

  (* One scrape's worth of registry: the shardkv snapshot, scheme-level SMR
     stats, background-collector introspection and per-reactor gauges. Runs
     on the exposition listener's domain — everything it reads is either
     atomic or a racy-but-memory-safe field read (see Reactor's sampler
     accessors), which is all gauges need. *)
  let sample t m =
    let elapsed = Unix.gettimeofday () -. t.started_at in
    let snap = Kv.snapshot t.kv ~elapsed in
    Service.Telemetry.add_service_snapshot m snap;
    let labels = [ ("scheme", snap.Service.Service_stats.scheme) ] in
    Service.Telemetry.add_smr_stats m ~labels (S.stats (Kv.scheme t.kv));
    (match S.collector_stats (Kv.scheme t.kv) with
    | Some st -> Service.Telemetry.add_collector_stats m ~labels st
    | None -> ());
    let c = t.counters in
    let counter name help v =
      Obs.Metrics.counter m ~help name (float_of_int (Atomic.get v))
    in
    counter "netkv_accepted_total" "Connections adopted by reactors"
      c.Reactor.accepted;
    counter "netkv_crashed_total" "Connections torn down via the crash path"
      c.Reactor.crashed;
    counter "netkv_closed_total" "Connections closed cleanly"
      c.Reactor.closed;
    counter "netkv_served_total" "Requests executed" c.Reactor.served;
    counter "netkv_retries_total" "Retry responses sent (backpressure)"
      c.Reactor.retries;
    Array.iteri
      (fun i r ->
        let labels = [ ("reactor", string_of_int i) ] in
        let g name help v =
          Obs.Metrics.gauge m ~labels ~help name (float_of_int v)
        in
        g "netkv_reactor_connections" "Connections owned by this reactor"
          (Reactor.conn_count r);
        g "netkv_reactor_queue_depth"
          "Requests queued across this reactor's sessions"
          (Reactor.queued_depth r);
        g "netkv_reactor_out_backlog_bytes"
          "Reply bytes buffered but not yet written"
          (Reactor.out_backlog r))
      t.reactors

  (* The per-connection handler. [serve] runs on the reactor's domain,
     which owns [sess]; [Stats] is answered inline from the same snapshot
     path the CLI uses, as a JSON blob the codec clips at [max_frame]. *)
  let make_handler t () =
    let sess = Kv.attach t.kv in
    let serve req =
      match req with
      | Frame.Get k -> (
          match Kv.get_s t.kv sess k with
          | Some v -> Frame.Value v
          | None -> Frame.Not_found)
      | Frame.Put (k, v) -> Frame.Done (Kv.put_s t.kv sess k v)
      | Frame.Delete k -> Frame.Done (Kv.delete_s t.kv sess k)
      | Frame.Ping -> Frame.Pong
      | Frame.Stats ->
          Frame.Stats_payload (Json.to_string (stats_json t))
    in
    let close ~crashed =
      if crashed then Kv.crash sess else Kv.detach_session sess
    in
    { Reactor.serve; close }

  (* Accept loop: multiplexes every listener through one [select]; each
     accepted connection is handed round-robin to a reactor. Runs on its
     own domain until [accept_stop]. *)
  let accept_loop t =
    let next = ref 0 in
    while not (Atomic.get t.accept_stop) do
      match Unix.select t.listeners [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rs, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ ->
                  Unix.set_nonblock fd;
                  Reactor.add t.reactors.(!next) fd;
                  next := (!next + 1) mod Array.length t.reactors
              | exception
                  Unix.Unix_error
                    ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                      | Unix.ECONNABORTED ),
                      _,
                      _ ) ->
                  ())
            rs
    done

  let start ?(reactors = 2) ?(queue_bound = 64) ?batch ?high_water ?config
      ?(shards = 4) ?buckets_per_shard ?metrics addrs =
    if addrs = [] then invalid_arg "Server.start: no addresses";
    if reactors < 1 then invalid_arg "Server.start: reactors";
    let kv = Kv.create ?config ~shards ?buckets_per_shard () in
    let counters = Reactor.make_counters () in
    let listeners = List.map Addr.listen addrs in
    let rec t =
      lazy
        {
          kv;
          addrs;
          listeners;
          reactors =
            Array.init reactors (fun _ ->
                Reactor.create ~queue_bound ?batch ?high_water
                  ~make_handler:(fun () -> make_handler (Lazy.force t) ())
                  ~tick:(fun () -> ignore (Kv.reap_dead kv))
                  ~counters ());
          accept_stop = Atomic.make false;
          domains = [];
          counters;
          started_at = Unix.gettimeofday ();
          exposition = None;
        }
    in
    let t = Lazy.force t in
    (match metrics with
    | None -> ()
    | Some (addr, every) ->
        t.exposition <-
          Some (Obs.Exposition.start ~every ~sample:(sample t) addr));
    let reactor_domains =
      Array.to_list
        (Array.map (fun r -> Domain.spawn (fun () -> Reactor.run r)) t.reactors)
    in
    let acceptor = Domain.spawn (fun () -> accept_loop t) in
    t.domains <- acceptor :: reactor_domains;
    t

  (* Graceful stop: the acceptor dies first (no new connections), then the
     reactors close their remaining connections cleanly, then a final reap
     recovers anything client churn left dead. Listener sockets (and stale
     unix paths) are released last. *)
  let stop t =
    (* the scrape endpoint samples the kv: silence it before teardown *)
    (match t.exposition with
    | Some e ->
        Obs.Exposition.stop e;
        t.exposition <- None
    | None -> ());
    Atomic.set t.accept_stop true;
    Array.iter Reactor.request_stop t.reactors;
    List.iter Domain.join t.domains;
    t.domains <- [];
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    List.iter Addr.unlink_listener t.addrs;
    ignore (Kv.reap_dead t.kv);
    (* stop the background collector first (async_reclaim mode): queued
       bags are salvaged into the orphanage so the drain below adopts them *)
    Kv.shutdown t.kv;
    (* drain what the final reap orphaned: one throwaway session forces a
       pass over the shared bags so post-stop residue reflects true leaks,
       not merely unflushed garbage *)
    let s = Kv.attach t.kv in
    S.flush s.Kv.handle;
    Kv.detach_session s

  let snapshot ?degraded t ~elapsed = Kv.snapshot ?degraded t.kv ~elapsed
end
