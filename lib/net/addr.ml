(* smr-lint: allow R5 — thin Unix-socket address helpers consumed only inside lib/net and bin/; the surface is three functions over one variant *)
(** Listening/connecting addresses: Unix-domain sockets and TCP loopback.
    Parsed from the CLI syntax [unix:/path] / [tcp:HOST:PORT] / [tcp:PORT]
    (bare port implies 127.0.0.1). *)

type t = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then invalid_arg "Addr.parse: empty unix path";
      Unix_sock path
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j ->
          let host = String.sub rest 0 j in
          let port = int_of_string (String.sub rest (j + 1) (String.length rest - j - 1)) in
          Tcp ((if host = "" then "127.0.0.1" else host), port)
      | None -> Tcp ("127.0.0.1", int_of_string rest))
  | _ -> invalid_arg ("Addr.parse: " ^ s ^ " (want unix:/path or tcp:host:port)")

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let domain = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* Writing to a peer that already closed must surface as EPIPE for
   {!Session.flush} to map to [`Closed] — the default SIGPIPE disposition
   would kill the whole process instead. Idempotent; called by every
   listen/connect so no binary has to remember it. *)
let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | Sys.Signal_default | Sys.Signal_ignore -> ()
  | previous ->
      (* a binary installed its own handler; keep it *)
      Sys.set_signal Sys.sigpipe previous
  | exception (Invalid_argument _ | Sys_error _) -> ()

(* Bind + listen, nonblocking (the accept loop multiplexes listeners with
   [Unix.select], and a connection that resets between select and accept
   must not wedge it). A stale unix-socket path from a previous run is
   unlinked first. *)
let listen ?(backlog = 64) t =
  ignore_sigpipe ();
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (match t with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr t);
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  fd

let connect t =
  ignore_sigpipe ();
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr t)
   with e ->
     Unix.close fd;
     raise e);
  (match t with
  | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix_sock _ -> ());
  fd

let unlink_listener = function
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
