(* smr-lint: allow R5 — wire-format vocabulary (variants and opcode constants only): an .mli would duplicate every declaration verbatim *)
(** Wire frames for the networked shardkv service.

    Every frame is a compact length-prefixed binary record:

    {v
    offset  size  field
    0       4     length N of the rest of the frame, big-endian u32
    4       1     protocol version (currently 1)
    5       1     opcode (request 0x01-0x05, response 0x81-0x87)
    6       8     request id, big-endian i64 (echoed in the response)
    14      N-10  body, fixed layout per opcode
    v}

    Bodies: [Get]/[Delete] carry one i64 key; [Put] carries key then value
    (i64 each); [Value] one i64; [Done] one u8 flag; [Error] a u8 code, a
    u16 length and that many message bytes; [Stats_payload] the raw JSON
    bytes; everything else is empty. Keys and values are OCaml [int]s on
    both ends — 63-bit, so the i64 encoding is lossless.

    The whole frame (prefix included) is capped at {!max_frame} bytes: a
    peer announcing more is corrupt (or hostile) and the decoder reports it
    without buffering the announced length. *)

type request =
  | Get of int
  | Put of int * int
  | Delete of int
  | Ping
  | Stats  (** server replies with a JSON snapshot ({!response.Stats_payload}) *)

type response =
  | Value of int  (** [Get] hit *)
  | Not_found  (** [Get] miss *)
  | Done of bool  (** [Put]: inserted; [Delete]: removed *)
  | Retry  (** backpressure: the session's request queue is full *)
  | Error of int * string  (** error code (see below) and human message *)
  | Pong
  | Stats_payload of string

type payload = Request of request | Response of response

type t = { id : int; payload : payload }

let version = 1

let max_frame = 1 lsl 16
(** Whole-frame byte cap, length prefix included. *)

let header_bytes = 14
(** Prefix + version + opcode + id: the body starts here. *)

(* Error codes carried by [Error]. *)
let err_bad_frame = 1 (* peer sent something the decoder rejected *)
let err_server = 2 (* the operation died server-side *)

let op_get = 0x01
let op_put = 0x02
let op_delete = 0x03
let op_ping = 0x04
let op_stats = 0x05
let op_value = 0x81
let op_not_found = 0x82
let op_done = 0x83
let op_retry = 0x84
let op_error = 0x85
let op_pong = 0x86
let op_stats_payload = 0x87

let opcode = function
  | Request (Get _) -> op_get
  | Request (Put _) -> op_put
  | Request (Delete _) -> op_delete
  | Request Ping -> op_ping
  | Request Stats -> op_stats
  | Response (Value _) -> op_value
  | Response Not_found -> op_not_found
  | Response (Done _) -> op_done
  | Response Retry -> op_retry
  | Response (Error _) -> op_error
  | Response Pong -> op_pong
  | Response (Stats_payload _) -> op_stats_payload

let payload_name = function
  | Request (Get _) -> "get"
  | Request (Put _) -> "put"
  | Request (Delete _) -> "delete"
  | Request Ping -> "ping"
  | Request Stats -> "stats"
  | Response (Value _) -> "value"
  | Response Not_found -> "not_found"
  | Response (Done _) -> "done"
  | Response Retry -> "retry"
  | Response (Error _) -> "error"
  | Response Pong -> "pong"
  | Response (Stats_payload _) -> "stats_payload"
