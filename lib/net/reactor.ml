(* smr-lint: allow R5 — reactor event-loop internals consumed only inside lib/net and bin/; the generic surface (create/add/run/request_stop) is documented here and too entangled with Unix.file_descr plumbing for a separate interface to earn its keep *)
(** A small [Unix.select]-based reactor: one per shard-serving domain.

    Each reactor owns a set of connections handed to it by the accept loop
    (via a mutex-guarded inbox plus a self-pipe nudge, so a blocked
    [select] wakes immediately) and multiplexes them through one loop:

    - {e read}: drain readable sockets, decode complete frames, and either
      enqueue them on the session's bounded request queue or answer [Retry]
      when the queue is full (the backpressure contract);
    - {e serve}: execute up to [batch] queued requests per session per
      tick through the handler closure — skipping sessions whose output
      backlog passed [high_water], which is how a slow client stalls only
      itself (its queue then fills and arrivals bounce as [Retry]);
    - {e write}: flush output buffers as sockets become writable; a session
      past [high_water] is also dropped from the read set, so a client
      that stops reading eventually blocks in its own kernel buffers;
    - {e lifecycle}: a peer close/reset mid-stream, a corrupt frame, or an
      operation that dies mid-request tears the connection down through
      [handler.close ~crashed:true] — the server wires that to
      {!Service.Shardkv}'s [crash], making a dropped connection a crash
      that [reap_dead] recovers.

    The handler closures run on the reactor's domain, which therefore owns
    every kv session it attaches — the single-domain discipline explicit
    sessions require. *)

module Trace = Obs.Trace

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type handler = {
  serve : Frame.request -> Frame.response;
  close : crashed:bool -> unit;
}

type counters = {
  accepted : int Atomic.t; (* connections ever adopted by a reactor *)
  crashed : int Atomic.t; (* torn down via the crash path *)
  closed : int Atomic.t; (* torn down cleanly (server shutdown) *)
  served : int Atomic.t; (* requests executed *)
  retries : int Atomic.t; (* Retry frames sent *)
  queued : int Atomic.t; (* requests currently sitting in session queues *)
}

let make_counters () =
  {
    accepted = Atomic.make 0;
    crashed = Atomic.make 0;
    closed = Atomic.make 0;
    served = Atomic.make 0;
    retries = Atomic.make 0;
    queued = Atomic.make 0;
  }

type conn = { sess : Session.t; handler : handler }

type t = {
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  inbox_lock : Mutex.t;
  (* smr-lint: allow R3 — every access holds inbox_lock; see add/adopt *)
  mutable inbox : Unix.file_descr list;
  (* smr-lint: allow R3 — owned by the reactor domain; sampler-side reads are deliberately racy gauges (comment above queued_depth) *)
  mutable conns : conn list;
  stop : bool Atomic.t;
  make_handler : unit -> handler;
  queue_bound : int;
  batch : int;
  high_water : int;
  tick : unit -> unit;
  tick_every : float;
  counters : counters;
}

let create ?(queue_bound = 64) ?(batch = 64) ?(high_water = 1 lsl 18)
    ?(tick_every = 0.1) ~make_handler ~tick ~counters () =
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  {
    pipe_r;
    pipe_w;
    inbox_lock = Mutex.create ();
    inbox = [];
    conns = [];
    stop = Atomic.make false;
    make_handler;
    queue_bound;
    batch;
    high_water;
    tick;
    tick_every;
    counters;
  }

let nudge t = try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

(* Hand a freshly accepted connection to this reactor. Callable from any
   domain (the accept loop's). *)
let add t fd =
  Mutex.lock t.inbox_lock;
  t.inbox <- fd :: t.inbox;
  Mutex.unlock t.inbox_lock;
  nudge t

let request_stop t =
  Atomic.set t.stop true;
  nudge t

let conn_count t = List.length t.conns

(* Sampler-side introspection, callable from another domain: plain field
   reads of reactor-owned mutable state (list head, queue length, buffer
   length) — memory-safe, instantaneously stale by at most one tick, which
   is all a scraped gauge needs. *)
let queued_depth t =
  List.fold_left (fun acc c -> acc + Session.queue_depth c.sess) 0 t.conns

let out_backlog t =
  List.fold_left (fun acc c -> acc + Session.out_backlog c.sess) 0 t.conns

(* --- loop internals (reactor domain only) -------------------------------- *)

let teardown t conn ~crashed =
  Atomic.fetch_and_add t.counters.queued (-Session.queue_depth conn.sess)
  |> ignore;
  (if crashed then Atomic.incr t.counters.crashed
   else Atomic.incr t.counters.closed);
  conn.handler.close ~crashed;
  Session.close conn.sess;
  t.conns <- List.filter (fun c -> c != conn) t.conns

let adopt t =
  let drain = Bytes.create 64 in
  (try
     while Unix.read t.pipe_r drain 0 64 > 0 do
       ()
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ());
  Mutex.lock t.inbox_lock;
  let incoming = t.inbox in
  t.inbox <- [];
  Mutex.unlock t.inbox_lock;
  List.iter
    (fun fd ->
      Atomic.incr t.counters.accepted;
      let sess = Session.create ~queue_bound:t.queue_bound fd in
      (* wire marks are only noted while tracing, so this fires rarely *)
      Session.set_on_wire sess (fun id ->
          if Trace.enabled () then Trace.emit Trace.Req_wire id 0 0);
      t.conns <- { sess; handler = t.make_handler () } :: t.conns)
    (List.rev incoming)

(* Decode everything the read buffer holds. Decoding never stalls on a full
   queue — excess requests are answered [Retry] on the spot, which is what
   keeps the queue (and so the service's obligation to this session)
   bounded. Returns [false] if the connection must die. *)
let drain_frames t conn =
  let rec loop () =
    match Session.next_frame conn.sess with
    | `Need_more -> true
    | `Corrupt c ->
        Session.send conn.sess
          {
            Frame.id = 0;
            payload =
              Frame.Response
                (Frame.Error (Frame.err_bad_frame, Codec.corrupt_to_string c));
          };
        ignore (Session.flush conn.sess);
        false
    | `Frame f -> (
        match f.Frame.payload with
        | Frame.Response _ ->
            (* a client has no business sending responses *)
            Session.send conn.sess
              {
                Frame.id = f.Frame.id;
                payload =
                  Frame.Response
                    (Frame.Error (Frame.err_bad_frame, "response opcode from client"));
              };
            ignore (Session.flush conn.sess);
            false
        | Frame.Request _ ->
            if Session.queue_full conn.sess then begin
              conn.sess.Session.retries <- conn.sess.Session.retries + 1;
              Atomic.incr t.counters.retries;
              if Trace.enabled () then
                Trace.emit Trace.Req_recv f.Frame.id
                  (Frame.opcode f.Frame.payload) (-1);
              Session.send conn.sess
                { Frame.id = f.Frame.id; payload = Frame.Response Frame.Retry }
            end
            else begin
              Queue.push f conn.sess.Session.inq;
              Atomic.incr t.counters.queued;
              if Trace.enabled () then
                Trace.emit Trace.Req_recv f.Frame.id
                  (Frame.opcode f.Frame.payload)
                  (Session.queue_depth conn.sess)
            end;
            loop ())
  in
  loop ()

let handle_read t conn =
  match Session.fill conn.sess with
  | Session.Eof -> teardown t conn ~crashed:true
  | Session.Blocked -> ()
  | Session.Data -> if not (drain_frames t conn) then teardown t conn ~crashed:true

exception Dead_mid_request

let service_conn t conn =
  let budget = ref t.batch in
  (try
     while
       !budget > 0
       && (not (Queue.is_empty conn.sess.Session.inq))
       && Session.out_backlog conn.sess <= t.high_water
     do
       let f = Queue.pop conn.sess.Session.inq in
       Atomic.fetch_and_add t.counters.queued (-1) |> ignore;
       decr budget;
       let tracing = Trace.enabled () in
       if tracing then Trace.emit Trace.Req_dispatch f.Frame.id 0 0;
       let t0 = if tracing then now_ns () else 0 in
       let req =
         match f.Frame.payload with
         | Frame.Request r -> r
         | Frame.Response _ -> assert false (* never enqueued *)
       in
       let resp =
         match conn.handler.serve req with
         | r -> r
         | exception Fault.Killed _ -> raise Dead_mid_request
         | exception e ->
             Frame.Error (Frame.err_server, Printexc.to_string e)
       in
       conn.sess.Session.served <- conn.sess.Session.served + 1;
       Atomic.incr t.counters.served;
       Session.send conn.sess { Frame.id = f.Frame.id; payload = Frame.Response resp };
       if Trace.enabled () then begin
         Trace.emit Trace.Req_reply f.Frame.id
           (Frame.opcode (Frame.Response resp))
           (now_ns () - t0);
         Session.note_wire conn.sess f.Frame.id
       end
     done;
     match Session.flush conn.sess with
     | `Done | `Blocked -> ()
     | `Closed -> teardown t conn ~crashed:true
   with Dead_mid_request ->
     (* the kv operation died mid-protocol (an armed Kill): the session is
        a corpse — crash it and let a survivor's reap recover the scheme *)
     teardown t conn ~crashed:true)

(* Run until [request_stop]; call from the reactor's own domain. Remaining
   connections get a clean close on the way out (server-initiated shutdown
   is not a client crash). *)
let run t =
  let last_tick = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop) do
    let readable =
      t.pipe_r
      :: List.filter_map
           (fun c ->
             if Session.out_backlog c.sess > t.high_water then None
             else Some c.sess.Session.fd)
           t.conns
    in
    let writable =
      List.filter_map
        (fun c ->
          if Session.out_backlog c.sess > 0 then Some c.sess.Session.fd else None)
        t.conns
    in
    (match Unix.select readable writable [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, ws, _ ->
        if List.memq t.pipe_r rs then adopt t;
        List.iter
          (fun c -> if List.memq c.sess.Session.fd rs then handle_read t c)
          t.conns;
        List.iter (fun c -> service_conn t c) t.conns;
        List.iter
          (fun c ->
            if List.memq c.sess.Session.fd ws && Session.out_backlog c.sess > 0
            then
              match Session.flush c.sess with
              | `Done | `Blocked -> ()
              | `Closed -> teardown t c ~crashed:true)
          t.conns);
    let now = Unix.gettimeofday () in
    if now -. !last_tick >= t.tick_every then begin
      last_tick := now;
      t.tick ()
    end
  done;
  List.iter (fun c -> teardown t c ~crashed:false) t.conns;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
