(** Binary codec for {!Frame}: a [Buffer]-based encoder and a strict
    incremental decoder for untrusted bytes. *)

(** Unrecoverable framing damage. Framing is length-based, so there is no
    resynchronization after a bad header: the connection must be dropped. *)
type corrupt =
  | Oversized of int  (** declared whole-frame size exceeds {!Frame.max_frame} *)
  | Runt of int  (** declared length cannot even hold the fixed header *)
  | Bad_version of int
  | Bad_opcode of int
  | Bad_length of { opcode : int; body : int }
      (** body length inconsistent with the opcode's fixed layout *)

type decoded =
  | Frame of Frame.t * int  (** decoded frame and total bytes consumed *)
  | Need_more  (** a longer read may complete the frame *)
  | Corrupt of corrupt

val corrupt_to_string : corrupt -> string

val encode : Buffer.t -> Frame.t -> unit
(** Append one encoded frame. Oversized [Error] messages and
    [Stats_payload] bodies are clipped to keep the frame under
    {!Frame.max_frame}. *)

val encode_bytes : Frame.t -> Bytes.t
(** [encode] into a fresh buffer. *)

val decode : Bytes.t -> off:int -> avail:int -> decoded
(** Decode one frame from [b.[off .. off+avail)]. Never raises and never
    inspects a byte at or past [off + avail] — nor past the frame's own
    declared end on success. *)
