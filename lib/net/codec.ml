(* Zero-dependency binary codec for {!Frame}. The decoder is the part that
   faces untrusted bytes, so its contract is strict: it never raises, never
   reads past the declared frame end (and never past [avail]), and reports
   anything malformed as a typed [Corrupt] instead of guessing. *)

type corrupt =
  | Oversized of int
  | Runt of int
  | Bad_version of int
  | Bad_opcode of int
  | Bad_length of { opcode : int; body : int }

type decoded =
  | Frame of Frame.t * int
  | Need_more
  | Corrupt of corrupt

let corrupt_to_string = function
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds cap %d" n Frame.max_frame
  | Runt n -> Printf.sprintf "declared length %d cannot hold a header" n
  | Bad_version v -> Printf.sprintf "protocol version %d (want %d)" v Frame.version
  | Bad_opcode op -> Printf.sprintf "unknown opcode 0x%02x" op
  | Bad_length { opcode; body } ->
      Printf.sprintf "body of %d bytes malformed for opcode 0x%02x" body opcode

(* --- encoding ----------------------------------------------------------- *)

(* [Error] messages and [Stats_payload] bodies are clipped so the frame
   always fits [max_frame]; a truncated stats blob is the sender's problem
   to avoid (the server's snapshots are a few KB), a truncated error
   message is harmless. *)
let max_error_msg = Frame.max_frame - Frame.header_bytes - 3
let max_stats_payload = Frame.max_frame - Frame.header_bytes

let clip limit s = if String.length s > limit then String.sub s 0 limit else s

let body_bytes = function
  | Frame.Request (Frame.Get _) | Frame.Request (Frame.Delete _) -> 8
  | Frame.Request (Frame.Put _) -> 16
  | Frame.Request Frame.Ping | Frame.Request Frame.Stats -> 0
  | Frame.Response (Frame.Value _) -> 8
  | Frame.Response Frame.Not_found
  | Frame.Response Frame.Retry
  | Frame.Response Frame.Pong ->
      0
  | Frame.Response (Frame.Done _) -> 1
  | Frame.Response (Frame.Error (_, m)) -> 3 + String.length (clip max_error_msg m)
  | Frame.Response (Frame.Stats_payload s) ->
      String.length (clip max_stats_payload s)

let encode buf { Frame.id; payload } =
  let n = Frame.header_bytes - 4 + body_bytes payload in
  Buffer.add_int32_be buf (Int32.of_int n);
  Buffer.add_uint8 buf Frame.version;
  Buffer.add_uint8 buf (Frame.opcode payload);
  Buffer.add_int64_be buf (Int64.of_int id);
  match payload with
  | Frame.Request (Frame.Get k) | Frame.Request (Frame.Delete k) ->
      Buffer.add_int64_be buf (Int64.of_int k)
  | Frame.Request (Frame.Put (k, v)) ->
      Buffer.add_int64_be buf (Int64.of_int k);
      Buffer.add_int64_be buf (Int64.of_int v)
  | Frame.Request Frame.Ping | Frame.Request Frame.Stats -> ()
  | Frame.Response (Frame.Value v) -> Buffer.add_int64_be buf (Int64.of_int v)
  | Frame.Response Frame.Not_found
  | Frame.Response Frame.Retry
  | Frame.Response Frame.Pong ->
      ()
  | Frame.Response (Frame.Done flag) -> Buffer.add_uint8 buf (if flag then 1 else 0)
  | Frame.Response (Frame.Error (code, msg)) ->
      let msg = clip max_error_msg msg in
      Buffer.add_uint8 buf (code land 0xff);
      Buffer.add_uint16_be buf (String.length msg);
      Buffer.add_string buf msg
  | Frame.Response (Frame.Stats_payload s) ->
      Buffer.add_string buf (clip max_stats_payload s)

let encode_bytes frame =
  let buf = Buffer.create 32 in
  encode buf frame;
  Buffer.to_bytes buf

(* --- decoding ----------------------------------------------------------- *)

let u8 b i = Char.code (Bytes.get b i)

let u32 b i =
  (u8 b i lsl 24) lor (u8 b (i + 1) lsl 16) lor (u8 b (i + 2) lsl 8)
  lor u8 b (i + 3)

let u16 b i = (u8 b i lsl 8) lor u8 b (i + 1)
let i64 b i = Int64.to_int (Bytes.get_int64_be b i)

(* Decode one frame out of [b.[off .. off+avail)]. [Need_more] means a
   longer read may complete the frame; [Corrupt] means the stream is
   unrecoverable at this point (framing is length-based, so after a bad
   header there is no resynchronization — drop the connection). On success
   the returned count covers the whole frame including the length prefix;
   no byte at or past [off + consumed] has been inspected. *)
let decode b ~off ~avail =
  if avail < 4 then Need_more
  else
    let n = u32 b off in
    if n + 4 > Frame.max_frame then Corrupt (Oversized (n + 4))
    else if n < Frame.header_bytes - 4 then Corrupt (Runt n)
    else if avail < n + 4 then Need_more
    else
      let ver = u8 b (off + 4) in
      if ver <> Frame.version then Corrupt (Bad_version ver)
      else
        let op = u8 b (off + 5) in
        let id = i64 b (off + 6) in
        let body = off + Frame.header_bytes in
        let blen = n - (Frame.header_bytes - 4) in
        let consumed = n + 4 in
        let frame payload = Frame ({ Frame.id; payload }, consumed) in
        let bad = Corrupt (Bad_length { opcode = op; body = blen }) in
        if op = Frame.op_get then
          if blen <> 8 then bad else frame (Frame.Request (Frame.Get (i64 b body)))
        else if op = Frame.op_put then
          if blen <> 16 then bad
          else frame (Frame.Request (Frame.Put (i64 b body, i64 b (body + 8))))
        else if op = Frame.op_delete then
          if blen <> 8 then bad
          else frame (Frame.Request (Frame.Delete (i64 b body)))
        else if op = Frame.op_ping then
          if blen <> 0 then bad else frame (Frame.Request Frame.Ping)
        else if op = Frame.op_stats then
          if blen <> 0 then bad else frame (Frame.Request Frame.Stats)
        else if op = Frame.op_value then
          if blen <> 8 then bad
          else frame (Frame.Response (Frame.Value (i64 b body)))
        else if op = Frame.op_not_found then
          if blen <> 0 then bad else frame (Frame.Response Frame.Not_found)
        else if op = Frame.op_done then
          if blen <> 1 then bad
          else frame (Frame.Response (Frame.Done (u8 b body <> 0)))
        else if op = Frame.op_retry then
          if blen <> 0 then bad else frame (Frame.Response Frame.Retry)
        else if op = Frame.op_error then begin
          if blen < 3 then bad
          else
            let code = u8 b body in
            let mlen = u16 b (body + 1) in
            if 3 + mlen <> blen then bad
            else
              frame
                (Frame.Response
                   (Frame.Error (code, Bytes.sub_string b (body + 3) mlen)))
        end
        else if op = Frame.op_pong then
          if blen <> 0 then bad else frame (Frame.Response Frame.Pong)
        else if op = Frame.op_stats_payload then
          frame
            (Frame.Response (Frame.Stats_payload (Bytes.sub_string b body blen)))
        else Corrupt (Bad_opcode op)
