(* smr-lint: allow R5 — open-loop client internals consumed only by bin/ and test/; config/result records are documented inline and mirrored in DESIGN.md §12 *)
(** Open-loop load generation against a {!Server}.

    A closed-loop client (like [shardkv_bench]'s workers) waits for each
    response before issuing the next request, so when the server stalls the
    client silently stops offering load — the histogram never sees the
    requests that {e would} have been issued during the stall. That is
    coordinated omission. This generator is open-loop: each connection
    draws arrival times from a seeded exponential process {e in advance} of
    the server's behaviour and charges every request from its scheduled
    arrival, whether or not the socket was ready to carry it.

    Three latency views are kept per connection:

    - {e uncorrected}: completion − the moment the request's bytes reached
      the kernel, the flattering number a coordinated-omitting harness
      reports (time queued unsent in the client's own buffer is exactly
      what such a harness never sees, so it must not be charged here);
    - {e backfill}: HdrHistogram-style correction
      ({!Service.Histogram.record_corrected}) applied to the uncorrected
      sample with the mean inter-arrival as the expected interval;
    - {e corrected}: completion − {e scheduled} arrival, which charges
      queueing delay (including time the request sat unsent behind a
      blocked socket) to latency directly.

    Connections run one per domain, pipelined: scheduled sends do not wait
    for earlier responses. [Retry] responses (the server's backpressure)
    are counted, not timed. The {!Fault} points [Net_write]/[Net_read] are
    hit before each socket write/read, so a seeded [Stall] freezes exactly
    one connection (others must keep completing — a test pins this) and a
    [Kill] drops a connection mid-request, exercising the server's
    crash-on-disconnect path. *)

module Rng = Smr_core.Rng
module Histogram = Service.Histogram
module Key_dist = Service.Key_dist

type config = {
  addr : Addr.t;
  conns : int;
  rate : float;  (** total offered requests/sec across all connections *)
  duration : float;  (** seconds of scheduled arrivals *)
  seed : int;
  keys : int;  (** key-space size *)
  read_pct : int;  (** % of requests that are GETs; rest split PUT/DELETE *)
  dist : string;  (** key distribution name for {!Service.Key_dist} *)
  theta : float;  (** zipfian skew, when [dist = "zipfian"] *)
  drain : float;  (** extra seconds to wait for in-flight responses *)
}

let default_config addr =
  {
    addr;
    conns = 4;
    rate = 20_000.0;
    duration = 2.0;
    seed = 0x0b5e55ed;
    keys = 1 lsl 14;
    read_pct = 80;
    dist = "uniform";
    theta = 0.99;
    drain = 2.0;
  }

type conn_result = {
  sent : int;
  completed : int;
  retried : int;
  abandoned : int;  (** still pending when the drain window closed *)
  killed : bool;  (** a seeded [Kill] took this connection down *)
  stalled_ns : int;  (** time parked in a [Stall], if any *)
  uncorrected : Histogram.t;
  backfill : Histogram.t;
  corrected : Histogram.t;
}

type result = {
  offered_rps : float;
  achieved_rps : float;
  elapsed : float;  (** wall seconds from first scheduled arrival to last completion *)
  total_sent : int;
  total_completed : int;
  total_retried : int;
  total_abandoned : int;
  kills : int;
  r_uncorrected : Histogram.t;
  r_backfill : Histogram.t;
  r_corrected : Histogram.t;
  per_conn : conn_result list;
}

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Exponential inter-arrival gap in ns for one connection's Poisson
   process. [Rng.float] is in [0,1); guard the log away from 0. *)
let exp_gap_ns rng ~mean_ns =
  let u = 1.0 -. Rng.float rng in
  int_of_float (-.mean_ns *. log (max u 1e-12))

(* [send_ns] starts as the buffering time and is re-stamped when the frame's
   last byte actually reaches the kernel — the uncorrected histogram must
   measure what a coordinated-omitting harness would (write, then wait), not
   charge time spent queued in our own user-space buffer, or overload would
   inflate the flattering number into agreement with the corrected one. *)
type pending = { sched_ns : int; mutable send_ns : int }

(* One connection's whole life: connect, schedule, pipeline, drain. Runs on
   its own domain. All socket I/O goes through the shared {!Session}
   framing (the client side uses the same buffers, minus the request
   queue). *)
let run_conn cfg i =
  let rng = Rng.create ~seed:(cfg.seed + (i * 0x9e3779b9)) in
  let dist = Key_dist.of_name ~theta:cfg.theta cfg.dist cfg.keys in
  let fd = Addr.connect cfg.addr in
  Unix.set_nonblock fd;
  let sess = Session.create fd in
  let mean_ns = 1e9 *. float_of_int cfg.conns /. cfg.rate in
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 256 in
  let uncorrected = Histogram.create () in
  let backfill = Histogram.create () in
  let corrected = Histogram.create () in
  let interval = int_of_float mean_ns in
  let sent = ref 0 in
  let completed = ref 0 in
  let retried = ref 0 in
  let killed = ref false in
  let stalled_ns = ref 0 in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    (i lsl 40) lor !next_id
  in
  let request rng =
    let key = Key_dist.next dist rng in
    let r = Rng.below rng 100 in
    if r < cfg.read_pct then Frame.Get key
    else if r < cfg.read_pct + ((100 - cfg.read_pct) / 2) then
      Frame.Put (key, key)
    else Frame.Delete key
  in
  let record_completion id resp_op =
    match Hashtbl.find_opt pending id with
    | None -> () (* duplicate or post-drain stray; ignore *)
    | Some p ->
        Hashtbl.remove pending id;
        incr completed;
        let t = now_ns () in
        if Obs.Trace.enabled () then
          Obs.Trace.emit Obs.Trace.Req_done id resp_op 0;
        let service_lat = max 0 (t - p.send_ns) in
        Histogram.record uncorrected service_lat;
        Histogram.record_corrected backfill ~interval service_lat;
        Histogram.record corrected (max 0 (t - p.sched_ns))
  in
  let drain_responses () =
    let rec frames () =
      match Session.next_frame sess with
      | `Need_more -> ()
      | `Corrupt c -> failwith ("openloop: corrupt response: " ^ Codec.corrupt_to_string c)
      | `Frame f ->
          (match f.Frame.payload with
          | Frame.Response Frame.Retry ->
              incr retried;
              Hashtbl.remove pending f.Frame.id
          | Frame.Response _ ->
              record_completion f.Frame.id (Frame.opcode f.Frame.payload)
          | Frame.Request _ -> failwith "openloop: request frame from server");
          frames ()
    in
    if Fault.enabled () then begin
      let t0 = now_ns () in
      Fault.hit Fault.Net_read;
      let dt = now_ns () - t0 in
      if dt > 1_000_000 then stalled_ns := !stalled_ns + dt
    end;
    match Session.fill sess with
    | Session.Eof -> `Closed
    | Session.Blocked -> `Ok
    | Session.Data ->
        frames ();
        `Ok
  in
  (* Wire-time stamping rides {!Session}'s mark queue: as each marked
     frame's last byte reaches the kernel, re-stamp its send time (and let
     the tracer know, for client/server correlation by frame id). *)
  Session.set_on_wire sess (fun id ->
      (match Hashtbl.find_opt pending id with
      | Some p -> p.send_ns <- now_ns ()
      | None -> ());
      if Obs.Trace.enabled () then Obs.Trace.emit Obs.Trace.Req_send id 0 0);
  let flush_out () =
    if Session.out_backlog sess > 0 then begin
      if Fault.enabled () then begin
        let t0 = now_ns () in
        Fault.hit Fault.Net_write;
        let dt = now_ns () - t0 in
        if dt > 1_000_000 then stalled_ns := !stalled_ns + dt
      end;
      ignore (Session.flush sess)
    end
  in
  let abrupt_close () =
    (* a killed client does not say goodbye: no flush, no shutdown — the
       kernel sends FIN/RST when the fd dies and the server sees a crash *)
    killed := true;
    Session.close sess
  in
  let result () =
    {
      sent = !sent;
      completed = !completed;
      retried = !retried;
      abandoned = Hashtbl.length pending;
      killed = !killed;
      stalled_ns = !stalled_ns;
      uncorrected;
      backfill;
      corrected;
    }
  in
  try
    let t0 = now_ns () in
    let t_end = t0 + int_of_float (cfg.duration *. 1e9) in
    let next_arrival = ref (t0 + exp_gap_ns rng ~mean_ns) in
    (* schedule phase: send every request whose arrival time has passed,
       then sleep in select until the next arrival or socket readiness *)
    while now_ns () < t_end do
      let now = now_ns () in
      while !next_arrival <= now && !next_arrival < t_end do
        let id = fresh_id () in
        Hashtbl.replace pending id
          { sched_ns = !next_arrival; send_ns = now_ns () };
        Session.send sess { Frame.id; payload = Frame.Request (request rng) };
        Session.note_wire sess id;
        incr sent;
        next_arrival := !next_arrival + exp_gap_ns rng ~mean_ns
      done;
      flush_out ();
      (match drain_responses () with
      | `Closed -> raise Exit
      | `Ok -> ());
      let now = now_ns () in
      let until_arrival =
        float_of_int (max 0 (min !next_arrival t_end - now)) /. 1e9
      in
      let timeout = Float.min until_arrival 0.05 in
      if timeout > 0.0 then
        let ws = if Session.out_backlog sess > 0 then [ sess.Session.fd ] else [] in
        ignore
          (try Unix.select [ sess.Session.fd ] ws [] timeout
           with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []))
    done;
    (* drain phase: stop offering load, keep collecting responses *)
    let deadline = now_ns () + int_of_float (cfg.drain *. 1e9) in
    (try
       while Hashtbl.length pending > 0 && now_ns () < deadline do
         flush_out ();
         match drain_responses () with
         | `Closed -> raise Exit
         | `Ok ->
             (* always park in select: a busy drain loop would steal the
                CPU the server needs to actually work the backlog off *)
             let ws =
               if Session.out_backlog sess > 0 then [ sess.Session.fd ]
               else []
             in
             ignore
               (try Unix.select [ sess.Session.fd ] ws [] 0.05
                with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []))
       done
     with Exit -> ());
    Session.close sess;
    result ()
  with
  | Fault.Killed _ ->
      abrupt_close ();
      result ()
  | Exit ->
      (* server went away mid-run: report what completed *)
      Session.close sess;
      result ()

let run cfg =
  if cfg.conns < 1 then invalid_arg "Openloop.run: conns";
  if cfg.rate <= 0.0 then invalid_arg "Openloop.run: rate";
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init cfg.conns (fun i -> Domain.spawn (fun () -> run_conn cfg i))
  in
  let per_conn = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 per_conn in
  let total_completed = sum (fun c -> c.completed) in
  {
    offered_rps = cfg.rate;
    achieved_rps =
      (if elapsed > 0.0 then float_of_int total_completed /. elapsed else 0.0);
    elapsed;
    total_sent = sum (fun c -> c.sent);
    total_completed;
    total_retried = sum (fun c -> c.retried);
    total_abandoned = sum (fun c -> c.abandoned);
    kills = sum (fun c -> if c.killed then 1 else 0);
    r_uncorrected = Histogram.merge (List.map (fun c -> c.uncorrected) per_conn);
    r_backfill = Histogram.merge (List.map (fun c -> c.backfill) per_conn);
    r_corrected = Histogram.merge (List.map (fun c -> c.corrected) per_conn);
    per_conn;
  }

(* Windowed synchronous prefill over the wire: at most [window] PUTs
   outstanding, so the server's bounded queues and the socket buffers never
   deadlock against a firehose of unacknowledged writes. *)
let prefill ?(window = 256) cfg ~count =
  let fd = Addr.connect cfg.addr in
  Unix.set_nonblock fd;
  let sess = Session.create fd in
  let rng = Rng.create ~seed:(cfg.seed lxor 0x5eedf111) in
  let outstanding = ref 0 in
  let sent = ref 0 in
  let acked = ref 0 in
  let pump timeout =
    ignore (Session.flush sess);
    (match Unix.select [ sess.Session.fd ] [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _ -> ());
    match Session.fill sess with
    | Session.Eof -> failwith "Openloop.prefill: server closed the connection"
    | Session.Blocked | Session.Data ->
        let rec frames () =
          match Session.next_frame sess with
          | `Need_more -> ()
          | `Corrupt c ->
              failwith ("Openloop.prefill: " ^ Codec.corrupt_to_string c)
          | `Frame f ->
              (match f.Frame.payload with
              | Frame.Response Frame.Retry ->
                  (* the bound pushed back: retry the key immediately *)
                  decr outstanding;
                  decr sent
              | Frame.Response _ ->
                  decr outstanding;
                  incr acked
              | Frame.Request _ -> failwith "Openloop.prefill: bad frame");
              frames ()
        in
        frames ()
  in
  while !acked < count do
    if !sent < count && !outstanding < window then begin
      let key = Rng.below rng cfg.keys in
      incr sent;
      incr outstanding;
      Session.send sess
        {
          Frame.id = !sent;
          payload = Frame.Request (Frame.Put (key, key));
        }
    end
    else pump 0.05
  done;
  ignore (Session.flush sess);
  Session.close sess
