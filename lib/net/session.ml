(* smr-lint: allow R5 — per-connection buffer plumbing consumed only inside lib/net; single-domain mutable state with no published invariants beyond the function docs *)
(** One socket connection's framing state: a growable read buffer the
    decoder walks incrementally, a bounded queue of decoded-but-unserviced
    request frames, and an output buffer drained by nonblocking writes.

    A session is single-domain state — the reactor that owns the connection
    (or the client loop, which reuses the same machinery for its side of
    the socket) is the only toucher. The {e request queue bound} is the
    service's backpressure point: the reactor rejects frames decoded while
    the queue is full with a [Retry] response instead of buffering
    unbounded work for a session that is outrunning its shard. *)

type read_result = Data | Eof | Blocked

type t = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable roff : int; (* bytes of [rbuf] already decoded *)
  mutable rlen : int; (* valid bytes in [rbuf] *)
  inq : Frame.t Queue.t;
  queue_bound : int;
  out : Buffer.t;
  mutable out_off : int; (* bytes of [out] already written to the socket *)
  mutable retries : int; (* Retry frames issued to this session *)
  mutable served : int; (* requests actually executed *)
  (* Wire-time stamping: frames leave [out] FIFO, so "frame [id]'s last
     byte reached the kernel" is a queue of (id, cumulative end offset)
     drained as the flushed-byte total passes each mark. Both sides use it:
     the open-loop client to re-stamp send times (its uncorrected histogram
     must not charge its own user-space buffering), the reactor to emit
     [Req_wire] trace events. Empty (and free) unless marks are noted. *)
  mutable buffered_total : int; (* bytes ever encoded into [out] *)
  mutable flushed_total : int; (* bytes ever written to the socket *)
  wire_q : (int * int) Queue.t; (* (frame id, end offset in buffered_total) *)
  mutable on_wire : int -> unit; (* fired per marked frame as it hits the wire *)
}

let create ?(queue_bound = 64) fd =
  {
    fd;
    rbuf = Bytes.create 4096;
    roff = 0;
    rlen = 0;
    inq = Queue.create ();
    queue_bound;
    out = Buffer.create 4096;
    out_off = 0;
    retries = 0;
    served = 0;
    buffered_total = 0;
    flushed_total = 0;
    wire_q = Queue.create ();
    on_wire = ignore;
  }

let set_on_wire t f = t.on_wire <- f

let queue_full t = Queue.length t.inq >= t.queue_bound
let queue_depth t = Queue.length t.inq
let out_backlog t = Buffer.length t.out - t.out_off

(* Make room for one more read chunk: compact consumed bytes to the front,
   then double the buffer while the tail can't hold [want] bytes. *)
let reserve t want =
  if t.roff > 0 then begin
    Bytes.blit t.rbuf t.roff t.rbuf 0 (t.rlen - t.roff);
    t.rlen <- t.rlen - t.roff;
    t.roff <- 0
  end;
  while Bytes.length t.rbuf - t.rlen < want do
    let bigger = Bytes.create (2 * Bytes.length t.rbuf) in
    Bytes.blit t.rbuf 0 bigger 0 t.rlen;
    t.rbuf <- bigger
  done

(* One nonblocking read. [Eof] covers both a clean FIN and a reset — the
   caller treats either as the peer being gone. *)
let fill t =
  reserve t 4096;
  match Unix.read t.fd t.rbuf t.rlen 4096 with
  | 0 -> Eof
  | n ->
      t.rlen <- t.rlen + n;
      Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      Blocked
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof

(* Decode the next frame out of the read buffer, if a whole one arrived. *)
let next_frame t =
  match Codec.decode t.rbuf ~off:t.roff ~avail:(t.rlen - t.roff) with
  | Codec.Frame (f, consumed) ->
      t.roff <- t.roff + consumed;
      if t.roff = t.rlen then begin
        t.roff <- 0;
        t.rlen <- 0
      end;
      `Frame f
  | Codec.Need_more -> `Need_more
  | Codec.Corrupt c -> `Corrupt c

let send t frame =
  let before = Buffer.length t.out in
  Codec.encode t.out frame;
  t.buffered_total <- t.buffered_total + (Buffer.length t.out - before)

(* Ask for [on_wire] to fire for the last frame passed to [send]. Call
   right after that [send]; marks for unmarked frames cost nothing. *)
let note_wire t id = Queue.push (id, t.buffered_total) t.wire_q

let fire_wire_marks t =
  let rec drain () =
    match Queue.peek_opt t.wire_q with
    | Some (id, end_off) when end_off <= t.flushed_total ->
        ignore (Queue.pop t.wire_q);
        t.on_wire id;
        drain ()
    | _ -> ()
  in
  drain ()

(* Drain the output buffer with nonblocking writes, one bounded chunk per
   call. Copying the whole buffer per attempt would be quadratic exactly
   when it hurts most — an open-loop client running far past the server's
   capacity accumulates megabytes here, and each flush must cost O(chunk),
   not O(backlog). *)
let flush_chunk = 65536

let flush t =
  let backlog = out_backlog t in
  if backlog = 0 then `Done
  else
    let n = min backlog flush_chunk in
    let chunk = Buffer.sub t.out t.out_off n in
    match Unix.write_substring t.fd chunk 0 n with
    | w ->
        t.out_off <- t.out_off + w;
        t.flushed_total <- t.flushed_total + w;
        if not (Queue.is_empty t.wire_q) then fire_wire_marks t;
        if out_backlog t = 0 then begin
          Buffer.clear t.out;
          t.out_off <- 0;
          `Done
        end
        else `Blocked
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        `Blocked
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> `Closed

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
