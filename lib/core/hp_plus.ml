module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Trace = Obs.Trace

let name = "HP++"
let robust = true
let supports_optimistic = true
let needs_protection = true
let counts_references = false

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  fence_epoch : int Atomic.t;
  orphans : Orphanage.t;
  unlink_counter : int Atomic.t; (* globally unique batch ids, trace only *)
}

(* One successful TryUnlink, awaiting DoInvalidation: the closure invalidates
   every unlinked node; [hdrs] are their headers; [frontier_slots] hold the
   protections that must outlive invalidation (paper: thread-local
   [unlinkeds]). *)
type deferred = {
  invalidate_all : unit -> unit;
  hdrs : Mem.header list;
  frontier_slots : Slots.slot list;
  batch_id : int; (* ties this batch's Unlink/Invalidate trace events *)
}

type handle = {
  shared : t;
  local : Slots.local;
  mutable unlinkeds : deferred list;
  mutable unlinks_since_invalidation : int;
  mutable unlinks_since_reclaim : int;
  retireds : Mem.header Retire_bag.t;
  scan : Slots.scan;
  mutable epoched_hps : (int * Slots.slot list) list;
}

type guard = { slot : Slots.slot }

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    registry = Slots.create ();
    stats = Stats.create ();
    config;
    fence_epoch = Atomic.make 0;
    orphans = Orphanage.create ();
    unlink_counter = Atomic.make 0;
  }

let stats t = t.stats

let register shared =
  {
    shared;
    local = Slots.register shared.registry;
    unlinkeds = [];
    unlinks_since_invalidation = 0;
    unlinks_since_reclaim = 0;
    retireds =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        Mem.phantom;
    scan = Slots.scan_create ();
    epoched_hps = [];
  }

(* Critical sections: HP-family schemes have none. *)
let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

(* Algorithm 5 FenceEpoch: a heavy fence wrapped in an epoch increment. Our
   atomics are SC, so the fence itself is subsumed; the epoch movement, which
   drives piggybacked hazard revocation, is implemented literally. *)
let heavy_fence t =
  let epoch = Atomic.get t.fence_epoch in
  if Atomic.compare_and_set t.fence_epoch epoch (epoch + 1) then
    Trace.emit Trace.Epoch_advance (-1) (epoch + 1) 0;
  Stats.on_heavy_fence t.stats

(* Algorithm 5 ReadEpoch: a light fence bracketed by two reads that must
   agree, guaranteeing a heavy fence separates any two reads two epochs
   apart. *)
let read_epoch t =
  let rec loop epoch =
    let fresh = Atomic.get t.fence_epoch in
    if fresh = epoch then epoch else loop fresh
  in
  loop (Atomic.get t.fence_epoch)

let fence_epoch t = Atomic.get t.fence_epoch

let release_epoched h =
  List.iter
    (fun (_, slots) -> List.iter (Slots.release h.local) slots)
    h.epoched_hps;
  h.epoched_hps <- []

(* Paper Algorithm 3 lines 22-31 / Algorithm 5 lines 3-10. *)
let do_invalidation h =
  let t = h.shared in
  match h.unlinkeds with
  | [] -> h.unlinks_since_invalidation <- 0
  | batch ->
      h.unlinkeds <- [];
      h.unlinks_since_invalidation <- 0;
      (* Invalidate events are emitted after the links are actually marked,
         so in merged seq order a batch member's Invalidate always precedes
         the Free that the trace checker pairs it with. *)
      List.iter
        (fun d ->
          d.invalidate_all ();
          if Trace.enabled () then
            List.iter
              (fun hdr -> Trace.emit Trace.Invalidate (Mem.uid hdr) d.batch_id 0)
              d.hdrs)
        batch;
      let hdrs = List.concat_map (fun d -> d.hdrs) batch in
      let slots = List.concat_map (fun d -> d.frontier_slots) batch in
      if t.config.epoched_fence then begin
        (* Revoke lazily: tag this batch's frontier slots with the current
           epoch and only release batches at least two epochs old — a heavy
           fence is guaranteed to have happened in between (Lemma A.2). *)
        let epoch = read_epoch t in
        let stale, fresh =
          List.partition (fun (e, _) -> e + 2 <= epoch) h.epoched_hps
        in
        List.iter (fun (_, ss) -> List.iter (Slots.release h.local) ss) stale;
        h.epoched_hps <- (epoch, slots) :: fresh
      end
      else begin
        (* Algorithm 3: one fence per batch, then revoke immediately. *)
        Stats.on_heavy_fence t.stats;
        List.iter (Slots.release h.local) slots
      end;
      List.iter (Retire_bag.push h.retireds) hdrs

(* Paper Algorithm 3 lines 32-35 / Algorithm 5 lines 11-16. The hazard
   snapshot is sorted once and each retired uid binary-searched; survivors
   compact in place, so the pass allocates nothing at steady state. *)
let reclaim h =
  let t = h.shared in
  List.iter (Retire_bag.push h.retireds) (Orphanage.pop_all t.orphans);
  h.unlinks_since_reclaim <- 0;
  Stats.note_peaks t.stats;
  if t.config.epoched_fence then begin
    heavy_fence t;
    release_epoched h
  end;
  Slots.scan_snapshot t.registry h.scan;
  let before = Retire_bag.length h.retireds in
  Retire_bag.filter_in_place
    (fun hdr ->
      (* Crash window: a kill mid-filter leaves the bag torn (compacted
         prefix + stale already-processed window + unprocessed tail);
         report_crashed salvages it with dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if Slots.scan_mem h.scan (Mem.uid hdr) then true
      else begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end)
    h.retireds;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length h.retireds)
      (Slots.scan_size h.scan)

let maybe_collect h =
  let c = h.shared.config in
  if h.unlinks_since_invalidation >= c.invalidate_threshold then
    do_invalidation h;
  (* Only pay for a reclaim pass (hazard snapshot + sort + heavy fence)
     when the bag holds something to free: with invalidate_threshold >
     reclaim_threshold, the unlink counter alone used to trip a full pass
     every reclaim_threshold unlinks while every header was still parked in
     [unlinkeds] awaiting invalidation, freeing nothing. *)
  if
    (h.unlinks_since_reclaim >= c.reclaim_threshold
    || Retire_bag.length h.retireds >= c.reclaim_threshold)
    && not (Retire_bag.is_empty h.retireds)
  then reclaim h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.retireds hdr;
  if Retire_bag.length h.retireds >= h.shared.config.reclaim_threshold then
    reclaim h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier ~do_unlink ~node_header ~invalidate =
  let slots =
    List.map
      (fun hdr ->
        let s = Slots.acquire h.local in
        Slots.set s hdr;
        s)
      frontier
  in
  match do_unlink () with
  | None ->
      List.iter (Slots.release h.local) slots;
      false
  | Some nodes ->
      let hdrs = List.map node_header nodes in
      let batch_id =
        if Trace.enabled () then Atomic.fetch_and_add h.shared.unlink_counter 1
        else 0
      in
      List.iter
        (fun hdr ->
          Mem.retire_mark hdr;
          Stats.on_retire h.shared.stats;
          if Trace.enabled () then Trace.emit Trace.Unlink (Mem.uid hdr) batch_id 0)
        hdrs;
      h.unlinkeds <-
        {
          invalidate_all = (fun () -> invalidate nodes);
          hdrs;
          frontier_slots = slots;
          batch_id;
        }
        :: h.unlinkeds;
      h.unlinks_since_invalidation <- h.unlinks_since_invalidation + 1;
      h.unlinks_since_reclaim <- h.unlinks_since_reclaim + 1;
      (* Crash window: TryUnlink succeeded (nodes unlinked and marked
         retired, frontier slots held) but DoInvalidation has not run. A
         kill here is the paper's worst case — without recovery the batch
         leaks and its frontier stays protected forever. *)
      if Fault.enabled () then Fault.hit Fault.Unlink;
      maybe_collect h;
      true

let flush h =
  do_invalidation h;
  reclaim h

let unregister h =
  do_invalidation h;
  (* The frontier protections may still be needed by concurrent traversals
     only until their targets are invalidated, which do_invalidation just
     did; a final fence orders the revocation. *)
  heavy_fence h.shared;
  release_epoched h;
  reclaim h;
  Orphanage.add h.shared.orphans (Retire_bag.to_list h.retireds);
  Retire_bag.clear h.retireds;
  Slots.unregister h.local

(* Crash recovery. The dead thread's obligations are discharged in the
   order the protocol demands:
   1. its pending DoInvalidation batches run (invalidate-before-free for
      every node it unlinked);
   2. a heavy fence orders those invalidation marks before any protection
      withdrawal — the fence the dead thread would have paid;
   3. the crash is announced (trace), then its hazard slots — traversal
      guards and frontier protections alike — are reaped;
   4. its retire bag, possibly torn by a mid-reclaim death, is salvaged
      (dedup by uid, skip already-freed) and handed to the orphanage
      together with the just-invalidated unlinked nodes.
   The unlinked headers cannot already sit in the bag: they only enter it
   through do_invalidation, which had not run for them. *)
let report_crashed h =
  let t = h.shared in
  List.iter
    (fun d ->
      d.invalidate_all ();
      if Trace.enabled () then
        List.iter
          (fun hdr -> Trace.emit Trace.Invalidate (Mem.uid hdr) d.batch_id 0)
          d.hdrs)
    h.unlinkeds;
  let unlinked = List.concat_map (fun d -> d.hdrs) h.unlinkeds in
  h.unlinkeds <- [];
  h.unlinks_since_invalidation <- 0;
  heavy_fence t;
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  h.epoched_hps <- [];
  Slots.reap h.local;
  let salvaged =
    Retire_bag.salvage ~uid:Mem.uid
      ~skip:(fun hdr -> Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr)
      h.retireds
  in
  Orphanage.add t.orphans (List.rev_append unlinked salvaged)

let pending_unlinked h =
  List.fold_left (fun acc d -> acc + List.length d.hdrs) 0 h.unlinkeds

let pending_retired h = Retire_bag.length h.retireds
