module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Collector = Smr.Collector
module Trace = Obs.Trace

let name = "HP++"
let robust = true
let supports_optimistic = true
let needs_protection = true
let counts_references = false

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  fence_epoch : int Atomic.t;
  orphans : Mem.header Orphanage.t;
  unlink_counter : int Atomic.t; (* globally unique batch ids, trace only *)
  (* Adaptive reclaim threshold; see lib/hp/hp.ml. The invalidate threshold
     stays fixed: DoInvalidation is inherently handle-local (it revokes the
     handle's own frontier slots), so the collector cannot amortize it. *)
  adaptive : int Atomic.t;
  (* Collector-domain-private accumulation and scan scratch. *)
  pending : Mem.header Retire_bag.t;
  cscan : Slots.scan;
  (* smr-lint: allow R3 — written once in [create] before [t] escapes; read-only afterwards *)
  mutable collector : Mem.header Retire_bag.t Collector.t option;
}

(* One successful TryUnlink, awaiting DoInvalidation: the closure invalidates
   every unlinked node; [hdrs] are their headers; [frontier_slots] hold the
   protections that must outlive invalidation (paper: thread-local
   [unlinkeds]). *)
type deferred = {
  invalidate_all : unit -> unit;
  hdrs : Mem.header list;
  frontier_slots : Slots.slot list;
  batch_id : int; (* ties this batch's Unlink/Invalidate trace events *)
}

type handle = {
  shared : t;
  local : Slots.local;
  mutable unlinkeds : deferred list;
  mutable unlinks_since_invalidation : int;
  mutable unlinks_since_reclaim : int;
  (* Single-owner: swaps only on the owning domain's handoff path. *)
  mutable retireds : Mem.header Retire_bag.t;
  scan : Slots.scan;
  mutable epoched_hps : (int * Slots.slot list) list;
}

type guard = { slot : Slots.slot }

let stats t = t.stats

(* Critical sections: HP-family schemes have none. *)
let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

(* Algorithm 5 FenceEpoch: a heavy fence wrapped in an epoch increment. Our
   atomics are SC, so the fence itself is subsumed; the epoch movement, which
   drives piggybacked hazard revocation, is implemented literally. *)
let heavy_fence t =
  let epoch = Atomic.get t.fence_epoch in
  if Atomic.compare_and_set t.fence_epoch epoch (epoch + 1) then
    Trace.emit Trace.Epoch_advance (-1) (epoch + 1) 0;
  Stats.on_heavy_fence t.stats

(* Algorithm 5 ReadEpoch: a light fence bracketed by two reads that must
   agree, guaranteeing a heavy fence separates any two reads two epochs
   apart. *)
let read_epoch t =
  let rec loop epoch =
    let fresh = Atomic.get t.fence_epoch in
    if fresh = epoch then epoch else loop fresh
  in
  loop (Atomic.get t.fence_epoch)

let fence_epoch t = Atomic.get t.fence_epoch

let release_epoched h =
  List.iter
    (fun (_, slots) -> List.iter (Slots.release h.local) slots)
    h.epoched_hps;
  h.epoched_hps <- []

let skip_in_salvage hdr = Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr

(* Paper Algorithm 3 lines 22-31 / Algorithm 5 lines 3-10. *)
let do_invalidation h =
  let t = h.shared in
  match h.unlinkeds with
  | [] -> h.unlinks_since_invalidation <- 0
  | batch ->
      h.unlinkeds <- [];
      h.unlinks_since_invalidation <- 0;
      (* Invalidate events are emitted after the links are actually marked,
         so in merged seq order a batch member's Invalidate always precedes
         the Free that the trace checker pairs it with. *)
      List.iter
        (fun d ->
          d.invalidate_all ();
          if Trace.enabled () then
            List.iter
              (fun hdr -> Trace.emit Trace.Invalidate (Mem.uid hdr) d.batch_id 0)
              d.hdrs)
        batch;
      let hdrs = List.concat_map (fun d -> d.hdrs) batch in
      let slots = List.concat_map (fun d -> d.frontier_slots) batch in
      if t.config.epoched_fence then begin
        (* Revoke lazily: tag this batch's frontier slots with the current
           epoch and only release batches at least two epochs old — a heavy
           fence is guaranteed to have happened in between (Lemma A.2). In
           async mode the collector's per-drain fence keeps this epoch
           moving even when the mutators never reclaim inline. *)
        let epoch = read_epoch t in
        let stale, fresh =
          List.partition (fun (e, _) -> e + 2 <= epoch) h.epoched_hps
        in
        List.iter (fun (_, ss) -> List.iter (Slots.release h.local) ss) stale;
        h.epoched_hps <- (epoch, slots) :: fresh
      end
      else begin
        (* Algorithm 3: one fence per batch, then revoke immediately. *)
        Stats.on_heavy_fence t.stats;
        List.iter (Slots.release h.local) slots
      end;
      List.iter (Retire_bag.push h.retireds) hdrs

(* One scan-and-free pass over [bag]; shared by inline reclaim and the
   collector drain. The caller has adopted orphans, noted peaks, and paid
   whatever fence its mode requires. *)
let scan_and_free t ~scan bag =
  Slots.scan_snapshot t.registry scan;
  let before = Retire_bag.length bag in
  Retire_bag.filter_in_place
    (fun hdr ->
      (* Crash window: a kill mid-filter leaves the bag torn (compacted
         prefix + stale already-processed window + unprocessed tail);
         report_crashed (or scheme shutdown) salvages it with dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if Slots.scan_mem scan (Mem.uid hdr) then true
      else begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end)
    bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length bag)
      (Slots.scan_size scan)

(* Paper Algorithm 3 lines 32-35 / Algorithm 5 lines 11-16. The hazard
   snapshot is sorted once and each retired uid binary-searched; survivors
   compact in place, so the pass allocates nothing at steady state. *)
let reclaim h =
  let t = h.shared in
  Orphanage.adopt_into t.orphans ~dst:h.retireds;
  h.unlinks_since_reclaim <- 0;
  Stats.note_peaks t.stats;
  if t.config.epoched_fence then begin
    heavy_fence t;
    release_epoched h
  end;
  scan_and_free t ~scan:h.scan h.retireds

(* Collector drain: one fence-epoch advance and one hazard snapshot
   amortized over every handed-off bag — Algorithm 5's fence amortization
   extended across domains. The mutators' epoched frontier slots are
   revoked lazily on their own DoInvalidation calls as this epoch moves. *)
let drain t bags n =
  for i = 0 to n - 1 do
    Retire_bag.transfer ~src:bags.(i) ~dst:t.pending
  done;
  Orphanage.adopt_into t.orphans ~dst:t.pending;
  if not (Retire_bag.is_empty t.pending) then begin
    Stats.note_peaks t.stats;
    if t.config.epoched_fence then heavy_fence t;
    scan_and_free t ~scan:t.cscan t.pending
  end;
  let left = Retire_bag.length t.pending in
  if Trace.enabled () then Trace.emit Trace.Drain (-1) n left;
  let garbage = Stats.unreclaimed t.stats in
  let cur = Atomic.get t.adaptive in
  let next =
    (* the handoff grain is pinned: a bigger batch would amortize the
       snapshot only slightly better, but every queued bag is unreclaimed
       garbage, and growing the grain also widens the ring and drain-batch
       terms of the peak — own-bag + queued-ring must fit the inline peak
       envelope. The clamp still guards the policy arithmetic. *)
    Collector.adapt_threshold ~cur
      ~lo:(max 16 (t.config.reclaim_threshold / 8))
      ~hi:(max 16 (t.config.reclaim_threshold / 8))
      ~pending:garbage
  in
  if next <> cur then begin
    Atomic.set t.adaptive next;
    if Trace.enabled () then Trace.emit Trace.Adapt (-1) next garbage
  end;
  left

let create ?(config = Smr.Smr_intf.default_config) () =
  let t =
    {
      registry = Slots.create ();
      stats = Stats.create ();
      config;
      fence_epoch = Atomic.make 0;
      orphans = Orphanage.create ();
      unlink_counter = Atomic.make 0;
      adaptive =
        (* async mode starts at the low bound: hand off small bags early
           and often (a ring push costs nanoseconds), so queued garbage
           stays near the inline peak; the drain-side policy grows the
           batch only while garbage stays low *)
        Atomic.make
          (if config.async_reclaim then
             min config.reclaim_threshold
               (max 16 (config.reclaim_threshold / 8))
           else config.reclaim_threshold);
      pending = Retire_bag.create Mem.phantom;
      cscan = Slots.scan_create ();
      collector = None;
    }
  in
  if config.async_reclaim then
    t.collector <-
      Some
        (Collector.spawn ~capacity:config.handoff_capacity ~length:Retire_bag.length
           ~drain:(drain t)
           ~dummy:(Retire_bag.create ~capacity:1 Mem.phantom)
           ());
  t

let register shared =
  {
    shared;
    local = Slots.register shared.registry;
    unlinkeds = [];
    unlinks_since_invalidation = 0;
    unlinks_since_reclaim = 0;
    retireds =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        Mem.phantom;
    scan = Slots.scan_create ();
    epoched_hps = [];
  }

(* The retire bag crossed the threshold: hand it to the collector (taking
   a recycled empty bag back) or keep accumulating until the configured
   baseline before the inline pass — a starved collector degrades this
   path to exactly the inline cadence, never a denser one. *)
(* Fold every queued bag into [dst] so the caller's imminent snapshot
   covers them too: the ring drains even when the collector is starved of
   cpu or dead, pinning async peak garbage near the inline envelope. *)
let absorb_queued c ~dst =
  let rec go () =
    match Collector.steal c with
    | Some b ->
        Retire_bag.transfer ~src:b ~dst;
        Collector.recycle c b;
        go ()
    | None -> ()
  in
  go ()

let reclaim_or_handoff h =
  let t = h.shared in
  let baseline = t.config.reclaim_threshold in
  match t.collector with
  | Some c when Collector.running c ->
      let full = h.retireds in
      let len = Retire_bag.length full in
      h.unlinks_since_reclaim <- 0;
      (* Only small bags enter the ring. A bag that grew toward baseline
         during a ring-full spell — or that carries unripe epoch survivors
         after an inline pass — would park a near-baseline slug of garbage
         in the queue behind a starved collector (one ill-timed admission
         is exactly an inline peak's worth on top of the steady state).
         Oversized stragglers finish the inline path instead, which
         absorbs the queue anyway. *)
      if len <= 2 * Atomic.get t.adaptive && Collector.offer c full then begin
        (* the ring owns [full] now; replace it before the next push *)
        h.retireds <-
          (match Collector.take_bag c with
          | Some b -> b
          | None ->
              Retire_bag.create ~capacity:(2 * Atomic.get t.adaptive)
                Mem.phantom);
        if Trace.enabled () then
          Trace.emit Trace.Handoff (-1) len (Collector.occupancy c)
      end
      else if len >= baseline then begin
        absorb_queued c ~dst:h.retireds;
        reclaim h
      end
  | Some c ->
      Collector.note_fallback c;
      h.unlinks_since_reclaim <- 0;
      if Retire_bag.length h.retireds >= baseline then begin
        absorb_queued c ~dst:h.retireds;
        reclaim h
      end
  | None -> reclaim h

let maybe_collect h =
  let c = h.shared.config in
  if h.unlinks_since_invalidation >= c.invalidate_threshold then
    do_invalidation h;
  (* Only pay for a reclaim pass (hazard snapshot + sort + heavy fence)
     when the bag holds something to free: with invalidate_threshold >
     reclaim_threshold, the unlink counter alone used to trip a full pass
     every reclaim_threshold unlinks while every header was still parked in
     [unlinkeds] awaiting invalidation, freeing nothing. *)
  let threshold = Atomic.get h.shared.adaptive in
  if
    (h.unlinks_since_reclaim >= threshold
    || Retire_bag.length h.retireds >= threshold)
    && not (Retire_bag.is_empty h.retireds)
  then reclaim_or_handoff h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.retireds hdr;
  if Retire_bag.length h.retireds >= Atomic.get h.shared.adaptive then
    reclaim_or_handoff h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier ~do_unlink ~node_header ~invalidate =
  let slots =
    List.map
      (fun hdr ->
        let s = Slots.acquire h.local in
        Slots.set s hdr;
        s)
      frontier
  in
  match do_unlink () with
  | None ->
      List.iter (Slots.release h.local) slots;
      false
  | Some nodes ->
      let hdrs = List.map node_header nodes in
      let batch_id =
        if Trace.enabled () then Atomic.fetch_and_add h.shared.unlink_counter 1
        else 0
      in
      List.iter
        (fun hdr ->
          Mem.retire_mark hdr;
          Stats.on_retire h.shared.stats;
          if Trace.enabled () then Trace.emit Trace.Unlink (Mem.uid hdr) batch_id 0)
        hdrs;
      h.unlinkeds <-
        {
          invalidate_all = (fun () -> invalidate nodes);
          hdrs;
          frontier_slots = slots;
          batch_id;
        }
        :: h.unlinkeds;
      h.unlinks_since_invalidation <- h.unlinks_since_invalidation + 1;
      h.unlinks_since_reclaim <- h.unlinks_since_reclaim + 1;
      (* Crash window: TryUnlink succeeded (nodes unlinked and marked
         retired, frontier slots held) but DoInvalidation has not run. A
         kill here is the paper's worst case — without recovery the batch
         leaks and its frontier stays protected forever. *)
      if Fault.enabled () then Fault.hit Fault.Unlink;
      maybe_collect h;
      true

let flush h =
  do_invalidation h;
  reclaim h

let unregister h =
  do_invalidation h;
  (* The frontier protections may still be needed by concurrent traversals
     only until their targets are invalidated, which do_invalidation just
     did; a final fence orders the revocation. *)
  heavy_fence h.shared;
  release_epoched h;
  reclaim h;
  Orphanage.add h.shared.orphans h.retireds;
  Slots.unregister h.local

let shutdown t =
  match t.collector with
  | None -> ()
  | Some c ->
      Collector.shutdown c ~recover:(Orphanage.add t.orphans);
      (* The pending bag may hold survivors or be torn by a mid-filter
         collector kill: salvage in place, donate whole. *)
      Retire_bag.salvage ~uid:Mem.uid ~skip:skip_in_salvage t.pending;
      Orphanage.add t.orphans t.pending

(* Crash recovery. The dead thread's obligations are discharged in the
   order the protocol demands:
   1. its pending DoInvalidation batches run (invalidate-before-free for
      every node it unlinked);
   2. a heavy fence orders those invalidation marks before any protection
      withdrawal — the fence the dead thread would have paid;
   3. the crash is announced (trace), then its hazard slots — traversal
      guards and frontier protections alike — are reaped;
   4. its retire bag, possibly torn by a mid-reclaim death, is salvaged
      in place (dedup by uid, skip already-freed), topped up with the
      just-invalidated unlinked nodes, and donated whole to the orphanage.
   The unlinked headers cannot already sit in the bag: they only enter it
   through do_invalidation, which had not run for them. *)
let report_crashed h =
  let t = h.shared in
  List.iter
    (fun d ->
      d.invalidate_all ();
      if Trace.enabled () then
        List.iter
          (fun hdr -> Trace.emit Trace.Invalidate (Mem.uid hdr) d.batch_id 0)
          d.hdrs)
    h.unlinkeds;
  let unlinked = List.concat_map (fun d -> d.hdrs) h.unlinkeds in
  h.unlinkeds <- [];
  h.unlinks_since_invalidation <- 0;
  heavy_fence t;
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  h.epoched_hps <- [];
  Slots.reap h.local;
  Retire_bag.salvage ~uid:Mem.uid ~skip:skip_in_salvage h.retireds;
  List.iter (Retire_bag.push h.retireds) unlinked;
  Orphanage.add t.orphans h.retireds

let pending_unlinked h =
  List.fold_left (fun acc d -> acc + List.length d.hdrs) 0 h.unlinkeds

let pending_retired h = Retire_bag.length h.retireds

let collector_counters t = Option.map Collector.counters t.collector
let collector_stats t = Option.map Collector.stats t.collector
