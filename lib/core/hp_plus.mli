(** HP++: hazard pointers with optimistic traversal (the paper's
    contribution; Algorithms 3 and 5).

    HP++ extends hazard pointers so that traversals may follow links out of
    logically deleted nodes. Validation {e under-approximates}
    unreachability — a protection only fails when the source node has been
    {e invalidated}, which unlinkers do strictly {e after} physical deletion —
    and the unsafe window this opens is patched up by the unlinker:

    - it protects the unlinking {e frontier} with hazard pointers before the
      unlink CAS ({!try_unlink}), and
    - it invalidates {e all} unlinked nodes before any of them is retired,
      with a fence between invalidation and releasing the frontier
      protection ([DoInvalidation]).

    With [config.epoched_fence = true] (default) the fence protocol of
    Algorithm 5 is used: frontier hazard pointers are revoked lazily, tagged
    with a global fence epoch, piggybacking on other threads' heavy fences;
    a heavy fence is then only issued by [Reclaim]. With [false], Algorithm
    3's per-batch fence is used (the ablation in [bench/main.exe exp alg5]).

    The module satisfies {!Smr.Smr_intf.S}; it is a strict extension of the
    original HP (same [protect]/[retire] entry points), so data structures
    written against HP run unchanged (§4.2 "backward compatibility"). *)

include Smr.Smr_intf.S

val do_invalidation : handle -> unit
(** Run the deferred invalidation batch now (normally triggered every
    [invalidate_threshold] unlinks). Exposed for tests and ablations. *)

val reclaim : handle -> unit
(** Run a reclamation pass now (normally triggered every
    [reclaim_threshold] unlinks/retires). Exposed for tests and ablations. *)

val fence_epoch : t -> int
(** Current value of the global fence epoch (Algorithm 5). *)

val pending_unlinked : handle -> int
(** Blocks unlinked by this handle and not yet invalidated. *)

val pending_retired : handle -> int
(** Blocks invalidated by this handle and not yet reclaimed. *)

val collector_counters : t -> Smr.Collector.counters option
(** Handoff/fallback/drain counters of the background collector, when
    [config.async_reclaim] started one; [None] in inline mode. *)
