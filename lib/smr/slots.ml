module Mem = Smr_core.Mem

type slot = Mem.header option Atomic.t

let chunk_size = 64

(* [active] gates scanning: a chunk whose owner unregistered is kept in the
   registry (scanners may still hold the list) but marked inactive, so dead
   slots stop being walked; it is parked in [spare] for the next register. *)
type chunk = { slots : slot array; active : bool Atomic.t }

type registry = {
  chunks : chunk list Atomic.t;
  spare : chunk list Atomic.t;
}

type local = {
  registry : registry;
  dom : int; (* registering domain, stamped on Crash trace events *)
  mutable my_chunks : chunk list;
  mutable free : slot list;
  mutable owned : int; (* slots handed out, for diagnostics *)
}

let create () = { chunks = Atomic.make []; spare = Atomic.make [] }

let rec push_chunk registry chunk =
  let cur = Atomic.get registry.chunks in
  if not (Atomic.compare_and_set registry.chunks cur (chunk :: cur)) then
    push_chunk registry chunk

let new_chunk () =
  {
    slots = Array.init chunk_size (fun _ -> Atomic.make None);
    active = Atomic.make true;
  }

(* Reuse a parked chunk if any, else mint one and publish it. Reactivation
   (SC store) happens before any slot of the chunk can be set, so a scanner
   that read [active = false] can only have missed protections published
   after its snapshot — the standard protect-after-scan race, which
   protect/validate already handles. *)
let rec take_chunk registry =
  match Atomic.get registry.spare with
  | [] ->
      let chunk = new_chunk () in
      push_chunk registry chunk;
      chunk
  | (chunk :: rest) as cur ->
      if Atomic.compare_and_set registry.spare cur rest then begin
        Atomic.set chunk.active true;
        chunk
      end
      else take_chunk registry

let register registry =
  let chunk = take_chunk registry in
  {
    registry;
    dom = (Domain.self () :> int);
    my_chunks = [ chunk ];
    free = Array.to_list chunk.slots;
    owned = 0;
  }

let dom local = local.dom

let acquire local =
  match local.free with
  | s :: rest ->
      local.free <- rest;
      local.owned <- local.owned + 1;
      s
  | [] ->
      let chunk = take_chunk local.registry in
      local.my_chunks <- chunk :: local.my_chunks;
      local.free <- List.tl (Array.to_list chunk.slots);
      local.owned <- local.owned + 1;
      chunk.slots.(0)

module Trace = Obs.Trace

(* The Unprotect event must be emitted BEFORE the store that withdraws the
   protection: any reclaimer that observes the withdrawal (and may then
   free) draws its Free sequence number after ours, so the trace-replay
   checker never sees a Free inside a protection window of a correct run
   (see Obs.Trace on emission-order discipline). *)
let trace_unprotect slot =
  if Trace.enabled () then
    match Atomic.get slot with
    | Some prev -> Trace.emit Trace.Unprotect (Mem.uid prev) 0 0
    | None -> ()

let set slot hdr =
  trace_unprotect slot;
  Atomic.set slot (Some hdr);
  (* Crash window: the protection is published, nothing has been validated
     or released. A kill leaves the slot set until a reaper clears it; a
     stall parks the victim with the hazard held. *)
  if Fault.enabled () then Fault.hit Fault.Protect

let clear slot =
  trace_unprotect slot;
  Atomic.set slot None

let get slot = Atomic.get slot

let release local slot =
  clear slot;
  local.owned <- local.owned - 1;
  local.free <- slot :: local.free

let rec park_chunk registry chunk =
  let cur = Atomic.get registry.spare in
  if not (Atomic.compare_and_set registry.spare cur (chunk :: cur)) then
    park_chunk registry chunk

let unregister local =
  List.iter
    (fun chunk ->
      Array.iter clear chunk.slots;
      Atomic.set chunk.active false;
      park_chunk local.registry chunk)
    local.my_chunks;
  local.my_chunks <- [];
  local.free <- [];
  local.owned <- 0

(* Same motions as [unregister], but run by a surviving thread over a dead
   handle's slots. Sound only once the owner is actually gone (it would
   race the owner's own set/clear otherwise) and the dead thread's pending
   invalidation work has been completed on its behalf — see the schemes'
   [report_crashed]. *)
let reap = unregister

(* --- The hazard scan ----------------------------------------------------- *)

(* A reusable scratch buffer (one per reclaiming handle): snapshot every
   protected uid into an int array, sort once, binary-search each retired
   uid — Michael's original amortized-scan optimization, with zero
   allocation per reclaim once the buffer has grown to its working size. *)
type scan = { mutable uids : int array; mutable len : int }

let scan_create () = { uids = Array.make 64 0; len = 0 }

let scan_push scan uid =
  let n = Array.length scan.uids in
  if scan.len = n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit scan.uids 0 bigger 0 n;
    scan.uids <- bigger
  end;
  scan.uids.(scan.len) <- uid;
  scan.len <- scan.len + 1

(* In-place quicksort (median-of-three, insertion sort below 16) over the
   live prefix: Array.sort would drag the stale tail of the scratch buffer
   into the sort. *)
let sort_prefix (a : int array) len =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if len > 1 then qsort 0 (len - 1)

let scan_snapshot registry scan =
  scan.len <- 0;
  List.iter
    (fun chunk ->
      if Atomic.get chunk.active then
        Array.iter
          (fun slot ->
            match Atomic.get slot with
            | Some hdr -> scan_push scan (Mem.uid hdr)
            | None -> ())
          chunk.slots)
    (Atomic.get registry.chunks);
  sort_prefix scan.uids scan.len

let scan_mem scan uid =
  let a = scan.uids in
  let lo = ref 0 and hi = ref (scan.len - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let v = a.(mid) in
    if v = uid then found := true
    else if v < uid then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let scan_size scan = scan.len

(* Legacy Hashtbl-based scan, retained only so bench/hotpath.ml can measure
   the path this module replaced. Schemes no longer call it. *)
let protected_set registry =
  let table = Hashtbl.create 64 in
  List.iter
    (fun chunk ->
      if Atomic.get chunk.active then
        Array.iter
          (fun slot ->
            match Atomic.get slot with
            | Some hdr -> Hashtbl.replace table (Mem.uid hdr) ()
            | None -> ())
          chunk.slots)
    (Atomic.get registry.chunks);
  table

let total_slots registry = chunk_size * List.length (Atomic.get registry.chunks)
