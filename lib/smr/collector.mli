(** Background collector domain with a bounded MPMC bag-handoff ring.

    The asynchronous half of every scheme's reclamation pipeline: mutators
    whose retire bag crosses the (adaptive) threshold hand the {e whole
    bag} over — one pointer through a Vyukov-style ring, no per-handoff
    allocation — and take a recycled empty bag back, so the retire hot path
    never pays for a hazard snapshot. The collector dequeues bags in
    batches and runs the scheme-supplied [drain] callback, which takes
    {e one} snapshot (and at most one heavy/epoched fence) per cycle,
    amortized over every bag in the batch.

    Robustness contract: [offer] never blocks. When the ring is full, or
    the collector is stalled ([Fault.Collector] stall keeps it parked while
    the ring fills) or dead (a kill flips it to [Dead]), [offer] returns
    [false] and the mutator {e must} reclaim inline — asynchrony is an
    optimization, never a correctness dependency, and peak garbage stays
    bounded by [ring capacity × bag size] over the inline bound. *)

type 'bag t

val spawn :
  ?capacity:int ->
  ?length:('bag -> int) ->
  drain:('bag array -> int -> int) ->
  dummy:'bag ->
  unit ->
  'bag t
(** Start a collector domain over a ring of [capacity] bags (default 8 —
    queued bags are unreclaimed garbage, so the bound is small on purpose).
    Clamped to at least 2: the cell sequence protocol cannot distinguish
    full from writable in a one-cell ring.

    [length bag] (optional) reports a bag's occupancy; when supplied the
    collector keeps live garbage accounting — arrivals per cycle, frees
    derived from the pending delta, and the garbage-age histogram in
    {!stats}. Called only on the collector domain, on bags it owns.

    [drain scratch n] runs {e only on the collector domain} with the [n]
    dequeued bags in [scratch.(0 .. n-1)]; it must move their contents into
    scheme-private pending state (the bags are recycled to mutators right
    after it returns), reclaim what it can under one snapshot, and return
    the number of blocks still pending. A cycle with [n = 0] is a flush
    retry over that pending state. Exceptions escaping [drain] (including
    an injected {!Fault.Killed}) kill the collector: state becomes dead,
    queued bags are preserved for {!shutdown} to salvage. *)

val offer : 'bag t -> 'bag -> bool
(** Hand a full bag over. [false] — without blocking — when the ring is
    full or the collector is not running; the caller must then reclaim the
    bag inline (the failed attempt is already counted as a fallback). *)

val take_bag : 'bag t -> 'bag option
(** Pop a recycled (drained-empty) bag for reuse after a successful
    {!offer}, avoiding a fresh allocation per handoff. *)

val steal : 'bag t -> 'bag option
(** Dequeue one queued bag for {e inline} amortization: a mutator that is
    about to pay a baseline scan anyway (ring full, collector starved or
    dead) folds queued bags into that same snapshot instead of letting
    them age. The consumer side of the ring is multi-consumer safe (head
    is CASed), so stealing runs concurrently with the collector's own
    drains and with other stealers. Counted in [steals]. *)

val recycle : 'bag t -> 'bag -> unit
(** Return a stolen-and-emptied bag to the pool {!take_bag} draws from. *)

val running : 'bag t -> bool
val dead : 'bag t -> bool

val occupancy : 'bag t -> int
(** Bags currently queued (approximate under concurrency; exact at rest). *)

val capacity : 'bag t -> int

val note_fallback : 'bag t -> unit
(** Count an inline fallback decided outside {!offer} (e.g. the scheme saw
    the collector dead and did not bother constructing a handoff). *)

type counters = {
  handoffs : int;  (** bags successfully enqueued *)
  fallbacks : int;  (** inline reclaims forced by full/stopped collector *)
  drains : int;  (** drain cycles run (including empty flush retries) *)
  drained_bags : int;  (** bags consumed across all cycles *)
  steals : int;  (** queued bags absorbed into mutators' inline scans *)
}

val counters : 'bag t -> counters

type histogram = {
  buckets : (float * int) list;
      (** cumulative count per ascending upper bound; feed straight to
          [Obs.Metrics.histogram ~buckets] *)
  count : int;
  sum : float;
}

type stats = {
  ring_occupancy : int;  (** bags queued right now *)
  ring_capacity : int;
  pending : int;  (** headers in collector-private pending after last cycle *)
  pass_age : int;  (** scan passes the current survivors have seen *)
  ctrs : counters;
  drain_duration : histogram;  (** per-cycle drain wall time, seconds *)
  garbage_age : histogram;
      (** scan passes a block survived before being freed; cohort-
          approximate (frees are split between age-0 arrivals and
          [pass_age]-old survivors per cycle, not stamped per block) and
          only populated when {!spawn} got a [length] hook *)
}

val stats : 'bag t -> stats
(** Live introspection snapshot. Histograms are written only by the
    collector domain and read via per-bucket atomics: any single bucket is
    exact, cross-bucket skew of one in-flight cycle is possible. *)

val shutdown : 'bag t -> recover:('bag -> unit) -> unit
(** Stop and join the collector. A live collector first empties the ring
    and runs three empty flush cycles (epoch schemes advance their grace
    periods); a dead one is just joined. Any bags still queued afterwards
    (only possible after a kill) are handed to [recover] — schemes donate
    them to their orphanage. Idempotent. A stalled collector must be
    {!Fault.release}d first or the join blocks. *)

val adapt_threshold : cur:int -> lo:int -> hi:int -> pending:int -> int
(** Pure adaptive-threshold policy: halve when [pending > 2*cur] (reclaim
    is not keeping up), double when [pending < cur/2] (snapshots amortize
    better over bigger batches), hold otherwise; always clamped into
    [\[lo, hi\]]. Exposed for unit tests pinning the clamps. *)
