(** Growable array batches for per-handle retire sets.

    [push] is an amortized O(1) store; {!filter_in_place} lets a reclaim
    pass compact survivors without allocating a fresh list. Bags are
    single-owner (one per scheme handle) and not thread-safe. The [dummy]
    element fills unused capacity so dropped entries do not pin freed
    blocks against the GC. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty bag using [dummy] as array filler. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val clear : 'a t -> unit
(** Empty the bag, releasing element references. Capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)

val to_list : 'a t -> 'a list
(** Cold-path conversion for tests and diagnostics. *)

val transfer : src:'a t -> dst:'a t -> unit
(** Append every element of [src] to [dst] (one blit, amortized growth) and
    empty [src]. The orphan-adoption and collector-drain accumulation
    primitive: bags move between owners without per-element consing. *)

val salvage : uid:('a -> int) -> skip:('a -> bool) -> 'a t -> unit
(** Crash recovery: compact the bag in place down to its distinct
    ([uid]-deduplicated) entries not rejected by [skip], preserving order.
    A bag whose owner died mid-[filter_in_place] holds a torn state —
    compacted prefix, a window of already-processed entries (freed blocks
    and stale duplicates of kept survivors), unprocessed tail — that would
    double-free if adopted verbatim; pass [skip] = "is freed or phantom".
    The survivors stay in the bag so it can be donated whole. *)
