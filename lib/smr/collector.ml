(* Background collector domain with a bounded MPSC bag-handoff ring.

   Mutators hand over *full retire bags* (one pointer through the ring, no
   per-handoff allocation); the collector dequeues them in batches and runs
   the scheme-supplied [drain] callback, which pays one hazard snapshot /
   heavy fence for the whole batch. The ring is Vyukov's bounded MPMC
   queue: per-cell sequence atomics arbitrate, so a full queue is detected
   in one read and [offer] never blocks — the mutator falls back to inline
   reclamation instead, which is what keeps peak garbage bounded when the
   collector is stalled or dead (the [Fault.Collector] point injects
   exactly those two states). The consumer side is genuinely
   multi-consumer (head is CASed): a mutator already paying a baseline
   inline scan may [steal] queued bags and amortize them into the same
   snapshot, so queued garbage drains instead of aging when the collector
   is starved of cpu.

   Generic in the bag element: HP/HP++ hand [Mem.header Retire_bag.t]s, EBR
   deferred-thunk bags, PEBR epoch-stamped ones. The module never looks
   inside a bag; all scheme knowledge lives in the [drain] closure, which
   runs only on the collector domain. *)

type state = Running | Stopping | Stopped | Dead

type 'bag t = {
  (* ring: cell [i] is writable by a producer when seqs.(i) = pos, readable
     by the consumer when seqs.(i) = pos + 1, recycled at pos + cap *)
  seqs : int Atomic.t array;
  slots : 'bag array;
  tail : int Atomic.t; (* next enqueue position (producers CAS) *)
  head : int Atomic.t; (* next dequeue position (consumers CAS) *)
  state : state Atomic.t;
  pool : 'bag list Atomic.t; (* empty drained bags, recycled to mutators *)
  scratch : 'bag array; (* consumer-private batch buffer *)
  drain : 'bag array -> int -> int;
  dummy : 'bag;
  handoffs : int Atomic.t;
  fallbacks : int Atomic.t;
  drains : int Atomic.t;
  drained_bags : int Atomic.t;
  steals : int Atomic.t;
  (* smr-lint: allow R3 — written once right after Domain.spawn, before any other domain sees [t]; joined only by the (single) shutdown caller *)
  mutable domain : unit Domain.t option;
  (* smr-lint: allow R3 — touched only under shutdown's winner CAS, never concurrently *)
  mutable joined : bool;
}

let capacity t = Array.length t.slots
let occupancy t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let running t = Atomic.get t.state = Running
let dead t = Atomic.get t.state = Dead

(* Producer side. Returns false — caller reclaims inline — when the queue
   is full or the collector is no longer accepting. *)
let rec offer t bag =
  if Atomic.get t.state <> Running then begin
    Atomic.incr t.fallbacks;
    false
  end
  else begin
    let pos = Atomic.get t.tail in
    let i = pos mod capacity t in
    let s = Atomic.get t.seqs.(i) in
    if s = pos then
      if Atomic.compare_and_set t.tail pos (pos + 1) then begin
        t.slots.(i) <- bag;
        Atomic.set t.seqs.(i) (pos + 1);
        Atomic.incr t.handoffs;
        true
      end
      else offer t bag (* lost the cell race; retry *)
    else if s < pos then begin
      (* cell not yet recycled: ring is full *)
      Atomic.incr t.fallbacks;
      false
    end
    else offer t bag (* tail moved under us; retry *)
  end

(* Consumer side: the collector's drain loop, stealing mutators, and the
   shutdown salvage all dequeue, so head is CASed — the winner owns cell
   [i] exclusively until it recycles the sequence to [pos + capacity]. *)
let rec dequeue t =
  let pos = Atomic.get t.head in
  let i = pos mod capacity t in
  let s = Atomic.get t.seqs.(i) in
  if s = pos + 1 then
    if Atomic.compare_and_set t.head pos (pos + 1) then begin
      let bag = t.slots.(i) in
      t.slots.(i) <- t.dummy;
      Atomic.set t.seqs.(i) (pos + capacity t);
      Some bag
    end
    else dequeue t (* lost the cell race; retry *)
  else if s <= pos then None (* empty (or a producer is mid-publish) *)
  else dequeue t (* head moved under us; retry *)

let dequeue_batch t =
  let n = ref 0 in
  let more = ref true in
  while !more && !n < Array.length t.scratch do
    match dequeue t with
    | Some bag ->
        t.scratch.(!n) <- bag;
        incr n
    | None -> more := false
  done;
  !n

let rec pool_push t bag =
  let cur = Atomic.get t.pool in
  if not (Atomic.compare_and_set t.pool cur (bag :: cur)) then pool_push t bag

let rec take_bag t =
  match Atomic.get t.pool with
  | [] -> None
  | bag :: rest as cur ->
      if Atomic.compare_and_set t.pool cur rest then Some bag else take_bag t

let note_fallback t = Atomic.incr t.fallbacks

(* A mutator about to pay a baseline inline scan anyway folds queued bags
   into that same snapshot. Works on a dead collector too — its queue
   would otherwise age until shutdown. *)
let steal t =
  match dequeue t with
  | Some _ as r ->
      Atomic.incr t.steals;
      r
  | None -> None

let recycle = pool_push

type counters = {
  handoffs : int;
  fallbacks : int;
  drains : int;
  drained_bags : int;
  steals : int;
}

let counters (t : _ t) =
  {
    handoffs = Atomic.get t.handoffs;
    fallbacks = Atomic.get t.fallbacks;
    drains = Atomic.get t.drains;
    drained_bags = Atomic.get t.drained_bags;
    steals = Atomic.get t.steals;
  }

(* Run one drain cycle over [n] dequeued bags, then recycle the (now empty)
   bags to the mutator pool. Returns the scheme's still-pending count. *)
let cycle t n =
  let pending = t.drain t.scratch n in
  for i = 0 to n - 1 do
    pool_push t t.scratch.(i);
    t.scratch.(i) <- t.dummy
  done;
  Atomic.incr t.drains;
  if n > 0 then ignore (Atomic.fetch_and_add t.drained_bags n);
  pending

let run t =
  let pending = ref 0 in
  let idle = ref 0 in
  (try
     let live = ref true in
     while !live do
       match Atomic.get t.state with
       | Stopping | Stopped | Dead ->
           (* Final drain: empty the ring, then a fixed number of empty
              cycles so epoch-based schemes can push their grace periods
              forward. Bounded on purpose — blocks a live mutator still
              protects stay in the scheme's pending bag, and the scheme's
              shutdown donates them to the orphanage. *)
           let n = dequeue_batch t in
           if n > 0 then pending := cycle t n
           else begin
             for _ = 1 to 3 do
               pending := cycle t 0
             done;
             live := false
           end
       | Running ->
           if Fault.enabled () then Fault.hit Fault.Collector;
           let n = dequeue_batch t in
           if n > 0 then begin
             pending := cycle t n;
             idle := 0
           end
           else if !pending > 0 then begin
             (* Empty retry over leftover garbage: it is waiting on external
                state (hazards withdrawn, epochs advanced), so pace the
                rescans instead of spinning snapshots/epoch advances. *)
             pending := cycle t 0;
             Unix.sleepf 1e-4
           end
           else begin
             incr idle;
             if !idle < 256 then Domain.cpu_relax ()
             else begin
               (* park briefly instead of burning the core; 200us keeps
                  drain latency far below any retire-burst timescale *)
               idle := 0;
               Unix.sleepf 2e-4
             end
           end
     done;
     Atomic.set t.state Stopped
   with _ ->
     (* Fault.Killed (the chaos collector crash) or any drain exception:
        leave queued bags where they are for shutdown to salvage, flip to
        Dead so every subsequent offer fails fast into the inline path. *)
     Atomic.set t.state Dead)

let spawn ?(capacity = 8) ~drain ~dummy () =
  if capacity < 1 then invalid_arg "Collector.spawn: capacity";
  (* The sequence protocol needs >= 2 cells: with one cell, "readable at
     pos" (seq = pos + 1) and "writable at pos + 1" (seq = pos + 1) are the
     same state, so a second producer would overwrite the unconsumed bag
     and its retired blocks would leak. *)
  let capacity = max 2 capacity in
  let t =
    {
      seqs = Array.init capacity Atomic.make;
      slots = Array.make capacity dummy;
      tail = Atomic.make 0;
      head = Atomic.make 0;
      state = Atomic.make Running;
      pool = Atomic.make [];
      scratch = Array.make capacity dummy;
      drain;
      dummy;
      handoffs = Atomic.make 0;
      fallbacks = Atomic.make 0;
      drains = Atomic.make 0;
      drained_bags = Atomic.make 0;
      steals = Atomic.make 0;
      domain = None;
      joined = false;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> run t));
  t

let shutdown t ~recover =
  (match Atomic.get t.state with
  | Running -> ignore (Atomic.compare_and_set t.state Running Stopping)
  | Stopping | Stopped | Dead -> ());
  (match t.domain with
  | Some d when not t.joined ->
      t.joined <- true;
      Domain.join d
  | _ -> ());
  (* After the join the ring has a single owner again: salvage anything a
     dead collector left queued. *)
  let rec drain_leftovers () =
    match dequeue t with
    | Some bag ->
        recover bag;
        drain_leftovers ()
    | None -> ()
  in
  drain_leftovers ()

(* Adaptive threshold policy, kept pure so the clamps are unit-testable:
   halve under pressure (observed pending garbage more than twice the
   current threshold — scans are not keeping up), double when garbage is
   low (scans cost a snapshot regardless of batch size, so bigger batches
   amortize better), hold otherwise. Clamped to [lo, hi] so adaptation can
   never starve reclamation entirely nor thrash on tiny bags. *)
let adapt_threshold ~cur ~lo ~hi ~pending =
  let lo = max 1 lo in
  let hi = max lo hi in
  let next =
    if pending > 2 * cur then cur / 2
    else if pending < cur / 2 then cur * 2
    else cur
  in
  min hi (max lo next)
