(* Background collector domain with a bounded MPSC bag-handoff ring.

   Mutators hand over *full retire bags* (one pointer through the ring, no
   per-handoff allocation); the collector dequeues them in batches and runs
   the scheme-supplied [drain] callback, which pays one hazard snapshot /
   heavy fence for the whole batch. The ring is Vyukov's bounded MPMC
   queue: per-cell sequence atomics arbitrate, so a full queue is detected
   in one read and [offer] never blocks — the mutator falls back to inline
   reclamation instead, which is what keeps peak garbage bounded when the
   collector is stalled or dead (the [Fault.Collector] point injects
   exactly those two states). The consumer side is genuinely
   multi-consumer (head is CASed): a mutator already paying a baseline
   inline scan may [steal] queued bags and amortize them into the same
   snapshot, so queued garbage drains instead of aging when the collector
   is starved of cpu.

   Generic in the bag element: HP/HP++ hand [Mem.header Retire_bag.t]s, EBR
   deferred-thunk bags, PEBR epoch-stamped ones. The module never looks
   inside a bag; all scheme knowledge lives in the [drain] closure, which
   runs only on the collector domain. *)

type state = Running | Stopping | Stopped | Dead

(* Fixed-bucket histogram, written only by the collector domain (every
   [cycle] runs there), read concurrently by the metrics sampler — hence
   atomics per bucket rather than a lock. [counts] are per-bucket
   (cumulated at read time); values above the last edge land in the
   implicit +Inf bucket, i.e. in [count] only. *)
type hist = {
  edges : float array; (* ascending upper bounds *)
  bucket_counts : int Atomic.t array;
  hcount : int Atomic.t;
  hsum : int Atomic.t; (* in the recorded unit (ns, passes) *)
}

let hist_make edges =
  {
    edges;
    bucket_counts = Array.map (fun _ -> Atomic.make 0) edges;
    hcount = Atomic.make 0;
    hsum = Atomic.make 0;
  }

let hist_record h v n =
  let rec find i =
    if i >= Array.length h.edges then ()
    else if float_of_int v <= h.edges.(i) then
      ignore (Atomic.fetch_and_add h.bucket_counts.(i) n)
    else find (i + 1)
  in
  find 0;
  ignore (Atomic.fetch_and_add h.hcount n);
  ignore (Atomic.fetch_and_add h.hsum (v * n))

(* Drain durations recorded in ns: 1us .. 1s edges. *)
let duration_edges = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

(* Garbage age in scan passes survived before the free. *)
let age_edges = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

type 'bag t = {
  (* ring: cell [i] is writable by a producer when seqs.(i) = pos, readable
     by the consumer when seqs.(i) = pos + 1, recycled at pos + cap *)
  seqs : int Atomic.t array;
  slots : 'bag array;
  tail : int Atomic.t; (* next enqueue position (producers CAS) *)
  head : int Atomic.t; (* next dequeue position (consumers CAS) *)
  state : state Atomic.t;
  pool : 'bag list Atomic.t; (* empty drained bags, recycled to mutators *)
  scratch : 'bag array; (* consumer-private batch buffer *)
  drain : 'bag array -> int -> int;
  dummy : 'bag;
  length : ('bag -> int) option; (* bag occupancy, for garbage accounting *)
  pending_now : int Atomic.t; (* scheme-pending headers after last cycle *)
  pass_age : int Atomic.t; (* cycles the current survivors have seen *)
  drain_duration : hist;
  garbage_age : hist;
  handoffs : int Atomic.t;
  fallbacks : int Atomic.t;
  drains : int Atomic.t;
  drained_bags : int Atomic.t;
  steals : int Atomic.t;
  (* smr-lint: allow R3 — written once right after Domain.spawn, before any other domain sees [t]; joined only by the (single) shutdown caller *)
  mutable domain : unit Domain.t option;
  (* smr-lint: allow R3 — touched only under shutdown's winner CAS, never concurrently *)
  mutable joined : bool;
}

let capacity t = Array.length t.slots
let occupancy t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let running t = Atomic.get t.state = Running
let dead t = Atomic.get t.state = Dead

(* Producer side. Returns false — caller reclaims inline — when the queue
   is full or the collector is no longer accepting. *)
let rec offer t bag =
  if Atomic.get t.state <> Running then begin
    Atomic.incr t.fallbacks;
    false
  end
  else begin
    let pos = Atomic.get t.tail in
    let i = pos mod capacity t in
    let s = Atomic.get t.seqs.(i) in
    if s = pos then
      if Atomic.compare_and_set t.tail pos (pos + 1) then begin
        t.slots.(i) <- bag;
        Atomic.set t.seqs.(i) (pos + 1);
        Atomic.incr t.handoffs;
        true
      end
      else offer t bag (* lost the cell race; retry *)
    else if s < pos then begin
      (* cell not yet recycled: ring is full *)
      Atomic.incr t.fallbacks;
      false
    end
    else offer t bag (* tail moved under us; retry *)
  end

(* Consumer side: the collector's drain loop, stealing mutators, and the
   shutdown salvage all dequeue, so head is CASed — the winner owns cell
   [i] exclusively until it recycles the sequence to [pos + capacity]. *)
let rec dequeue t =
  let pos = Atomic.get t.head in
  let i = pos mod capacity t in
  let s = Atomic.get t.seqs.(i) in
  if s = pos + 1 then
    if Atomic.compare_and_set t.head pos (pos + 1) then begin
      let bag = t.slots.(i) in
      t.slots.(i) <- t.dummy;
      Atomic.set t.seqs.(i) (pos + capacity t);
      Some bag
    end
    else dequeue t (* lost the cell race; retry *)
  else if s <= pos then None (* empty (or a producer is mid-publish) *)
  else dequeue t (* head moved under us; retry *)

let dequeue_batch t =
  let n = ref 0 in
  let more = ref true in
  while !more && !n < Array.length t.scratch do
    match dequeue t with
    | Some bag ->
        t.scratch.(!n) <- bag;
        incr n
    | None -> more := false
  done;
  !n

let rec pool_push t bag =
  let cur = Atomic.get t.pool in
  if not (Atomic.compare_and_set t.pool cur (bag :: cur)) then pool_push t bag

let rec take_bag t =
  match Atomic.get t.pool with
  | [] -> None
  | bag :: rest as cur ->
      if Atomic.compare_and_set t.pool cur rest then Some bag else take_bag t

let note_fallback t = Atomic.incr t.fallbacks

(* A mutator about to pay a baseline inline scan anyway folds queued bags
   into that same snapshot. Works on a dead collector too — its queue
   would otherwise age until shutdown. *)
let steal t =
  match dequeue t with
  | Some _ as r ->
      Atomic.incr t.steals;
      r
  | None -> None

let recycle = pool_push

type counters = {
  handoffs : int;
  fallbacks : int;
  drains : int;
  drained_bags : int;
  steals : int;
}

let counters (t : _ t) =
  {
    handoffs = Atomic.get t.handoffs;
    fallbacks = Atomic.get t.fallbacks;
    drains = Atomic.get t.drains;
    drained_bags = Atomic.get t.drained_bags;
    steals = Atomic.get t.steals;
  }

type histogram = { buckets : (float * int) list; count : int; sum : float }

let hist_read ?(scale = 1.0) h =
  let cum = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i le ->
           cum := !cum + Atomic.get h.bucket_counts.(i);
           (le *. scale, !cum))
         h.edges)
  in
  {
    buckets;
    count = Atomic.get h.hcount;
    sum = float_of_int (Atomic.get h.hsum) *. scale;
  }

type stats = {
  ring_occupancy : int;
  ring_capacity : int;
  pending : int;
  pass_age : int;
  ctrs : counters;
  drain_duration : histogram;  (* seconds *)
  garbage_age : histogram;  (* scan passes survived *)
}

let stats t =
  {
    ring_occupancy = occupancy t;
    ring_capacity = capacity t;
    pending = Atomic.get t.pending_now;
    pass_age = Atomic.get t.pass_age;
    ctrs = counters t;
    drain_duration = hist_read ~scale:1e-9 t.drain_duration;
    garbage_age = hist_read t.garbage_age;
  }

(* Run one drain cycle over [n] dequeued bags, then recycle the (now empty)
   bags to the mutator pool. Returns the scheme's still-pending count.

   Garbage accounting rides the cycle boundary: with a [length] hook the
   arrivals are counted before the drain, and freed = previous pending +
   arrived - still pending (the drain callback moves every bag's contents
   into scheme-private pending before reclaiming, so the identity holds
   exactly). Ages are a cohort approximation — of the blocks freed this
   cycle, up to [arrived] are new (age 0) and the rest are survivors that
   have lived [pass_age] scan passes; exact per-block ages would need a
   stamp per header, which the hot path must not pay for. *)
let cycle t n =
  let arrived =
    match t.length with
    | None -> 0
    | Some len ->
        let s = ref 0 in
        for i = 0 to n - 1 do
          s := !s + len t.scratch.(i)
        done;
        !s
  in
  let t0 = Unix.gettimeofday () in
  let pending = t.drain t.scratch n in
  hist_record t.drain_duration
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
    1;
  let prev = Atomic.get t.pending_now in
  Atomic.set t.pending_now pending;
  (match t.length with
  | Some _ ->
      let freed = max 0 (prev + arrived - pending) in
      if freed > 0 then begin
        let fresh = min freed arrived in
        let aged = freed - fresh in
        if fresh > 0 then hist_record t.garbage_age 0 fresh;
        if aged > 0 then hist_record t.garbage_age (Atomic.get t.pass_age) aged
      end
  | None -> ());
  if pending = 0 then Atomic.set t.pass_age 0 else Atomic.incr t.pass_age;
  for i = 0 to n - 1 do
    pool_push t t.scratch.(i);
    t.scratch.(i) <- t.dummy
  done;
  Atomic.incr t.drains;
  if n > 0 then ignore (Atomic.fetch_and_add t.drained_bags n);
  pending

let run t =
  let pending = ref 0 in
  let idle = ref 0 in
  (try
     let live = ref true in
     while !live do
       match Atomic.get t.state with
       | Stopping | Stopped | Dead ->
           (* Final drain: empty the ring, then a fixed number of empty
              cycles so epoch-based schemes can push their grace periods
              forward. Bounded on purpose — blocks a live mutator still
              protects stay in the scheme's pending bag, and the scheme's
              shutdown donates them to the orphanage. *)
           let n = dequeue_batch t in
           if n > 0 then pending := cycle t n
           else begin
             for _ = 1 to 3 do
               pending := cycle t 0
             done;
             live := false
           end
       | Running ->
           if Fault.enabled () then Fault.hit Fault.Collector;
           let n = dequeue_batch t in
           if n > 0 then begin
             pending := cycle t n;
             idle := 0
           end
           else if !pending > 0 then begin
             (* Empty retry over leftover garbage: it is waiting on external
                state (hazards withdrawn, epochs advanced), so pace the
                rescans instead of spinning snapshots/epoch advances. *)
             pending := cycle t 0;
             Unix.sleepf 1e-4
           end
           else begin
             incr idle;
             if !idle < 256 then Domain.cpu_relax ()
             else begin
               (* park briefly instead of burning the core; 200us keeps
                  drain latency far below any retire-burst timescale *)
               idle := 0;
               Unix.sleepf 2e-4
             end
           end
     done;
     Atomic.set t.state Stopped
   with _ ->
     (* Fault.Killed (the chaos collector crash) or any drain exception:
        leave queued bags where they are for shutdown to salvage, flip to
        Dead so every subsequent offer fails fast into the inline path. *)
     Atomic.set t.state Dead)

let spawn ?(capacity = 8) ?length ~drain ~dummy () =
  if capacity < 1 then invalid_arg "Collector.spawn: capacity";
  (* The sequence protocol needs >= 2 cells: with one cell, "readable at
     pos" (seq = pos + 1) and "writable at pos + 1" (seq = pos + 1) are the
     same state, so a second producer would overwrite the unconsumed bag
     and its retired blocks would leak. *)
  let capacity = max 2 capacity in
  let t =
    {
      seqs = Array.init capacity Atomic.make;
      slots = Array.make capacity dummy;
      tail = Atomic.make 0;
      head = Atomic.make 0;
      state = Atomic.make Running;
      pool = Atomic.make [];
      scratch = Array.make capacity dummy;
      drain;
      dummy;
      length;
      pending_now = Atomic.make 0;
      pass_age = Atomic.make 0;
      drain_duration = hist_make duration_edges;
      garbage_age = hist_make age_edges;
      handoffs = Atomic.make 0;
      fallbacks = Atomic.make 0;
      drains = Atomic.make 0;
      drained_bags = Atomic.make 0;
      steals = Atomic.make 0;
      domain = None;
      joined = false;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> run t));
  t

let shutdown t ~recover =
  (match Atomic.get t.state with
  | Running -> ignore (Atomic.compare_and_set t.state Running Stopping)
  | Stopping | Stopped | Dead -> ());
  (match t.domain with
  | Some d when not t.joined ->
      t.joined <- true;
      Domain.join d
  | _ -> ());
  (* After the join the ring has a single owner again: salvage anything a
     dead collector left queued. *)
  let rec drain_leftovers () =
    match dequeue t with
    | Some bag ->
        recover bag;
        drain_leftovers ()
    | None -> ()
  in
  drain_leftovers ()

(* Adaptive threshold policy, kept pure so the clamps are unit-testable:
   halve under pressure (observed pending garbage more than twice the
   current threshold — scans are not keeping up), double when garbage is
   low (scans cost a snapshot regardless of batch size, so bigger batches
   amortize better), hold otherwise. Clamped to [lo, hi] so adaptation can
   never starve reclamation entirely nor thrash on tiny bags. *)
let adapt_threshold ~cur ~lo ~hi ~pending =
  let lo = max 1 lo in
  let hi = max lo hi in
  let next =
    if pending > 2 * cur then cur / 2
    else if pending < cur / 2 then cur * 2
    else cur
  in
  min hi (max lo next)
