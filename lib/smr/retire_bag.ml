(* Growable array batches for per-handle retire sets: retire is an O(1)
   store into a reusable buffer and a reclaim pass filters in place, so the
   hot path allocates nothing beyond occasional doubling (the seed used
   [Mem.header list] bags, paying a cons per retire and rebuilding the whole
   list — plus a [List.length] — per reclaim). Single-owner: a bag belongs
   to one handle and is never shared. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 64) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

(* Grow to hold at least [n] elements (amortized doubling). *)
let ensure t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let c = ref cap in
    while !c < n do
      c := 2 * !c
    done;
    let bigger = Array.make !c t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Retire_bag.get";
  t.data.(i)

let clear t =
  (* Drop element references so the GC can collect freed blocks. *)
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(* Keep elements satisfying [f], compacting in place; preserves order. *)
let filter_in_place f t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if f x then begin
      t.data.(!kept) <- x;
      incr kept
    end
  done;
  Array.fill t.data !kept (t.len - !kept) t.dummy;
  t.len <- !kept

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.len - 1) []

(* Bulk append [src] into [dst] and empty [src]: one capacity check, one
   blit. This is both the orphan-adoption path (donated bags fold into the
   adopter's) and the collector's pending-accumulation path, so it must not
   allocate per element. *)
let transfer ~src ~dst =
  if src.len > 0 then begin
    ensure dst (dst.len + src.len);
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- dst.len + src.len;
    clear src
  end

(* Crash recovery: compact the bag down to its distinct, still-relevant
   entries in place. A mid-[filter_in_place] kill leaves a compacted
   prefix, then a window of already-processed entries the compaction has
   not yet overwritten — some freed, some stale duplicates of kept
   survivors — then the unprocessed tail, with [len] unchanged. Adopting
   such a bag verbatim double-frees: the salvager drops entries [skip]
   rejects (freed blocks, phantom filler) and dedups by [uid], leaving the
   survivors in the bag so it can be donated whole (no re-consing into a
   list on the recovery path). *)
let salvage ~uid ~skip t =
  let seen = Hashtbl.create (max 16 t.len) in
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    let u = uid x in
    if (not (skip x)) && not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      t.data.(!kept) <- x;
      incr kept
    end
  done;
  Array.fill t.data !kept (t.len - !kept) t.dummy;
  t.len <- !kept
