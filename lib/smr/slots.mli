(** Hazard-pointer slot machinery shared by HP, HP++ and PEBR.

    A {e slot} is a single-writer multi-reader cell announcing protection of
    one block. Slots live in per-handle chunks registered in a global chunk
    list, so reclaimers can always scan every published slot (the paper's
    [hazards: ConcurrentList<HazptrRecord>]). A chunk whose handle
    unregisters is cleared, marked inactive (scans skip it) and parked for
    reuse by the next handle, so the registry stays bounded under handle
    churn.

    Reclaimers snapshot the protected uids into a reusable sorted {!scan}
    buffer and membership-test retired uids by binary search — amortized
    O(1) per retired block and allocation-free once the buffer has grown to
    its steady-state size. *)

type registry
type local
type slot

val create : unit -> registry

val register : registry -> local
(** Create (or reuse) this thread's slot block. Single-threaded use per
    [local]. *)

val unregister : local -> unit
(** Clear every slot owned by this handle, deactivate its chunks and park
    them for reuse. The caller must have released all protections first. *)

val reap : local -> unit
(** {!unregister} run by a {e surviving} thread over a {e dead} handle's
    slots (crash recovery). Sound only once the owner is gone and its
    pending invalidation work has been completed on its behalf; see the
    schemes' [report_crashed]. *)

val dom : local -> int
(** The domain that registered this handle (stamped on Crash trace
    events). *)

val acquire : local -> slot
(** Get an empty slot (paper's MakeHazptr). *)

val set : slot -> Smr_core.Mem.header -> unit
val clear : slot -> unit

val get : slot -> Smr_core.Mem.header option

val release : local -> slot -> unit
(** Clear the slot and return it to the owner's free list. *)

(** {1 The hazard scan} *)

type scan
(** A reusable scratch buffer for hazard snapshots; one per reclaiming
    handle. *)

val scan_create : unit -> scan

val scan_snapshot : registry -> scan -> unit
(** Snapshot the uids of all currently protected blocks into [scan] and
    sort them. Linear in the number of active slots; allocates only when
    the buffer must grow. *)

val scan_mem : scan -> int -> bool
(** Binary search of the last snapshot. *)

val scan_size : scan -> int
(** Number of protected uids captured by the last snapshot. *)

val protected_set : registry -> (int, unit) Hashtbl.t
(** Legacy Hashtbl-based scan, kept only as the measured baseline for
    [bench/main.exe exp hotpath]; reclamation schemes use {!scan_snapshot}. *)

val total_slots : registry -> int
