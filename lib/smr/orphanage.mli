(** A shared stack of donated retire bags: unregistering handles, crash
    recovery and collector shutdown leave blocks that are retired but still
    possibly protected by others; any later reclamation pass adopts them.
    (The paper's global [retireds: ConcurrentStack<void*>], carrying whole
    {!Retire_bag}s instead of per-donation lists.) *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a Retire_bag.t -> unit
(** Donate a whole bag; the donor must not touch it afterwards. Empty bags
    are dropped without being pushed. *)

val pop_all : 'a t -> 'a Retire_bag.t list
(** Atomically take every donated bag. *)

val adopt_into : 'a t -> dst:'a Retire_bag.t -> unit
(** {!pop_all}, folding each donated bag into [dst] via
    {!Retire_bag.transfer}. *)
