(* smr-lint: allow R5 — pure signature module (module types and config only): an .mli would duplicate every declaration verbatim *)
(** The unified interface every reclamation scheme implements.

    Data structures in [smr_ds] are functors over {!S}, so one implementation
    serves every scheme; capability flags select code paths and reject
    unsound combinations exactly where the paper marks "not applicable". *)

exception Unsupported_scheme of string
(** Raised by a data-structure functor instantiated with a scheme that
    cannot protect its traversal (e.g. Harris's list with the original HP:
    paper §2.3, Table 2). *)

(** Tuning knobs shared across schemes; each scheme reads the fields it
    understands and ignores the rest. Defaults follow the paper's
    evaluation (§5): reclaim every 128 retires/unlinks, invalidate every 32
    unlinks. *)
type config = {
  reclaim_threshold : int;  (** retires (or try_unlinks) between Reclaim calls *)
  invalidate_threshold : int;  (** try_unlinks between DoInvalidation calls (HP++) *)
  epoched_fence : bool;  (** HP++: use Algorithm 5 instead of Algorithm 3 *)
  neutralize_lag : int;
      (** PEBR: memory-pressure multiplier — when a thread's retired bag
          exceeds [neutralize_lag * reclaim_threshold], the epoch is forced
          forward and lagging critical sections are neutralized *)
  async_reclaim : bool;
      (** Hand full retire bags to a background collector domain instead of
          reclaiming inline; mutators fall back to the inline path when the
          handoff queue is full or the collector has died. Off by default so
          the paper-figure peak-garbage numbers stay reproducible. *)
  handoff_capacity : int;
      (** Bound of the mutator→collector bag queue (in bags). Small on
          purpose: queued bags are unreclaimed garbage, so the bound is part
          of the robustness story, not just a performance knob. *)
}

let default_config =
  {
    reclaim_threshold = 128;
    invalidate_threshold = 32;
    epoched_fence = true;
    neutralize_lag = 2;
    async_reclaim = false;
    handoff_capacity = 8;
  }

module type S = sig
  val name : string

  val robust : bool
  (** Bounded garbage even with stalled threads (paper §4.4). *)

  val supports_optimistic : bool
  (** May traverse chains of logically deleted nodes (paper §2.3). *)

  val needs_protection : bool
  (** Per-pointer protect/validate required before dereferencing (HP
      family). When [false] (EBR/NR/RC), [protect] is a no-op and data
      structures skip validation. *)

  val counts_references : bool
  (** The scheme tracks incoming-link counts ({!incr_ref} is meaningful and
      structures with shared subobjects must retire through
      {!retire_with_children} so destruction cascades). Only RC. *)

  type t
  (** One reclamation domain: shared state + statistics. *)

  type handle
  (** Per-thread participant state. Not thread-safe; one per domain. *)

  type guard
  (** A hazard slot (or a no-op token for critical-section schemes). *)

  val create : ?config:config -> unit -> t
  val stats : t -> Smr_core.Stats.t

  val register : t -> handle

  val unregister : handle -> unit
  (** Flush local bags (hand leftovers to the shared orphanage) and stop
      participating in epoch/hazard protocols. *)

  (** {1 Critical sections} — no-ops for HP-family schemes. *)

  val crit_enter : handle -> unit
  val crit_exit : handle -> unit

  val crit_refresh : handle -> unit
  (** Re-announce presence (and clear any neutralization): used by data
      structures when restarting an operation after a protection failure. *)

  (** {1 Per-pointer protection} — no-ops for critical-section schemes. *)

  val guard : handle -> guard
  val protect : guard -> Smr_core.Mem.header -> unit
  val release : guard -> unit

  val protection_valid : handle -> bool
  (** Scheme-level part of protection validation. [false] only when the
      scheme has withdrawn this thread's blanket protection (PEBR
      neutralization); the link-level part of validation is the data
      structure's job. *)

  (** {1 Retirement} *)

  val retire : handle -> Smr_core.Mem.header -> unit
  (** Classic retirement of a single already-unlinked block (Treiber pop,
      Michael–Scott dequeue, HP-style unlink). *)

  val retire_with_children :
    handle -> Smr_core.Mem.header -> children:(unit -> Smr_core.Mem.header list) -> unit
  (** Like {!retire}; reference-counting schemes use [children] to cascade
      decrements when the block is actually destroyed. Others ignore it. *)

  val incr_ref : Smr_core.Mem.header -> unit
  (** Announce an additional incoming link (shared subtrees in Bonsai).
      No-op except for reference counting. *)

  val try_unlink :
    handle ->
    frontier:Smr_core.Mem.header list ->
    do_unlink:(unit -> 'n list option) ->
    node_header:('n -> Smr_core.Mem.header) ->
    invalidate:('n list -> unit) ->
    bool
  (** HP++ Algorithm 3 TryUnlink: protect the [frontier], run [do_unlink];
      on success, [invalidate] runs over the returned nodes at the deferred
      DoInvalidation point (before the frontier protection is revoked and
      before any of them can be reclaimed), and the nodes are then retired.
      [invalidate] may also capture and invalidate links that carry no
      retirement of their own — a skiplist severing one level of a tower
      passes the fully-unlinked node list (possibly empty) while always
      invalidating the severed level's link. Schemes that need no patch-up
      implement this as [do_unlink] + retire and never call [invalidate].
      Returns whether [do_unlink] succeeded. *)

  val flush : handle -> unit
  (** Force pending invalidation and a reclamation pass. *)

  val shutdown : t -> unit
  (** Stop the background collector (when [config.async_reclaim] started
      one), draining every handed-off bag first: after shutdown, blocks
      queued for asynchronous reclamation are either freed or back in the
      shared orphanage for inline passes to adopt. Idempotent; a no-op for
      schemes (or configurations) with no collector. Call after the last
      [unregister] — surviving handles keep working afterwards, falling
      back to inline reclamation. *)

  val collector_stats : t -> Collector.stats option
  (** Live introspection of the background collector ([None] when
      [config.async_reclaim] is off or the scheme never spawns one): ring
      occupancy, pending garbage, drain-duration and garbage-age
      histograms. Safe to call concurrently with mutators and the
      collector; the service metrics sampler polls it. *)

  val report_crashed : handle -> unit
  (** Crash recovery: a {e surviving} thread declares [handle]'s owner dead
      without [unregister] having run (fault injection, or a real watchdog).
      The scheme completes the dead thread's pending protocol obligations on
      its behalf — HP++ runs its outstanding DoInvalidation batches (else
      the unlinked nodes leak {e and} their frontier slots stay protected
      forever) — salvages its retire bag (which may be torn mid-reclaim)
      into the shared orphanage, withdraws its hazard slots
      ({!Slots.reap}) and unpins it from the epoch protocol. Call at most
      once per handle, only when the owner can no longer touch it, and
      never after [unregister]. *)
end
