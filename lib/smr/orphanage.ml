(* A lock-free stack of donated retire bags. Polymorphic in the element so
   every scheme's bag type fits (HP/HP++ carry [Mem.header], EBR carries
   deferred thunks, PEBR carries epoch-stamped headers); donors hand over
   the whole bag, so crash recovery, unregistration and collector shutdown
   share one representation and nothing is re-consed into lists. *)

type 'a t = 'a Retire_bag.t list Atomic.t

let create () = Atomic.make []

let rec add t bag =
  if not (Retire_bag.is_empty bag) then begin
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (bag :: cur)) then add t bag
  end

let rec pop_all t =
  let cur = Atomic.get t in
  match cur with
  | [] -> []
  | _ -> if Atomic.compare_and_set t cur [] then cur else pop_all t

let adopt_into t ~dst =
  List.iter (fun bag -> Retire_bag.transfer ~src:bag ~dst) (pop_all t)
