module Mem = Smr_core.Mem
module Stats = Smr_core.Stats

let name = "RC"
let robust = false
let supports_optimistic = true
let needs_protection = false
let counts_references = true

type t = {
  ebr : Ebr.t;
  stats : Stats.t;
  (* Children closures registered by retire_with_children, looked up when a
     block's count reaches zero so destruction cascades. The mutex is only
     taken on retire/destroy, never on reads. *)
  children_reg : (int, unit -> Mem.header list) Hashtbl.t;
  reg_lock : Mutex.t;
}

type handle = { ebr_h : Ebr.handle; shared : t }
type guard = unit

let create ?(config = Smr.Smr_intf.default_config) () =
  let ebr = Ebr.create ~config () in
  {
    ebr;
    stats = Ebr.stats ebr;
    children_reg = Hashtbl.create 256;
    reg_lock = Mutex.create ();
  }

let stats t = t.stats
let register t = { ebr_h = Ebr.register t.ebr; shared = t }
let unregister h = Ebr.unregister h.ebr_h
let crit_enter h = Ebr.crit_enter h.ebr_h
let crit_exit h = Ebr.crit_exit h.ebr_h
let crit_refresh h = Ebr.crit_refresh h.ebr_h
let guard _ = ()
let protect () _ = ()
let release () = ()
let protection_valid _ = true
let incr_ref hdr = Atomic.incr (Mem.refcount hdr)

let take_children t hdr =
  Mutex.lock t.reg_lock;
  let uid = Mem.uid hdr in
  let children =
    match Hashtbl.find_opt t.children_reg uid with
    | Some f ->
        Hashtbl.remove t.children_reg uid;
        f ()
    | None -> []
  in
  Mutex.unlock t.reg_lock;
  children

let register_children t hdr children =
  Mutex.lock t.reg_lock;
  Hashtbl.replace t.children_reg (Mem.uid hdr) children;
  Mutex.unlock t.reg_lock

(* Destroy a block whose last incoming link vanished; cascade into children
   through the registry. Blocks reached only by cascade were never retired
   explicitly, hence [free_mark_cascade] and the late [on_retire]. *)
let rec destroy t hdr =
  let children = take_children t hdr in
  Mem.free_mark_cascade hdr;
  Stats.on_free t.stats;
  List.iter
    (fun child ->
      if Atomic.fetch_and_add (Mem.refcount child) (-1) = 1 then begin
        if Mem.is_live child then Stats.on_retire t.stats;
        destroy t child
      end)
    children

let retire_with_children h hdr ~children =
  (* The unlink removed one incoming link: defer the decrement through EBR
     so concurrent snapshot holders finish first. *)
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  register_children h.shared hdr children;
  let t = h.shared in
  Ebr.defer h.ebr_h (fun () ->
      if Atomic.fetch_and_add (Mem.refcount hdr) (-1) = 1 then destroy t hdr)

let retire h hdr = retire_with_children h hdr ~children:(fun () -> [])

let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h = Ebr.flush h.ebr_h

(* Asynchrony is inherited from the underlying EBR instance: when
   [config.async_reclaim] is set, deferred decrements hand off through its
   collector. *)
let shutdown t = Ebr.shutdown t.ebr
let collector_stats t = Ebr.collector_stats t.ebr

(* The deferred decrements live in the underlying EBR handle's bag; EBR's
   recovery (mark dead, orphan the bag) is exactly what RC needs. *)
let report_crashed h = Ebr.report_crashed h.ebr_h
