(** The original hazard pointers (Michael 2002/2004; paper Algorithm 2),
    with the asymmetric-fence optimization of §3.4 (fence costs are counted,
    not paid, on this SC-atomics runtime).

    Protection validation {e over-approximates} unreachability, so HP does
    not support optimistic traversal ([supports_optimistic = false]): data
    structures that follow links out of logically deleted nodes refuse to
    instantiate with this scheme, reproducing the "not applicable" cells of
    paper Table 2. *)

include Smr.Smr_intf.S

val reclaim : handle -> unit
(** Run a reclamation pass now. Exposed for tests. *)

val collector_counters : t -> Smr.Collector.counters option
(** Handoff/fallback/drain counters of the background collector, when
    [config.async_reclaim] started one; [None] in inline mode. *)
