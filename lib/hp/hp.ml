module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Trace = Obs.Trace

let name = "HP"
let robust = true
let supports_optimistic = false
let counts_references = false
let needs_protection = true

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  orphans : Orphanage.t;
}

type handle = {
  shared : t;
  local : Slots.local;
  retireds : Mem.header Retire_bag.t;
  scan : Slots.scan;
}

type guard = { slot : Slots.slot }

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    registry = Slots.create ();
    stats = Stats.create ();
    config;
    orphans = Orphanage.create ();
  }

let stats t = t.stats

let register shared =
  {
    shared;
    local = Slots.register shared.registry;
    retireds = Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        Mem.phantom;
    scan = Slots.scan_create ();
  }

let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

(* Paper Algorithm 2 Reclaim. The asymmetric-fence optimization makes the
   reclaimer pay the (counted) heavy fence so that TryProtect pays none.
   The hazard snapshot is sorted once and each retired uid binary-searched
   (Michael's amortized scan); survivors compact in place, so the pass
   allocates nothing at steady state. *)
let reclaim h =
  let t = h.shared in
  List.iter (Retire_bag.push h.retireds) (Orphanage.pop_all t.orphans);
  Stats.note_peaks t.stats;
  Stats.on_heavy_fence t.stats;
  Slots.scan_snapshot t.registry h.scan;
  let before = Retire_bag.length h.retireds in
  Retire_bag.filter_in_place
    (fun hdr ->
      (* Crash window: a kill mid-filter tears the bag; report_crashed
         salvages it with dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if Slots.scan_mem h.scan (Mem.uid hdr) then true
      else begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end)
    h.retireds;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length h.retireds)
      (Slots.scan_size h.scan)

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.retireds hdr;
  if Retire_bag.length h.retireds >= h.shared.config.reclaim_threshold then
    reclaim h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

(* No frontier protection, no invalidation: unlink then classic retire. *)
let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h = reclaim h

let unregister h =
  reclaim h;
  Orphanage.add h.shared.orphans (Retire_bag.to_list h.retireds);
  Retire_bag.clear h.retireds;
  Slots.unregister h.local

(* Crash recovery: announce the crash (the trace checker closes the
   victim's protection intervals at this event), withdraw its hazard
   slots, then salvage the retire bag — possibly torn by a mid-reclaim
   death — into the orphanage. Classic HP has no deferred invalidation to
   complete, so this is the whole obligation. *)
let report_crashed h =
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  Slots.reap h.local;
  Orphanage.add h.shared.orphans
    (Retire_bag.salvage ~uid:Mem.uid
       ~skip:(fun hdr -> Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr)
       h.retireds)
