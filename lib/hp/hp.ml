module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Collector = Smr.Collector
module Trace = Obs.Trace

let name = "HP"
let robust = true
let supports_optimistic = false
let counts_references = false
let needs_protection = true

type t = {
  registry : Slots.registry;
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  orphans : Mem.header Orphanage.t;
  (* Adaptive reclaim threshold: equals [config.reclaim_threshold] and never
     moves in inline mode; the background collector retunes it from observed
     garbage in async mode. Read (one load) on every threshold check. *)
  adaptive : int Atomic.t;
  (* Collector-domain-private state: handed-off bags accumulate in [pending]
     and are scanned with [cscan]. Touched by the mutators only after
     [Collector.shutdown]'s join. *)
  pending : Mem.header Retire_bag.t;
  cscan : Slots.scan;
  (* smr-lint: allow R3 — written once in [create] before [t] escapes; read-only afterwards *)
  mutable collector : Mem.header Retire_bag.t Collector.t option;
}

type handle = {
  shared : t;
  local : Slots.local;
  (* Single-owner: swaps only on the owning domain's handoff path. *)
  mutable retireds : Mem.header Retire_bag.t;
  scan : Slots.scan;
}

type guard = { slot : Slots.slot }

let stats t = t.stats

let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let protection_valid _ = true

let guard h = { slot = Slots.acquire h.local }
let protect g hdr = Slots.set g.slot hdr
let release g = Slots.clear g.slot

let skip_in_salvage hdr = Mem.uid hdr = Mem.phantom_uid || Mem.is_freed hdr

(* One scan-and-free pass over [bag]: the core of both the inline reclaim
   (per-handle bag and scan scratch) and the collector drain (shared
   pending bag and [cscan]). The caller has already adopted orphans and
   noted peaks. *)
let scan_and_free t ~scan bag =
  Stats.on_heavy_fence t.stats;
  Slots.scan_snapshot t.registry scan;
  let before = Retire_bag.length bag in
  Retire_bag.filter_in_place
    (fun hdr ->
      (* Crash window: a kill mid-filter tears the bag; report_crashed (or
         scheme shutdown, when this runs on the collector domain) salvages
         it with dedup. *)
      if Fault.enabled () then Fault.hit Fault.Reclaim;
      if Slots.scan_mem scan (Mem.uid hdr) then true
      else begin
        Mem.free_mark hdr;
        Stats.on_free t.stats;
        false
      end)
    bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length bag)
      (Slots.scan_size scan)

(* Paper Algorithm 2 Reclaim, inline flavour. The asymmetric-fence
   optimization makes the reclaimer pay the (counted) heavy fence so that
   TryProtect pays none. The hazard snapshot is sorted once and each
   retired uid binary-searched (Michael's amortized scan); survivors
   compact in place, so the pass allocates nothing at steady state. *)
let reclaim h =
  let t = h.shared in
  Orphanage.adopt_into t.orphans ~dst:h.retireds;
  Stats.note_peaks t.stats;
  scan_and_free t ~scan:h.scan h.retireds

(* Collector drain: fold the [n] handed-off bags (plus any orphans) into
   [t.pending], then pay ONE snapshot + heavy fence for the whole batch —
   the cross-domain amortization that the inline path cannot have. Runs
   only on the collector domain. Returns the still-pending count and
   retunes the adaptive threshold from the global garbage gauge. *)
let drain t bags n =
  for i = 0 to n - 1 do
    Retire_bag.transfer ~src:bags.(i) ~dst:t.pending
  done;
  Orphanage.adopt_into t.orphans ~dst:t.pending;
  if not (Retire_bag.is_empty t.pending) then begin
    Stats.note_peaks t.stats;
    scan_and_free t ~scan:t.cscan t.pending
  end;
  let left = Retire_bag.length t.pending in
  if Trace.enabled () then Trace.emit Trace.Drain (-1) n left;
  let garbage = Stats.unreclaimed t.stats in
  let cur = Atomic.get t.adaptive in
  let next =
    (* the handoff grain is pinned: a bigger batch would amortize the
       snapshot only slightly better, but every queued bag is unreclaimed
       garbage, and growing the grain also widens the ring and drain-batch
       terms of the peak — own-bag + queued-ring must fit the inline peak
       envelope. The clamp still guards the policy arithmetic. *)
    Collector.adapt_threshold ~cur
      ~lo:(max 16 (t.config.reclaim_threshold / 8))
      ~hi:(max 16 (t.config.reclaim_threshold / 8))
      ~pending:garbage
  in
  if next <> cur then begin
    Atomic.set t.adaptive next;
    if Trace.enabled () then Trace.emit Trace.Adapt (-1) next garbage
  end;
  left

let create ?(config = Smr.Smr_intf.default_config) () =
  let t =
    {
      registry = Slots.create ();
      stats = Stats.create ();
      config;
      orphans = Orphanage.create ();
      adaptive =
        (* async mode starts at the low bound: hand off small bags early
           and often (a ring push costs nanoseconds), so queued garbage
           stays near the inline peak; the drain-side policy grows the
           batch only while garbage stays low *)
        Atomic.make
          (if config.async_reclaim then
             min config.reclaim_threshold
               (max 16 (config.reclaim_threshold / 8))
           else config.reclaim_threshold);
      pending = Retire_bag.create Mem.phantom;
      cscan = Slots.scan_create ();
      collector = None;
    }
  in
  if config.async_reclaim then
    t.collector <-
      Some
        (Collector.spawn ~capacity:config.handoff_capacity ~length:Retire_bag.length
           ~drain:(drain t)
           ~dummy:(Retire_bag.create ~capacity:1 Mem.phantom)
           ());
  t

let register shared =
  {
    shared;
    local = Slots.register shared.registry;
    retireds =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        Mem.phantom;
    scan = Slots.scan_create ();
  }

(* The retire bag crossed the (adaptive) handoff threshold. Async mode:
   hand the full bag over and take a recycled empty one back — the hot
   path pays a ring push and two pointer moves instead of a snapshot. On
   failure (queue full, collector stalled-and-backlogged or dead) the bag
   keeps accumulating until the {e configured} baseline before the inline
   pass runs: handoffs are attempted at the smaller adaptive mark to keep
   queued garbage low, but a starved collector degrades this path to
   exactly the inline scan cadence, never a denser one. *)
(* Fold every queued bag into [dst] so the caller's imminent snapshot
   amortizes over them too: the ring drains even when the collector is
   starved of cpu or dead, which is what pins async peak garbage near the
   inline envelope instead of ring-capacity above it. *)
let absorb_queued c ~dst =
  let rec go () =
    match Collector.steal c with
    | Some b ->
        Retire_bag.transfer ~src:b ~dst;
        Collector.recycle c b;
        go ()
    | None -> ()
  in
  go ()

let reclaim_or_handoff h =
  let t = h.shared in
  let baseline = t.config.reclaim_threshold in
  match t.collector with
  | Some c when Collector.running c ->
      let full = h.retireds in
      let len = Retire_bag.length full in
      (* Only small bags enter the ring. A bag that grew toward baseline
         during a ring-full spell — or that carries unripe epoch survivors
         after an inline pass — would park a near-baseline slug of garbage
         in the queue behind a starved collector (one ill-timed admission
         is exactly an inline peak's worth on top of the steady state).
         Oversized stragglers finish the inline path instead, which
         absorbs the queue anyway. *)
      if len <= 2 * Atomic.get t.adaptive && Collector.offer c full then begin
        (* the ring owns [full] now; replace it before the next push *)
        h.retireds <-
          (match Collector.take_bag c with
          | Some b -> b
          | None ->
              Retire_bag.create ~capacity:(2 * Atomic.get t.adaptive)
                Mem.phantom);
        if Trace.enabled () then
          Trace.emit Trace.Handoff (-1) len (Collector.occupancy c)
      end
      else if len >= baseline then begin
        absorb_queued c ~dst:h.retireds;
        reclaim h
      end
  | Some c ->
      Collector.note_fallback c;
      if Retire_bag.length h.retireds >= baseline then begin
        absorb_queued c ~dst:h.retireds;
        reclaim h
      end
  | None -> reclaim h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  Retire_bag.push h.retireds hdr;
  if Retire_bag.length h.retireds >= Atomic.get h.shared.adaptive then
    reclaim_or_handoff h

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

(* No frontier protection, no invalidation: unlink then classic retire. *)
let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h = reclaim h

let unregister h =
  reclaim h;
  Orphanage.add h.shared.orphans h.retireds;
  Slots.unregister h.local

let shutdown t =
  match t.collector with
  | None -> ()
  | Some c ->
      Collector.shutdown c ~recover:(Orphanage.add t.orphans);
      (* The pending bag may hold survivors (blocks still protected at the
         final drain) or be torn (collector killed mid-filter): salvage in
         place, then donate it whole for inline passes to adopt. *)
      Retire_bag.salvage ~uid:Mem.uid ~skip:skip_in_salvage t.pending;
      Orphanage.add t.orphans t.pending

(* Crash recovery: announce the crash (the trace checker closes the
   victim's protection intervals at this event), withdraw its hazard
   slots, then salvage the retire bag — possibly torn by a mid-reclaim
   death — and donate it whole to the orphanage. Classic HP has no
   deferred invalidation to complete, so this is the whole obligation. *)
let report_crashed h =
  let victim_dom = Slots.dom h.local in
  Trace.emit Trace.Crash (-1) victim_dom 0;
  Slots.reap h.local;
  Retire_bag.salvage ~uid:Mem.uid ~skip:skip_in_salvage h.retireds;
  Orphanage.add h.shared.orphans h.retireds

let collector_counters t = Option.map Collector.counters t.collector
let collector_stats t = Option.map Collector.stats t.collector
