type 'a t = 'a Tagged.t Atomic.t

let make tagged = Atomic.make tagged
let null () = Atomic.make Tagged.null
let get = Atomic.get
let get_quiescent = Atomic.get
let cas l expected desired = Atomic.compare_and_set l expected desired

let cas_clean l expected desired =
  Tagged.tag expected = 0 && Atomic.compare_and_set l expected desired
let set = Atomic.set

let mark_invalid l =
  Atomic.set l (Tagged.set_bits (Atomic.get l) Tagged.invalid_bit)
