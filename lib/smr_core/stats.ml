(* Striped counters: the seed kept all eight counters in one shared record,
   so every alloc/retire/free from every domain bumped the same cache line
   and ran a peak-CAS loop. Events now land on a per-domain stripe (indexed
   through a domain-local stripe id) and readings sum the stripes; peaks are
   folded in at read time and at the schemes' reclaim entry points
   ([note_peaks]) instead of on every operation. *)

type stripe = {
  alloc : int Atomic.t;
  reclaimed : int Atomic.t; (* frees of retired blocks *)
  discarded : int Atomic.t; (* frees that never passed through retirement *)
  retired : int Atomic.t;
  heavy_fences : int Atomic.t;
  protection_failures : int Atomic.t;
}

(* Power of two so stripe selection is a mask. 64 stripes exceed any domain
   count OCaml will actually run; collisions past that stay correct because
   the stripe fields are atomic. *)
let num_stripes = 64

(* Each domain draws a distinct stripe id once, so concurrent domains never
   share a stripe (until > num_stripes domains exist). Domain ids themselves
   are reused by the runtime, which is fine: the id is only a hash. *)
let next_stripe_id = Atomic.make 0

let stripe_key =
  Domain.DLS.new_key (fun () ->
      Atomic.fetch_and_add next_stripe_id 1 land (num_stripes - 1))

let my_stripe () = Domain.DLS.get stripe_key

type t = {
  stripes : stripe array;
  peak_unreclaimed : int Atomic.t;
  peak_live : int Atomic.t;
}

let make_stripe () =
  (* OCaml 5.1 has no Atomic.make_contended: separate the six atomic cells
     of consecutive stripes with dead padding blocks so adjacent stripes do
     not land on one cache line when the minor heap lays them out in
     allocation order. *)
  let s =
    {
      alloc = Atomic.make 0;
      reclaimed = Atomic.make 0;
      discarded = Atomic.make 0;
      retired = Atomic.make 0;
      heavy_fences = Atomic.make 0;
      protection_failures = Atomic.make 0;
    }
  in
  ignore (Sys.opaque_identity (Array.make 16 0));
  s

let create () =
  {
    stripes = Array.init num_stripes (fun _ -> make_stripe ());
    peak_unreclaimed = Atomic.make 0;
    peak_live = Atomic.make 0;
  }

let reset t =
  Array.iter
    (fun s ->
      Atomic.set s.alloc 0;
      Atomic.set s.reclaimed 0;
      Atomic.set s.discarded 0;
      Atomic.set s.retired 0;
      Atomic.set s.heavy_fences 0;
      Atomic.set s.protection_failures 0)
    t.stripes;
  Atomic.set t.peak_unreclaimed 0;
  Atomic.set t.peak_live 0

let sum t field =
  let acc = ref 0 in
  Array.iter (fun s -> acc := !acc + Atomic.get (field s)) t.stripes;
  !acc

(* Monotone max update; contention is rare (only on new peaks). *)
let rec update_peak peak v =
  let cur = Atomic.get peak in
  if v > cur && not (Atomic.compare_and_set peak cur v) then update_peak peak v

let allocated t = sum t (fun s -> s.alloc)
let retired_total t = sum t (fun s -> s.retired)
let freed t = sum t (fun s -> s.reclaimed) + sum t (fun s -> s.discarded)
let heavy_fences t = sum t (fun s -> s.heavy_fences)
let protection_failures t = sum t (fun s -> s.protection_failures)

(* Readings fold the instantaneous value into the peak, so a peak is a
   monotone upper bound of every value this module has ever reported.

   The [let] sequencing below is load-bearing: the increasing side of each
   difference must be swept strictly BEFORE the decreasing side (beware
   OCaml's right-to-left operand evaluation — [a - sum ...] sweeps the
   subtrahend first). Counters only grow and every decrement-side event
   (free) is causally after its increment-side event (retire/alloc), so
   sweeping the increasing side first bounds the reading by the true
   instantaneous value at the point between the sweeps; the reverse order
   lets a reader preempted between sweeps overshoot by the whole backlog
   turned over during its time slice. *)
let unreclaimed t =
  let r = retired_total t in
  let v = r - sum t (fun s -> s.reclaimed) in
  update_peak t.peak_unreclaimed v;
  v

let live t =
  let a = allocated t in
  let v = a - freed t in
  update_peak t.peak_live v;
  v

let note_peaks t =
  ignore (unreclaimed t);
  ignore (live t)

let peak_unreclaimed t =
  ignore (unreclaimed t);
  Atomic.get t.peak_unreclaimed

let peak_live t =
  ignore (live t);
  Atomic.get t.peak_live

let on_alloc t =
  Atomic.incr t.stripes.(my_stripe ()).alloc

let on_retire t =
  Atomic.incr t.stripes.(my_stripe ()).retired

let on_free t =
  Atomic.incr t.stripes.(my_stripe ()).reclaimed

let on_discard t = Atomic.incr t.stripes.(my_stripe ()).discarded
let on_heavy_fence t = Atomic.incr t.stripes.(my_stripe ()).heavy_fences

let on_protection_failure t =
  Atomic.incr t.stripes.(my_stripe ()).protection_failures

let pp ppf t =
  Format.fprintf ppf
    "alloc=%d freed=%d live=%d unreclaimed=%d peak_unreclaimed=%d \
     peak_live=%d heavy_fences=%d protection_failures=%d"
    (allocated t) (freed t) (live t) (unreclaimed t) (peak_unreclaimed t)
    (peak_live t) (heavy_fences t) (protection_failures t)
