exception Use_after_free of int
exception Double_retire of int
exception Invalid_free of int

let state_live = 0
let state_retired = 1
let state_freed = 2

type header = { uid : int; state : int Atomic.t; refcount : int Atomic.t }

let enabled = Atomic.make true

(* Uids are drawn from per-domain blocks so header allocation does not
   contend on one global counter: a domain grabs [uid_block] ids at a time
   and hands them out locally. Uids stay globally unique (the only property
   scans rely on) but are no longer globally ordered. *)
let uid_block = 1024
let uid_counter = Atomic.make 0

type uid_cursor = { mutable next : int; mutable limit : int }

let uid_key = Domain.DLS.new_key (fun () -> { next = 0; limit = 0 })

let fresh_uid () =
  let c = Domain.DLS.get uid_key in
  if c.next >= c.limit then begin
    let base = Atomic.fetch_and_add uid_counter uid_block in
    c.next <- base;
    c.limit <- base + uid_block
  end;
  let uid = c.next in
  c.next <- uid + 1;
  uid

module Trace = Obs.Trace

let make stats =
  Stats.on_alloc stats;
  let h =
    {
      uid = fresh_uid ();
      state = Atomic.make state_live;
      refcount = Atomic.make 1;
    }
  in
  if Trace.enabled () then Trace.emit Trace.Alloc h.uid 0 0;
  h

(* A shared placeholder header: array filler for retire batches. Never
   retired, freed or dereferenced. Its uid is -2, NOT -1: -1 is the "no
   node" sentinel of Step trace events (Ds_common.uid_of_hdr), and the two
   must stay distinguishable in traces — the replay checker rejects any
   event carrying the phantom uid. *)
let phantom_uid = -2

let phantom =
  { uid = phantom_uid; state = Atomic.make state_live; refcount = Atomic.make 1 }

let reject_phantom op h =
  if h.uid = phantom_uid then
    invalid_arg ("Mem." ^ op ^ ": phantom header escaped into a retire/free path")

let refcount h = h.refcount

let uid h = h.uid
let is_live h = Atomic.get h.state = state_live
let is_retired h = Atomic.get h.state = state_retired
let is_freed h = Atomic.get h.state = state_freed

let retire_mark h =
  reject_phantom "retire_mark" h;
  if not (Atomic.compare_and_set h.state state_live state_retired) then
    raise (Double_retire h.uid);
  if Trace.enabled () then Trace.emit Trace.Retire h.uid 0 0;
  (* Crash window: the block is marked retired but its header has not yet
     reached any retire bag. A kill here leaks the block (no survivor can
     find it) — which is exactly what dying between the mark and the push
     means, and what chaos tests must tolerate. *)
  if Fault.enabled () then Fault.hit Fault.Retire

let free_mark h =
  reject_phantom "free_mark" h;
  if not (Atomic.compare_and_set h.state state_retired state_freed) then
    raise (Invalid_free h.uid);
  if Trace.enabled () then Trace.emit Trace.Free h.uid 0 0

let free_mark_cascade h =
  reject_phantom "free_mark_cascade" h;
  let s = Atomic.get h.state in
  if s = state_freed || not (Atomic.compare_and_set h.state s state_freed)
  then raise (Invalid_free h.uid);
  if Trace.enabled () then Trace.emit Trace.Free h.uid 1 0

let check_access h =
  if Atomic.get enabled && Atomic.get h.state = state_freed then
    raise (Use_after_free h.uid)

let set_checking b = Atomic.set enabled b
let checking () = Atomic.get enabled
