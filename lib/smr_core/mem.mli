(** Simulated manual heap.

    OCaml's GC makes literal use-after-free impossible, so this module gives
    every managed block an explicit lifecycle that reclamation schemes drive
    exactly as they would drive [malloc]/[free]:

    {v Live --retire--> Retired --free--> Freed v}

    A block is a {!header} embedded in a data-structure node. Schemes mark
    headers; data structures call {!check_access} on every dereference, which
    turns what would be undefined behaviour in C into a deterministic
    {!Use_after_free} exception. Lifecycle violations by a scheme itself
    (double retire, double free, freeing a live block) are also detected. *)

exception Use_after_free of int (** uid of the freed block that was accessed *)

exception Double_retire of int
exception Invalid_free of int

type header

val make : Stats.t -> header
(** Allocate a fresh block header, counted in [stats]. Uids are drawn from
    per-domain blocks of 1024 off one global counter, so allocation does
    not contend; uids are unique but not globally ordered. *)

val phantom_uid : int
(** The phantom's uid, [-2]. Distinct from [-1], the "no node" sentinel of
    Step trace events ([Ds_common.uid_of_hdr]), so a phantom leaking into a
    trace cannot masquerade as "stepped from the list head". *)

val phantom : header
(** A shared placeholder header (uid {!phantom_uid}) used as array filler by
    retire batches. Never retire, free or access it: the retire/free paths
    raise [Invalid_argument] if it reaches them, and the trace-replay
    checker rejects any event carrying its uid. *)

val uid : header -> int
(** Unique id, for hash-set membership during hazard scans. *)

val refcount : header -> int Atomic.t
(** Incoming-link counter, initialized to 1 (the link about to be created).
    Only the reference-counting scheme reads or writes it. *)

val is_live : header -> bool
val is_retired : header -> bool
val is_freed : header -> bool

val retire_mark : header -> unit
(** Transition [Live -> Retired]. @raise Double_retire otherwise. *)

val free_mark : header -> unit
(** Transition [Retired -> Freed]. @raise Invalid_free otherwise. *)

val free_mark_cascade : header -> unit
(** Transition [Live|Retired -> Freed]: reference-counting cascades destroy
    blocks that were never explicitly retired. @raise Invalid_free on double
    free. *)

val check_access : header -> unit
(** @raise Use_after_free if the block is freed and checking is enabled.
    Accessing [Live] or [Retired] blocks is legal (a retired block may still
    be protected by a hazard pointer). *)

val set_checking : bool -> unit
(** Globally enable/disable {!check_access} (default: enabled). Disabling is
    only intended for benchmark runs that want the detector's cost out of the
    way; tests always run with it on. *)

val checking : unit -> bool
