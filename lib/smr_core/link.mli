(** An atomic tagged link: one mutable pointer field of a node. *)

type 'a t

val make : 'a Tagged.t -> 'a t
val null : unit -> 'a t
val get : 'a t -> 'a Tagged.t

val get_quiescent : 'a t -> 'a Tagged.t
(** [get] under a declared quiescence contract: the caller asserts no
    concurrent writer exists (single-domain tests, post-shutdown audits,
    debug walkers), so the read needs no protection before dereference.
    smr_lint tracks the result as [Quiescent] — exempt from the
    validation-dominates rule (F1) — and flags any function that both
    declares quiescence and synchronizes (F7 quiescent-mixing), so the
    contract cannot silently leak into concurrent paths. *)

val cas : 'a t -> 'a Tagged.t -> 'a Tagged.t -> bool
(** Compare-and-set by physical equality of the tagged record previously
    read with {!get}. *)

val cas_clean : 'a t -> 'a Tagged.t -> 'a Tagged.t -> bool
(** Like {!cas}, but additionally fails when [expected] carries any tag
    bits. This emulates the paper's value-semantics
    [compare_exchange(untagged_ptr, desired)]: structural CASes (insert,
    unlink) must fail if the source link was logically deleted or
    invalidated in the meantime — even when the traversal legitimately kept
    going past that point (optimistic traversal may hold a tagged record of
    the link after HP++'s TryProtect chased a concurrent update). *)

val set : 'a t -> 'a Tagged.t -> unit
(** Plain store. HP++ invalidation is allowed to use a store instead of an
    RMW because links of to-be-unlinked nodes no longer change
    (Assumption 1). *)

val mark_invalid : 'a t -> unit
(** [set] the invalidation bit, preserving pointer and other tag bits. *)
