(** Allocation/retirement/reclamation accounting for one reclamation domain.

    This is the measurement substrate for the paper's memory-footprint
    figures: peak and instantaneous counts of blocks that are retired but not
    yet reclaimed (Figures 11, 15–17, 21–23), live blocks (Figures 18–20),
    and heavy-fence counts (Algorithm 5 ablation). All counters are atomic
    and safe to update from any domain.

    Counters are {e striped}: each domain updates its own cache-line-padded
    stripe and readings sum the stripes, so the event hooks are uncontended
    stores on the hot path. Peaks are not tracked per event; they are folded
    in whenever a reading is taken and at {!note_peaks}, which reclamation
    schemes call on entry to a reclaim pass — the moment the garbage backlog
    is at its local maximum. Peaks are therefore monotone upper bounds of
    every value this module reports, and exact at reclaim boundaries. *)

type t

val create : unit -> t

val reset : t -> unit
(** Reset all counters and peaks to zero. Only call at quiescence. *)

(** {1 Events recorded by schemes and data structures} *)

val on_alloc : t -> unit
val on_retire : t -> unit
(** A block became garbage: unlinked/retired but not yet reclaimed. *)

val on_free : t -> unit
(** A retired block was reclaimed. *)

val on_discard : t -> unit
(** A freshly allocated block was dropped before ever being linked (e.g. a
    failed insert of a duplicate key): counts as freed without passing
    through retirement. *)

val on_heavy_fence : t -> unit
val on_protection_failure : t -> unit
(** A [try_protect]-style validation failed and the caller must recover. *)

val note_peaks : t -> unit
(** Fold the current unreclaimed/live counts into the peaks. Schemes call
    this on entry to a reclamation pass (the backlog's local maximum);
    samplers get the same folding for free through {!unreclaimed}/{!live}. *)

(** {1 Readings} *)

val allocated : t -> int
val freed : t -> int
val live : t -> int
(** Blocks allocated and not yet freed (live + garbage). *)

val unreclaimed : t -> int
(** Blocks retired and not yet freed: the robustness metric. *)

val peak_unreclaimed : t -> int
val peak_live : t -> int
val retired_total : t -> int
val heavy_fences : t -> int
val protection_failures : t -> int

val pp : Format.formatter -> t -> unit
