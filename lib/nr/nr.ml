module Mem = Smr_core.Mem
module Stats = Smr_core.Stats

let name = "NR"
let robust = false
let supports_optimistic = true
let counts_references = false
let needs_protection = false

type t = Stats.t
type handle = t
type guard = unit

let create ?config:_ () = Stats.create ()
let stats t = t
let register t = t
let unregister _ = ()
let crit_enter _ = ()
let crit_exit _ = ()
let crit_refresh _ = ()
let guard _ = ()
let protect () _ = ()
let release () = ()
let protection_valid _ = true

let retire t hdr =
  Mem.retire_mark hdr;
  Stats.on_retire t

let retire_with_children t hdr ~children:_ = retire t hdr
let incr_ref _ = ()

let try_unlink t ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire t (node_header n)) nodes;
      true

let flush _ = ()

(* NR never reclaims, so there is no collector to stop. *)
let shutdown _ = ()

(* No collector: NR never reclaims, so there is nothing to introspect. *)
let collector_stats _ = None

(* NR holds no per-handle state and never reclaims: a crashed handle leaves
   nothing to rescue (and leaks nothing beyond what NR already leaks). *)
let report_crashed _ = ()
