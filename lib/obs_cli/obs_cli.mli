(** The one shared [--metrics-listen ADDR] / [--metrics-every SECS] cmdliner
    term: every binary that can serve a live [/metrics] page composes
    {!term} into its command line, so the flags parse (and read in
    [--help]) identically across [netkv_server], [shardkv_bench] and
    [soak]. *)

type t = {
  listen : Unix.sockaddr option;  (** [None]: no scrape endpoint *)
  every : float;  (** scrape-page cache TTL, seconds *)
}

val term : t Cmdliner.Term.t

val parse_addr : string -> (Unix.sockaddr, [ `Msg of string ]) result
(** ["HOST:PORT"] or [":PORT"]; empty or ["*"] host means loopback.
    Exposed for tests. *)

val metrics_of : t -> (Unix.sockaddr * float) option
(** In the shape [Net.Server.Make(_).start]'s [?metrics] expects. *)

val start : t -> sample:(Obs.Metrics.t -> unit) -> Obs.Exposition.t option
(** Start an exposition listener directly (binaries without a [Server],
    e.g. [shardkv_bench]/[soak]); [None] when [--metrics-listen] was not
    given. Remember to {!Obs.Exposition.stop} it. *)
