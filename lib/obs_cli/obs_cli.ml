(* Shared cmdliner vocabulary for the live telemetry plane: every binary
   that can serve /metrics accepts the same --metrics-listen ADDR and
   --metrics-every SECS pair, parsed the same way, instead of three
   hand-rolled copies drifting apart. *)

open Cmdliner

type t = { listen : Unix.sockaddr option; every : float }

(* "HOST:PORT" or ":PORT"; a missing/empty/"*" host means loopback — a
   scrape endpoint is diagnostics, exposing it beyond the box is an
   explicit choice ("0.0.0.0:9100"). *)
let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg (Printf.sprintf "%S: expected HOST:PORT or :PORT" s))
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | None -> Error (`Msg (Printf.sprintf "%S: bad port %S" s port))
      | Some p when p < 0 || p > 0xffff ->
          Error (`Msg (Printf.sprintf "%S: bad port %S" s port))
      | Some p -> (
          if host = "" || host = "*" then
            Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
          else
            match Unix.inet_addr_of_string host with
            | ip -> Ok (Unix.ADDR_INET (ip, p))
            | exception Failure _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                    Error (`Msg (Printf.sprintf "%S: unknown host %S" s host))
                | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), p)))))

let pp_addr ppf = function
  | Unix.ADDR_INET (ip, p) ->
      Format.fprintf ppf "%s:%d" (Unix.string_of_inet_addr ip) p
  | Unix.ADDR_UNIX path -> Format.fprintf ppf "unix:%s" path

let addr_conv = Arg.conv (parse_addr, pp_addr)

let listen_arg =
  let doc =
    "Serve Prometheus text at http://$(docv)/metrics while running \
     (HOST:PORT or :PORT; the host defaults to loopback, port 0 picks a \
     free port)."
  in
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "metrics-listen" ] ~docv:"ADDR" ~doc)

let every_arg =
  let doc =
    "Minimum seconds between metrics re-samples: the scrape page is cached \
     this long, so the scraper's own cadence (bounded below by $(docv)) \
     sets the effective resolution."
  in
  Arg.(value & opt float 1.0 & info [ "metrics-every" ] ~docv:"SECS" ~doc)

let term =
  Term.(
    const (fun listen every -> { listen; every }) $ listen_arg $ every_arg)

let metrics_of t = Option.map (fun addr -> (addr, t.every)) t.listen

let start t ~sample =
  Option.map
    (fun addr -> Obs.Exposition.start ~every:t.every ~sample addr)
    t.listen
