(* Worklist fixpoint over a function CFG, and the event transfer function
   shared by the two consumers: summarization (Raw-seeded parameters,
   solver.summarize) and the error pass (Neutral-seeded, rules_flow.ml).

   The abstract domain is Lattice.t — per-object facts plus reachability —
   and every merge is a join, so a deref is accepted only when validation
   *must*-dominates it: any path that reaches the deref still Raw drags the
   join down to Raw and the rule fires. Termination: node in-states only
   ever descend the finite-height chain (join accumulates), so the
   worklist drains after at most height × objects × nodes relaxations. *)

type obs = {
  ob_deref : int -> Lattice.fact -> string -> Location.t -> unit;
  ob_use : int -> Lattice.fact -> Location.t -> unit;
  ob_retire : int -> Lattice.fact -> Location.t -> unit;
      (** observed before the retire transfer, so the published bit and the
          prior state are still visible *)
  ob_ret : int -> Lattice.fact -> Location.t -> unit;
  ob_store : int -> Lattice.fact -> Location.t -> unit;
}

let silent =
  {
    ob_deref = (fun _ _ _ _ -> ());
    ob_use = (fun _ _ _ -> ());
    ob_retire = (fun _ _ _ -> ());
    ob_ret = (fun _ _ _ -> ());
    ob_store = (fun _ _ _ -> ());
  }

(* Apply one event to a fact array in place. [lookup] resolves a callee to
   its current summary ([None] on the first iteration, before one exists). *)
let apply ~lookup ~obs (facts : Lattice.fact array) (ev : Cfg.ev) =
  let get o = facts.(o) in
  let set o f = facts.(o) <- f in
  let set_state objs st =
    List.iter
      (fun o -> if (get o).Lattice.st <> Lattice.Bot then set o { (get o) with Lattice.st })
      objs
  in
  let retire_one loc o =
    let f = get o in
    obs.ob_retire o f loc;
    (* retirement does not end a protection window the caller still holds:
       a validated/protected/quiescent object stays dereferenceable by its
       owner (Treiber pop reads [n.value] after retiring [n]) *)
    match f.Lattice.st with
    | Lattice.Raw | Lattice.Neutral -> set o { f with Lattice.st = Lattice.Retired }
    | _ -> ()
  in
  match ev with
  | Cfg.Fresh (o, st) -> set o { Lattice.st; published = false }
  | Cfg.Set_state (objs, st) -> set_state objs st
  | Cfg.Protect objs ->
      (* announcing a hazard slot turns a shared-link read into a pending
         obligation; it must not create one for a Neutral object (a struct
         field like the tree root, or an opaque parameter) and must not
         revoke a validation already established *)
      List.iter
        (fun o ->
          let f = get o in
          match f.Lattice.st with
          | Lattice.Raw -> set o { f with Lattice.st = Lattice.Protected }
          | _ -> ())
        objs
  | Cfg.Validate_protected ->
      Array.iteri
        (fun o f ->
          if f.Lattice.st = Lattice.Protected then
            set o { f with Lattice.st = Lattice.Validated })
        facts
  | Cfg.Scheme_safe ->
      Array.iteri
        (fun o f ->
          match f.Lattice.st with
          | Lattice.Raw | Lattice.Protected ->
              set o { f with Lattice.st = Lattice.Validated }
          | _ -> ())
        facts
  | Cfg.Demote_all ->
      Array.iteri
        (fun o f ->
          match f.Lattice.st with
          | Lattice.Protected | Lattice.Validated ->
              set o { f with Lattice.st = Lattice.Raw }
          | _ -> ())
        facts
  | Cfg.Publish objs ->
      List.iter (fun o -> set o { (get o) with Lattice.published = true }) objs
  | Cfg.Retire (objs, loc) -> List.iter (retire_one loc) objs
  | Cfg.Deref (objs, hint, loc) ->
      List.iter (fun o -> obs.ob_deref o (get o) hint loc) objs
  | Cfg.Use (objs, loc) -> List.iter (fun o -> obs.ob_use o (get o) loc) objs
  | Cfg.Ret (v, loc) ->
      List.iter (fun o -> obs.ob_ret o (get o) loc) v.Cfg.whole
  | Cfg.Store (objs, loc) ->
      List.iter (fun o -> obs.ob_store o (get o) loc) objs
  | Cfg.Blocking _ -> ()
  | Cfg.Call { callee; args; ret_whole; ret_slots; loc } ->
      let s = lookup callee in
      (match s with
      | None -> ()
      | Some (s : Summary.fn) ->
          let n = min s.s_arity (Array.length args) in
          for i = 0 to n - 1 do
            if i < Array.length s.s_derefs_raw && s.s_derefs_raw.(i) then
              List.iter
                (fun o -> obs.ob_deref o (get o) "<argument>" loc)
                args.(i);
            if i < Array.length s.s_retires && s.s_retires.(i) then
              (* the publish-discipline half of F3 is only checkable inside
                 the callee, where its unlinking CAS precedes the retire;
                 across the boundary propagate the retired state (so later
                 caller uses still flag) and report only double retirement *)
              List.iter
                (fun o ->
                  let f = get o in
                  if f.Lattice.st = Lattice.Retired then obs.ob_retire o f loc;
                  match f.Lattice.st with
                  | Lattice.Raw | Lattice.Neutral ->
                      set o { f with Lattice.st = Lattice.Retired }
                  | _ -> ())
                args.(i);
            if i < Array.length s.s_param_exit then
              match s.s_param_exit.(i) with
              | (Lattice.Validated | Lattice.Protected | Lattice.Invalidated
                | Lattice.Handed_off) as st ->
                  set_state args.(i) st
              | _ -> ()
          done);
      let slot_state = function
        | Summary.Pass i when i < Array.length args && args.(i) <> [] ->
            (* context-sensitive: the callee returns parameter [i]
               verbatim, so the result carries the argument's current
               state (a validated cursor stays validated across the
               call) *)
            List.fold_left
              (fun acc ao -> Lattice.join acc (get ao).Lattice.st)
              Lattice.Bot args.(i)
        | Summary.Pass _ -> Lattice.Neutral
        | Summary.St st -> st
      in
      let whole_st =
        match s with
        | Some s -> slot_state s.s_ret_whole
        | None -> Lattice.Neutral
      in
      (* a [St Bot] shape stays Bot — the join identity — so a recursive
         call's not-yet-known contribution cannot drag the ret-site join
         below its eventual fixpoint (an unknown CALLEE is Neutral above) *)
      set ret_whole { Lattice.st = whole_st; published = false };
      Array.iteri
        (fun j o ->
          let st =
            match s with
            | Some s when j < Array.length s.s_ret_slots ->
                slot_state s.s_ret_slots.(j)
            | _ -> Lattice.Neutral
          in
          set o { Lattice.st; published = false })
        ret_slots

(* --- Fixpoint -------------------------------------------------------------- *)

(* In-state per node; entry seeds every parameter object with [seed]. *)
let solve ~lookup (fn : Cfg.func) ~seed : Lattice.t array =
  let nodes = Cfg.nodes_of fn in
  let nn = Array.length nodes in
  let ins = Array.make nn Lattice.unreached in
  let entry_facts =
    match Lattice.entry (max fn.Cfg.fn_nobjs 1) with
    | Some a ->
        Array.iter
          (fun o -> a.(o) <- { Lattice.st = seed; published = false })
          fn.Cfg.fn_param_objs;
        Some a
    | None -> None
  in
  ins.(0) <- entry_facts;
  let work = Queue.create () in
  Queue.add 0 work;
  let on_work = Array.make nn false in
  on_work.(0) <- true;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    on_work.(id) <- false;
    match Lattice.copy ins.(id) with
    | None -> ()
    | Some facts ->
        List.iter
          (fun ev -> apply ~lookup ~obs:silent facts ev)
          (List.rev nodes.(id).Cfg.n_evs);
        let out = Some facts in
        List.iter
          (fun succ ->
            let joined = Lattice.join_state ins.(succ) out in
            if not (Lattice.state_equal joined ins.(succ)) then begin
              ins.(succ) <- joined;
              if not on_work.(succ) then begin
                on_work.(succ) <- true;
                Queue.add succ work
              end
            end)
          nodes.(id).Cfg.n_succs
  done;
  ins

(* Replay every reachable node's events against its solved in-state with a
   live observer: the error pass and the summarizer are both replays. *)
let replay ~lookup ~obs (fn : Cfg.func) (ins : Lattice.t array) =
  let nodes = Cfg.nodes_of fn in
  Array.iteri
    (fun id n ->
      match Lattice.copy ins.(id) with
      | None -> ()
      | Some facts ->
          List.iter (fun ev -> apply ~lookup ~obs facts ev) (List.rev n.Cfg.n_evs))
    nodes

(* --- Summarization ---------------------------------------------------------- *)

let is_param (fn : Cfg.func) o =
  let rec idx i =
    if i >= Array.length fn.Cfg.fn_param_objs then None
    else if fn.Cfg.fn_param_objs.(i) = o then Some i
    else idx (i + 1)
  in
  idx 0

(* Raw-seeded summary of one function under the current summary table. *)
let summarize ~lookup (fn : Cfg.func) : Summary.fn =
  let arity = List.length fn.Cfg.fn_params in
  let ins = solve ~lookup fn ~seed:Lattice.Raw in
  let derefs_raw = Array.make arity false in
  let retires = Array.make arity false in
  let ret_sites :
      ((Cfg.objset * Lattice.state) array * (Cfg.objset * Lattice.state)) list
      ref =
    ref []
  in
  let blocks = ref None in
  (* Ret events need slot-level states, which the generic observer does not
     carry: walk them with a dedicated replay observer that snapshots facts
     at the site. Per-object callbacks cover the param bits. *)
  let obs =
    {
      silent with
      ob_deref =
        (fun o f _ _ ->
          match is_param fn o with
          | Some i when f.Lattice.st = Lattice.Raw -> derefs_raw.(i) <- true
          | _ -> ());
      ob_retire =
        (fun o _ _ ->
          match is_param fn o with
          | Some i -> retires.(i) <- true
          | None -> ());
    }
  in
  replay ~lookup ~obs fn ins;
  (* second pass for return shapes and blocking sites, where we need the
     fact array mid-node rather than per-object callbacks *)
  let nodes = Cfg.nodes_of fn in
  Array.iteri
    (fun id n ->
      match Lattice.copy ins.(id) with
      | None -> ()
      | Some facts ->
          List.iter
            (fun ev ->
              (match ev with
              | Cfg.Ret (v, _) when v.Cfg.whole <> [] ->
                  let state_of objs =
                    List.fold_left
                      (fun acc o -> Lattice.join acc facts.(o).Lattice.st)
                      Lattice.Bot objs
                  in
                  let slots =
                    Array.map (fun objs -> (objs, state_of objs)) v.Cfg.slots
                  in
                  ret_sites :=
                    (slots, (v.Cfg.whole, state_of v.Cfg.whole)) :: !ret_sites
              | Cfg.Blocking (name, _) when (not n.Cfg.n_crit) && !blocks = None
                ->
                  blocks := Some name
              | Cfg.Call { callee; _ } when not n.Cfg.n_crit -> (
                  match lookup callee with
                  | Some (s : Summary.fn) when s.s_blocks <> None ->
                      if !blocks = None then blocks := s.s_blocks
                  | _ -> ())
              | _ -> ());
              apply ~lookup ~obs:silent facts ev)
            (List.rev n.Cfg.n_evs))
    nodes;
  (* return shape: pad mismatching sites with their whole-state so an
     unknown-shaped site (a first-iteration recursive tail call) weakens
     every slot instead of erasing the shape. A slot whose object set is
     exactly one parameter at EVERY full-shape site (and no padded site
     dilutes it) becomes a context-sensitive [Pass] slot instead of a
     joined constant state. *)
  let arity_slots =
    List.fold_left (fun m (s, _) -> max m (Array.length s)) 0 !ret_sites
  in
  let matching, mismatched =
    List.partition (fun (s, _) -> Array.length s = arity_slots) !ret_sites
  in
  (* a rep list collapses to [Pass i] when every site's object set is
     exactly parameter [i]'s object, and to a joined state otherwise *)
  let collapse reps =
    let pass =
      match reps with
      | (objs0, _) :: _ -> (
          match objs0 with
          | [ o ] -> (
              match is_param fn o with
              | Some i
                when List.for_all (fun (objs, _) -> objs = [ o ]) reps ->
                  Some i
              | _ -> None)
          | _ -> None)
      | [] -> None
    in
    match pass with
    | Some i -> Summary.Pass i
    | None ->
        Summary.St
          (List.fold_left
             (fun acc (_, st) -> Lattice.join acc st)
             Lattice.Bot reps)
  in
  let ret_whole = collapse (List.map snd !ret_sites) in
  let ret_slots =
    Array.init arity_slots (fun j ->
        let reps = List.map (fun (s, _) -> s.(j)) matching in
        match (collapse reps, mismatched) with
        | (Summary.Pass _ as p), [] -> p
        | _, _ ->
            (* pad mismatching sites with their whole-state so an
               unknown-shaped site (a first-iteration recursive tail call)
               weakens every slot instead of erasing the shape *)
            let st =
              List.fold_left
                (fun acc (_, st) -> Lattice.join acc st)
                Lattice.Bot reps
            in
            Summary.St
              (List.fold_left
                 (fun acc (_, (_, w)) -> Lattice.join acc w)
                 st mismatched))
  in
  let exit_facts = ins.(fn.Cfg.fn_exit) in
  let param_exit =
    Array.init arity (fun i ->
        match exit_facts with
        | Some facts -> facts.(fn.Cfg.fn_param_objs.(i)).Lattice.st
        | None -> Lattice.Raw)
  in
  (* an unreached exit (or a Bot param on every return path) means the
     callee imposes nothing on the argument *)
  let param_exit =
    Array.map (fun st -> if st = Lattice.Bot then Lattice.Raw else st) param_exit
  in
  {
    Summary.s_name = fn.Cfg.fn_name;
    s_arity = arity;
    s_param_exit = param_exit;
    s_derefs_raw = derefs_raw;
    s_retires = retires;
    s_ret_slots = ret_slots;
    s_ret_whole = ret_whole;
    s_blocks = !blocks;
    s_enters_crit = fn.Cfg.fn_crit;
    s_quiescent = fn.Cfg.fn_quiescent <> [];
  }
