(** The flow rules F1–F7 (DESIGN.md §15): summary fixpoint over a file's
    CFGs, then a Neutral-seeded error pass per function. Scope selection
    (which checks run on which directory) lives in {!Engine}. *)

type checks = {
  c_deref : bool;  (** F1 unvalidated-deref + F2 protected-escape *)
  c_retire : bool;  (** F3 use-after-retire *)
  c_handoff : bool;  (** F4 collector-handoff *)
  c_crit : bool;  (** F5 crit-hygiene *)
  c_counter : bool;  (** F6 counter-read-order *)
  c_quiescent : bool;  (** F7 quiescent-mixing *)
}

val converge :
  ext:(qual:string option -> string -> Summary.fn option) ->
  Parsetree.structure ->
  Cfg.file * Summary.fn array
(** Iterate build-and-summarize until the per-function summaries stop
    changing (call-return slot arity depends on callee summaries, so the
    graph converges with them); returns the final CFGs and summaries
    indexed by fid. Exposed for the engine-internal tests. *)

val run :
  file:string ->
  checks:checks ->
  ext:(qual:string option -> string -> Summary.fn option) ->
  Parsetree.structure ->
  Finding.t list * Summary.fn list
(** Returns (findings, summaries of the file's top-level functions — the
    sidecar export). *)
