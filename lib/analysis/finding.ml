(* Rule metadata and findings. Rules are identified both by a short id
   ("R1") and a slug ("raw-link-deref"); pragmas may use either. A
   [file_scope] rule is about the file as a whole (suppressible by a pragma
   anywhere in it); the others anchor to a line and are suppressible only by
   a pragma on that line or the line above. *)

type rule = {
  id : string;
  slug : string;
  file_scope : bool;
  suppressible : bool;
  summary : string;
}

let r1 =
  {
    id = "R1";
    slug = "raw-link-deref";
    file_scope = false;
    suppressible = true;
    summary =
      "node fields dereferenced after a raw Link.get/Atomic.get without a \
       validated protection";
  }

let r2 =
  {
    id = "R2";
    slug = "invalidate-before-free";
    file_scope = false;
    suppressible = true;
    summary = "a free/reclaim call precedes batch invalidation";
  }

let r3 =
  {
    id = "R3";
    slug = "shared-mutable-field";
    file_scope = false;
    suppressible = true;
    summary =
      "plain mutable field in a record shared across domains (OCaml \
       memory-model data race)";
  }

let r4 =
  {
    id = "R4";
    slug = "unguarded-trace-alloc";
    file_scope = false;
    suppressible = true;
    summary =
      "Trace.emit argument may allocate outside an `if Trace.enabled ()` \
       guard";
  }

let r5 =
  {
    id = "R5";
    slug = "missing-mli";
    file_scope = true;
    suppressible = true;
    summary = "module has no .mli and exports everything";
  }

(* Flow rules (smr_lint v2): produced by the dataflow engine in
   rules_flow.ml rather than the syntactic pass. F1 subsumes R1, which is
   kept only under [--v1]. *)

let f1 =
  {
    id = "F1";
    slug = "unvalidated-deref";
    file_scope = false;
    suppressible = true;
    summary =
      "dereference of a shared-read pointer on a path where Validated does \
       not dominate (still raw, or protected but never validated)";
  }

let f2 =
  {
    id = "F2";
    slug = "protected-escape";
    file_scope = false;
    suppressible = true;
    summary =
      "a merely-Protected pointer escapes its protection window (returned \
       or stored before validation)";
  }

let f3 =
  {
    id = "F3";
    slug = "use-after-retire";
    file_scope = false;
    suppressible = true;
    summary =
      "flow error around retirement: dereference of a retired/invalidated \
       pointer, or retire of an already-published node";
  }

let f4 =
  {
    id = "F4";
    slug = "collector-handoff";
    file_scope = false;
    suppressible = true;
    summary =
      "mutator-side use of a retire bag after Collector.offer succeeded \
       (ownership moved to the background collector)";
  }

let f5 =
  {
    id = "F5";
    slug = "crit-hygiene";
    file_scope = false;
    suppressible = true;
    summary =
      "blocking operation (fault gate wait, socket/file I/O, domain join) \
       inside an EBR/PEBR critical section";
  }

let f6 =
  {
    id = "F6";
    slug = "counter-read-order";
    file_scope = false;
    suppressible = true;
    summary =
      "unsequenced monotonic-counter reads in one subtraction (OCaml \
       evaluates operands right-to-left; bind the increasing side first)";
  }

let f7 =
  {
    id = "F7";
    slug = "quiescent-mixing";
    file_scope = false;
    suppressible = true;
    summary =
      "declared quiescent read (Link.get_quiescent) in a function that \
       also synchronizes (protects, CASes, retires or enters crit)";
  }

let unused_pragma =
  {
    id = "P1";
    slug = "unused-pragma";
    file_scope = false;
    suppressible = false;
    summary = "suppression pragma matched no finding";
  }

let bad_pragma =
  {
    id = "P2";
    slug = "malformed-pragma";
    file_scope = false;
    suppressible = false;
    summary = "smr-lint pragma without a parsable rule list and reason";
  }

let parse_error =
  {
    id = "E0";
    slug = "parse-error";
    file_scope = false;
    suppressible = false;
    summary = "source file failed to parse";
  }

let all_rules =
  [ r1; r2; r3; r4; r5; f1; f2; f3; f4; f5; f6; f7; unused_pragma; bad_pragma;
    parse_error ]

let rule_matches rule token =
  let t = String.lowercase_ascii token in
  t = String.lowercase_ascii rule.id || t = rule.slug

(* [col] is 1-based and carried for SARIF only: the human and JSON
   renderings below do not print it, so their output stays byte-identical
   to v1 (pinned by test_analysis). *)
type t = { rule : rule; file : string; line : int; col : int; message : string }

let make ?(col = 1) rule ~file ~line message = { rule; file; line; col; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule.id b.rule.id
      | c -> c)
  | c -> c

let to_human f =
  Printf.sprintf "%s:%d: [%s %s] %s" f.file f.line f.rule.id f.rule.slug
    f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"slug\":\"%s\",\"file\":\"%s\",\"line\":%d,\
     \"message\":\"%s\"}"
    f.rule.id f.rule.slug (json_escape f.file) f.line (json_escape f.message)
