(* SARIF 2.1.0 rendering of a finding list (--sarif). One run, one tool,
   column-accurate physical locations; the rules catalogue carries every
   rule's slug and summary so viewers can group by ruleId. *)

let esc = Finding.json_escape

let rule_json (r : Finding.rule) =
  Printf.sprintf
    "{\"id\":\"%s\",\"name\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
    (esc r.Finding.id) (esc r.Finding.slug) (esc r.Finding.summary)

let result_json (f : Finding.t) =
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\
     \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\
     \"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
    (esc f.Finding.rule.Finding.id)
    (esc f.Finding.message) (esc f.Finding.file) f.Finding.line f.Finding.col

let render findings =
  let rules =
    String.concat ",\n      " (List.map rule_json Finding.all_rules)
  in
  let results = String.concat ",\n    " (List.map result_json findings) in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\
     \"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":\
     {\"driver\":{\"name\":\"smr_lint\",\"rules\":[\n      %s]}},\
     \"results\":[\n    %s]}]}\n"
    rules results
