(** Rule dispatch by path scope, pragma suppression, aggregation.

    Scopes are matched on path {e components}, so the tree can be linted in
    place or from a scratch copy (CI's seeded-violation check): any file
    under a [.../lib/ds/...] directory gets the data-structure rules, scheme
    directories get the ordering rules, everything under [lib] gets the
    trace-budget and missing-mli rules. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted by file/line *)
  suppressed : (Finding.t * string) list;  (** finding, pragma reason *)
  files : int;
}

val analyze_source :
  ?mli_exists:bool ->
  path:string ->
  string ->
  Finding.t list * (Finding.t * string) list
(** Analyze one compilation unit given as a string; [path] selects rule
    scopes, [mli_exists] (default [false]) feeds the missing-mli rule.
    Returns (unsuppressed findings, suppressed findings with reasons). *)

val analyze_file : string -> Finding.t list * (Finding.t * string) list

val run : string list -> report
(** Analyze every [.ml] file under the given files/directories (skipping
    [_build] and dot-directories). *)
