(** Rule dispatch by path scope, pragma suppression, aggregation.

    Scopes are matched on path {e components}, so the tree can be linted in
    place or from a scratch copy (CI's seeded-violation check): any file
    under a [.../lib/ds/...] directory gets the data-structure flow rules,
    scheme directories get the ordering and handoff rules, everything under
    [lib] or [bin] gets the crit-hygiene, counter-order and trace-budget
    rules.

    v2 layering: the v1 syntactic rules (R2–R5) run as a fast pre-pass,
    then the flow rules (F1–F7, {!Rules_flow}). R1 is subsumed by F1 and
    runs only under [v1:true]. Each file's top-level summaries accumulate
    into the run's {!Summary.table} for cross-file call resolution. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted by file/line *)
  suppressed : (Finding.t * string) list;  (** finding, pragma reason *)
  files : int;
  summaries : Summary.table;
      (** top-level summaries of every analyzed file, keyed "stem.name" *)
}

val analyze_source :
  ?mli_exists:bool ->
  ?v1:bool ->
  ?table:Summary.table ->
  path:string ->
  string ->
  Finding.t list * (Finding.t * string) list
(** Analyze one compilation unit given as a string; [path] selects rule
    scopes, [mli_exists] (default [false]) feeds the missing-mli rule,
    [v1] (default [false]) additionally runs the legacy syntactic R1, and
    [table] supplies/collects cross-file summaries. Returns (unsuppressed
    findings, suppressed findings with reasons). *)

val analyze_file :
  ?v1:bool ->
  ?table:Summary.table ->
  string ->
  Finding.t list * (Finding.t * string) list

val run : ?v1:bool -> ?table:Summary.table -> string list -> report
(** Analyze every [.ml] file under the given files/directories (skipping
    [_build] and dot-directories), in sorted order so in-tree summary
    resolution is deterministic. *)
