(* The abstract protection-state lattice (DESIGN.md §15).

   One value per tracked *object* — a site-allocated abstraction of a node
   (or bag) fetched from shared state. The order is a protection-confidence
   chain: join at a CFG merge keeps the weakest guarantee either path
   established, so a deref is reported unless validation *must*-dominates
   it. [Bot] is the identity (unreached path). [Neutral] tracks values the
   analysis identifies but makes no protection claim about (locally
   constructed records, opaque parameters); [Quiescent] marks values read
   through [Link.get_quiescent], whose contract (no concurrent writers)
   makes dereference legal without a protection window. *)

type state =
  | Bot  (** unreached; identity of {!join} *)
  | Invalidated  (** invalidation observed or performed: frozen, dying *)
  | Handed_off  (** ownership transferred to the background collector *)
  | Retired  (** retired without a surviving protection window *)
  | Raw  (** fetched from a shared link, not yet protected *)
  | Protected  (** hazard slot published, not yet validated *)
  | Validated  (** protection validated: dereference is legal *)
  | Quiescent  (** read under the declared no-concurrent-writers contract *)
  | Neutral  (** tracked but carrying no protection obligation *)

(* Confidence rank; join takes the minimum (weakest guarantee wins). *)
let rank = function
  | Bot -> max_int
  | Invalidated -> 0
  | Handed_off -> 1
  | Retired -> 2
  | Raw -> 3
  | Protected -> 4
  | Validated -> 5
  | Quiescent -> 6
  | Neutral -> 7

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | a, b -> if rank a <= rank b then a else b

(* The chain is finite (height 8), so joining is its own widening; [widen]
   exists as a named operator so the solver's loop-head sites read as
   intended and the ascending-chain bound is testable in isolation. *)
let widen = join
let leq a b = join a b = b
let equal (a : state) b = a = b

let height = 8
(** Longest strictly ascending chain: every Bot-seeded iteration sequence
    stabilizes after at most [height - 1] joins per object. *)

let to_string = function
  | Bot -> "bot"
  | Invalidated -> "invalidated"
  | Handed_off -> "handed-off"
  | Retired -> "retired"
  | Raw -> "raw"
  | Protected -> "protected"
  | Validated -> "validated"
  | Quiescent -> "quiescent"
  | Neutral -> "neutral"

let all =
  [ Bot; Invalidated; Handed_off; Retired; Raw; Protected; Validated;
    Quiescent; Neutral ]

(* --- Abstract facts: per-object state plus a published bit -------------- *)

(* [published] records that the object itself was stored back into shared
   state (the new-value side of a CAS/set): retiring a published object is
   the retire-after-publish flow error. Or-joined: published on any path is
   enough to make a later retire suspicious. *)
type fact = { st : state; published : bool }

let bot_fact = { st = Bot; published = false }

let join_fact a b =
  { st = join a.st b.st; published = a.published || b.published }

let fact_equal a b = equal a.st b.st && a.published = b.published

(* --- Whole-program-point state ------------------------------------------ *)

(* A program point's abstract state: one fact per object id, plus a
   reachability flag ([None] = point not reached; joining anything with an
   unreached point is the identity). Arrays are sized by the CFG's object
   count, fixed per file. *)
type t = fact array option

let unreached : t = None
let entry n : t = Some (Array.make (max n 1) bot_fact)

let copy (s : t) = Option.map Array.copy s

let join_state (a : t) (b : t) : t =
  match (a, b) with
  | None, x | x, None -> copy x
  | Some a, Some b -> Some (Array.init (Array.length a) (fun i -> join_fact a.(i) b.(i)))

let state_equal (a : t) (b : t) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      let n = Array.length a in
      Array.length b = n
      &&
      let rec go i = i >= n || (fact_equal a.(i) b.(i) && go (i + 1)) in
      go 0
  | _ -> false
