(** Lint rules and findings. *)

type rule = {
  id : string;  (** short id, e.g. ["R1"] *)
  slug : string;  (** kebab-case name, e.g. ["raw-link-deref"] *)
  file_scope : bool;
      (** file-granularity rule: suppressible by a pragma anywhere in the
          file (line rules need the pragma on the finding's line or the line
          above) *)
  suppressible : bool;  (** pragma-suppressible at all *)
  summary : string;
}

val r1 : rule  (** raw-link-deref *)

val r2 : rule  (** invalidate-before-free *)

val r3 : rule  (** shared-mutable-field *)

val r4 : rule  (** unguarded-trace-alloc *)

val r5 : rule  (** missing-mli *)

val unused_pragma : rule  (** P1: a pragma that suppressed nothing *)

val bad_pragma : rule  (** P2: an unparsable smr-lint pragma *)

val parse_error : rule  (** E0: the file failed to parse *)

val all_rules : rule list

val rule_matches : rule -> string -> bool
(** Does a pragma token (id or slug, case-insensitive) name this rule? *)

type t = { rule : rule; file : string; line : int; message : string }

val make : rule -> file:string -> line:int -> string -> t
val compare : t -> t -> int
val to_human : t -> string
val to_json : t -> string
