(** Lint rules and findings. *)

type rule = {
  id : string;  (** short id, e.g. ["R1"] *)
  slug : string;  (** kebab-case name, e.g. ["raw-link-deref"] *)
  file_scope : bool;
      (** file-granularity rule: suppressible by a pragma anywhere in the
          file (line rules need the pragma on the finding's line or the line
          above) *)
  suppressible : bool;  (** pragma-suppressible at all *)
  summary : string;
}

val r1 : rule  (** raw-link-deref *)

val r2 : rule  (** invalidate-before-free *)

val r3 : rule  (** shared-mutable-field *)

val r4 : rule  (** unguarded-trace-alloc *)

val r5 : rule  (** missing-mli *)

val f1 : rule  (** unvalidated-deref (flow; subsumes R1) *)

val f2 : rule  (** protected-escape (flow) *)

val f3 : rule  (** use-after-retire (flow) *)

val f4 : rule  (** collector-handoff (flow) *)

val f5 : rule  (** crit-hygiene (flow) *)

val f6 : rule  (** counter-read-order *)

val f7 : rule  (** quiescent-mixing (flow) *)

val unused_pragma : rule  (** P1: a pragma that suppressed nothing *)

val bad_pragma : rule  (** P2: an unparsable smr-lint pragma *)

val parse_error : rule  (** E0: the file failed to parse *)

val all_rules : rule list

val rule_matches : rule -> string -> bool
(** Does a pragma token (id or slug, case-insensitive) name this rule? *)

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;  (** 1-based; carried for SARIF, not printed by human/JSON *)
  message : string;
}

val make : ?col:int -> rule -> file:string -> line:int -> string -> t
(** [col] defaults to 1. *)

val compare : t -> t -> int
val to_human : t -> string
val to_json : t -> string
val json_escape : string -> string
