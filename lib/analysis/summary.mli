(** Per-function protection-effect summaries (DESIGN.md §15): the
    Raw-seeded abstract of one function, applied at call sites instead of
    inlining. The file driver iterates build-and-summarize to fixpoint so
    (mutually) recursive helpers converge; top-level summaries export to a
    JSON sidecar for cross-file resolution. *)

type slot =
  | Pass of int
      (** the slot is exactly parameter [i] at every return site: callers
          substitute the argument's own objects (and hence its current
          abstract state) instead of a context-insensitive constant *)
  | St of Lattice.state  (** joined state across return sites *)

type fn = {
  s_name : string;
  s_arity : int;
  s_param_exit : Lattice.state array;
      (** exit state of each Raw-seeded param; [Raw] means untouched *)
  s_derefs_raw : bool array;
      (** param flows to a deref while still Raw inside the callee *)
  s_retires : bool array;  (** param is retired by the callee *)
  s_ret_slots : slot array;
      (** per-slot return shape joined across return sites; a slot is a
          top-level tuple/constructor-argument position of the returned
          value ([St Bot] = nothing tracked flows out of that slot) *)
  s_ret_whole : slot;  (** joined whole-value return shape *)
  s_blocks : string option;
      (** a blocking operation the callee reaches outside its own crit
          section *)
  s_enters_crit : bool;
  s_quiescent : bool;  (** performs a declared quiescent read *)
}

val bottom : name:string -> arity:int -> fn
val equal : fn -> fn -> bool

(** {1 Sidecar table} — keyed ["stem.name"] by defining file stem *)

type table = (string, fn) Hashtbl.t

val key : stem:string -> string -> string
val empty_table : unit -> table
val lookup : table -> stem:string -> string -> fn option
val add : table -> stem:string -> fn -> unit

val fn_to_json : stem:string -> fn -> string
val table_to_json : table -> string

exception Bad_json of string

val table_of_json : string -> table
(** Parse a sidecar produced by {!table_to_json}; raises {!Bad_json} on
    malformed input. *)
