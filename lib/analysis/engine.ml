(* Rule dispatch by path scope, pragma suppression, and aggregation. *)

(* A scope is a sequence of adjacent path components; ["lib"; "ds"] matches
   any file living under a .../lib/ds/... directory, wherever the tree was
   copied (so CI can lint a scratch copy under /tmp). *)
let path_components path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

let rec has_prefix prefix comps =
  match (prefix, comps) with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, c :: cs -> p = c && has_prefix ps cs

let rec in_scope scope comps =
  has_prefix scope comps
  || match comps with [] -> false | _ :: rest -> in_scope scope rest

let under path scopes =
  let comps = path_components path in
  List.exists (fun s -> in_scope s comps) scopes

let ds_scope = [ [ "lib"; "ds" ] ]

let scheme_scope =
  [
    [ "lib"; "core" ]; [ "lib"; "hp" ]; [ "lib"; "ebr" ]; [ "lib"; "pebr" ];
    [ "lib"; "rc" ]; [ "lib"; "nr" ]; [ "lib"; "smr" ];
  ]

let shared_state_scope =
  [
    [ "lib"; "smr" ]; [ "lib"; "smr_core" ]; [ "lib"; "core" ];
    [ "lib"; "ebr" ]; [ "lib"; "pebr" ]; [ "lib"; "hp" ];
  ]

let lib_scope = [ [ "lib" ] ]

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : (Finding.t * string) list;  (** finding, pragma reason *)
  files : int;
}

let raw_findings ~path ~mli_exists (src : Source.t) =
  match src.ast with
  | None ->
      let line, msg = Option.value src.parse_failure ~default:(1, "parse error") in
      [ Finding.make Finding.parse_error ~file:path ~line msg ]
  | Some ast ->
      List.concat
        [
          (if under path ds_scope then Rules.r1_check ~file:path ast else []);
          (if under path scheme_scope then Rules.r2_check ~file:path ast else []);
          (if under path shared_state_scope then Rules.r3_check ~file:path ast
           else []);
          (if under path lib_scope then Rules.r4_check ~file:path ast else []);
          (if under path lib_scope then Rules.r5_check ~file:path ~mli_exists ()
           else []);
        ]

(* A pragma suppresses a finding when the rule matches and — for line-scope
   rules — the pragma sits on the finding's line or the line above. Pragmas
   that suppress nothing are themselves findings (P1), as are unparsable
   ones (P2): stale or sloppy suppressions fail the build too. *)
let apply_pragmas (src : Source.t) findings =
  let kept, suppressed =
    List.partition_map
      (fun (f : Finding.t) ->
        if not f.rule.suppressible then Left f
        else
          let matching =
            List.find_opt
              (fun (p : Source.pragma) ->
                List.exists (Finding.rule_matches f.rule) p.p_rules
                && (f.rule.file_scope
                   || p.p_line = f.line
                   || p.p_line = f.line - 1))
              src.pragmas
          in
          match matching with
          | Some p ->
              p.p_used <- true;
              Right (f, p.p_reason)
          | None -> Left f)
      findings
  in
  let unused =
    List.filter_map
      (fun (p : Source.pragma) ->
        if p.p_used then None
        else
          Some
            (Finding.make Finding.unused_pragma ~file:src.path ~line:p.p_line
               (Printf.sprintf
                  "pragma allows [%s] but no such finding exists here: \
                   remove it (stale suppressions hide regressions)"
                  (String.concat ", " p.p_rules))))
      src.pragmas
  in
  let bad =
    List.map
      (fun line ->
        Finding.make Finding.bad_pragma ~file:src.path ~line
          "pragma must be a comment whose payload is `smr-lint: allow \
           <rule>[, <rule>] — <reason>` with a non-empty reason")
      src.bad_pragmas
  in
  (kept @ unused @ bad, suppressed)

let analyze_source ?(mli_exists = false) ~path text =
  let src = Source.of_string ~path text in
  let findings = raw_findings ~path ~mli_exists src in
  apply_pragmas src findings

let analyze_file path =
  let src = Source.load path in
  let mli_exists =
    Filename.check_suffix path ".ml"
    && Sys.file_exists (Filename.remove_extension path ^ ".mli")
  in
  let findings = raw_findings ~path ~mli_exists src in
  apply_pragmas src findings

let rec ml_files_under path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "" || entry.[0] = '.' || entry = "_build" then acc
           else ml_files_under (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run paths =
  let files =
    List.concat_map (fun p -> List.rev (ml_files_under p [])) paths
  in
  let findings, suppressed =
    List.fold_left
      (fun (fs, ss) file ->
        let f, s = analyze_file file in
        (f @ fs, s @ ss))
      ([], []) files
  in
  {
    findings = List.sort Finding.compare findings;
    suppressed = List.sort (fun (a, _) (b, _) -> Finding.compare a b) suppressed;
    files = List.length files;
  }
