(* Rule dispatch by path scope, pragma suppression, and aggregation.

   v2 layering: the v1 syntactic rules (R2–R5) run as a fast pre-pass —
   they are cheap and their findings are locational in ways the dataflow
   engine does not replicate — then the flow rules (F1–F7, rules_flow.ml)
   run per scope. R1 is subsumed by F1 and kept only under [v1:true].

   Cross-file resolution is by summary sidecar: each analyzed file's
   top-level summaries accumulate into a table (keyed "stem.name"), and a
   qualified call [C.try_protect] in a later file resolves through the
   lowercased qualifier. Files are visited in sorted order, so in-tree
   resolution is deterministic; a [--summaries-in] table from a previous
   run covers arbitrary cross-file orders. *)

(* A scope is a sequence of adjacent path components; ["lib"; "ds"] matches
   any file living under a .../lib/ds/... directory, wherever the tree was
   copied (so CI can lint a scratch copy under /tmp). *)
let path_components path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

let rec has_prefix prefix comps =
  match (prefix, comps) with
  | [], _ -> true
  | _, [] -> false
  | p :: ps, c :: cs -> p = c && has_prefix ps cs

let rec in_scope scope comps =
  has_prefix scope comps
  || match comps with [] -> false | _ :: rest -> in_scope scope rest

let under path scopes =
  let comps = path_components path in
  List.exists (fun s -> in_scope s comps) scopes

let ds_scope = [ [ "lib"; "ds" ] ]

let scheme_scope =
  [
    [ "lib"; "core" ]; [ "lib"; "hp" ]; [ "lib"; "ebr" ]; [ "lib"; "pebr" ];
    [ "lib"; "rc" ]; [ "lib"; "nr" ]; [ "lib"; "smr" ];
  ]

let shared_state_scope =
  [
    [ "lib"; "smr" ]; [ "lib"; "smr_core" ]; [ "lib"; "core" ];
    [ "lib"; "ebr" ]; [ "lib"; "pebr" ]; [ "lib"; "hp" ];
    [ "lib"; "net" ]; [ "lib"; "obs" ];
  ]

let lib_scope = [ [ "lib" ] ]
let lint_scope = [ [ "lib" ]; [ "bin" ] ]

let checks_for path =
  {
    Rules_flow.c_deref = under path ds_scope;
    c_retire = under path ds_scope || under path scheme_scope;
    c_handoff = under path scheme_scope;
    c_crit = under path lint_scope;
    c_counter = under path lint_scope;
    c_quiescent = under path ds_scope;
  }

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : (Finding.t * string) list;  (** finding, pragma reason *)
  files : int;
  summaries : Summary.table;
      (** top-level summaries of every analyzed file, keyed "stem.name" *)
}

let stem_of path =
  String.lowercase_ascii (Filename.remove_extension (Filename.basename path))

let ext_of_table table ~qual last =
  match qual with
  | Some q -> Summary.lookup table ~stem:(String.lowercase_ascii q) last
  | None -> None

let raw_findings ~v1 ~table ~path ~mli_exists (src : Source.t) =
  match src.ast with
  | None ->
      let line, msg = Option.value src.parse_failure ~default:(1, "parse error") in
      [ Finding.make Finding.parse_error ~file:path ~line msg ]
  | Some ast ->
      let syntactic =
        List.concat
          [
            (if v1 && under path ds_scope then Rules.r1_check ~file:path ast
             else []);
            (if under path scheme_scope then Rules.r2_check ~file:path ast
             else []);
            (if under path shared_state_scope then Rules.r3_check ~file:path ast
             else []);
            (if under path lint_scope then Rules.r4_check ~file:path ast else []);
            (if under path lib_scope then Rules.r5_check ~file:path ~mli_exists ()
             else []);
          ]
      in
      let flow, exports =
        Rules_flow.run ~file:path ~checks:(checks_for path)
          ~ext:(ext_of_table table) ast
      in
      let stem = stem_of path in
      List.iter (fun s -> Summary.add table ~stem s) exports;
      syntactic @ flow

(* A pragma suppresses a finding when the rule matches and — for line-scope
   rules — the pragma sits on the finding's line or the line above. Pragmas
   that suppress nothing are themselves findings (P1), as are unparsable
   ones (P2): stale or sloppy suppressions fail the build too. *)
let apply_pragmas (src : Source.t) findings =
  let kept, suppressed =
    List.partition_map
      (fun (f : Finding.t) ->
        if not f.rule.suppressible then Left f
        else
          let matching =
            List.find_opt
              (fun (p : Source.pragma) ->
                List.exists (Finding.rule_matches f.rule) p.p_rules
                && (f.rule.file_scope
                   || p.p_line = f.line
                   || p.p_line = f.line - 1))
              src.pragmas
          in
          match matching with
          | Some p ->
              p.p_used <- true;
              Right (f, p.p_reason)
          | None -> Left f)
      findings
  in
  let unused =
    List.filter_map
      (fun (p : Source.pragma) ->
        if p.p_used then None
        else
          Some
            (Finding.make Finding.unused_pragma ~file:src.path ~line:p.p_line
               (Printf.sprintf
                  "pragma allows [%s] but no such finding exists here: \
                   remove it (stale suppressions hide regressions)"
                  (String.concat ", " p.p_rules))))
      src.pragmas
  in
  let bad =
    List.map
      (fun line ->
        Finding.make Finding.bad_pragma ~file:src.path ~line
          "pragma must be a comment whose payload is `smr-lint: allow \
           <rule>[, <rule>] — <reason>` with a non-empty reason")
      src.bad_pragmas
  in
  (kept @ unused @ bad, suppressed)

let analyze_source ?(mli_exists = false) ?(v1 = false) ?table ~path text =
  let table = match table with Some t -> t | None -> Summary.empty_table () in
  let src = Source.of_string ~path text in
  let findings = raw_findings ~v1 ~table ~path ~mli_exists src in
  apply_pragmas src findings

let analyze_file ?(v1 = false) ?table path =
  let table = match table with Some t -> t | None -> Summary.empty_table () in
  let src = Source.load path in
  let mli_exists =
    Filename.check_suffix path ".ml"
    && Sys.file_exists (Filename.remove_extension path ^ ".mli")
  in
  let findings = raw_findings ~v1 ~table ~path ~mli_exists src in
  apply_pragmas src findings

let rec ml_files_under path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "" || entry.[0] = '.' || entry = "_build" then acc
           else ml_files_under (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run ?(v1 = false) ?table paths =
  let table = match table with Some t -> t | None -> Summary.empty_table () in
  let files =
    List.concat_map (fun p -> List.rev (ml_files_under p [])) paths
  in
  let findings, suppressed =
    List.fold_left
      (fun (fs, ss) file ->
        let f, s = analyze_file ~v1 ~table file in
        (f @ fs, s @ ss))
      ([], []) files
  in
  {
    findings = List.sort Finding.compare findings;
    suppressed = List.sort (fun (a, _) (b, _) -> Finding.compare a b) suppressed;
    files = List.length files;
    summaries = table;
  }
