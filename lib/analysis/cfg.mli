(** Control-flow graphs over Parsetree expressions (DESIGN.md §15).

    One CFG per function (top-level or nested helper). Nodes carry abstract
    {e events} — the protection-relevant effects of the code in build order
    — plus successor edges; {!Solver} propagates per-object lattice facts
    across the edges and {!Rules_flow} replays the events against solved
    states. Objects are allocated at build time; the builtin contracts of
    the [Smr_intf] automaton (protect / validate / retire / crit / offer)
    are applied here as branch refinements and state events. *)

type objset = int list
(** Sorted, deduped object-id set. *)

type value = { whole : objset; slots : objset array }
(** An expression's objects, plus per-component sets when it is a
    top-level tuple/constructor application — the "slots" that keep
    destructured call results precise. *)

type callee = Local of int | Ext of Summary.fn

type ev =
  | Fresh of int * Lattice.state
  | Set_state of objset * Lattice.state
  | Protect of objset
      (** hazard-slot announce: Raw/Neutral rise to Protected, but an
          already-Validated object keeps its validation (re-announcing in a
          fresh guard does not revoke it) *)
  | Validate_protected  (** all Protected objects become Validated *)
  | Scheme_safe
      (** [needs_protection = false] branch: the scheme guards raw reads
          with its crit section, so every Raw/Protected object is safe *)
  | Demote_all  (** crit-exit/release: Protected and Validated drop to Raw *)
  | Publish of objset  (** stored into shared state as a CAS/set new-value *)
  | Retire of objset * Location.t
  | Deref of objset * string * Location.t  (** field access through objs *)
  | Use of objset * Location.t  (** passed to an unknown call *)
  | Ret of value * Location.t  (** function return site *)
  | Store of objset * Location.t  (** written into a mutable field *)
  | Blocking of string * Location.t
  | Call of {
      callee : callee;
      args : objset array;  (** per callee param position *)
      ret_whole : int;
      ret_slots : int array;
      loc : Location.t;
    }

type node = {
  n_id : int;
  mutable n_evs : ev list;  (** reversed during build *)
  mutable n_succs : int list;
  n_frozen : bool;  (** inside a try_unlink callback region *)
  n_crit : bool;  (** lexically inside a critical section *)
}

type func = {
  fn_id : int;
  fn_name : string;
  fn_loc : Location.t;
  fn_params : (string option * string list) list;
  fn_param_objs : int array;
  mutable fn_nodes : node list;  (** reverse build order *)
  mutable fn_nnodes : int;
  fn_entry : int;
  mutable fn_exit : int;
  mutable fn_nobjs : int;
  fn_derived : (objset * string, int) Hashtbl.t;
  mutable fn_quiescent : Location.t list;
  mutable fn_sync : bool;  (** CASes, retires, protects or enters crit *)
  mutable fn_crit : bool;  (** enters a critical section itself *)
  fn_toplevel : bool;
}

type site = { st_callee : int; st_caller : int; st_frozen : bool }
(** A call-graph edge, with whether the call site sits in a frozen region:
    drives the frozen-exemption fixpoint in {!Rules_flow}. *)

type file = {
  mutable fs : func list;  (** reverse registration order *)
  mutable nf : int;
  mutable sites : site list;
  ext : qual:string option -> string -> Summary.fn option;
  summaries : int -> Summary.fn option;  (** previous iteration, by fid *)
}

val funcs_array : file -> func array
(** Functions in registration (= fid) order. *)

val nodes_of : func -> node array
(** Nodes indexed by [n_id]; entry is node 0. *)

val build_file :
  ext:(qual:string option -> string -> Summary.fn option) ->
  summaries:(int -> Summary.fn option) ->
  Parsetree.structure ->
  file
(** Build every top-level function of the structure (pre-registering the
    whole group so mutual recursion resolves); nested helpers register
    themselves during the build. [summaries] supplies the previous
    iteration's summaries by fid, [ext] resolves qualified cross-file
    calls. *)
