(** SARIF 2.1.0 rendering of findings ([--sarif]): one run, one tool,
    column-accurate physical locations. *)

val render : Finding.t list -> string
