(* Control-flow graphs over Parsetree expressions (DESIGN.md §15).

   One CFG per function (top-level or nested helper). Nodes carry a list of
   abstract *events* — the protection-relevant effects of the code in build
   order — plus successor edges; the solver (solver.ml) propagates
   per-object lattice facts across the edges and the flow rules
   (rules_flow.ml) replay the events against the solved states.

   Objects are allocated at build time: every raw shared read
   ([Link.get]), record construction, unknown-call result and parameter
   gets its own object id; variable bindings map names to object *sets*
   lexically, which is sound because OCaml bindings are immutable — only
   the objects' states are flow-dependent. Field projections get derived
   objects keyed by (base objects, field name), so a collector bag
   ([h.retireds]) is tracked separately from its handle.

   Interprocedural flow is by summary, not inlining: a call to an in-scope
   function emits a [Call] event that the solver interprets with the
   callee's current summary; the file driver (rules_flow.ml) rebuilds and
   re-summarizes to fixpoint, which is how recursive helpers converge. The
   builtin contracts of the [Smr_intf] automaton (protect / validate /
   retire / crit / offer) are applied here, at build time, as branch
   refinements and state events — they always win over summaries. *)

open Parsetree
module SMap = Map.Make (String)

type objset = int list (* sorted, deduped *)

let oempty : objset = []
let osingle o = [ o ]
let ounion (a : objset) (b : objset) = List.sort_uniq compare (a @ b)
let ounions l = List.fold_left ounion oempty l

(* A value is an object set plus, when the expression is a tuple or a
   constructor application at top level, per-component object sets — the
   "slots" that keep destructured call results precise. *)
type value = { whole : objset; slots : objset array }

let vnone = { whole = oempty; slots = [||] }
let vof whole = { whole; slots = [||] }

let vjoin a b =
  {
    whole = ounion a.whole b.whole;
    slots =
      (if Array.length a.slots = Array.length b.slots then
         Array.init (Array.length a.slots) (fun i -> ounion a.slots.(i) b.slots.(i))
       else [||]);
  }

type callee = Local of int | Ext of Summary.fn

type ev =
  | Fresh of int * Lattice.state
  | Set_state of objset * Lattice.state
  | Protect of objset
      (** hazard-slot announce: Raw/Neutral rise to Protected, but an
          already-Validated object keeps its validation (re-announcing in a
          fresh guard does not revoke it) *)
  | Validate_protected  (** all Protected objects become Validated *)
  | Scheme_safe
      (** [needs_protection = false] branch: the scheme guards raw reads
          with its crit section, so every Raw/Protected object is safe *)
  | Demote_all  (** crit-exit / release: Protected and Validated drop to Raw *)
  | Publish of objset  (* stored into shared state as a CAS/set new-value *)
  | Retire of objset * Location.t
  | Deref of objset * string * Location.t  (** field access through objs *)
  | Use of objset * Location.t  (** passed to an unknown call *)
  | Ret of value * Location.t  (** function return site *)
  | Store of objset * Location.t  (** written into a mutable field *)
  | Blocking of string * Location.t
  | Call of {
      callee : callee;
      args : objset array;  (** per callee param position *)
      ret_whole : int;
      ret_slots : int array;
      loc : Location.t;
    }

type node = {
  n_id : int;
  mutable n_evs : ev list;  (** reversed during build *)
  mutable n_succs : int list;
  n_frozen : bool;  (** inside a try_unlink callback region *)
  n_crit : bool;  (** lexically inside a critical section *)
}

type func = {
  fn_id : int;
  fn_name : string;
  fn_loc : Location.t;
  fn_params : (string option * string list) list;
  fn_param_objs : int array;
  mutable fn_nodes : node list;  (** reverse build order *)
  mutable fn_nnodes : int;
  fn_entry : int;
  mutable fn_exit : int;
  mutable fn_nobjs : int;
  fn_derived : (objset * string, int) Hashtbl.t;
  mutable fn_quiescent : Location.t list;
  mutable fn_sync : bool;  (** CASes, retires, protects or enters crit *)
  mutable fn_crit : bool;  (** enters a critical section itself *)
  fn_toplevel : bool;
}

(* A call-graph edge, with whether the call site sits in a frozen region:
   drives the frozen-exemption fixpoint in rules_flow. *)
type site = { st_callee : int; st_caller : int; st_frozen : bool }

type file = {
  mutable fs : func list;  (** reverse registration order *)
  mutable nf : int;
  mutable sites : site list;
  ext : qual:string option -> string -> Summary.fn option;
  summaries : int -> Summary.fn option;  (** previous iteration, by fid *)
}

let funcs_array (f : file) = Array.of_list (List.rev f.fs)

let nodes_of (fn : func) =
  let a = Array.make fn.fn_nnodes (Obj.magic 0 : node) in
  List.iter (fun n -> a.(n.n_id) <- n) fn.fn_nodes;
  a

(* --- Build-time environment ---------------------------------------------- *)

(* What a let-bound variable holds when the binding was a protection-family
   call whose outcome is inspected later ([let ok = protect ... in if ok]):
   the refinement is applied where the boolean/outcome is branched on. *)
type pending =
  | P_protect of objset  (** protect_pessimistic result: true => Validated *)
  | P_offer of objset  (** Collector.offer result: true => Handed_off *)
  | P_valid  (** protection_valid result: true => Validate_protected *)

type env = {
  vars : objset SMap.t;
  funcs : int SMap.t;
  pend : pending SMap.t;
  in_crit : bool;
  frozen : bool;
  handler : int option;  (** innermost exception-handler node *)
}

let env0 ~funcs =
  {
    vars = SMap.empty;
    funcs;
    pend = SMap.empty;
    in_crit = false;
    frozen = false;
    handler = None;
  }

type ctx = { file : file; fn : func; mutable cur : int }

(* --- Node/object plumbing ------------------------------------------------- *)

let new_node ctx env =
  let n =
    {
      n_id = ctx.fn.fn_nnodes;
      n_evs = [];
      n_succs = [];
      n_frozen = env.frozen;
      n_crit = env.in_crit;
    }
  in
  ctx.fn.fn_nnodes <- ctx.fn.fn_nnodes + 1;
  ctx.fn.fn_nodes <- n :: ctx.fn.fn_nodes;
  n.n_id

let node_by_id ctx id = List.find (fun n -> n.n_id = id) ctx.fn.fn_nodes
let link ctx a b = (node_by_id ctx a).n_succs <- b :: (node_by_id ctx a).n_succs
let emit ctx ev = (node_by_id ctx ctx.cur).n_evs <- ev :: (node_by_id ctx ctx.cur).n_evs

(* Step the cursor into a fresh node (straight-line continuation). *)
let advance ctx env =
  let n = new_node ctx env in
  link ctx ctx.cur n;
  ctx.cur <- n

let fresh_obj ctx =
  let o = ctx.fn.fn_nobjs in
  ctx.fn.fn_nobjs <- o + 1;
  o

let fresh_tracked ctx st =
  let o = fresh_obj ctx in
  emit ctx (Fresh (o, st));
  o

(* Derived object for a field projection; created (Neutral) at its first
   occurrence so the collector-bag discipline has an identity to track. *)
let derived ctx base field =
  match Hashtbl.find_opt ctx.fn.fn_derived (base, field) with
  | Some o -> o
  | None ->
      let o = fresh_tracked ctx Lattice.Neutral in
      Hashtbl.add ctx.fn.fn_derived (base, field) o;
      o

(* --- Names ---------------------------------------------------------------- *)

let head_name e = Rules.app_head_name e

let blocking_names =
  [
    ("Unix", "write"); ("Unix", "single_write"); ("Unix", "read");
    ("Unix", "send"); ("Unix", "recv"); ("Unix", "select");
    ("Unix", "connect"); ("Unix", "accept"); ("Unix", "sleepf");
    ("Unix", "sleep"); ("Fault", "await_stalled"); ("Domain", "join");
    ("Thread", "delay");
  ]

let is_blocking qual last =
  List.exists (fun (q, n) -> Some q = qual && n = last) blocking_names

(* Value-preserving wrappers: the result aliases the arguments. *)
let is_transparent qual last =
  match (qual, last) with
  | Some "Tagged", ("ptr" | "make" | "untagged" | "set_bits" | "clear_bits") ->
      true
  | Some "Option", ("get" | "some" | "value") -> true
  | Some "Array", "get" -> true
  | None, "node_header" -> true
  | _ -> false

let higher_order_names =
  [ ("Option", "map"); ("Option", "iter"); ("Option", "bind");
    ("Option", "fold"); ("List", "iter"); ("List", "map"); ("List", "fold_left");
    ("List", "filter_map"); ("List", "concat_map"); ("List", "exists");
    ("List", "for_all"); ("Array", "iter"); ("Array", "map"); ("Array", "iteri") ]

let is_higher_order qual last =
  List.exists (fun (q, n) -> Some q = qual && n = last) higher_order_names

let invalidate_names = [ "mark_invalid"; "invalidate"; "invalidate_all"; "do_invalidation" ]
let retire_names = [ "retire"; "retire_mark"; "retire_with_children" ]

(* Positional params of a lambda chain, with labels; a trailing bare
   [function] contributes one anonymous parameter handled by the builder. *)
let rec params_of_lambda e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, p, body) ->
      let name =
        match lbl with
        | Asttypes.Labelled s | Asttypes.Optional s -> Some s
        | Asttypes.Nolabel -> None
      in
      let rest, final = params_of_lambda body in
      ((name, Rules.pattern_vars p) :: rest, final)
  | Pexp_newtype (_, body) -> params_of_lambda body
  | Pexp_function _ -> ([ (None, []) ], e)
  | _ -> ([], e)

let rec is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_lambda e
  | _ -> false

(* Align call arguments to callee parameter positions: labelled arguments
   match the parameter with that label; the rest fill positional holes in
   order. Surplus arguments (partial application the other way) are
   treated as unknown uses by the caller. *)
let align_args (params : (string option * string list) list) args =
  let n = List.length params in
  let out = Array.make n None in
  let positional = ref [] in
  List.iter
    (fun (lbl, a) ->
      match lbl with
      | Asttypes.Labelled s | Asttypes.Optional s -> (
          match
            List.mapi (fun i (pl, _) -> (i, pl)) params
            |> List.find_opt (fun (_, pl) -> pl = Some s)
          with
          | Some (i, _) when out.(i) = None -> out.(i) <- Some a
          | _ -> positional := a :: !positional)
      | Asttypes.Nolabel -> positional := a :: !positional)
    args;
  let rec fill i rem =
    if i < n then
      match rem with
      | [] -> []
      | a :: tl ->
          if out.(i) = None then begin
            out.(i) <- Some a;
            fill (i + 1) tl
          end
          else fill (i + 1) rem
    else rem
  in
  let leftover = fill 0 (List.rev !positional) in
  (out, leftover)

(* --- Pattern binding ------------------------------------------------------ *)

(* Bind a pattern against a value. Tuple and constructor patterns whose
   arity matches the value's slots bind per-slot; everything else binds
   every variable to the whole set (conservative aliasing). *)
let rec bind_pattern env pat (v : value) =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> { env with vars = SMap.add txt v.whole env.vars }
  | Ppat_alias (p, { txt; _ }) ->
      bind_pattern { env with vars = SMap.add txt v.whole env.vars } p v
  | Ppat_tuple ps when Array.length v.slots = List.length ps ->
      List.fold_left
        (fun env (i, p) -> bind_pattern env p (vof v.slots.(i)))
        env
        (List.mapi (fun i p -> (i, p)) ps)
  | Ppat_construct (_, Some (_, arg)) | Ppat_variant (_, Some arg) -> (
      match arg.ppat_desc with
      | Ppat_tuple ps when Array.length v.slots = List.length ps ->
          List.fold_left
            (fun env (i, p) -> bind_pattern env p (vof v.slots.(i)))
            env
            (List.mapi (fun i p -> (i, p)) ps)
      | _ ->
          let inner =
            if Array.length v.slots = 1 then vof v.slots.(0) else vof v.whole
          in
          bind_pattern env arg inner)
  | Ppat_or (a, b) -> bind_pattern (bind_pattern env a v) b v
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) -> bind_pattern env p v
  | Ppat_record (fields, _) ->
      List.fold_left (fun env (_, p) -> bind_pattern env p (vof v.whole)) env fields
  | Ppat_array ps ->
      List.fold_left (fun env p -> bind_pattern env p (vof v.whole)) env ps
  | _ ->
      (* wildcards, constants, intervals: nothing to bind; any variables in
         unmodelled corners alias the whole set *)
      List.fold_left
        (fun env x -> { env with vars = SMap.add x v.whole env.vars })
        env (Rules.pattern_vars pat)

(* --- Function registration ------------------------------------------------ *)

let register_func file ~name ~loc ~params ~toplevel =
  let fid = file.nf in
  file.nf <- fid + 1;
  let nparams = List.length params in
  let fn =
    {
      fn_id = fid;
      fn_name = name;
      fn_loc = loc;
      fn_params = params;
      fn_param_objs = Array.make nparams 0;
      fn_nodes = [];
      fn_nnodes = 0;
      fn_entry = 0;
      fn_exit = 0;
      fn_nobjs = 0;
      fn_derived = Hashtbl.create 8;
      fn_quiescent = [];
      fn_sync = false;
      fn_crit = false;
      fn_toplevel = toplevel;
    }
  in
  file.fs <- fn :: file.fs;
  (fid, fn)

(* --- The builder ----------------------------------------------------------

   [eval] walks an expression in evaluation position, emitting events into
   the cursor node and returning the expression's value; [build_tail] walks
   the tail positions of a function body, emitting [Ret] sites and edging
   them to the exit node. Both thread the environment so [crit_enter]
   lexically marks the continuation as in-crit. *)

let rec eval ctx env e : value * env =
  let loc = e.pexp_loc in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      (match SMap.find_opt x env.funcs with
      | Some fid ->
          (* bare reference to a known function (e.g. passed as a callback):
             record the reference site for the frozen-exemption fixpoint *)
          ctx.file.sites <-
            { st_callee = fid; st_caller = ctx.fn.fn_id; st_frozen = env.frozen }
            :: ctx.file.sites
      | None -> ());
      (vof (Option.value (SMap.find_opt x env.vars) ~default:oempty), env)
  | Pexp_ident _ | Pexp_constant _ | Pexp_construct (_, None)
  | Pexp_variant (_, None) | Pexp_unreachable ->
      (vnone, env)
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> (
      match arg.pexp_desc with
      | Pexp_tuple es ->
          let slots, env =
            List.fold_left
              (fun (acc, env) e ->
                let v, env = eval ctx env e in
                (v.whole :: acc, env))
              ([], env) es
          in
          let slots = Array.of_list (List.rev slots) in
          ({ whole = ounions (Array.to_list slots); slots }, env)
      | _ ->
          let v, env = eval ctx env arg in
          ({ whole = v.whole; slots = [| v.whole |] }, env))
  | Pexp_tuple es ->
      let slots, env =
        List.fold_left
          (fun (acc, env) e ->
            let v, env = eval ctx env e in
            (v.whole :: acc, env))
          ([], env) es
      in
      let slots = Array.of_list (List.rev slots) in
      ({ whole = ounions (Array.to_list slots); slots }, env)
  | Pexp_field (b, { txt; _ }) ->
      let bv, env = eval ctx env b in
      let fname =
        match List.rev (Rules.lident_parts txt) with f :: _ -> f | [] -> "?"
      in
      if fname = "hdr" then
        (* the embedded header is the node's SMR identity, not payload:
           [n.hdr] aliases [n] (so protecting/retiring the header
           protects/retires the node) and reading it is not a deref *)
        (bv, env)
      else begin
        emit ctx (Deref (bv.whole, var_hint b, loc));
        (vof (osingle (derived ctx bv.whole fname)), env)
      end
  | Pexp_setfield (b, { txt; _ }, v) ->
      let bv, env = eval ctx env b in
      let vv, env = eval ctx env v in
      let fname =
        match List.rev (Rules.lident_parts txt) with f :: _ -> f | [] -> "?"
      in
      emit ctx (Deref (bv.whole, var_hint b, loc));
      emit ctx (Store (vv.whole, loc));
      (* assignment kills the old field binding (offer-then-replace) *)
      emit ctx (Set_state (osingle (derived ctx bv.whole fname), Lattice.Neutral));
      (vnone, env)
  | Pexp_record (fields, base) ->
      let env =
        List.fold_left
          (fun env (_, e) ->
            let _, env = eval ctx env e in
            env)
          env fields
      in
      let env =
        match base with
        | Some b ->
            let _, env = eval ctx env b in
            env
        | None -> env
      in
      (* a constructed record is a fresh object: local until published, and
         deliberately NOT aliased to its field values (a context record
         holding a validated node is not itself that node) *)
      (vof (osingle (fresh_tracked ctx Lattice.Neutral)), env)
  | Pexp_array es ->
      let whole, env =
        List.fold_left
          (fun (acc, env) e ->
            let v, env = eval ctx env e in
            (ounion acc v.whole, env))
          (oempty, env) es
      in
      (vof whole, env)
  | Pexp_let (rf, vbs, body) ->
      let env' = eval_let ctx env rf vbs in
      eval ctx env' body
  | Pexp_sequence (a, b) ->
      let _, env = eval ctx env a in
      eval ctx env b
  | Pexp_ifthenelse (cond, then_, else_) ->
      let refins, env = eval_cond ctx env cond in
      let before = ctx.cur in
      let tn = new_node ctx env in
      link ctx before tn;
      ctx.cur <- tn;
      List.iter (fun (t, _) -> List.iter (emit ctx) t) refins;
      let tv, _ = eval ctx env then_ in
      let t_end = ctx.cur in
      let en = new_node ctx env in
      link ctx before en;
      ctx.cur <- en;
      List.iter (fun (_, f) -> List.iter (emit ctx) f) refins;
      let ev =
        match else_ with
        | Some e ->
            let v, _ = eval ctx env e in
            v
        | None -> vnone
      in
      let e_end = ctx.cur in
      let jn = new_node ctx env in
      link ctx t_end jn;
      link ctx e_end jn;
      ctx.cur <- jn;
      (vjoin tv ev, env)
  | Pexp_match (scrut, cases) -> eval_match ctx env ~loc scrut cases
  | Pexp_try (body, cases) ->
      let handler = new_node ctx env in
      let first_body = ctx.fn.fn_nnodes in
      let env_body = { env with handler = Some handler } in
      (* the try body starts in its own node so every node in its span can
         edge to the handler *)
      advance ctx env_body;
      let bv, _ = eval ctx env_body body in
      let last_body = ctx.fn.fn_nnodes in
      List.iter
        (fun n ->
          if n.n_id >= first_body && n.n_id < last_body then
            n.n_succs <- handler :: n.n_succs)
        ctx.fn.fn_nodes;
      let b_end = ctx.cur in
      let jn = new_node ctx env in
      link ctx b_end jn;
      let v =
        List.fold_left
          (fun acc c ->
            let cn = new_node ctx env in
            link ctx handler cn;
            ctx.cur <- cn;
            let env_c = bind_pattern env c.pc_lhs (vof oempty) in
            (match c.pc_guard with
            | Some g ->
                let _, _ = eval ctx env_c g in
                ()
            | None -> ());
            let cv, _ = eval ctx env_c c.pc_rhs in
            link ctx ctx.cur jn;
            vjoin acc cv)
          bv cases
      in
      ctx.cur <- jn;
      (v, env)
  | Pexp_while (cond, body) ->
      let head = new_node ctx env in
      link ctx ctx.cur head;
      ctx.cur <- head;
      let _, env = eval ctx env cond in
      let cond_end = ctx.cur in
      let bn = new_node ctx env in
      link ctx cond_end bn;
      ctx.cur <- bn;
      let _, _ = eval ctx env body in
      link ctx ctx.cur head;
      let after = new_node ctx env in
      link ctx cond_end after;
      ctx.cur <- after;
      (vnone, env)
  | Pexp_for (pat, lo, hi, _, body) ->
      let _, env = eval ctx env lo in
      let _, env = eval ctx env hi in
      let head = new_node ctx env in
      link ctx ctx.cur head;
      ctx.cur <- head;
      let bn = new_node ctx env in
      link ctx head bn;
      ctx.cur <- bn;
      let env_b = bind_pattern env pat vnone in
      let _, _ = eval ctx env_b body in
      link ctx ctx.cur head;
      let after = new_node ctx env in
      link ctx head after;
      ctx.cur <- after;
      (vnone, env)
  | Pexp_apply (f, args) -> eval_apply ctx env ~loc f args
  | Pexp_fun _ | Pexp_function _ ->
      (* anonymous lambda in value position (stored or passed to an unknown
         call): build it as an orphan function so its body is still checked,
         with opaque parameters *)
      let params, _ = params_of_lambda e in
      let _, fn =
        register_func ctx.file ~name:"<lambda>" ~loc ~params ~toplevel:false
      in
      build_func ctx.file fn ~funcs:env.funcs e;
      (vnone, env)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e)
  | Pexp_lazy e ->
      eval ctx env e
  | Pexp_assert e ->
      let _, env = eval ctx env e in
      (vnone, env)
  | _ -> (vnone, env)

and var_hint e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> x
  | Pexp_field (b, { txt; _ }) -> (
      match List.rev (Rules.lident_parts txt) with
      | f :: _ -> var_hint b ^ "." ^ f
      | [] -> var_hint b)
  | _ -> "<expr>"

(* Evaluate a let group. Lambda bindings become registered functions (so
   calls to them are summarized); other bindings flow values into the
   pattern. A binding whose RHS is a protection-family call is additionally
   remembered as pending so a later branch on it can refine. *)
and eval_let ctx env rf vbs =
  let is_rec = rf = Asttypes.Recursive in
  (* pre-register the group's lambda bindings so mutual recursion inside
     the group resolves *)
  let regs =
    List.filter_map
      (fun vb ->
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } when is_lambda vb.pvb_expr ->
            let params, _ = params_of_lambda vb.pvb_expr in
            let fid, fn =
              register_func ctx.file ~name:txt ~loc:vb.pvb_loc ~params
                ~toplevel:false
            in
            Some (txt, fid, fn, vb.pvb_expr)
        | _ -> None)
      vbs
  in
  let funcs' =
    List.fold_left (fun m (name, fid, _, _) -> SMap.add name fid m) env.funcs regs
  in
  let callee_funcs = if is_rec then funcs' else env.funcs in
  List.iter
    (fun (_, _, fn, lam) -> build_func ctx.file fn ~funcs:callee_funcs lam)
    regs;
  let env_rhs = { env with funcs = (if is_rec then funcs' else env.funcs) } in
  let env' =
    List.fold_left
      (fun acc vb ->
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } when is_lambda vb.pvb_expr ->
            ignore txt;
            acc (* already registered *)
        | _ ->
            let v, _ = eval ctx env_rhs vb.pvb_expr in
            let acc = bind_pattern acc vb.pvb_pat v in
            track_pending ctx acc vb)
      { env with funcs = funcs' }
      vbs
  in
  env'

and track_pending ctx env vb =
  ignore ctx;
  match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
  | Ppat_var { txt; _ }, Pexp_apply (f, args) -> (
      match head_name f with
      | Some (_, "protect_pessimistic") ->
          let objs = last_positional_objs env args in
          { env with pend = SMap.add txt (P_protect objs) env.pend }
      | Some (_, "protection_valid") ->
          { env with pend = SMap.add txt P_valid env.pend }
      | Some (Some "Collector", "offer") ->
          let objs = last_positional_objs env args in
          { env with pend = SMap.add txt (P_offer objs) env.pend }
      | _ -> env)
  | _ -> env

(* Object set of the last positional argument, from the build-time env only
   (no events emitted — used where the argument was already evaluated). *)
and last_positional_objs env args =
  let rec last acc = function
    | [] -> acc
    | (Asttypes.Nolabel, a) :: tl -> last (Some a) tl
    | _ :: tl -> last acc tl
  in
  match last None args with
  | Some a -> static_objs env a
  | None -> oempty

(* Build-time-only object set of an expression: idents, field chains and
   transparent wrappers, with no event emission. *)
and static_objs env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      Option.value (SMap.find_opt x env.vars) ~default:oempty
  | Pexp_field (b, _) -> static_objs env b
  | Pexp_constraint (e, _) -> static_objs env e
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> static_objs env a
  | Pexp_tuple es -> ounions (List.map (static_objs env) es)
  | Pexp_apply (f, args) -> (
      match head_name f with
      | Some (qual, last) when is_transparent qual last ->
          ounions (List.map (fun (_, a) -> static_objs env a) args)
      | _ -> oempty)
  | _ -> oempty

(* Conditions: evaluate, and collect refinements from the && spine — each
   refinement is (events for the true branch, events for the false branch).
   [not] flips; [||] spines refine nothing. *)
and eval_cond ctx env cond =
  match cond.pexp_desc with
  | Pexp_apply (f, [ (_, a) ]) when head_name f = Some (None, "not") ->
      let refins, env = eval_cond ctx env a in
      (List.map (fun (t, f) -> (f, t)) refins, env)
  | Pexp_apply (f, [ (_, a); (_, b) ]) when head_name f = Some (None, "&&") ->
      let ra, env = eval_cond ctx env a in
      let rb, env = eval_cond ctx env b in
      (* under &&, false-branch refinements are unsound (either conjunct may
         have failed): keep only true-branch events *)
      (List.map (fun (t, _) -> (t, [])) (ra @ rb), env)
  | Pexp_ident { txt; _ } when Longident.last txt = "needs_protection" ->
      (* a scheme that answers false here guards raw reads with its crit
         section instead of hazard slots (EBR-style): on the false branch
         every object already read is safe to dereference *)
      ([ ([], [ Scheme_safe ]) ], env)
  | Pexp_ident { txt = Longident.Lident x; _ }
    when SMap.mem x env.pend ->
      let refin =
        match SMap.find x env.pend with
        | P_protect objs -> [ ([ Set_state (objs, Lattice.Validated) ], []) ]
        | P_offer objs -> [ ([ Set_state (objs, Lattice.Handed_off) ], []) ]
        | P_valid -> [ ([ Validate_protected ], []) ]
      in
      (refin, env)
  | Pexp_apply (f, args) -> (
      let v_refin =
        match head_name f with
        | Some (_, "protect_pessimistic") ->
            Some [ ([ Set_state (last_positional_objs_dyn ctx env args, Lattice.Validated) ], []) ]
        | Some (_, "protection_valid") -> Some [ ([ Validate_protected ], []) ]
        | Some (Some "Collector", "offer") ->
            Some
              [ ([ Set_state (last_positional_objs_dyn ctx env args, Lattice.Handed_off) ], []) ]
        | Some (Some "Tagged", "is_invalid") ->
            Some
              [ ([ Set_state (last_positional_objs_dyn ctx env args, Lattice.Invalidated) ], []) ]
        | _ -> None
      in
      match v_refin with
      | Some r ->
          let _, env = eval ctx env cond in
          (r, env)
      | None ->
          let _, env = eval ctx env cond in
          ([], env))
  | _ ->
      let _, env = eval ctx env cond in
      ([], env)

and last_positional_objs_dyn ctx env args =
  ignore ctx;
  last_positional_objs env args

(* Match: the try_protect outcome gets its builtin refinement (the [Ok]
   case validates the expected argument and binds a validated alias);
   pending booleans branch like conditions; everything else is a plain
   value match with per-case binding. *)
and eval_match ctx env ~loc scrut cases =
  ignore loc;
  let special =
    match scrut.pexp_desc with
    | Pexp_apply (f, args) -> (
        match head_name f with
        | Some (_, "try_protect") -> Some (`Try_protect args)
        | _ -> None)
    | Pexp_ident { txt = Longident.Lident x; _ } when SMap.mem x env.pend ->
        Some (`Pending (SMap.find x env.pend))
    | _ -> None
  in
  match special with
  | Some (`Try_protect args) ->
      (* evaluate arguments (their derefs count), protect the expected
         target, then branch per case *)
      let env =
        List.fold_left
          (fun env (_, a) ->
            let _, env = eval ctx env a in
            env)
          env args
      in
      let expected = last_positional_objs env args in
      if expected <> oempty then
        emit ctx (Protect expected);
      ctx.fn.fn_sync <- true;
      let before = ctx.cur in
      let jn = new_node ctx env in
      let v =
        List.fold_left
          (fun acc c ->
            let cn = new_node ctx env in
            link ctx before cn;
            ctx.cur <- cn;
            let is_ok =
              match c.pc_lhs.ppat_desc with
              | Ppat_construct ({ txt; _ }, _) -> (
                  match List.rev (Rules.lident_parts txt) with
                  | "Ok" :: _ -> true
                  | _ -> false)
              | _ -> false
            in
            let env_c =
              if is_ok then begin
                emit ctx (Set_state (expected, Lattice.Validated));
                let o = fresh_tracked ctx Lattice.Validated in
                bind_pattern env c.pc_lhs (vof (ounion expected (osingle o)))
              end
              else bind_pattern env c.pc_lhs vnone
            in
            let cv, _ = eval ctx env_c c.pc_rhs in
            link ctx ctx.cur jn;
            vjoin acc cv)
          vnone cases
      in
      ctx.cur <- jn;
      (v, env)
  | Some (`Pending p) ->
      let before = ctx.cur in
      let jn = new_node ctx env in
      let v =
        List.fold_left
          (fun acc c ->
            let cn = new_node ctx env in
            link ctx before cn;
            ctx.cur <- cn;
            let is_true =
              match c.pc_lhs.ppat_desc with
              | Ppat_construct ({ txt = Longident.Lident "true"; _ }, _) -> true
              | _ -> false
            in
            if is_true then
              (match p with
              | P_protect objs -> emit ctx (Set_state (objs, Lattice.Validated))
              | P_offer objs -> emit ctx (Set_state (objs, Lattice.Handed_off))
              | P_valid -> emit ctx Validate_protected);
            let env_c = bind_pattern env c.pc_lhs vnone in
            let cv, _ = eval ctx env_c c.pc_rhs in
            link ctx ctx.cur jn;
            vjoin acc cv)
          vnone cases
      in
      ctx.cur <- jn;
      (v, env)
  | None ->
      let sv, env = eval ctx env scrut in
      let nulls = null_refine_objs env scrut in
      let before = ctx.cur in
      let jn = new_node ctx env in
      let v =
        List.fold_left
          (fun acc c ->
            let cn = new_node ctx env in
            link ctx before cn;
            ctx.cur <- cn;
            if nulls <> oempty && is_none_pat c.pc_lhs then
              emit ctx (Set_state (nulls, Lattice.Neutral));
            let env_c = bind_pattern env c.pc_lhs sv in
            (match c.pc_guard with
            | Some g ->
                let _, _ = eval ctx env_c g in
                ()
            | None -> ());
            let cv, _ = eval ctx env_c c.pc_rhs in
            link ctx ctx.cur jn;
            vjoin acc cv)
          vnone cases
      in
      ctx.cur <- jn;
      (v, env)

(* [match Tagged.ptr x with None -> ...]: the None arm witnesses that [x]
   is null, which carries no protection obligation (dereferencing requires
   another ptr-match, observed again). Refining the argument to Neutral on
   that arm keeps a null path from dragging the join of a sibling arm's
   protect-and-validate chain down to Raw. *)
and null_refine_objs env scrut =
  match scrut.pexp_desc with
  | Pexp_apply (f, args) when head_name f = Some (Some "Tagged", "ptr") ->
      last_positional_objs env args
  | _ -> oempty

and is_none_pat (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, None) -> (
      match List.rev (Rules.lident_parts txt) with
      | "None" :: _ -> true
      | _ -> false)
  | _ -> false

(* --- Applications: the Smr_intf builtin contracts -------------------------- *)

and eval_args ctx env args =
  let vals, env =
    List.fold_left
      (fun (acc, env) (lbl, a) ->
        let v, env = eval ctx env a in
        ((lbl, a, v) :: acc, env))
      ([], env) args
  in
  (List.rev vals, env)

and all_arg_objs vals = ounions (List.map (fun (_, _, v) -> v.whole) vals)

and positional_vals vals =
  List.filter_map
    (fun (lbl, _, v) -> if lbl = Asttypes.Nolabel then Some v else None)
    vals

and last_positional vals =
  match List.rev (positional_vals vals) with v :: _ -> v.whole | [] -> oempty

and eval_apply ctx env ~loc f args =
  let name = head_name f in
  match name with
  (* raise family: edge to the innermost handler (or function exit) and
     continue in an unreachable node, so a [raise Restart] arm does not
     poison the join after its match *)
  | Some (_, ("raise" | "raise_notrace" | "failwith" | "invalid_arg")) ->
      let _, env = eval_args ctx env args in
      (* with no local handler the exceptional path leaves the function
         without reaching its exit: a caller only continues after a NORMAL
         return, so these facts must not join into param_exit (the
         validate-or-raise-Restart idiom would otherwise report its param
         as never validated) *)
      (match env.handler with
      | Some h -> link ctx ctx.cur h
      | None -> ());
      (* fresh node with no predecessors: the solver sees it unreached *)
      ctx.cur <- new_node ctx env;
      (vnone, env)
  | Some (qual, "get") when qual = Some "Link" ->
      let vals, env = eval_args ctx env args in
      ignore vals;
      ctx_raw_read ctx env
  | Some (qual, "get_quiescent") when qual = Some "Link" ->
      let _, env = eval_args ctx env args in
      ctx.fn.fn_quiescent <- loc :: ctx.fn.fn_quiescent;
      (vof (osingle (fresh_tracked ctx Lattice.Quiescent)), env)
  | Some (qual, ("cas" | "cas_clean" | "set")) when qual = Some "Link" ->
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Publish (last_positional vals));
      (vnone, env)
  | Some (qual, "mark_invalid") when qual = Some "Link" ->
      let vals, env = eval_args ctx env args in
      emit ctx (Set_state (all_arg_objs vals, Lattice.Invalidated));
      (vnone, env)
  | Some (qual, "compare_and_set") when qual = Some "Atomic" ->
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Use (all_arg_objs vals, loc));
      (vnone, env)
  | Some (qual, _) when qual = Some "Atomic" ->
      (* GC-managed descriptor reads/writes: not SMR-tracked *)
      let _, env = eval_args ctx env args in
      (vnone, env)
  | Some (_, "protect") ->
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Protect (all_arg_objs vals));
      (vnone, env)
  | Some (_, "protect_pessimistic") ->
      (* boolean position not branched on: the slot store happened but the
         validation outcome is unknown — Protected only *)
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Protect (last_positional vals));
      (vnone, env)
  | Some (_, "try_protect") ->
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Protect (last_positional vals));
      (vof (osingle (fresh_tracked ctx Lattice.Protected)), env)
  | Some (_, "protection_valid") ->
      let _, env = eval_args ctx env args in
      (vnone, env)
  (* a local definition shadows the name-based retire/invalidate contracts:
     scheme files define [retire]/[do_invalidation] themselves, and those
     bodies are what the summary should say, not the Smr_intf automaton *)
  | Some (None, last)
    when (List.mem last retire_names || List.mem last invalidate_names)
         && SMap.mem last env.funcs ->
      eval_local_call ctx env ~loc (SMap.find last env.funcs) args
  | Some (_, last) when List.mem last retire_names ->
      (* retire the node argument only — the scheme handle (first arg in
         [retire h n] / method style) is not itself retired *)
      let vals, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      emit ctx (Retire (last_positional vals, loc));
      (vnone, env)
  | Some (_, last) when List.mem last invalidate_names ->
      let vals, env = eval_args ctx env args in
      emit ctx (Set_state (last_positional vals, Lattice.Invalidated));
      (vnone, env)
  | Some (_, "check_access") ->
      let vals, env = eval_args ctx env args in
      emit ctx (Deref (all_arg_objs vals, "<access-check>", loc));
      (vnone, env)
  | Some (_, "crit_enter") ->
      let _, env = eval_args ctx env args in
      ctx.fn.fn_sync <- true;
      ctx.fn.fn_crit <- true;
      let env = { env with in_crit = true } in
      advance ctx env;
      (vnone, env)
  | Some (_, "crit_exit") ->
      let _, env = eval_args ctx env args in
      emit ctx Demote_all;
      let env = { env with in_crit = false } in
      advance ctx env;
      (vnone, env)
  | Some (_, "release") ->
      let _, env = eval_args ctx env args in
      emit ctx Demote_all;
      (vnone, env)
  | Some (_, "with_crit") -> eval_with_crit ctx env ~loc args
  | Some (_, "try_unlink") -> eval_try_unlink ctx env ~loc args
  | Some (Some "Collector", "offer") ->
      (* success not branched on here: ownership can no longer be assumed
         either way, so leave the bag alone (refinements handle the
         branched form) *)
      let vals, env = eval_args ctx env args in
      emit ctx (Use (all_arg_objs vals, loc));
      (vnone, env)
  | Some (qual, last) when is_blocking qual last ->
      let vals, env = eval_args ctx env args in
      emit ctx (Use (all_arg_objs vals, loc));
      emit ctx (Blocking ((match qual with Some q -> q ^ "." ^ last | None -> last), loc));
      (vnone, env)
  | Some (qual, last) when is_transparent qual last ->
      let vals, env = eval_args ctx env args in
      (vof (all_arg_objs vals), env)
  | Some (qual, last) when is_higher_order qual last ->
      eval_higher_order ctx env ~loc args
  | Some (None, last) when SMap.mem last env.funcs ->
      eval_local_call ctx env ~loc (SMap.find last env.funcs) args
  | Some (qual, last) -> (
      match ctx.file.ext ~qual last with
      | Some s -> eval_ext_call ctx env ~loc s args
      | None -> eval_unknown ctx env ~loc f args)
  | None -> eval_unknown ctx env ~loc f args

and ctx_raw_read ctx env =
  (vof (osingle (fresh_tracked ctx Lattice.Raw)), env)

(* Unknown call: evaluate everything, inline lambda-literal arguments once
   with opaque parameters (so callback bodies are still checked), and mark
   the tracked arguments as used. *)
and eval_unknown ctx env ~loc f args =
  let env =
    match f.pexp_desc with
    | Pexp_field (b, _) ->
        let _, env = eval ctx env b in
        env
    | _ -> env
  in
  let objs = ref oempty in
  let env =
    List.fold_left
      (fun env (_, a) ->
        if is_lambda a then begin
          inline_lambda ctx env a ~param_objs:oempty;
          env
        end
        else
          let v, env = eval ctx env a in
          objs := ounion !objs v.whole;
          env)
      env args
  in
  emit ctx (Use (!objs, loc));
  (vof (osingle (fresh_tracked ctx Lattice.Neutral)), env)

(* Inline a lambda literal at its occurrence: parameters bind [param_objs],
   the body's events land in the current flow position. Used for known
   higher-order iterators and for callbacks to unknown calls. *)
and inline_lambda ctx env lam ~param_objs =
  let params, final = params_of_lambda lam in
  let env' =
    List.fold_left
      (fun env (_, vars) ->
        List.fold_left
          (fun env x -> { env with vars = SMap.add x param_objs env.vars })
          env vars)
      env params
  in
  match final.pexp_desc with
  | Pexp_function cases ->
      let before = ctx.cur in
      let jn = new_node ctx env' in
      List.iter
        (fun c ->
          let cn = new_node ctx env' in
          link ctx before cn;
          ctx.cur <- cn;
          let env_c = bind_pattern env' c.pc_lhs (vof param_objs) in
          let _, _ = eval ctx env_c c.pc_rhs in
          link ctx ctx.cur jn)
        cases;
      ctx.cur <- jn
  | _ ->
      let _, _ = eval ctx env' final in
      ()

and eval_higher_order ctx env ~loc args =
  ignore loc;
  (* collection objects = union of non-lambda argument objects *)
  let coll = ref oempty in
  let env =
    List.fold_left
      (fun env (_, a) ->
        if is_lambda a then env
        else
          let v, env = eval ctx env a in
          coll := ounion !coll v.whole;
          env)
      env args
  in
  List.iter
    (fun (_, a) -> if is_lambda a then inline_lambda ctx env a ~param_objs:!coll)
    args;
  (vof !coll, env)

(* with_crit handle stats (fun () -> body): enter, loop the body (the
   [`Retry]/[`Prot] arms refresh and go round), demote on exit. *)
and eval_with_crit ctx env ~loc args =
  ignore loc;
  ctx.fn.fn_sync <- true;
  ctx.fn.fn_crit <- true;
  let lam = List.find_opt (fun (_, a) -> is_lambda a) args in
  let env =
    List.fold_left
      (fun env (_, a) ->
        if is_lambda a then env
        else
          let _, env = eval ctx env a in
          env)
      env args
  in
  match lam with
  | None -> (vnone, env)
  | Some (_, lam) ->
      let env_crit = { env with in_crit = true } in
      let head = new_node ctx env_crit in
      link ctx ctx.cur head;
      ctx.cur <- head;
      inline_lambda ctx env_crit lam ~param_objs:oempty;
      (* retry edge and exit edge *)
      link ctx ctx.cur head;
      let after = new_node ctx env in
      link ctx ctx.cur after;
      ctx.cur <- after;
      emit ctx Demote_all;
      (vof (osingle (fresh_tracked ctx Lattice.Neutral)), env)

(* try_unlink ~frontier ~do_unlink ~invalidate ...: the labelled callback
   arguments execute under the scheme's own protection discipline (the
   paper's unlink contract), so their bodies — and any helper they are the
   only callers of — are frozen for the deref/retire rules. *)
and eval_try_unlink ctx env ~loc args =
  ctx.fn.fn_sync <- true;
  let frozen_labels = [ "frontier"; "do_unlink"; "invalidate" ] in
  let env =
    List.fold_left
      (fun env (lbl, a) ->
        let frozen_arg =
          match lbl with
          | Asttypes.Labelled s | Asttypes.Optional s ->
              List.mem s frozen_labels
          | Asttypes.Nolabel -> false
        in
        if frozen_arg then begin
          let env_f = { env with frozen = true } in
          advance ctx env_f;
          (if is_lambda a then inline_lambda ctx env_f a ~param_objs:oempty
           else
             let _, _ = eval ctx env_f a in
             ());
          advance ctx env;
          env
        end
        else if is_lambda a then begin
          inline_lambda ctx env a ~param_objs:oempty;
          env
        end
        else
          let _, env = eval ctx env a in
          env)
      env args
  in
  ignore loc;
  (vof (osingle (fresh_tracked ctx Lattice.Neutral)), env)

(* Call to a function with a (possibly still-bottom) summary: emit the
   Call event with aligned argument object sets and allocate result
   objects the solver will seed from the callee's return states. *)
and eval_summarized_call ctx env ~loc callee params summary args =
  let vals, env = eval_args ctx env args in
  let arg_exprs = List.map (fun (lbl, a, _) -> (lbl, a)) vals in
  let aligned, leftover = align_args params arg_exprs in
  let argsets =
    Array.map
      (function
        | Some a -> static_objs env a
        | None -> oempty)
      aligned
  in
  (* static_objs misses computed arguments (e.g. [advance (Link.get l)]):
     recover their object sets from the already-evaluated values *)
  let by_expr = List.map (fun (_, a, v) -> (a, v)) vals in
  Array.iteri
    (fun i a ->
      match a with
      | Some a when argsets.(i) = oempty -> (
          match List.assq_opt a by_expr with
          | Some v -> argsets.(i) <- v.whole
          | None -> ())
      | _ -> ())
    aligned;
  List.iter
    (fun a ->
      match List.assq_opt a by_expr with
      | Some v -> emit ctx (Use (v.whole, loc))
      | None -> ())
    leftover;
  let slot_shapes =
    match summary with
    | Some (s : Summary.fn) -> s.Summary.s_ret_slots
    | None -> [||]
  in
  let nslots = Array.length slot_shapes in
  let ret_whole = fresh_obj ctx in
  let ret_slots = Array.init nslots (fun _ -> fresh_obj ctx) in
  emit ctx (Call { callee; args = argsets; ret_whole; ret_slots; loc });
  (* [Pass] shapes alias the caller's argument objects outright: later
     validation or retirement of the returned value then acts on the same
     abstract objects the caller passed in *)
  let resolve shape fallback =
    match shape with
    | Summary.Pass i when i < Array.length argsets && argsets.(i) <> oempty ->
        argsets.(i)
    | _ -> osingle fallback
  in
  let slot_sets =
    Array.mapi (fun j o -> resolve slot_shapes.(j) o) ret_slots
  in
  let whole =
    match summary with
    | Some (s : Summary.fn) -> resolve s.Summary.s_ret_whole ret_whole
    | None -> osingle ret_whole
  in
  ({ whole; slots = slot_sets }, env)

and eval_local_call ctx env ~loc fid args =
  ctx.file.sites <-
    { st_callee = fid; st_caller = ctx.fn.fn_id; st_frozen = env.frozen }
    :: ctx.file.sites;
  let callee_fn = List.find (fun f -> f.fn_id = fid) ctx.file.fs in
  eval_summarized_call ctx env ~loc (Local fid) callee_fn.fn_params
    (ctx.file.summaries fid) args

and eval_ext_call ctx env ~loc s args =
  let params = List.init s.s_arity (fun _ -> (None, [])) in
  eval_summarized_call ctx env ~loc (Ext s) params (Some s) args

(* --- Tail positions -------------------------------------------------------- *)

(* Build an expression in return position: branches stay in tail so each
   return site records the per-slot states at THAT site (a [None] arm
   returning an empty slot contributes Bot, not a poisoning Raw join). *)
and build_tail ctx env e =
  match e.pexp_desc with
  | Pexp_let (rf, vbs, body) ->
      let env' = eval_let ctx env rf vbs in
      build_tail ctx env' body
  | Pexp_sequence (a, b) ->
      let _, env = eval ctx env a in
      build_tail ctx env b
  | Pexp_ifthenelse (cond, then_, else_) ->
      let refins, env = eval_cond ctx env cond in
      let before = ctx.cur in
      let tn = new_node ctx env in
      link ctx before tn;
      ctx.cur <- tn;
      List.iter (fun (t, _) -> List.iter (emit ctx) t) refins;
      build_tail ctx env then_;
      let en = new_node ctx env in
      link ctx before en;
      ctx.cur <- en;
      List.iter (fun (_, f) -> List.iter (emit ctx) f) refins;
      (match else_ with
      | Some e -> build_tail ctx env e
      | None ->
          emit ctx (Ret (vnone, e.pexp_loc));
          link ctx ctx.cur ctx.fn.fn_exit)
  | Pexp_match (scrut, cases) -> build_tail_match ctx env scrut cases
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) | Pexp_open (_, e) ->
      build_tail ctx env e
  | Pexp_function cases ->
      (* curried continuation: an extra anonymous parameter *)
      let o = fresh_tracked ctx Lattice.Neutral in
      build_tail_match_value ctx env (vof (osingle o)) cases
  | Pexp_fun _ ->
      let params, final = params_of_lambda e in
      let env' =
        List.fold_left
          (fun env (_, vars) ->
            List.fold_left
              (fun env x ->
                let o = fresh_tracked ctx Lattice.Neutral in
                { env with vars = SMap.add x (osingle o) env.vars })
              env vars)
          env params
      in
      build_tail ctx env' final
  | _ ->
      let v, env = eval ctx env e in
      ignore env;
      emit ctx (Ret (v, e.pexp_loc));
      link ctx ctx.cur ctx.fn.fn_exit

and build_tail_match ctx env scrut cases =
  let is_try_protect =
    match scrut.pexp_desc with
    | Pexp_apply (f, _) -> (
        match head_name f with
        | Some (_, "try_protect") -> true
        | _ -> false)
    | _ -> false
  in
  match scrut.pexp_desc with
  | Pexp_apply (_, args) when is_try_protect ->
      (* same builtin refinement as eval_match's try_protect case, but each
         case body builds in tail so its return site keeps per-slot shape
         (a search loop's `Ok` arm returning a validated cursor must not
         join with the `Invalid` arm) *)
      let env =
        List.fold_left
          (fun env (_, a) ->
            let _, env = eval ctx env a in
            env)
          env args
      in
      let expected = last_positional_objs env args in
      if expected <> oempty then
        emit ctx (Protect expected);
      ctx.fn.fn_sync <- true;
      let before = ctx.cur in
      List.iter
        (fun c ->
          let cn = new_node ctx env in
          link ctx before cn;
          ctx.cur <- cn;
          let is_ok =
            match c.pc_lhs.ppat_desc with
            | Ppat_construct ({ txt; _ }, _) -> (
                match List.rev (Rules.lident_parts txt) with
                | "Ok" :: _ -> true
                | _ -> false)
            | _ -> false
          in
          let env_c =
            if is_ok then begin
              emit ctx (Set_state (expected, Lattice.Validated));
              let o = fresh_tracked ctx Lattice.Validated in
              bind_pattern env c.pc_lhs (vof (ounion expected (osingle o)))
            end
            else bind_pattern env c.pc_lhs vnone
          in
          build_tail ctx env_c c.pc_rhs)
        cases
  | Pexp_ident { txt = Longident.Lident x; _ } when SMap.mem x env.pend ->
      let p = SMap.find x env.pend in
      let before = ctx.cur in
      List.iter
        (fun c ->
          let cn = new_node ctx env in
          link ctx before cn;
          ctx.cur <- cn;
          let is_true =
            match c.pc_lhs.ppat_desc with
            | Ppat_construct ({ txt = Longident.Lident "true"; _ }, _) -> true
            | _ -> false
          in
          if is_true then
            (match p with
            | P_protect objs -> emit ctx (Set_state (objs, Lattice.Validated))
            | P_offer objs -> emit ctx (Set_state (objs, Lattice.Handed_off))
            | P_valid -> emit ctx Validate_protected);
          let env_c = bind_pattern env c.pc_lhs vnone in
          build_tail ctx env_c c.pc_rhs)
        cases
  | _ ->
      let sv, env = eval ctx env scrut in
      let nulls = null_refine_objs env scrut in
      build_tail_match_value ctx env ~nulls sv cases

and build_tail_match_value ctx env ?(nulls = oempty) sv cases =
  let before = ctx.cur in
  List.iter
    (fun c ->
      let cn = new_node ctx env in
      link ctx before cn;
      ctx.cur <- cn;
      if nulls <> oempty && is_none_pat c.pc_lhs then
        emit ctx (Set_state (nulls, Lattice.Neutral));
      let env_c = bind_pattern env c.pc_lhs sv in
      (match c.pc_guard with
      | Some g ->
          let _, _ = eval ctx env_c g in
          ()
      | None -> ());
      build_tail ctx env_c c.pc_rhs)
    cases

(* --- Whole functions -------------------------------------------------------- *)

(* Build one function's CFG. The environment is fresh apart from the
   in-scope function table: a nested helper does not see the enclosing
   function's tracked variables (object ids are per-CFG), which is the
   closure soundness caveat documented in DESIGN.md §15. *)
and build_func file fn ~funcs lam =
  let env = env0 ~funcs in
  let ctx = { file; fn; cur = 0 } in
  let entry = new_node ctx env in
  ctx.cur <- entry;
  let exit_ = new_node ctx env in
  fn.fn_exit <- exit_;
  (* parameter objects, one per positional parameter *)
  let params, final = params_of_lambda lam in
  let env =
    List.fold_left
      (fun (i, env) (_, vars) ->
        let o = fresh_obj ctx in
        fn.fn_param_objs.(i) <- o;
        ( i + 1,
          List.fold_left
            (fun env x -> { env with vars = SMap.add x (osingle o) env.vars })
            env vars ))
      (0, env) params
    |> snd
  in
  (match final.pexp_desc with
  | Pexp_function cases ->
      let last = List.length params - 1 in
      let pv =
        if last >= 0 then vof (osingle fn.fn_param_objs.(last)) else vnone
      in
      build_tail_match_value ctx env pv cases
  | _ -> build_tail ctx env final)

(* --- File driver ------------------------------------------------------------ *)

(* Build every top-level function of [ast] (pre-registering the whole group
   so mutual recursion resolves), using [summaries] from the previous
   iteration for call events and [ext] for qualified cross-file calls.
   Nested helpers register themselves during the build. *)
let build_file ~ext ~summaries ast =
  let file = { fs = []; nf = 0; sites = []; ext; summaries } in
  let tops = Rules.funcs_of_file ast in
  let regs =
    List.map
      (fun (f : Rules.func) ->
        let params, _ = params_of_lambda f.f_body in
        let fid, fn =
          register_func file ~name:f.f_name ~loc:f.f_loc ~params ~toplevel:true
        in
        (fid, fn, f.f_body))
      tops
  in
  let funcs0 =
    List.fold_left (fun m (fid, fn, _) -> SMap.add fn.fn_name fid m) SMap.empty regs
  in
  List.iter (fun (_, fn, body) -> build_func file fn ~funcs:funcs0 body) regs;
  file
