(* Source loading: read a file, parse it with the compiler's own parser
   (Parse.implementation — syntax only, no typing, no ppx), and scan the raw
   text for suppression pragmas.

   Pragma form, one per line, as the payload of an ordinary comment — the
   marker must directly follow the comment opener:

     smr-lint: allow <rule>[, <rule>...] — <reason>

   where <rule> is an id ("R1") or slug ("raw-link-deref") and <reason> is
   mandatory, after an em dash or "--". A pragma suppresses matching
   line-scope findings on its own line or the line directly below, and
   matching file-scope findings anywhere in the file. Requiring the comment
   opener on the same line keeps strings and prose that merely mention the
   marker from being treated as pragmas. *)

type pragma = {
  p_line : int;
  p_rules : string list;
  p_reason : string;
  mutable p_used : bool;
}

type t = {
  path : string;
  ast : Parsetree.structure option;  (** [None] when the file failed to parse *)
  parse_failure : (int * string) option;  (** line, message *)
  pragmas : pragma list;
  bad_pragmas : int list;  (** lines with an unparsable smr-lint pragma *)
}

let marker = "smr-lint:"

(* Find [sub] in [s] starting at [from]; naive scan is fine at these sizes. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let split_on_any s seps =
  String.split_on_char ' ' (String.map (fun c -> if List.mem c seps then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

(* Parse the pragma payload after "smr-lint:". Returns [None] when the line
   carries the marker but not a well-formed allow-pragma. *)
let parse_pragma_payload payload =
  let payload = String.trim payload in
  let after_allow =
    if String.length payload >= 5 && String.sub payload 0 5 = "allow" then
      Some (String.sub payload 5 (String.length payload - 5))
    else None
  in
  match after_allow with
  | None -> None
  | Some rest -> (
      (* reason separator: em dash (U+2014) or "--" *)
      let sep =
        match find_sub rest "\xe2\x80\x94" 0 with
        | Some i -> Some (i, 3)
        | None -> ( match find_sub rest "--" 0 with
                    | Some i -> Some (i, 2)
                    | None -> None)
      in
      match sep with
      | None -> None
      | Some (i, w) ->
          let rules_part = String.sub rest 0 i in
          let reason_part = String.sub rest (i + w) (String.length rest - i - w) in
          let reason =
            let r = String.trim reason_part in
            (* strip a trailing comment close *)
            let r =
              match find_sub r "*)" 0 with
              | Some j -> String.trim (String.sub r 0 j)
              | None -> r
            in
            r
          in
          let rules = split_on_any rules_part [ ','; '\t' ] in
          if rules = [] || reason = "" then None
          else Some (rules, reason))

(* The marker counts only when it directly follows a comment opener —
   open-paren star — on the same line, whitespace allowed between. *)
let preceded_by_opener line at =
  let rec skip_ws j = if j >= 0 && line.[j] = ' ' then skip_ws (j - 1) else j in
  let j = skip_ws (at - 1) in
  j >= 1 && line.[j] = '*' && line.[j - 1] = '('

let scan_pragmas text =
  let pragmas = ref [] and bad = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match find_sub line marker 0 with
      | Some at when preceded_by_opener line at -> (
          let payload =
            String.sub line
              (at + String.length marker)
              (String.length line - at - String.length marker)
          in
          match parse_pragma_payload payload with
          | Some (rules, reason) ->
              pragmas :=
                { p_line = lnum; p_rules = rules; p_reason = reason; p_used = false }
                :: !pragmas
          | None -> bad := lnum :: !bad)
      | _ -> ())
    lines;
  (List.rev !pragmas, List.rev !bad)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  try Ok (Parse.implementation lexbuf) with
  | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
  | Lexer.Error (_, loc) ->
      Error (loc.Location.loc_start.Lexing.pos_lnum, "lexing error")

let of_string ~path text =
  let pragmas, bad_pragmas = scan_pragmas text in
  match parse ~path text with
  | Ok ast -> { path; ast = Some ast; parse_failure = None; pragmas; bad_pragmas }
  | Error (line, msg) ->
      { path; ast = None; parse_failure = Some (line, msg); pragmas; bad_pragmas }

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string ~path text
