(** Source loading: parse a file with the compiler's own parser (syntax
    only — no typing, no ppx) and scan for suppression pragmas of the form

    {[ (* smr-lint: allow <rule>[, <rule>...] — <reason> *) ]}

    A pragma must carry a non-empty reason after an em dash or ["--"]. *)

type pragma = {
  p_line : int;
  p_rules : string list;  (** rule ids or slugs, verbatim *)
  p_reason : string;
  mutable p_used : bool;  (** set by the engine when it suppresses *)
}

type t = {
  path : string;
  ast : Parsetree.structure option;  (** [None] when the file failed to parse *)
  parse_failure : (int * string) option;  (** line, message *)
  pragmas : pragma list;
  bad_pragmas : int list;  (** lines carrying an unparsable smr-lint pragma *)
}

val of_string : path:string -> string -> t
val load : string -> t
