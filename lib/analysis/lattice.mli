(** The protection-state lattice (DESIGN.md §15).

    One abstract state per tracked object, ordered so that [join] along
    control-flow merges is "least protected wins": a dereference is legal
    only when validation {e must}-dominates it, i.e. when the join over
    every incoming path is still [Validated] or better. *)

type state =
  | Bot  (** unreached / no information: identity of [join] *)
  | Invalidated  (** link marked invalid; any access is a flow error *)
  | Handed_off  (** ownership moved to the background collector *)
  | Retired  (** retired by this thread without surviving protection *)
  | Raw  (** read from a shared link, no protection yet *)
  | Protected  (** hazard slot announced, not yet re-validated *)
  | Validated  (** protection validated: dereference is legal *)
  | Quiescent  (** declared quiescent read ([Link.get_quiescent]) *)
  | Neutral  (** not SMR-tracked (locals, fresh records, unknown results) *)

val rank : state -> int
(** Ascending protection order; [Bot] ranks above everything so it is the
    identity of [join]. *)

val join : state -> state -> state
(** Minimum rank: the less-protected side wins at a merge. *)

val widen : state -> state -> state
(** Equal to [join]: the chain is finite (height {!height}) so joining
    already terminates on loops. *)

val leq : state -> state -> bool
val equal : state -> state -> bool

val height : int
(** Length of the longest strictly-descending chain; bounds fixpoint
    relaxations per object. *)

val to_string : state -> string
val all : state list

type fact = { st : state; published : bool }
(** Per-object fact: abstract state plus whether the object was published
    (CASed/stored into shared state) on some path — the bit behind the
    retire-after-publish rule. *)

val bot_fact : fact
val join_fact : fact -> fact -> fact
val fact_equal : fact -> fact -> bool

type t = fact array option
(** Program-point state: one fact per object id, or [None] for an
    unreached point. *)

val unreached : t
val entry : int -> t
(** [entry n] is an all-[Bot] state over [n] objects (at least one). *)

val copy : t -> fact array option
val join_state : t -> t -> t
val state_equal : t -> t -> bool
