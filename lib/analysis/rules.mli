(** The SMR-discipline rule set: cheap syntactic under-approximations of the
    protect/retire/free obligations (DESIGN.md §10). Each check takes a
    parsed structure and returns findings; scope selection (which rule runs
    on which directory) lives in {!Engine}. *)

val r1_check : file:string -> Parsetree.structure -> Finding.t list
(** Raw-link-deref: a top-level function in [lib/ds] that raw-reads a link
    ([Link.get]/[Atomic.get]) and dereferences record fields without a
    (transitive, module-local) call to [try_protect] /
    [protect_pessimistic] / [protect]. *)

val r2_check : file:string -> Parsetree.structure -> Finding.t list
(** Invalidate-before-free: in scheme code, a free-family call
    ([free_mark], [free_mark_cascade], [reclaim], [collect]) that
    syntactically precedes an invalidation-family call ([do_invalidation],
    [invalidate_all], [invalidate], [mark_invalid]) within one top-level
    function. *)

val r3_check : file:string -> Parsetree.structure -> Finding.t list
(** Shared-mutable-field: plain [mutable] record fields in types shared
    across domains — types that directly hold [Atomic.t] state or are
    reachable from one through field types. *)

val r4_check : file:string -> Parsetree.structure -> Finding.t list
(** Unguarded-trace-alloc: a [Trace.emit]/[Trace.emit_at] call site outside
    an [if Trace.enabled ()] guard whose arguments are not syntactically
    non-allocating. *)

val r5_check : file:string -> mli_exists:bool -> unit -> Finding.t list
(** Missing-mli. *)

(** {1 Shared Parsetree helpers}

    Reused by the v2 CFG builder ({!Cfg}) and flow rules ({!Rules_flow}). *)

val lident_parts : Longident.t -> string list

val app_head_name :
  Parsetree.expression -> (string option * string) option
(** Last one/two components of an application head's path ([Some (qual,
    last)]), if the head is an identifier or field projection. *)

val line_of_loc : Location.t -> int
val cnum_of_loc : Location.t -> int

val iter_expr : (Parsetree.expression -> unit) -> Parsetree.expression -> unit
(** Call [f] on every sub-expression. *)

val contains_app :
  (string option -> string -> bool) -> Parsetree.expression -> bool
(** Does [e] contain an application whose head matches [pred qual last]? *)

type func = {
  f_name : string;
  f_body : Parsetree.expression;
  f_loc : Location.t;
}
(** A top-level [let]-bound function (recursing into module/functor
    bodies). *)

val funcs_of_file : Parsetree.structure -> func list

val pattern_vars : Parsetree.pattern -> string list
(** Variables bound by a pattern (vars and aliases), innermost first. *)
