(* The flow rules F1–F7 (DESIGN.md §15): build the file's CFGs, iterate
   build+summarize until the per-function summaries reach fixpoint, then
   run a Neutral-seeded error pass per function and turn bad replay
   observations into findings.

   Exemptions:
   - frozen regions: the lexical bodies of try_unlink's ~frontier /
     ~do_unlink / ~invalidate arguments run under the scheme's own unlink
     contract, so deref/retire checks are off there — and off in any helper
     whose every call site is frozen (the collect_chain pattern), computed
     as a call-graph fixpoint;
   - retirement does not revoke the retiring thread's own validated
     protection (handled in the transfer, solver.ml). *)

open Parsetree

type checks = {
  c_deref : bool;  (** F1 + F2, lib/ds *)
  c_retire : bool;  (** F3, lib/ds + scheme code *)
  c_handoff : bool;  (** F4, scheme code *)
  c_crit : bool;  (** F5, lib + bin *)
  c_counter : bool;  (** F6, lib + bin *)
  c_quiescent : bool;  (** F7, lib/ds *)
}

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol + 1)

(* --- Summary fixpoint ------------------------------------------------------- *)

let max_iterations = 8

(* Build the file's CFGs and iterate summarization to fixpoint. Rebuilding
   per iteration is deliberate: the arity of a call's return slots depends
   on the callee's previous summary, so the graph itself converges with the
   summaries. Returns the converged CFG file and the summary array. *)
let converge ~ext ast =
  let prev = ref [||] in
  let lookup_prev = function
    | Cfg.Local fid ->
        if fid < Array.length !prev then Some !prev.(fid) else None
    | Cfg.Ext s -> Some s
  in
  let cfile = ref (Cfg.build_file ~ext ~summaries:(fun fid -> lookup_prev (Cfg.Local fid)) ast) in
  let stable = ref false in
  let iters = ref 0 in
  while (not !stable) && !iters < max_iterations do
    incr iters;
    let funcs = Cfg.funcs_array !cfile in
    (* Gauss–Seidel sweep: a function's callers (defined after it in fid
       order) see the summary recomputed THIS iteration. With the Jacobi
       snapshot, a first-iteration weak value (a helper summarized before
       its callee's validation effect was known) lodges itself in a
       self-recursive ret-site join — [W = join (Validated, W)] keeps
       [W = Raw] alive forever — because the recursive contribution never
       restarts from the join identity. *)
    let n = Array.length funcs in
    let fresh : Summary.fn option array = Array.make n None in
    let lookup_now = function
      | Cfg.Local fid ->
          if fid < n && fresh.(fid) <> None then fresh.(fid)
          else lookup_prev (Cfg.Local fid)
      | Cfg.Ext s -> Some s
    in
    Array.iteri
      (fun i fn -> fresh.(i) <- Some (Solver.summarize ~lookup:lookup_now fn))
      funcs;
    let next =
      Array.map (function Some s -> s | None -> assert false) fresh
    in
    stable :=
      Array.length next = Array.length !prev
      && Array.for_all2 Summary.equal next !prev;
    prev := next;
    if not !stable then
      cfile :=
        Cfg.build_file ~ext
          ~summaries:(fun fid -> lookup_prev (Cfg.Local fid))
          ast
  done;
  (* Phase 2: the loop above converges the STRUCTURE (ret-slot arities and
     Pass passthrough, both state-independent), but its state values can
     carry first-iteration artifacts: while the CFG's slot shapes lag the
     summaries, a recursive ret site pads with a transiently weak whole
     state, and [W = join (Validated, W)] then keeps W = Raw alive forever.
     With the CFG now fixed, recompute the values from scratch: a
     not-yet-computed local resolves to Neutral (the join identity among
     reachable states), so each sweep only adds genuine information. *)
  let funcs = Cfg.funcs_array !cfile in
  let n = Array.length funcs in
  let final : Summary.fn option array = Array.make n None in
  let stable = ref false in
  let iters = ref 0 in
  while (not !stable) && !iters < max_iterations do
    incr iters;
    let before = Array.copy final in
    let lookup = function
      | Cfg.Local fid -> if fid < n then final.(fid) else None
      | Cfg.Ext s -> Some s
    in
    Array.iteri
      (fun i fn -> final.(i) <- Some (Solver.summarize ~lookup fn))
      funcs;
    stable :=
      Array.for_all2
        (fun a b ->
          match (a, b) with Some a, Some b -> Summary.equal a b | _ -> false)
        final before
  done;
  let final =
    Array.map (function Some s -> s | None -> assert false) final
  in
  (!cfile, final)

(* --- Frozen-exemption fixpoint ---------------------------------------------- *)

let frozen_exempt (cfile : Cfg.file) nfuncs =
  let sites = Array.make nfuncs [] in
  let succs = Array.make nfuncs [] in
  List.iter
    (fun (s : Cfg.site) ->
      if s.st_callee < nfuncs then begin
        sites.(s.st_callee) <- s :: sites.(s.st_callee);
        if s.st_caller < nfuncs then
          succs.(s.st_caller) <- s.st_callee :: succs.(s.st_caller)
      end)
    cfile.Cfg.sites;
  (* Exemption must be grounded: a function is exempt only when every way
     into its recursion component from the outside is a frozen site or an
     exempt caller. Working per strongly-connected component makes the
     recursion itself irrelevant — a recursive helper whose only external
     entries are frozen (collect_chain's walk) stays exempt because its
     self-site lies inside the component, while a top-level mutually
     recursive pair with no frozen entry has an entry-less component and
     can never vouch for itself (a per-function greatest fixpoint let such
     a cycle keep itself exempt and silenced every finding in it). *)
  let index = Array.make nfuncs (-1) in
  let low = Array.make nfuncs 0 in
  let on = Array.make nfuncs false in
  let stack = ref [] in
  let comp = Array.make nfuncs (-1) in
  let ncomp = ref 0 in
  let ctr = ref 0 in
  let rec strong v =
    index.(v) <- !ctr;
    low.(v) <- !ctr;
    incr ctr;
    stack := v :: !stack;
    on.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          if low.(w) < low.(v) then low.(v) <- low.(w)
        end
        else if on.(w) && index.(w) < low.(v) then low.(v) <- index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      let c = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | w :: rest ->
            stack := rest;
            on.(w) <- false;
            comp.(w) <- c;
            if w <> v then pop ()
        | [] -> ()
      in
      pop ()
    end
  in
  for v = 0 to nfuncs - 1 do
    if index.(v) < 0 then strong v
  done;
  (* entry sites: calls into a component from outside it *)
  let entries = Array.make (max 1 !ncomp) [] in
  Array.iteri
    (fun callee ss ->
      List.iter
        (fun (s : Cfg.site) ->
          if s.st_caller >= nfuncs || comp.(s.st_caller) <> comp.(callee) then
            entries.(comp.(callee)) <- s :: entries.(comp.(callee)))
        ss)
    sites;
  let cex = Array.map (fun e -> e <> []) entries in
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to !ncomp - 1 do
      if
        cex.(c)
        && not
             (List.for_all
                (fun (s : Cfg.site) ->
                  s.st_frozen
                  || (s.st_caller < nfuncs && cex.(comp.(s.st_caller))))
                entries.(c))
      then begin
        cex.(c) <- false;
        changed := true
      end
    done
  done;
  Array.init nfuncs (fun f -> cex.(comp.(f)))

(* --- The error pass ---------------------------------------------------------- *)

let check_file ~file ~checks ~ext ast =
  let cfile, summaries = converge ~ext ast in
  let funcs = Cfg.funcs_array cfile in
  let exempt = frozen_exempt cfile (Array.length funcs) in
  let lookup = function
    | Cfg.Local fid ->
        if fid < Array.length summaries then Some summaries.(fid) else None
    | Cfg.Ext s -> Some s
  in
  let seen = Hashtbl.create 32 in
  let findings = ref [] in
  let report rule loc msg =
    let line, col = line_col loc in
    if not (Hashtbl.mem seen (rule.Finding.id, line, col)) then begin
      Hashtbl.add seen (rule.Finding.id, line, col) ();
      findings := Finding.make ~col rule ~file ~line msg :: !findings
    end
  in
  Array.iteri
    (fun fid fn ->
      let fname = fn.Cfg.fn_name in
      let ins = Solver.solve ~lookup fn ~seed:Lattice.Neutral in
      let nodes = Cfg.nodes_of fn in
      (* F7 is per-function and survives even in frozen helpers *)
      if checks.c_quiescent && fn.Cfg.fn_sync then
        List.iter
          (fun loc ->
            report Finding.f7 loc
              (Printf.sprintf
                 "`%s` performs a declared quiescent read but also \
                  synchronizes (protect/CAS/retire/crit) — the \
                  no-concurrent-writers contract of Link.get_quiescent \
                  cannot hold; use a protected traversal"
                 fname))
          fn.Cfg.fn_quiescent;
      let fn_exempt = exempt.(fid) in
      Array.iteri
        (fun id n ->
          match Lattice.copy ins.(id) with
          | None -> ()
          | Some facts ->
              let quiet = fn_exempt || n.Cfg.n_frozen in
              let obs =
                {
                  Solver.ob_deref =
                    (fun _ f hint loc ->
                      if not quiet then
                        match f.Lattice.st with
                        | Lattice.Raw when checks.c_deref ->
                            report Finding.f1 loc
                              (Printf.sprintf
                                 "`%s` dereferences `%s` while it is still \
                                  raw on some path from the shared read: \
                                  validation (try_protect Ok / \
                                  protect_pessimistic true) must dominate \
                                  every field access"
                                 fname hint)
                        | Lattice.Protected when checks.c_deref ->
                            report Finding.f1 loc
                              (Printf.sprintf
                                 "`%s` dereferences `%s` under a protection \
                                  that was never validated: the hazard slot \
                                  is announced but the link may already \
                                  have moved"
                                 fname hint)
                        | Lattice.Retired when checks.c_retire ->
                            report Finding.f3 loc
                              (Printf.sprintf
                                 "`%s` dereferences `%s` after it was \
                                  retired on some path"
                                 fname hint)
                        | Lattice.Invalidated when checks.c_retire ->
                            report Finding.f3 loc
                              (Printf.sprintf
                                 "`%s` dereferences `%s` after it was \
                                  invalidated on some path"
                                 fname hint)
                        | Lattice.Handed_off when checks.c_handoff ->
                            report Finding.f4 loc
                              (Printf.sprintf
                                 "`%s` uses a retire bag after a successful \
                                  Collector.offer: the ring owns it now — \
                                  take a fresh bag before touching `%s`"
                                 fname hint)
                        | _ -> ());
                  ob_use =
                    (fun _ f loc ->
                      if (not quiet) && checks.c_handoff then
                        match f.Lattice.st with
                        | Lattice.Handed_off ->
                            report Finding.f4 loc
                              (Printf.sprintf
                                 "`%s` passes a handed-off retire bag to \
                                  another operation after Collector.offer \
                                  succeeded"
                                 fname)
                        | _ -> ());
                  ob_retire =
                    (fun _ f loc ->
                      if (not quiet) && checks.c_retire then
                        if f.Lattice.published then
                          report Finding.f3 loc
                            (Printf.sprintf
                               "`%s` retires a node that was published \
                                (CASed/stored into shared state) on some \
                                path: only unlinked nodes may be retired"
                               fname)
                        else if f.Lattice.st = Lattice.Retired then
                          report Finding.f3 loc
                            (Printf.sprintf
                               "`%s` retires a node that is already retired \
                                on some path" fname));
                  ob_ret =
                    (fun _ f loc ->
                      if (not quiet) && checks.c_deref then
                        match f.Lattice.st with
                        | Lattice.Protected ->
                            report Finding.f2 loc
                              (Printf.sprintf
                                 "`%s` returns a merely-Protected pointer: \
                                  the protection window ends with this \
                                  function, so validation must happen \
                                  before the value escapes"
                                 fname)
                        | _ -> ());
                  ob_store =
                    (fun _ f loc ->
                      if (not quiet) && checks.c_deref then
                        match f.Lattice.st with
                        | Lattice.Protected ->
                            report Finding.f2 loc
                              (Printf.sprintf
                                 "`%s` stores a merely-Protected pointer \
                                  into a mutable field, letting it outlive \
                                  its protection window unvalidated"
                                 fname)
                        | _ -> ());
                }
              in
              List.iter
                (fun ev ->
                  (if checks.c_crit && n.Cfg.n_crit then
                     match ev with
                     | Cfg.Blocking (op, loc) ->
                         report Finding.f5 loc
                           (Printf.sprintf
                              "`%s` calls blocking `%s` inside a critical \
                               section: a stalled domain pins the epoch and \
                               stops every domain's reclamation"
                              fname op)
                     | Cfg.Call { callee; loc; _ } -> (
                         match lookup callee with
                         | Some (s : Summary.fn) -> (
                             match s.Summary.s_blocks with
                             | Some op ->
                                 report Finding.f5 loc
                                   (Printf.sprintf
                                      "`%s` calls `%s`, which reaches \
                                       blocking `%s`, inside a critical \
                                       section"
                                      fname s.Summary.s_name op)
                             | None -> ())
                         | None -> ())
                     | _ -> ());
                  Solver.apply ~lookup ~obs facts ev)
                (List.rev n.Cfg.n_evs))
        nodes)
    funcs;
  let exports =
    Array.to_list funcs
    |> List.filter_map (fun fn ->
           if fn.Cfg.fn_toplevel then
             Some (Solver.summarize ~lookup fn)
           else None)
  in
  (List.rev !findings, exports)

(* --- F6: counter read order (syntactic) -------------------------------------- *)

(* The PR 2 stats bug shape: both operands of one subtraction sweep
   monotonic counters, so OCaml's right-to-left operand evaluation sweeps
   the decreasing side first and a preempted reader overshoots. The fix —
   and the good twin — binds the increasing side with a [let] first. *)

let counter_readers =
  [ "retired_total"; "allocated"; "freed"; "sum"; "unreclaimed"; "live" ]

let reads_counter e =
  Rules.contains_app (fun _ last -> List.mem last counter_readers) e

let f6_check ~file ast =
  let hits = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, [ (_, a); (_, b) ])
            when Rules.app_head_name f = Some (None, "-")
                 && reads_counter a && reads_counter b ->
              let line, col = line_col e.pexp_loc in
              hits :=
                Finding.make ~col Finding.f6 ~file ~line
                  "both operands of this subtraction sweep monotonic \
                   counters: OCaml evaluates operands right-to-left, so the \
                   decreasing side is swept first and a reader preempted \
                   between sweeps overshoots by the backlog; bind the \
                   increasing side with a `let` before subtracting"
                :: !hits
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (it.structure_item it) ast;
  List.rev !hits

(* --- Entry point -------------------------------------------------------------- *)

let run ~file ~checks ~ext ast =
  let flow, exports =
    if
      checks.c_deref || checks.c_retire || checks.c_handoff || checks.c_crit
      || checks.c_quiescent
    then check_file ~file ~checks ~ext ast
    else ([], [])
  in
  let counters = if checks.c_counter then f6_check ~file ast else [] in
  (flow @ counters, exports)
