(* Per-function protection-effect summaries (DESIGN.md §15).

   A summary is the Raw-seeded abstract of one function: every positional
   parameter starts as a [Raw] object, the body is solved, and the summary
   records what the function does to each parameter and what it returns.
   Callers apply summaries instead of inlining, so recursion (including
   mutual recursion between local helpers) converges by iterating the
   build-and-summarize pass over a file until summaries stop changing.

   Summaries of top-level functions are exported as a JSON sidecar
   ([--summaries-out]) and imported ([--summaries-in]) so a later run can
   resolve qualified cross-file calls (module aliases like
   [module C = Ds_common.Make (S)] map the qualifier to a file stem). *)

type slot =
  | Pass of int
      (** the slot is exactly parameter [i] at every return site: callers
          substitute the argument's own objects instead of a
          context-insensitive constant state. This is what lets a search
          helper return its validated cursor through a variant payload and
          keep the caller's deref legal. *)
  | St of Lattice.state

type fn = {
  s_name : string;
  s_arity : int;
  s_param_exit : Lattice.state array;
      (** exit state of each Raw-seeded param; [Raw] means untouched *)
  s_derefs_raw : bool array;
      (** param flows to a deref while still Raw inside the callee *)
  s_retires : bool array;  (** param is retired by the callee *)
  s_ret_slots : slot array;
      (** per-slot return shapes, joined across return sites; a slot is a
          top-level tuple/constructor-argument position of the returned
          value, so a caller destructuring the result keeps per-component
          precision ([St Bot] = nothing tracked flows out of that slot) *)
  s_ret_whole : slot;  (** joined whole-value return shape *)
  s_blocks : string option;
      (** a blocking operation the callee reaches outside its own crit
          section (so calling it inside one is a hygiene error) *)
  s_enters_crit : bool;
  s_quiescent : bool;  (** performs a declared quiescent read *)
}

let bottom ~name ~arity =
  {
    s_name = name;
    s_arity = arity;
    s_param_exit = Array.make arity Lattice.Raw;
    s_derefs_raw = Array.make arity false;
    s_retires = Array.make arity false;
    s_ret_slots = [||];
    s_ret_whole = St Lattice.Bot;
    s_blocks = None;
    s_enters_crit = false;
    s_quiescent = false;
  }

let equal a b =
  a.s_name = b.s_name && a.s_arity = b.s_arity
  && a.s_param_exit = b.s_param_exit
  && a.s_derefs_raw = b.s_derefs_raw
  && a.s_retires = b.s_retires
  && a.s_ret_slots = b.s_ret_slots
  && a.s_ret_whole = b.s_ret_whole
  && a.s_blocks = b.s_blocks
  && a.s_enters_crit = b.s_enters_crit
  && a.s_quiescent = b.s_quiescent

(* --- Sidecar table ------------------------------------------------------- *)

(* Keyed ["stem.name"] where stem is the defining file's basename without
   extension ("ds_common"), so a caller that aliases the module resolves
   through the stem regardless of functor application. *)
type table = (string, fn) Hashtbl.t

let key ~stem name = stem ^ "." ^ name
let empty_table () : table = Hashtbl.create 64

let lookup (t : table) ~stem name =
  Hashtbl.find_opt t (key ~stem name)

let add (t : table) ~stem (s : fn) = Hashtbl.replace t (key ~stem s.s_name) s

(* --- JSON export --------------------------------------------------------- *)

let state_to_json st = "\"" ^ Lattice.to_string st ^ "\""

(* A passthrough slot serializes as the bare parameter index, a state slot
   as its state string — distinguishable on parse by JSON type. *)
let slot_to_json = function
  | Pass i -> string_of_int i
  | St st -> state_to_json st

let fn_to_json ~stem s =
  let arr f xs =
    "[" ^ String.concat "," (Array.to_list (Array.map f xs)) ^ "]"
  in
  Printf.sprintf
    "{\"key\":\"%s\",\"arity\":%d,\"param_exit\":%s,\"derefs_raw\":%s,\
     \"retires\":%s,\"ret_slots\":%s,\"ret_whole\":%s,\"blocks\":%s,\
     \"enters_crit\":%b,\"quiescent\":%b}"
    (Finding.json_escape (key ~stem s.s_name))
    s.s_arity
    (arr state_to_json s.s_param_exit)
    (arr string_of_bool s.s_derefs_raw)
    (arr string_of_bool s.s_retires)
    (arr slot_to_json s.s_ret_slots)
    (slot_to_json s.s_ret_whole)
    (match s.s_blocks with
    | None -> "null"
    | Some b -> "\"" ^ Finding.json_escape b ^ "\"")
    s.s_enters_crit s.s_quiescent

let table_to_json (t : table) =
  let entries =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, s) ->
           let stem, name =
             match String.index_opt k '.' with
             | Some i ->
                 (String.sub k 0 i, String.sub k (i + 1) (String.length k - i - 1))
             | None -> ("", k)
           in
           fn_to_json ~stem { s with s_name = name })
  in
  "[" ^ String.concat ",\n " entries ^ "]\n"

(* --- JSON import --------------------------------------------------------- *)

(* Minimal recursive-descent parser for exactly the subset emitted above:
   arrays, objects, strings (with the escapes json_escape produces),
   numbers, booleans, null. *)

type json =
  | J_str of string
  | J_num of int
  | J_bool of bool
  | J_null
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad_json (Printf.sprintf "expected '%c' at %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Bad_json "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'u' ->
              (* \uXXXX: json_escape only emits these for control chars *)
              let hex = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | Some c -> Buffer.add_char buf c
          | None -> raise (Bad_json "dangling escape"));
          advance ();
          go ()
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> raise (Bad_json "array")
          in
          J_arr (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> raise (Bad_json "object")
          in
          J_obj (fields [])
    | Some 't' ->
        pos := !pos + 4;
        J_bool true
    | Some 'f' ->
        pos := !pos + 5;
        J_bool false
    | Some 'n' ->
        pos := !pos + 4;
        J_null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        let rec num () =
          match peek () with
          | Some ('-' | '0' .. '9') ->
              advance ();
              num ()
          | _ -> ()
        in
        num ();
        J_num (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Bad_json "value")
  in
  let v = parse_value () in
  skip_ws ();
  v

let state_of_string st =
  match List.find_opt (fun x -> Lattice.to_string x = st) Lattice.all with
  | Some x -> x
  | None -> raise (Bad_json ("unknown state " ^ st))

let table_of_json text : table =
  let t = empty_table () in
  let field obj k =
    match List.assoc_opt k obj with
    | Some v -> v
    | None -> raise (Bad_json ("missing field " ^ k))
  in
  let states = function
    | J_arr xs ->
        Array.of_list
          (List.map (function J_str s -> state_of_string s | _ -> raise (Bad_json "state")) xs)
    | _ -> raise (Bad_json "state array")
  in
  let slots = function
    | J_arr xs ->
        Array.of_list
          (List.map
             (function
               | J_str s -> St (state_of_string s)
               | J_num i -> Pass i
               | _ -> raise (Bad_json "slot"))
             xs)
    | _ -> raise (Bad_json "slot array")
  in
  let bools = function
    | J_arr xs ->
        Array.of_list
          (List.map (function J_bool b -> b | _ -> raise (Bad_json "bool")) xs)
    | _ -> raise (Bad_json "bool array")
  in
  (match parse_json text with
  | J_arr entries ->
      List.iter
        (function
          | J_obj o ->
              let k = match field o "key" with J_str s -> s | _ -> raise (Bad_json "key") in
              (* the key is "stem.name"; store the bare name so an imported
                 entry is indistinguishable from a locally built one *)
              let name =
                match String.index_opt k '.' with
                | Some i -> String.sub k (i + 1) (String.length k - i - 1)
                | None -> k
              in
              let s =
                {
                  s_name = name;
                  s_arity = (match field o "arity" with J_num i -> i | _ -> 0);
                  s_param_exit = states (field o "param_exit");
                  s_derefs_raw = bools (field o "derefs_raw");
                  s_retires = bools (field o "retires");
                  s_ret_slots = slots (field o "ret_slots");
                  s_ret_whole =
                    (match field o "ret_whole" with
                    | J_str s -> St (state_of_string s)
                    | J_num i -> Pass i
                    | _ -> St Lattice.Bot);
                  s_blocks =
                    (match field o "blocks" with
                    | J_str s -> Some s
                    | _ -> None);
                  s_enters_crit =
                    (match field o "enters_crit" with J_bool b -> b | _ -> false);
                  s_quiescent =
                    (match field o "quiescent" with J_bool b -> b | _ -> false);
                }
              in
              Hashtbl.replace t k s
          | _ -> raise (Bad_json "entry"))
        entries
  | _ -> raise (Bad_json "top-level array"));
  t
