(* The rule set. Every rule is a cheap syntactic under-approximation of an
   SMR obligation (see DESIGN.md §10): it inspects the Parsetree only — no
   typing, no cross-file resolution — so it can run on every build with zero
   schedules executed. False negatives are accepted by design; false
   positives are suppressed with an auditable pragma. *)

open Parsetree

(* --- Longident / expression helpers -------------------------------------- *)

let rec lident_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> lident_parts p @ [ s ]
  | Longident.Lapply (_, p) -> lident_parts p

(* Last one / two components of the applied function's path, if the
   application head is an identifier or a record-field projection (method
   style [h.invalidate_all ()]). *)
let app_head_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (lident_parts txt) with
      | last :: qual :: _ -> Some (Some qual, last)
      | [ last ] -> Some (None, last)
      | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (lident_parts txt) with
      | last :: _ -> Some (None, last)
      | [] -> None)
  | _ -> None

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum
let cnum_of_loc (loc : Location.t) = loc.loc_start.pos_cnum

(* Iterate an expression with [f] called on every sub-expression. *)
let iter_expr f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e

(* All application sites within [e] whose head matches [pred qual last]. *)
let app_sites pred e =
  let acc = ref [] in
  iter_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, _) -> (
          match app_head_name f with
          | Some (qual, last) when pred qual last -> acc := e :: !acc
          | _ -> ())
      | _ -> ())
    e;
  List.rev !acc

let contains_app pred e = app_sites pred e <> []

(* --- Top-level function enumeration -------------------------------------- *)

(* Top-level [let]-bound functions of a file, recursing into (possibly
   functor) module bodies: the granularity at which R1/R2 reason. Nested
   [let ... in] helpers are part of their enclosing top-level binding. *)
type func = { f_name : string; f_body : expression; f_loc : Location.t }

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_function e
  | _ -> false

let rec funcs_of_module_expr me acc =
  match me.pmod_desc with
  | Pmod_structure str -> funcs_of_structure str acc
  | Pmod_functor (_, body) -> funcs_of_module_expr body acc
  | Pmod_constraint (me, _) -> funcs_of_module_expr me acc
  | _ -> acc

and funcs_of_structure str acc =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when is_function vb.pvb_expr ->
                  { f_name = txt; f_body = vb.pvb_expr; f_loc = vb.pvb_loc }
                  :: acc
              | _ -> acc)
            acc vbs
      | Pstr_module mb -> funcs_of_module_expr mb.pmb_expr acc
      | Pstr_recmodule mbs ->
          List.fold_left (fun acc mb -> funcs_of_module_expr mb.pmb_expr acc) acc mbs
      | _ -> acc)
    acc str

let funcs_of_file ast = List.rev (funcs_of_structure ast [])

(* --- R1: raw-link-deref --------------------------------------------------- *)

(* In [lib/ds], a top-level function that (a) performs a raw shared read
   ([Link.get] / [Atomic.get]) and (b) dereferences a field of a value
   *derived from* that read, must (c) establish a validated protection —
   call [try_protect], [protect_pessimistic] or [protect], directly or
   through another function of the same module (local call graph,
   over-approximated by mere mention). Derivation is a function-local taint
   fixpoint over let- and match-bindings, so a function that raw-reads a
   link only to CAS it back (Treiber push) stays silent, while one that
   walks into the fetched node fires. Quiescent helpers that knowingly skip
   protection carry a pragma. *)

let protect_names = [ "try_protect"; "protect_pessimistic"; "protect" ]

let is_raw_read qual last =
  last = "get" && (qual = Some "Link" || qual = Some "Atomic")

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !acc

(* Does [e] produce a raw-read-derived value: contain a raw read itself, or
   mention an already-tainted variable? *)
let expr_is_tainted tainted e =
  contains_app is_raw_read e
  ||
  let found = ref false in
  iter_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident v; _ } when Hashtbl.mem tainted v ->
          found := true
      | _ -> ())
    e;
  !found

(* Positional parameter patterns of a lambda chain; a bare [function] is a
   one-parameter lambda binding its case patterns. *)
let rec lambda_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, p, body) -> pattern_vars p :: lambda_params body
  | Pexp_newtype (_, body) -> lambda_params body
  | Pexp_function cases -> [ List.concat_map (fun c -> pattern_vars c.pc_lhs) cases ]
  | _ -> []

(* First [v.field] read where [v] is raw-read-derived, as (line, var). *)
let first_tainted_deref body =
  let tainted = Hashtbl.create 8 in
  let taint v changed =
    if not (Hashtbl.mem tainted v) then begin
      Hashtbl.add tainted v ();
      changed := true
    end
  in
  (* Locally-bound helper functions, so taint can flow from a call argument
     into the callee's parameter (to_list-style [walk acc (Link.get ...)]). *)
  let fn_params = Hashtbl.create 8 in
  iter_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match (vb.pvb_pat.ppat_desc, lambda_params vb.pvb_expr) with
              | Ppat_var { txt; _ }, (_ :: _ as params) ->
                  Hashtbl.replace fn_params txt params
              | _ -> ())
            vbs
      | _ -> ())
    body;
  let changed = ref true in
  while !changed do
    changed := false;
    iter_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                if expr_is_tainted tainted vb.pvb_expr then
                  List.iter
                    (fun v -> taint v changed)
                    (pattern_vars vb.pvb_pat))
              vbs
        | Pexp_match (scrut, cases) when expr_is_tainted tainted scrut ->
            List.iter
              (fun c ->
                List.iter (fun v -> taint v changed) (pattern_vars c.pc_lhs))
              cases
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt = Longident.Lident fn; _ }; _ }, args)
          when Hashtbl.mem fn_params fn ->
            let params = Hashtbl.find fn_params fn in
            List.iteri
              (fun i (_, a) ->
                if expr_is_tainted tainted a then
                  match List.nth_opt params i with
                  | Some vs -> List.iter (fun v -> taint v changed) vs
                  | None -> ())
              args
        | _ -> ())
      body
  done;
  let hit = ref None in
  iter_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_field
          ({ pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }, _)
        when Hashtbl.mem tainted v -> (
          let line = line_of_loc e.pexp_loc in
          match !hit with
          | Some (l, _) when l <= line -> ()
          | _ -> hit := Some (line, v))
      | _ -> ())
    body;
  !hit

let mentions_local_names names e =
  let found = ref [] in
  iter_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ } when List.mem n names ->
          if not (List.mem n !found) then found := n :: !found
      | _ -> ())
    e;
  !found

let r1_check ~file ast =
  let funcs = funcs_of_file ast in
  let names = List.map (fun f -> f.f_name) funcs in
  let direct_protect f =
    contains_app (fun _ last -> List.mem last protect_names) f.f_body
  in
  (* Fixpoint: protected if it calls (or even mentions) a protected local. *)
  let protected = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace protected f.f_name (direct_protect f)) funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if not (Hashtbl.find protected f.f_name) then
          let mentioned = mentions_local_names names f.f_body in
          if
            List.exists
              (fun n -> try Hashtbl.find protected n with Not_found -> false)
              mentioned
          then begin
            Hashtbl.replace protected f.f_name true;
            changed := true
          end)
      funcs
  done;
  List.filter_map
    (fun f ->
      if Hashtbl.find protected f.f_name then None
      else if not (contains_app is_raw_read f.f_body) then None
      else
        match first_tainted_deref f.f_body with
        | None -> None
        | Some (line, var) ->
            Some
              (Finding.make Finding.r1 ~file ~line
                 (Printf.sprintf
                    "`%s` dereferences `%s`, derived from a raw \
                     Link.get/Atomic.get, without validating a protection \
                     (Ds_common.try_protect / protect_pessimistic); the \
                     target may be freed concurrently"
                    f.f_name var)))
    funcs

(* --- R2: invalidate-before-free ------------------------------------------ *)

(* In scheme code, within one top-level function that both invalidates and
   frees, every free-family call site must come after the invalidation call
   sites it is ordered with: a free that syntactically precedes an
   invalidation inverts HP++'s DoInvalidation-before-Reclaim order (paper
   Algorithm 3; the trace checker's invalidate-before-free rule is the
   dynamic twin of this). *)

let free_names = [ "free_mark"; "free_mark_cascade"; "reclaim"; "collect" ]
let invalidate_names = [ "do_invalidation"; "invalidate_all"; "invalidate"; "mark_invalid" ]

let r2_check ~file ast =
  let funcs = funcs_of_file ast in
  List.concat_map
    (fun f ->
      let frees = app_sites (fun _ l -> List.mem l free_names) f.f_body in
      let invs = app_sites (fun _ l -> List.mem l invalidate_names) f.f_body in
      match (frees, invs) with
      | [], _ | _, [] -> []
      | _ ->
          let last_inv =
            List.fold_left
              (fun acc e -> max acc (cnum_of_loc e.pexp_loc))
              min_int invs
          in
          List.filter_map
            (fun e ->
              if cnum_of_loc e.pexp_loc < last_inv then
                Some
                  (Finding.make Finding.r2 ~file
                     ~line:(line_of_loc e.pexp_loc)
                     (Printf.sprintf
                        "`%s` reaches a free/reclaim call before the batch \
                         invalidation later in the same function; \
                         DoInvalidation must precede any reclamation of the \
                         unlinked batch (paper Algorithm 3)"
                        f.f_name))
              else None)
            frees)
    funcs

(* --- R3: shared-mutable-field --------------------------------------------- *)

(* A record type is considered *shared across domains* when it directly
   carries an [Atomic.t] field, or is reachable from such a type through
   field types (list/array/option/Atomic containers included — any mention
   of the type constructor counts). Plain [mutable] fields in a shared type
   are unsynchronized writes under the OCaml memory model: racy reads are
   allowed to return outdated values and the race itself is UB-free but
   still a correctness bug. Per-handle types (never reachable from shared
   state) are exempt — that is the handle/shared split every scheme in this
   tree follows. *)

type record_decl = {
  r_name : string;
  r_fields : (string * bool * core_type * Location.t) list;
      (** name, mutable, type, loc *)
}

let rec core_type_constrs ct acc =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
      List.fold_left (fun acc a -> core_type_constrs a acc)
        (lident_parts txt :: acc) args
  | Ptyp_arrow (_, a, b) -> core_type_constrs b (core_type_constrs a acc)
  | Ptyp_tuple ts -> List.fold_left (fun acc a -> core_type_constrs a acc) acc ts
  | Ptyp_poly (_, t) -> core_type_constrs t acc
  | Ptyp_alias (t, _) -> core_type_constrs t acc
  | _ -> acc

let rec records_of_module_expr me acc =
  match me.pmod_desc with
  | Pmod_structure str -> records_of_structure str acc
  | Pmod_functor (_, body) -> records_of_module_expr body acc
  | Pmod_constraint (me, _) -> records_of_module_expr me acc
  | _ -> acc

and records_of_structure str acc =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.fold_left
            (fun acc d ->
              match d.ptype_kind with
              | Ptype_record labels ->
                  {
                    r_name = d.ptype_name.txt;
                    r_fields =
                      List.map
                        (fun l ->
                          ( l.pld_name.txt,
                            l.pld_mutable = Asttypes.Mutable,
                            l.pld_type,
                            l.pld_loc ))
                        labels;
                  }
                  :: acc
              | _ -> acc)
            acc decls
      | Pstr_module mb -> records_of_module_expr mb.pmb_expr acc
      | Pstr_recmodule mbs ->
          List.fold_left (fun acc mb -> records_of_module_expr mb.pmb_expr acc) acc mbs
      | _ -> acc)
    acc str

let type_is_atomic parts =
  match List.rev parts with
  | "t" :: "Atomic" :: _ -> true
  | _ -> false

let r3_check ~file ast =
  let records = List.rev (records_of_structure ast []) in
  let field_constrs (_, _, ct, _) = core_type_constrs ct [] in
  let has_atomic_field r =
    List.exists (fun f -> List.exists type_is_atomic (field_constrs f)) r.r_fields
  in
  let shared = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace shared r.r_name (has_atomic_field r)) records;
  let mentions r name =
    List.exists
      (fun f -> List.exists (fun parts -> parts = [ name ]) (field_constrs f))
      r.r_fields
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if Hashtbl.find shared r.r_name then
          List.iter
            (fun r' ->
              if (not (Hashtbl.find shared r'.r_name)) && mentions r r'.r_name
              then begin
                Hashtbl.replace shared r'.r_name true;
                changed := true
              end)
            records)
      records
  done;
  List.concat_map
    (fun r ->
      if not (Hashtbl.find shared r.r_name) then []
      else
        List.filter_map
          (fun (fname, mut, _, loc) ->
            if mut then
              Some
                (Finding.make Finding.r3 ~file ~line:(line_of_loc loc)
                   (Printf.sprintf
                      "field `%s` of type `%s` is plain mutable but the type \
                       is shared across domains (directly holds or is \
                       reachable from Atomic state): concurrent access is a \
                       data race under the OCaml memory model — make it \
                       Atomic.t or move it into per-handle state"
                      fname r.r_name))
            else None)
          r.r_fields)
    records

(* --- R4: unguarded-trace-alloc -------------------------------------------- *)

(* PR 3's budget: [Trace.emit] must cost one load and a branch when tracing
   is disabled, and allocate nothing either way. An emit site inside an
   [if Trace.enabled () then ...] guard may compute what it likes; an
   unguarded site must pass arguments that are syntactically non-allocating
   (constants, variables, field reads, integer arithmetic, and a short
   whitelist of known scalar accessors). *)

let nonalloc_ops =
  [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "~-"; "="; "<>"; "<"; ">"; "<="; ">="; "&&"; "||"; "not" ]

let nonalloc_accessors =
  [ "uid"; "uid_of_hdr"; "tag"; "length"; "scan_size"; "get"; "op_index";
    "kind_code" ]

let is_enabled_call qual last = last = "enabled" && qual = Some "Trace"

let cond_mentions_enabled e = contains_app is_enabled_call e

let is_not_of_enabled e =
  match e.pexp_desc with
  | Pexp_apply (f, [ (_, arg) ]) -> (
      match app_head_name f with
      | Some (_, "not") -> cond_mentions_enabled arg
      | _ -> false)
  | _ -> false

(* Character ranges of expressions that only execute with tracing enabled. *)
let guarded_ranges ast =
  let ranges = ref [] in
  let add (e : expression) =
    ranges := (cnum_of_loc e.pexp_loc, e.pexp_loc.loc_end.pos_cnum) :: !ranges
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ifthenelse (cond, then_, else_) ->
              if is_not_of_enabled cond then
                Option.iter add else_
              else if cond_mentions_enabled cond then add then_
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (it.structure_item it) ast;
  !ranges

let rec arg_is_simple e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_ident _ -> true
  | Pexp_field (e, _) -> arg_is_simple e
  | Pexp_construct (_, None) -> true
  | Pexp_constraint (e, _) -> arg_is_simple e
  | Pexp_ifthenelse (c, t, Some e) ->
      arg_is_simple c && arg_is_simple t && arg_is_simple e
  | Pexp_ifthenelse (c, t, None) -> arg_is_simple c && arg_is_simple t
  | Pexp_match (s, cases) ->
      arg_is_simple s
      && List.for_all
           (fun c ->
             Option.fold ~none:true ~some:arg_is_simple c.pc_guard
             && arg_is_simple c.pc_rhs)
           cases
  | Pexp_apply (f, args) -> (
      match app_head_name f with
      | Some (_, n) when List.mem n nonalloc_ops || List.mem n nonalloc_accessors
        ->
          List.for_all (fun (_, a) -> arg_is_simple a) args
      | _ -> false)
  | _ -> false

let is_emit qual last = (last = "emit" || last = "emit_at") && qual = Some "Trace"

let r4_check ~file ast =
  let ranges = guarded_ranges ast in
  let in_guard cnum = List.exists (fun (a, b) -> cnum >= a && cnum <= b) ranges in
  let sites = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match app_head_name f with
              | Some (qual, last) when is_emit qual last ->
                  sites := (e, args) :: !sites
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (it.structure_item it) ast;
  List.filter_map
    (fun ((e : expression), args) ->
      if in_guard (cnum_of_loc e.pexp_loc) then None
      else if List.for_all (fun (_, a) -> arg_is_simple a) args then None
      else
        Some
          (Finding.make Finding.r4 ~file ~line:(line_of_loc e.pexp_loc)
             "Trace.emit argument may allocate (or run arbitrary code) \
              outside an `if Trace.enabled ()` guard, breaking the tracer's \
              zero-cost-when-disabled budget: guard the call or reduce the \
              argument to a field read / whitelisted scalar accessor"))
    (List.rev !sites)

(* --- R5: missing-mli ------------------------------------------------------- *)

let r5_check ~file ~mli_exists () =
  if mli_exists then []
  else
    [
      Finding.make Finding.r5 ~file ~line:1
        "module has no .mli: every helper, internal type and representation \
         detail is exported; add an interface (or pragma-suppress with a \
         reason why full exposure is intended)";
    ]
