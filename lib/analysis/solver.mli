(** Worklist fixpoint over a function CFG, plus the shared event transfer
    function. Two consumers: summarization (Raw-seeded parameters) and the
    error pass in {!Rules_flow} (Neutral-seeded). *)

type obs = {
  ob_deref : int -> Lattice.fact -> string -> Location.t -> unit;
  ob_use : int -> Lattice.fact -> Location.t -> unit;
  ob_retire : int -> Lattice.fact -> Location.t -> unit;
      (** observed before the retire transfer, so the published bit and
          the prior state are still visible *)
  ob_ret : int -> Lattice.fact -> Location.t -> unit;
  ob_store : int -> Lattice.fact -> Location.t -> unit;
}

val silent : obs

val apply :
  lookup:(Cfg.callee -> Summary.fn option) ->
  obs:obs ->
  Lattice.fact array ->
  Cfg.ev ->
  unit
(** Apply one event to a fact array in place, firing observer callbacks at
    deref/use/retire/return/store sites. *)

val solve :
  lookup:(Cfg.callee -> Summary.fn option) ->
  Cfg.func ->
  seed:Lattice.state ->
  Lattice.t array
(** Per-node in-states at fixpoint; entry seeds every parameter object
    with [seed]. *)

val replay :
  lookup:(Cfg.callee -> Summary.fn option) ->
  obs:obs ->
  Cfg.func ->
  Lattice.t array ->
  unit
(** Replay every reachable node's events against its solved in-state with
    a live observer. *)

val summarize :
  lookup:(Cfg.callee -> Summary.fn option) -> Cfg.func -> Summary.fn
(** Raw-seeded summary of one function under the current summary table. *)
