(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** The benchmark matrix: every data structure of the paper's evaluation
    instantiated with every applicable reclamation scheme. Invalid cells
    (HHSList/NMTree with HP, EFRBTree with RC) are exactly the paper's "not
    applicable" entries and are absent from {!all}. *)

open Bench_types

type instance = {
  ds : string;
  scheme : string;
  run : ?config:Smr.Smr_intf.config -> cfg -> result;
}

let schemes_order = [ "NR"; "EBR"; "PEBR"; "HP"; "HP++"; "RC" ]

let ds_order =
  [ "HMList"; "HHSList"; "HashMap"; "SkipList"; "NMTree"; "EFRBTree"; "Bonsai" ]

let category = function
  | "HMList" | "HHSList" -> `List
  | _ -> `Other

(* Mechanical instantiations. *)

module Hm_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Hmlist.Make (Nr)))

module Hm_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Hmlist.Make (Ebr)))

module Hm_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Hmlist.Make (Pebr)))

module Hm_hp = Runner.Make (Runner.Mono (Hp) (Smr_ds.Hmlist.Make (Hp)))

module Hm_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Hmlist.Make (Hp_plus)))

module Hm_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Hmlist.Make (Rc)))

module Hhs_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Hhslist.Make (Nr)))

module Hhs_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Hhslist.Make (Ebr)))

module Hhs_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Hhslist.Make (Pebr)))

module Hhs_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)))

module Hhs_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Hhslist.Make (Rc)))

module Map_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Hashmap.Make (Nr)))

module Map_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Hashmap.Make (Ebr)))

module Map_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Hashmap.Make (Pebr)))

module Map_hp = Runner.Make (Runner.Mono (Hp) (Smr_ds.Hashmap.Make (Hp)))

module Map_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Hashmap.Make (Hp_plus)))

module Map_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Hashmap.Make (Rc)))

module Sk_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Skiplist.Make (Nr)))

module Sk_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Skiplist.Make (Ebr)))

module Sk_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Skiplist.Make (Pebr)))

module Sk_hp = Runner.Make (Runner.Mono (Hp) (Smr_ds.Skiplist.Make (Hp)))

module Sk_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Skiplist.Make (Hp_plus)))

module Sk_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Skiplist.Make (Rc)))

module Nm_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Nmtree.Make (Nr)))

module Nm_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Nmtree.Make (Ebr)))

module Nm_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Nmtree.Make (Pebr)))

module Nm_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Nmtree.Make (Hp_plus)))

module Nm_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Nmtree.Make (Rc)))

module Ef_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Efrbtree.Make (Nr)))

module Ef_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Efrbtree.Make (Ebr)))

module Ef_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Efrbtree.Make (Pebr)))

module Ef_hp = Runner.Make (Runner.Mono (Hp) (Smr_ds.Efrbtree.Make (Hp)))

module Ef_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Efrbtree.Make (Hp_plus)))

module Bo_nr = Runner.Make (Runner.Mono (Nr) (Smr_ds.Bonsai.Make (Nr)))

module Bo_ebr = Runner.Make (Runner.Mono (Ebr) (Smr_ds.Bonsai.Make (Ebr)))

module Bo_pebr = Runner.Make (Runner.Mono (Pebr) (Smr_ds.Bonsai.Make (Pebr)))

module Bo_hp = Runner.Make (Runner.Mono (Hp) (Smr_ds.Bonsai.Make (Hp)))

module Bo_hpp = Runner.Make (Runner.Mono (Hp_plus) (Smr_ds.Bonsai.Make (Hp_plus)))

module Bo_rc = Runner.Make (Runner.Mono (Rc) (Smr_ds.Bonsai.Make (Rc)))

let all : instance list =
  [
    { ds = "HMList"; scheme = "NR"; run = Hm_nr.run };
    { ds = "HMList"; scheme = "EBR"; run = Hm_ebr.run };
    { ds = "HMList"; scheme = "PEBR"; run = Hm_pebr.run };
    { ds = "HMList"; scheme = "HP"; run = Hm_hp.run };
    { ds = "HMList"; scheme = "HP++"; run = Hm_hpp.run };
    { ds = "HMList"; scheme = "RC"; run = Hm_rc.run };
    { ds = "HHSList"; scheme = "NR"; run = Hhs_nr.run };
    { ds = "HHSList"; scheme = "EBR"; run = Hhs_ebr.run };
    { ds = "HHSList"; scheme = "PEBR"; run = Hhs_pebr.run };
    { ds = "HHSList"; scheme = "HP++"; run = Hhs_hpp.run };
    { ds = "HHSList"; scheme = "RC"; run = Hhs_rc.run };
    { ds = "HashMap"; scheme = "NR"; run = Map_nr.run };
    { ds = "HashMap"; scheme = "EBR"; run = Map_ebr.run };
    { ds = "HashMap"; scheme = "PEBR"; run = Map_pebr.run };
    { ds = "HashMap"; scheme = "HP"; run = Map_hp.run };
    { ds = "HashMap"; scheme = "HP++"; run = Map_hpp.run };
    { ds = "HashMap"; scheme = "RC"; run = Map_rc.run };
    { ds = "SkipList"; scheme = "NR"; run = Sk_nr.run };
    { ds = "SkipList"; scheme = "EBR"; run = Sk_ebr.run };
    { ds = "SkipList"; scheme = "PEBR"; run = Sk_pebr.run };
    { ds = "SkipList"; scheme = "HP"; run = Sk_hp.run };
    { ds = "SkipList"; scheme = "HP++"; run = Sk_hpp.run };
    { ds = "SkipList"; scheme = "RC"; run = Sk_rc.run };
    { ds = "NMTree"; scheme = "NR"; run = Nm_nr.run };
    { ds = "NMTree"; scheme = "EBR"; run = Nm_ebr.run };
    { ds = "NMTree"; scheme = "PEBR"; run = Nm_pebr.run };
    { ds = "NMTree"; scheme = "HP++"; run = Nm_hpp.run };
    { ds = "NMTree"; scheme = "RC"; run = Nm_rc.run };
    { ds = "EFRBTree"; scheme = "NR"; run = Ef_nr.run };
    { ds = "EFRBTree"; scheme = "EBR"; run = Ef_ebr.run };
    { ds = "EFRBTree"; scheme = "PEBR"; run = Ef_pebr.run };
    { ds = "EFRBTree"; scheme = "HP"; run = Ef_hp.run };
    { ds = "EFRBTree"; scheme = "HP++"; run = Ef_hpp.run };
    { ds = "Bonsai"; scheme = "NR"; run = Bo_nr.run };
    { ds = "Bonsai"; scheme = "EBR"; run = Bo_ebr.run };
    { ds = "Bonsai"; scheme = "PEBR"; run = Bo_pebr.run };
    { ds = "Bonsai"; scheme = "HP"; run = Bo_hp.run };
    { ds = "Bonsai"; scheme = "HP++"; run = Bo_hpp.run };
    { ds = "Bonsai"; scheme = "RC"; run = Bo_rc.run };
  ]

let find ~ds ~scheme =
  List.find_opt (fun i -> i.ds = ds && i.scheme = scheme) all

let for_ds ds = List.filter (fun i -> i.ds = ds) all
