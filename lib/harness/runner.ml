(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** Generic timed workload runner: spawns worker domains plus one sampler
    domain that both times the run and samples the garbage backlog (the
    paper's peak/average unreclaimed-block metrics). *)

module Stats = Smr_core.Stats
module Rng = Smr_core.Rng
module Barrier = Smr_core.Domain_pool.Barrier
open Bench_types

module type DS = sig
  module S : Smr.Smr_intf.S

  type t
  type local

  val create : S.t -> t
  val make_local : S.handle -> local
  val clear_local : local -> unit
  val get : t -> local -> int -> int option
  val insert : t -> local -> int -> int -> bool
  val remove : t -> local -> int -> bool
end

(* Adapt a polymorphic-value structure to the int-keyed, int-valued DS the
   runner drives. *)
module Mono
    (S_ : Smr.Smr_intf.S) (T : sig
      type 'v t
      type local

      val create : S_.t -> 'v t
      val make_local : S_.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
    end) : DS with module S = S_ = struct
  module S = S_

  type t = int T.t
  type local = T.local

  let create = T.create
  let make_local = T.make_local
  let clear_local = T.clear_local
  let get = T.get
  let insert = T.insert
  let remove = T.remove
end

(* The sampler domain shared by every run shape: waits on the same start
   barrier as the workers, samples the garbage backlog every 2ms for
   [duration] seconds, then flips [stop] and returns (wall time, average
   backlog). *)
let backlog_sampler ~stats ~barrier ~stop ~duration () =
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  let samples = ref 0 and sum = ref 0.0 in
  while Unix.gettimeofday () -. t0 < duration do
    sum := !sum +. float_of_int (Stats.unreclaimed stats);
    incr samples;
    Unix.sleepf 0.002
  done;
  Atomic.set stop true;
  (Unix.gettimeofday () -. t0, !sum /. float_of_int (max 1 !samples))

let assemble_result ~ops ~wall ~avg_unreclaimed stats =
  {
    ops;
    wall;
    throughput_mops = float_of_int ops /. wall /. 1e6;
    offered_rps = 0.0;
    achieved_rps = (if wall > 0.0 then float_of_int ops /. wall else 0.0);
    peak_unreclaimed = Stats.peak_unreclaimed stats;
    avg_unreclaimed;
    peak_live = Stats.peak_live stats;
    heavy_fences = Stats.heavy_fences stats;
    protection_failures = Stats.protection_failures stats;
    allocated = Stats.allocated stats;
    freed = Stats.freed stats;
    retired_total = Stats.retired_total stats;
  }

module Make (D : DS) = struct
  module S = D.S

  (* Insert a random half of the key range (paper: "pre-filled to 50%").
     Random order matters: the unbalanced trees (EFRBTree, NMTree) would
     degenerate to paths under sequential insertion. *)
  let prefill t handle ~key_range ~ratio =
    let lo = D.make_local handle in
    let keys = Array.init key_range Fun.id in
    let rng = Rng.create ~seed:0xabcdef in
    for i = key_range - 1 downto 1 do
      let j = Rng.below rng (i + 1) in
      let tmp = keys.(i) in
      keys.(i) <- keys.(j);
      keys.(j) <- tmp
    done;
    let count = int_of_float (float_of_int key_range *. ratio) in
    for i = 0 to count - 1 do
      ignore (D.insert t lo keys.(i) keys.(i))
    done;
    D.clear_local lo

  let run ?config (cfg : cfg) : result =
    let scheme = S.create ?config () in
    let stats = S.stats scheme in
    let t = D.create scheme in
    let setup = S.register scheme in
    prefill t setup ~key_range:cfg.key_range ~ratio:cfg.prefill_ratio;
    let stop = Atomic.make false in
    let barrier = Barrier.create (cfg.threads + 1) in
    let worker i () =
      let handle = S.register scheme in
      let lo = D.make_local handle in
      let rng = Rng.create ~seed:(0x5eed + (i * 7919)) in
      Barrier.wait barrier;
      let ops = ref 0 in
      while not (Atomic.get stop) do
        let key = Rng.below rng cfg.key_range in
        (match Workload.pick cfg.workload rng with
        | Workload.Insert -> ignore (D.insert t lo key key)
        | Workload.Delete -> ignore (D.remove t lo key)
        | Workload.Get -> ignore (D.get t lo key));
        incr ops
      done;
      D.clear_local lo;
      S.unregister handle;
      !ops
    in
    let workers = Array.init cfg.threads (fun i -> Domain.spawn (worker i)) in
    let sampler_d =
      Domain.spawn
        (backlog_sampler ~stats ~barrier ~stop ~duration:cfg.duration)
    in
    let ops = Array.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
    let wall, avg_unreclaimed = Domain.join sampler_d in
    S.unregister setup;
    assemble_result ~ops ~wall ~avg_unreclaimed stats

  (* The paper's Figure 10 workload: half the threads run long get()
     operations over the whole (large) key range; the other half churn the
     head of the structure, driving heavy reclamation. Reported ops are the
     readers' only. *)
  let run_long_reads ?config ~writer_range (cfg : cfg) : result =
    let scheme = S.create ?config () in
    let stats = S.stats scheme in
    let t = D.create scheme in
    let setup = S.register scheme in
    prefill t setup ~key_range:cfg.key_range ~ratio:cfg.prefill_ratio;
    let stop = Atomic.make false in
    let readers = max 1 (cfg.threads / 2) in
    let writers = max 1 (cfg.threads - readers) in
    let barrier = Barrier.create (readers + writers + 1) in
    let reader i () =
      let handle = S.register scheme in
      let lo = D.make_local handle in
      let rng = Rng.create ~seed:(0xbeef + (i * 31337)) in
      Barrier.wait barrier;
      let ops = ref 0 in
      while not (Atomic.get stop) do
        ignore (D.get t lo (Rng.below rng cfg.key_range));
        incr ops
      done;
      D.clear_local lo;
      S.unregister handle;
      !ops
    in
    let writer i () =
      let handle = S.register scheme in
      let lo = D.make_local handle in
      let rng = Rng.create ~seed:(0xfeed + (i * 1009)) in
      Barrier.wait barrier;
      while not (Atomic.get stop) do
        let key = Rng.below rng writer_range in
        if Rng.below rng 2 = 0 then ignore (D.insert t lo key key)
        else ignore (D.remove t lo key)
      done;
      D.clear_local lo;
      S.unregister handle;
      0
    in
    let reader_ds = Array.init readers (fun i -> Domain.spawn (reader i)) in
    let writer_ds = Array.init writers (fun i -> Domain.spawn (writer i)) in
    let sampler_d =
      Domain.spawn
        (backlog_sampler ~stats ~barrier ~stop ~duration:cfg.duration)
    in
    let ops = Array.fold_left (fun acc d -> acc + Domain.join d) 0 reader_ds in
    Array.iter (fun d -> ignore (Domain.join d)) writer_ds;
    let wall, avg_unreclaimed = Domain.join sampler_d in
    S.unregister setup;
    assemble_result ~ops ~wall ~avg_unreclaimed stats
end
