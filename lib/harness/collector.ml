(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** Machine-readable benchmark output: every run that flows through
    {!Experiments} is also recorded here as a row, and [bench/main.exe
    --json FILE] serializes the accumulated rows so benchmark trajectories
    can be tracked across PRs instead of diffing text tables. *)

open Bench_types

type row = {
  experiment : string;
  ds : string;
  scheme : string;
  threads : int;
  key_range : int;
  workload : string;
  result : result;
  extra : (string * Service.Json.t) list;
      (* run-shape-specific columns (e.g. netkv's corrected/uncorrected
         latency summaries) appended verbatim to the row's JSON object *)
}

let rows : row list ref = ref []
let current = ref "-"

let set_experiment name =
  current := name

let add ?(extra = []) ~ds ~scheme ~threads ~key_range ~workload result =
  rows :=
    {
      experiment = !current;
      ds;
      scheme;
      threads;
      key_range;
      workload;
      result;
      extra;
    }
    :: !rows

let reset () =
  rows := [];
  current := "-"

let result_json (r : result) =
  Service.Json.Obj
    [
      ("ops", Service.Json.Int r.ops);
      ("wall_s", Service.Json.Float r.wall);
      ("throughput_mops", Service.Json.Float r.throughput_mops);
      ("offered_rps", Service.Json.Float r.offered_rps);
      ("achieved_rps", Service.Json.Float r.achieved_rps);
      ("peak_unreclaimed", Service.Json.Int r.peak_unreclaimed);
      ("avg_unreclaimed", Service.Json.Float r.avg_unreclaimed);
      ("peak_live", Service.Json.Int r.peak_live);
      ("heavy_fences", Service.Json.Int r.heavy_fences);
      ("protection_failures", Service.Json.Int r.protection_failures);
      ("allocated", Service.Json.Int r.allocated);
      ("freed", Service.Json.Int r.freed);
      ("retired_total", Service.Json.Int r.retired_total);
    ]

let row_json row =
  Service.Json.Obj
    ([
       ("experiment", Service.Json.String row.experiment);
       ("ds", Service.Json.String row.ds);
       ("scheme", Service.Json.String row.scheme);
       ("threads", Service.Json.Int row.threads);
       ("key_range", Service.Json.Int row.key_range);
       ("workload", Service.Json.String row.workload);
       ("result", result_json row.result);
     ]
    @ row.extra)

let to_json () =
  Service.Json.Obj
    [
      ("suite", Service.Json.String "hp-plus-bench");
      ("rows", Service.Json.List (List.rev_map row_json !rows));
    ]

let write path =
  Service.Json.write_file path (to_json ());
  Printf.printf "wrote %d benchmark rows to %s\n%!" (List.length !rows) path
