(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** Configuration and results shared by all benchmark runs. *)

type cfg = {
  threads : int;
  duration : float; (* seconds per measurement *)
  key_range : int;
  workload : Workload.t;
  prefill_ratio : float; (* fraction of the key range inserted up front *)
}

let default_cfg =
  {
    threads = 4;
    duration = 0.25;
    key_range = 1024;
    workload = Workload.read_write;
    prefill_ratio = 0.5;
  }

type result = {
  ops : int;
  wall : float;
  throughput_mops : float;
  offered_rps : float;
      (* open-loop offered arrival rate; 0.0 for closed-loop runs, where
         there is no schedule independent of the system under test *)
  achieved_rps : float; (* completions per wall second *)
  peak_unreclaimed : int;
  avg_unreclaimed : float;
  peak_live : int;
  heavy_fences : int;
  protection_failures : int;
  allocated : int;
  freed : int;
  retired_total : int;
}

let throughput r = r.throughput_mops

type metric = result -> float

let metric_of_name : string -> metric = function
  | "throughput" -> fun r -> r.throughput_mops
  | "offered-rps" -> fun r -> r.offered_rps
  | "achieved-rps" -> fun r -> r.achieved_rps
  | "peak-unreclaimed" -> fun r -> float_of_int r.peak_unreclaimed
  | "avg-unreclaimed" -> fun r -> r.avg_unreclaimed
  | "peak-live" -> fun r -> float_of_int r.peak_live
  | "heavy-fences" -> fun r -> float_of_int r.heavy_fences
  | "protection-failures" -> fun r -> float_of_int r.protection_failures
  | "allocated" -> fun r -> float_of_int r.allocated
  | "freed" -> fun r -> float_of_int r.freed
  | "retired-total" -> fun r -> float_of_int r.retired_total
  | s -> invalid_arg ("unknown metric: " ^ s)
