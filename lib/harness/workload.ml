(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** Workload mixes of the paper's evaluation (§5 Methodology). *)

type t = {
  name : string;
  insert_pct : int;
  delete_pct : int; (* remainder is get *)
}

let write_only = { name = "write-only"; insert_pct = 50; delete_pct = 50 }
let read_write = { name = "read-write"; insert_pct = 25; delete_pct = 25 }
let read_most = { name = "read-most"; insert_pct = 5; delete_pct = 5 }
let all = [ write_only; read_write; read_most ]

let of_name = function
  | "write-only" -> write_only
  | "read-write" -> read_write
  | "read-most" -> read_most
  | s -> invalid_arg ("unknown workload: " ^ s)

type op = Insert | Delete | Get

let pick t rng =
  let roll = Smr_core.Rng.below rng 100 in
  if roll < t.insert_pct then Insert
  else if roll < t.insert_pct + t.delete_pct then Delete
  else Get
