(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** Plain-text table rendering for benchmark output. *)

let hr width = print_endline (String.make width '-')

let heading title =
  print_newline ();
  print_endline ("== " ^ title);
  hr (String.length title + 3)

let label_width = 18
let cell_width = 14

let pad w s = Printf.sprintf "%-*s" (max w (String.length s + 1)) s

(* A matrix with a leading label column. [rows] pairs a label with one
   optional float per column; [None] renders as "-" (not applicable). *)
let table ~title ~row_label ~columns ~rows ~fmt =
  heading title;
  print_string (pad label_width row_label);
  List.iter (fun c -> print_string (pad cell_width c)) columns;
  print_newline ();
  hr (label_width + (cell_width * List.length columns));
  List.iter
    (fun (label, cells) ->
      print_string (pad label_width label);
      List.iter
        (fun v ->
          print_string
            (pad cell_width (match v with Some x -> fmt x | None -> "-")))
        cells;
      print_newline ())
    rows;
  flush stdout

let fmt_throughput x = Printf.sprintf "%.4f" x
let fmt_count x = Printf.sprintf "%.0f" x

let note msg =
  print_endline ("   " ^ msg);
  flush stdout
