(* smr-lint: allow R5 — internal benchmark-harness plumbing consumed only by bin/ and test/; the surface tracks the experiment set and changes too often for a separate interface to earn its keep *)
(** One entry point per table/figure of the paper (see DESIGN.md §4). *)

open Bench_types

type settings = {
  threads_list : int list;
  duration : float;
  paper_scale : bool;
      (* use the paper's key ranges (10K lists / 100K others) instead of
         container-sized ones *)
}

let default_settings =
  { threads_list = [ 1; 2; 4 ]; duration = 0.25; paper_scale = false }

let big_range s cat =
  match cat with
  | `List -> if s.paper_scale then 10_000 else 1_024
  | `Other -> if s.paper_scale then 100_000 else 16_384

let small_range = function `List -> 16 | `Other -> 128

let run_instance s (i : Instances.instance) ~threads ~key_range ~workload =
  let r =
    (i.run
       {
         threads;
         duration = s.duration;
         key_range;
         workload;
         prefill_ratio = 0.5;
       } [@warning "-16"])
  in
  Collector.add ~ds:i.ds ~scheme:i.scheme ~threads ~key_range
    ~workload:workload.Workload.name r;
  r

(* One data structure, thread rows, scheme columns. *)
let ds_sweep s ~ds ~workload ~key_range ~(metric : metric) =
  let insts = Instances.for_ds ds in
  let columns = Instances.schemes_order in
  let rows =
    List.map
      (fun threads ->
        ( string_of_int threads,
          List.map
            (fun scheme ->
              match List.find_opt (fun i -> i.Instances.scheme = scheme) insts with
              | None -> None
              | Some i ->
                  Some (metric (run_instance s i ~threads ~key_range ~workload)))
            columns ))
      s.threads_list
  in
  (columns, rows)

let sweep_tables s ~title_prefix ~workload ~(metric : metric) ~fmt =
  List.iter
    (fun ds ->
      let key_range = big_range s (Instances.category ds) in
      let columns, rows = ds_sweep s ~ds ~workload ~key_range ~metric in
      Report.table
        ~title:
          (Printf.sprintf "%s - %s (%s, key range %d)" title_prefix ds
             workload.Workload.name key_range)
        ~row_label:"threads" ~columns ~rows ~fmt)
    Instances.ds_order

(* --- Figures ------------------------------------------------------------ *)

let fig8 s =
  Report.note
    "Figure 8: throughput (Mops/s) of read-write workloads, big key range.";
  sweep_tables s ~title_prefix:"fig8 throughput"
    ~workload:Workload.read_write ~metric:throughput
    ~fmt:Report.fmt_throughput

let fig9 s =
  Report.note
    "Figure 9: best throughput per category, HP-compatible structure vs \
     HP++-only structure, small and big key ranges.";
  let best (i : Instances.instance) ~key_range =
    List.fold_left
      (fun acc threads ->
        let r =
          run_instance s i ~threads ~key_range ~workload:Workload.read_write
        in
        Float.max acc r.throughput_mops)
      0. s.threads_list
  in
  let cell ~ds ~scheme ~key_range =
    match Instances.find ~ds ~scheme with
    | None -> None
    | Some i -> Some (best i ~key_range)
  in
  let rows =
    [
      ( "list/small",
        [
          cell ~ds:"HMList" ~scheme:"HP" ~key_range:(small_range `List);
          cell ~ds:"HHSList" ~scheme:"HP++" ~key_range:(small_range `List);
        ] );
      ( "list/big",
        [
          cell ~ds:"HMList" ~scheme:"HP" ~key_range:(big_range s `List);
          cell ~ds:"HHSList" ~scheme:"HP++" ~key_range:(big_range s `List);
        ] );
      ( "tree/small",
        [
          cell ~ds:"EFRBTree" ~scheme:"HP" ~key_range:(small_range `Other);
          cell ~ds:"NMTree" ~scheme:"HP++" ~key_range:(small_range `Other);
        ] );
      ( "tree/big",
        [
          cell ~ds:"EFRBTree" ~scheme:"HP" ~key_range:(big_range s `Other);
          cell ~ds:"NMTree" ~scheme:"HP++" ~key_range:(big_range s `Other);
        ] );
    ]
  in
  Report.table ~title:"fig9 max throughput (Mops/s): HP vs HP++ structures"
    ~row_label:"category" ~columns:[ "HP(base DS)"; "HP++(opt DS)" ] ~rows
    ~fmt:Report.fmt_throughput

let fig10 s =
  Report.note
    "Figure 10: long-running reads (Mops/s of get) under head churn, \
     growing key range. HP runs HMList; the rest run HHSList.";
  let ranges =
    if s.paper_scale then [ 4096; 16384; 65536; 262144 ]
    else [ 1024; 4096; 16384; 65536 ]
  in
  let threads = max 2 (List.fold_left max 1 s.threads_list) in
  let cfg key_range =
    {
      threads;
      duration = s.duration;
      key_range;
      workload = Workload.read_write;
      prefill_ratio = 0.5;
    }
  in
  let columns = [ "NR"; "EBR"; "PEBR"; "HP"; "HP++"; "RC" ] in
  let run_one scheme key_range =
    let c = cfg key_range in
    let r =
      match scheme with
      | "NR" -> Instances.Hhs_nr.run_long_reads ~writer_range:64 c
      | "EBR" -> Instances.Hhs_ebr.run_long_reads ~writer_range:64 c
      | "PEBR" -> Instances.Hhs_pebr.run_long_reads ~writer_range:64 c
      | "HP" -> Instances.Hm_hp.run_long_reads ~writer_range:64 c
      | "HP++" -> Instances.Hhs_hpp.run_long_reads ~writer_range:64 c
      | "RC" -> Instances.Hhs_rc.run_long_reads ~writer_range:64 c
      | _ -> assert false
    in
    Collector.add
      ~ds:(if scheme = "HP" then "HMList" else "HHSList")
      ~scheme ~threads ~key_range ~workload:"long-reads" r;
    r
  in
  let results =
    List.map
      (fun kr -> (kr, List.map (fun sch -> run_one sch kr) columns))
      ranges
  in
  Report.table ~title:"fig10 long-running read throughput (Mops/s)"
    ~row_label:"key range" ~columns
    ~rows:
      (List.map
         (fun (kr, rs) ->
           ( string_of_int kr,
             List.map (fun r -> Some r.throughput_mops) rs ))
         results)
    ~fmt:Report.fmt_throughput;
  Report.table
    ~title:
      "fig10 forced operation restarts (PEBR: neutralization; HP++:        invalidated source)"
    ~row_label:"key range" ~columns
    ~rows:
      (List.map
         (fun (kr, rs) ->
           ( string_of_int kr,
             List.map
               (fun r -> Some (float_of_int r.protection_failures))
               rs ))
         results)
    ~fmt:Report.fmt_count

let fig11 s =
  Report.note
    "Figure 11: peak retired-but-unreclaimed blocks, read-write workload. \
     (RC reported for completeness; the paper deems the metric ill-defined \
     for it.)";
  sweep_tables s ~title_prefix:"fig11 peak unreclaimed"
    ~workload:Workload.read_write
    ~metric:(fun r -> float_of_int r.peak_unreclaimed)
    ~fmt:Report.fmt_count

(* Appendix: three workloads x four metrics = figures 12-23. *)

let appendix_figure s ~fig ~workload ~metric ~fmt ~what =
  Report.note (Printf.sprintf "Figure %d: %s, %s workload." fig what
                 workload.Workload.name);
  sweep_tables s
    ~title_prefix:(Printf.sprintf "fig%d %s" fig what)
    ~workload ~metric ~fmt

let appendix_spec =
  [
    (12, Workload.write_only, "throughput (Mops/s)", `Throughput);
    (13, Workload.read_write, "throughput (Mops/s)", `Throughput);
    (14, Workload.read_most, "throughput (Mops/s)", `Throughput);
    (15, Workload.write_only, "peak unreclaimed blocks", `PeakUnreclaimed);
    (16, Workload.read_write, "peak unreclaimed blocks", `PeakUnreclaimed);
    (17, Workload.read_most, "peak unreclaimed blocks", `PeakUnreclaimed);
    (18, Workload.write_only, "peak live blocks (memory proxy)", `PeakLive);
    (19, Workload.read_write, "peak live blocks (memory proxy)", `PeakLive);
    (20, Workload.read_most, "peak live blocks (memory proxy)", `PeakLive);
    (21, Workload.write_only, "average unreclaimed blocks", `AvgUnreclaimed);
    (22, Workload.read_write, "average unreclaimed blocks", `AvgUnreclaimed);
    (23, Workload.read_most, "average unreclaimed blocks", `AvgUnreclaimed);
  ]

let appendix_fig s fig =
  let _, workload, what, kind =
    List.find (fun (f, _, _, _) -> f = fig) appendix_spec
  in
  let metric, fmt =
    match kind with
    | `Throughput -> (throughput, Report.fmt_throughput)
    | `PeakUnreclaimed ->
        ((fun r -> float_of_int r.peak_unreclaimed), Report.fmt_count)
    | `PeakLive -> ((fun r -> float_of_int r.peak_live), Report.fmt_count)
    | `AvgUnreclaimed -> ((fun r -> r.avg_unreclaimed), Report.fmt_count)
  in
  appendix_figure s ~fig ~workload ~metric ~fmt ~what

(* --- Tables -------------------------------------------------------------- *)

let tab1 _s =
  Report.heading "Table 1: robust & widely applicable schemes, qualitative";
  List.iter
    (fun (c : Smr.Registry.scheme_criteria) ->
      Printf.printf "%-6s| requires: %s\n      | fails on: %s; handling: %s\n      | overhead: %s\n      | unreclaimed: %s\n"
        c.scheme c.system_requirement c.failure_condition c.failure_handling
        c.overhead c.unreclaimed_bound)
    Smr.Registry.table1;
  flush stdout

let tab2 _s =
  Report.heading
    "Table 2: applicability (v supported, x not, ^ wait-freedom lost, \
     * custom recovery, ** restructuring)";
  Printf.printf "%-44s %-6s %-8s %-5s %-5s %-10s %s\n" "structure" "HP"
    "DEBRA+" "NBR" "EBR" "HP++/PEBR" "built here as";
  List.iter
    (fun (r : Smr.Registry.applicability_row) ->
      let p s = Fmt.str "%a" Smr.Registry.pp_support s in
      Printf.printf "%-44s %-6s %-8s %-5s %-5s %-10s %s\n" r.structure
        (p r.hp) (p r.debra_plus) (p r.nbr) (p r.ebr) (p r.hp_plus_class)
        (Option.value ~default:"-" r.implemented_as))
    Smr.Registry.table2;
  flush stdout

(* --- Ablation: Algorithm 3 vs Algorithm 5 -------------------------------- *)

let alg5 s =
  Report.note
    "Ablation: HP++ with per-batch fences (Algorithm 3) vs epoched heavy \
     fence (Algorithm 5) on HHSList, write-only workload.";
  let base = Smr.Smr_intf.default_config in
  let variants =
    [
      ("alg5-epoched", { base with epoched_fence = true });
      ("alg3-plain", { base with epoched_fence = false });
    ]
  in
  let key_range = big_range s `List in
  let results =
    List.map
      (fun threads ->
        ( threads,
          List.map
            (fun (variant, config) ->
              let r =
                Instances.Hhs_hpp.run ~config
                  {
                    threads;
                    duration = s.duration;
                    key_range;
                    workload = Workload.write_only;
                    prefill_ratio = 0.5;
                  }
              in
              Collector.add ~ds:"HHSList"
                ~scheme:("HP++/" ^ variant)
                ~threads ~key_range ~workload:"write-only" r;
              r)
            variants ))
      s.threads_list
  in
  let columns = List.map fst variants in
  Report.table ~title:"alg5 throughput (Mops/s)" ~row_label:"threads" ~columns
    ~rows:
      (List.map
         (fun (t, rs) ->
           ( string_of_int t,
             List.map (fun r -> Some r.throughput_mops) rs ))
         results)
    ~fmt:Report.fmt_throughput;
  Report.table ~title:"alg5 heavy fences issued" ~row_label:"threads" ~columns
    ~rows:
      (List.map
         (fun (t, rs) ->
           ( string_of_int t,
             List.map (fun r -> Some (float_of_int r.heavy_fences)) rs ))
         results)
    ~fmt:Report.fmt_count;
  Report.table ~title:"alg5 peak unreclaimed blocks" ~row_label:"threads"
    ~columns
    ~rows:
      (List.map
         (fun (t, rs) ->
           ( string_of_int t,
             List.map (fun r -> Some (float_of_int r.peak_unreclaimed)) rs ))
         results)
    ~fmt:Report.fmt_count

(* Ablation of the reclamation cadence (paper footnote 10: DoInvalidation
   per 32 TryUnlinks, Reclaim per 128 — "big enough to amortize ... small
   enough to bound"). *)
let thresholds s =
  Report.note
    "Ablation: HP++ DoInvalidation/Reclaim thresholds on HHSList,      write-only workload (paper footnote 10).";
  let threads = max 2 (List.fold_left max 1 s.threads_list) in
  let key_range = big_range s `List in
  let variants =
    [ (1, 8); (8, 32); (32, 128); (128, 512); (512, 2048) ]
  in
  let results =
    List.map
      (fun (inv, rec_) ->
        let config =
          {
            Smr.Smr_intf.default_config with
            invalidate_threshold = inv;
            reclaim_threshold = rec_;
          }
        in
        let name = Printf.sprintf "inv=%d/rec=%d" inv rec_ in
        let r =
          Instances.Hhs_hpp.run ~config
            {
              threads;
              duration = s.duration;
              key_range;
              workload = Workload.write_only;
              prefill_ratio = 0.5;
            }
        in
        Collector.add ~ds:"HHSList" ~scheme:("HP++/" ^ name) ~threads
          ~key_range ~workload:"write-only" r;
        (name, r))
      variants
  in
  Report.table ~title:"thresholds: throughput (Mops/s)" ~row_label:"config"
    ~columns:[ "throughput" ]
    ~rows:
      (List.map (fun (n, r) -> (n, [ Some r.throughput_mops ])) results)
    ~fmt:Report.fmt_throughput;
  Report.table ~title:"thresholds: peak unreclaimed / heavy fences"
    ~row_label:"config"
    ~columns:[ "peak-garbage"; "heavy-fences" ]
    ~rows:
      (List.map
         (fun (n, r) ->
           ( n,
             [
               Some (float_of_int r.peak_unreclaimed);
               Some (float_of_int r.heavy_fences);
             ] ))
         results)
    ~fmt:Report.fmt_count

(* --- Stalled-thread robustness (fault-injection layer) ------------------- *)

(* One domain is parked by a Fault.Stall plan while it holds its scheme's
   protection — pinned critical section for EBR/PEBR, published hazard slot
   for HP/HP++ — and the main domain churns removes against the structure,
   sampling retired-but-unreclaimed blocks at fixed op checkpoints. This is
   the mechanism behind the paper's Figure 11 split, isolated: EBR's curve
   tracks the churn, the robust schemes stay flat. *)
module Stalled
    (S : Smr.Smr_intf.S) (L : sig
      type 'v t
      type local

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val get : 'v t -> local -> int -> 'v option
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
    end) =
struct
  let run ~point ~checkpoints =
    Fault.reset ();
    let t = S.create () in
    let l = L.create t in
    let h = S.register t in
    let lo = L.make_local h in
    let range = 256 in
    for k = 0 to range - 1 do
      ignore (L.insert l lo k k)
    done;
    (* Armed only after the prefill so the victim, not the prefill loop,
       trips the plan; the main domain waits in await_stalled meanwhile. *)
    Fault.arm ~point ~action:Fault.Stall ~after:20 ();
    let stop = Atomic.make false in
    let victim =
      Domain.spawn (fun () ->
          let vh = S.register t in
          let vlo = L.make_local vh in
          while not (Atomic.get stop) do
            for k = 0 to range - 1 do
              ignore (L.get l vlo k)
            done
          done;
          L.clear_local vlo;
          S.unregister vh)
    in
    Fault.await_stalled ();
    let prev = ref 0 in
    let samples =
      List.map
        (fun cum ->
          for i = !prev to cum - 1 do
            let key = i mod range in
            ignore (L.remove l lo key);
            ignore (L.insert l lo key key)
          done;
          prev := cum;
          Smr_core.Stats.unreclaimed (S.stats t))
        checkpoints
    in
    Atomic.set stop true;
    Fault.release ();
    Domain.join victim;
    L.clear_local lo;
    S.flush h;
    S.flush h;
    S.flush h;
    let drained = Smr_core.Stats.unreclaimed (S.stats t) in
    S.unregister h;
    Fault.reset ();
    (samples, drained)
end

let stalled _s =
  Report.note
    "Stalled-thread robustness: a victim domain is parked by the fault \
     layer while holding its scheme's protection (pinned critical section \
     for EBR/PEBR, published hazard slot for HP/HP++); the main domain \
     churns removes and samples unreclaimed blocks per checkpoint.";
  let checkpoints = [ 1_000; 2_000; 4_000; 8_000; 16_000 ] in
  let module E = Stalled (Ebr) (Smr_ds.Hhslist.Make (Ebr)) in
  let ebr, ebr_d = E.run ~point:Fault.Crit ~checkpoints in
  let module P = Stalled (Pebr) (Smr_ds.Hhslist.Make (Pebr)) in
  let pebr, pebr_d = P.run ~point:Fault.Crit ~checkpoints in
  let module H = Stalled (Hp) (Smr_ds.Hmlist.Make (Hp)) in
  let hp, hp_d = H.run ~point:Fault.Protect ~checkpoints in
  let module HPP = Stalled (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus)) in
  let hpp, hpp_d = HPP.run ~point:Fault.Protect ~checkpoints in
  let columns = [ "EBR"; "PEBR"; "HP(HMList)"; "HP++" ] in
  let rows =
    List.mapi
      (fun i cum ->
        ( string_of_int cum,
          List.map
            (fun curve -> Some (float_of_int (List.nth curve i)))
            [ ebr; pebr; hp; hpp ] ))
      checkpoints
    @ [
        ( "after release",
          List.map
            (fun d -> Some (float_of_int d))
            [ ebr_d; pebr_d; hp_d; hpp_d ] );
      ]
  in
  Report.table
    ~title:"stalled: unreclaimed blocks vs churn under one stalled thread"
    ~row_label:"churn ops" ~columns ~rows ~fmt:Report.fmt_count

(* --- Dispatch ------------------------------------------------------------ *)

let known =
  [ "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15";
    "fig16"; "fig17"; "fig18"; "fig19"; "fig20"; "fig21"; "fig22"; "fig23";
    "tab1"; "tab2"; "alg5"; "thresholds"; "stalled" ]

let run s exp =
  Collector.set_experiment exp;
  match exp with
  | "fig8" -> fig8 s
  | "fig9" -> fig9 s
  | "fig10" -> fig10 s
  | "fig11" -> fig11 s
  | "tab1" -> tab1 s
  | "tab2" -> tab2 s
  | "alg5" -> alg5 s
  | "thresholds" -> thresholds s
  | "stalled" -> stalled s
  | exp when String.length exp > 3 && String.sub exp 0 3 = "fig" -> (
      match int_of_string_opt (String.sub exp 3 (String.length exp - 3)) with
      | Some n when n >= 12 && n <= 23 -> appendix_fig s n
      | _ -> invalid_arg ("unknown experiment: " ^ exp))
  | exp -> invalid_arg ("unknown experiment: " ^ exp)
