(** Minimal Prometheus text-format (version 0.0.4) exposition: an in-memory
    registry of metric families rendered to a string. Dependency-free; used
    by the soak driver and the shardkv service to publish SMR and service
    counters. *)

type t

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** [counter t name v] records sample [v] of a counter family [name],
    creating the family on first use. Invalid metric names and invalid label
    keys ([\[a-zA-Z_\]\[a-zA-Z0-9_\]*]) raise [Invalid_argument]; label
    {e values} may contain any bytes — backslashes, double quotes and
    newlines are escaped in the rendered text. *)

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val summary :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  quantiles:(float * float) list ->
  count:int ->
  sum:float ->
  unit
(** Summary family: one [{quantile="q"}] series per pair plus [_count] and
    [_sum] series. *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  buckets:(float * int) list ->
  count:int ->
  sum:float ->
  unit
(** Native histogram family: one cumulative [name_bucket{le="..."}] series
    per [(upper_bound, count_le)] pair — counts must already be cumulative
    and the [le] values ascending — plus a terminal [le="+Inf"] bucket equal
    to [count], and [name_count]/[name_sum] series. Preferred over
    {!summary} for live scraping: bucket counts are aggregatable across
    shards and monotone across scrapes, quantiles are not. *)

val to_string : t -> string
(** Render all families in registration order, [# HELP]/[# TYPE] comments
    included. *)

val write : string -> t -> unit
