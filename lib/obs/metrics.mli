(** Minimal Prometheus text-format (version 0.0.4) exposition: an in-memory
    registry of metric families rendered to a string. Dependency-free; used
    by the soak driver and the shardkv service to publish SMR and service
    counters. *)

type t

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** [counter t name v] records sample [v] of a counter family [name],
    creating the family on first use. Invalid metric names raise
    [Invalid_argument]. *)

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val summary :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  quantiles:(float * float) list ->
  count:int ->
  sum:float ->
  unit
(** Summary family: one [{quantile="q"}] series per pair plus [_count] and
    [_sum] series. *)

val to_string : t -> string
(** Render all families in registration order, [# HELP]/[# TYPE] comments
    included. *)

val write : string -> t -> unit
