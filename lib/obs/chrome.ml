(** Chrome trace-event JSON ("JSON Array Format" with metadata), loadable in
    Perfetto / chrome://tracing: one track (tid) per domain, SMR events as
    thread-scoped instants, shardkv op spans as complete ("X") events.
    Timestamps are microseconds; the tracer records nanoseconds. *)

let buf_add_float buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.3f" x)

let add_common buf ~name ~ph ~ts ~dom =
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf name;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\",\"pid\":0,\"tid\":";
  Buffer.add_string buf (string_of_int dom);
  Buffer.add_string buf ",\"ts\":";
  buf_add_float buf (float_of_int ts /. 1e3)

let default_span_name op = "op" ^ string_of_int op

(* [span_name] maps a Span event's op code ([a]) to a track-event name;
   shardkv passes its Service_stats op table. *)
let to_buffer ?(span_name = default_span_name) (snap : Trace.snapshot) buf =
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
  in
  (* name the per-domain tracks *)
  let doms = Hashtbl.create 16 in
  Array.iter
    (fun (e : Trace.event) ->
      if not (Hashtbl.mem doms e.dom) then begin
        Hashtbl.add doms e.dom ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
              \"args\":{\"name\":\"domain %d\"}}"
             e.dom e.dom)
      end)
    snap.events;
  Array.iter
    (fun (e : Trace.event) ->
      sep ();
      match e.kind with
      | Trace.Span ->
          add_common buf ~name:(span_name e.a) ~ph:"X" ~ts:e.ts ~dom:e.dom;
          Buffer.add_string buf ",\"dur\":";
          buf_add_float buf (float_of_int e.b /. 1e3);
          Buffer.add_string buf
            (Printf.sprintf ",\"args\":{\"seq\":%d}}" e.seq)
      | _ ->
          add_common buf ~name:(Trace.kind_name e.kind) ~ph:"i" ~ts:e.ts
            ~dom:e.dom;
          Buffer.add_string buf
            (Printf.sprintf
               ",\"s\":\"t\",\"args\":{\"seq\":%d,\"uid\":%d,\"a\":%d,\
                \"b\":%d}}"
               e.seq e.uid e.a e.b))
    snap.events;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":%d,\
        \"complete_from\":%d}}"
       snap.dropped snap.complete_from)

let to_string ?span_name snap =
  let buf = Buffer.create (4096 + (Array.length snap.Trace.events * 96)) in
  to_buffer ?span_name snap buf;
  Buffer.contents buf

let write ?span_name path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?span_name snap);
      output_char oc '\n')
