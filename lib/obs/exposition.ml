(* Dependency-free HTTP/1.0 scrape endpoint for a Metrics registry.

   One background domain runs a select loop over a nonblocking listener and
   its connections; the page is re-sampled lazily, at most once per [every]
   seconds (scrape-driven sampling with a TTL rather than a timer domain:
   an idle server does zero sampling work, and two scrapes inside one TTL
   window see one consistent snapshot). Responses are written with a
   partial-write loop (bounded by [chunk], a test knob) behind the
   [Fault.Net_write] hook so fault injection can stall or kill a scrape
   mid-response without touching the serving path. *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string; (* full response bytes; "" while still reading *)
  mutable out_off : int;
}

type t = {
  sock : Unix.file_descr;
  port : int;
  every : float;
  chunk : int;
  sample : Metrics.t -> unit;
  (* smr-lint: allow R3 — written and read only on the listener domain (refresh_page runs inside its select loop) *)
  mutable page : string;
  (* smr-lint: allow R3 — written and read only on the listener domain *)
  mutable page_at : float;
  scrapes : int Atomic.t;
  stop_flag : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  (* smr-lint: allow R3 — lifecycle field touched only by the controlling domain (start sets it, stop joins and clears) *)
  mutable dom : unit Domain.t option;
}

let http_response ~status body =
  Printf.sprintf
    "HTTP/1.0 %s\r\n\
     Content-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (String.length body) body

(* First request line only; headers are irrelevant to a scrape. *)
let handle_request ~refresh raw =
  let line =
    match String.index_opt raw '\n' with
    | Some i ->
        let l = String.sub raw 0 i in
        if l <> "" && l.[String.length l - 1] = '\r' then
          String.sub l 0 (String.length l - 1)
        else l
    | None -> raw
  in
  match String.split_on_char ' ' line with
  | [ "GET"; path; _version ] ->
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      if path = "/metrics" then http_response ~status:"200 OK" (refresh ())
      else http_response ~status:"404 Not Found" "not found\n"
  | [ _meth; _path; _version ] ->
      http_response ~status:"405 Method Not Allowed" "only GET is served\n"
  | _ -> http_response ~status:"400 Bad Request" "malformed request line\n"

let refresh_page t () =
  let now = Unix.gettimeofday () in
  if t.page = "" || now -. t.page_at >= t.every then begin
    let reg = Metrics.create () in
    t.sample reg;
    t.page <- Metrics.to_string reg;
    t.page_at <- now
  end;
  Atomic.incr t.scrapes;
  t.page

let response_for t raw = handle_request ~refresh:(refresh_page t) raw

let scrapes t = Atomic.get t.scrapes
let port t = t.port

(* A request is complete at the first blank line (headers done); scrapers
   send nothing after it. 8 KiB cap: anything longer is not a scrape. *)
let request_complete b =
  let s = Buffer.contents b in
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then false
    else if s.[i] = '\n' && (s.[i + 1] = '\n' || (i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'))
    then true
    else find (i + 1)
  in
  n >= 8192 || find 0

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let serve_readable t c =
  let buf = Bytes.create 1024 in
  match Unix.read c.fd buf 0 1024 with
  | 0 -> close_conn c; None
  | n ->
      Buffer.add_subbytes c.inbuf buf 0 n;
      if request_complete c.inbuf then
        c.out <- response_for t (Buffer.contents c.inbuf);
      Some c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      Some c
  | exception Unix.Unix_error (_, _, _) -> close_conn c; None

let serve_writable t c =
  match
    if Fault.enabled () then Fault.hit Fault.Net_write;
    let remaining = String.length c.out - c.out_off in
    let len = min t.chunk remaining in
    Unix.write_substring c.fd c.out c.out_off len
  with
  | n ->
      c.out_off <- c.out_off + n;
      if c.out_off >= String.length c.out then (close_conn c; None) else Some c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      Some c
  | exception (Unix.Unix_error (_, _, _) | Fault.Killed _) ->
      (* a killed scrape is a dropped connection, not a dead endpoint *)
      close_conn c; None

let rec listener t conns =
  if Atomic.get t.stop_flag then List.iter close_conn conns
  else begin
    let reading, writing = List.partition (fun c -> c.out = "") conns in
    let rds = t.stop_r :: t.sock :: List.map (fun c -> c.fd) reading in
    let wrs = List.map (fun c -> c.fd) writing in
    match Unix.select rds wrs [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> listener t conns
    | rd, wr, _ ->
        let conns =
          if List.mem t.sock rd then begin
            match Unix.accept t.sock with
            | fd, _ ->
                Unix.set_nonblock fd;
                { fd; inbuf = Buffer.create 256; out = ""; out_off = 0 }
                :: conns
            | exception Unix.Unix_error (_, _, _) -> conns
          end
          else conns
        in
        let conns =
          List.filter_map
            (fun c ->
              if c.out = "" && List.mem c.fd rd then serve_readable t c
              else if c.out <> "" && List.mem c.fd wr then serve_writable t c
              else Some c)
            conns
        in
        listener t conns
  end

let start ?(every = 1.0) ?(chunk = 65536) ~sample addr =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 16;
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> 0
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      sock;
      port;
      every;
      chunk = max 1 chunk;
      sample;
      page = "";
      page_at = 0.0;
      scrapes = Atomic.make 0;
      stop_flag = Atomic.make false;
      stop_r;
      stop_w;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> listener t []));
  t

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.dom with Some d -> Domain.join d | None -> ());
    t.dom <- None;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.sock; t.stop_r; t.stop_w ]
  end
