(** Prometheus-style text exposition builder.

    A generic registry of metric families: callers record plain floats under
    a name, an optional label set, and a metric type, and {!to_string}
    renders the standard text format ([# HELP] / [# TYPE] once per family,
    one [name{labels} value] line per series, insertion-ordered). The
    builder is deliberately value-based — it knows nothing about [Stats] or
    histograms; bridges like [Service.Telemetry] feed it snapshots, so this
    module stays dependency-free and usable from any layer. *)

type series = { labels : (string * string) list; value : float }

type family = {
  name : string;
  typ : string;
  help : string;
  mutable series : series list; (* reversed *)
}

type t = { mutable families : family list (* reversed *) }

let create () = { families = [] }

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

(* Label keys are stricter than metric names: no ':' (reserved for recording
   rules) and no leading digit, per the Prometheus data model. Values need no
   validation — any byte is legal once escaped by [escape_label_value]. *)
let valid_label_key k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let check_labels labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_key k) then
        invalid_arg ("Metrics: invalid label key: " ^ k))
    labels

let family t ~typ ?(help = "") name =
  if not (valid_name name) then
    invalid_arg ("Metrics: invalid metric name: " ^ name);
  match List.find_opt (fun f -> f.name = name) t.families with
  | Some f -> f
  | None ->
      let f = { name; typ; help; series = [] } in
      t.families <- f :: t.families;
      f

let add t ~typ ?help ?(labels = []) name value =
  check_labels labels;
  let f = family t ~typ ?help name in
  f.series <- { labels; value } :: f.series

let counter t ?help ?labels name value = add t ~typ:"counter" ?help ?labels name value
let gauge t ?help ?labels name value = add t ~typ:"gauge" ?help ?labels name value

(** [summary t name ~quantiles ~count ~sum]: a Prometheus summary —
    [name{quantile="0.5"} v] series plus [name_count] and [name_sum]. *)
let summary t ?help ?(labels = []) name ~quantiles ~count ~sum =
  check_labels labels;
  let f = family t ~typ:"summary" ?help name in
  List.iter
    (fun (q, v) ->
      f.series <-
        { labels = labels @ [ ("quantile", Printf.sprintf "%g" q) ]; value = v }
        :: f.series)
    quantiles;
  add t ~typ:"untyped-hidden" ~labels (name ^ "_count") (float_of_int count);
  add t ~typ:"untyped-hidden" ~labels (name ^ "_sum") sum

(** [histogram t name ~buckets ~count ~sum]: native Prometheus histogram —
    cumulative [name_bucket{le="..."}] series per [(le, count_le)] pair, a
    terminal [le="+Inf"] bucket equal to [count], plus [name_count] and
    [name_sum]. Unlike {!summary}, bucket counts aggregate across series and
    scrapes, which is why the live plane prefers it. *)
let histogram t ?help ?(labels = []) name ~buckets ~count ~sum =
  check_labels labels;
  ignore (family t ~typ:"histogram" ?help name);
  let bucket le v =
    add t ~typ:"untyped-hidden"
      ~labels:(labels @ [ ("le", le) ])
      (name ^ "_bucket") (float_of_int v)
  in
  List.iter (fun (le, v) -> bucket (Printf.sprintf "%g" le) v) buckets;
  bucket "+Inf" count;
  add t ~typ:"untyped-hidden" ~labels (name ^ "_count") (float_of_int count);
  add t ~typ:"untyped-hidden" ~labels (name ^ "_sum") sum

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      if f.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.name f.help);
      if f.typ <> "untyped-hidden" then
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name f.typ);
      List.iter
        (fun s ->
          Buffer.add_string buf f.name;
          (match s.labels with
          | [] -> ()
          | ls ->
              Buffer.add_char buf '{';
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_char buf ',';
                  Buffer.add_string buf k;
                  Buffer.add_string buf "=\"";
                  Buffer.add_string buf (escape_label_value v);
                  Buffer.add_char buf '"')
                ls;
              Buffer.add_char buf '}');
          Buffer.add_char buf ' ';
          Buffer.add_string buf (render_value s.value);
          Buffer.add_char buf '\n')
        (List.rev f.series))
    (List.rev t.families);
  Buffer.contents buf

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
