(** Offline trace-replay protocol checker.

    Replays a merged, sequence-ordered trace ({!Trace.snapshot}) and checks
    the temporal invariants the reclamation schemes promise (paper
    Algorithms 2–5); see DESIGN.md §9 for the invariant-to-paper mapping.

    - [lifecycle]: a block is retired at most once, freed at most once, and
      only freed after retirement (RC cascade frees excepted).
    - [protect-window]: no [Free] of a uid while any validated protection of
      it ([Protect] … [Unprotect]) is open — the hazard-pointer guarantee
      (Algorithm 2 line 11 / Algorithm 5 lines 11–16).
    - [invalidate-before-free]: a node retired through TryUnlink is freed
      only after its whole unlink batch has been invalidated (Algorithm 3
      lines 22–31 / Algorithm 5 lines 3–10: DoInvalidation completes before
      Reclaim may free).
    - [step-from-invalidated]: no traversal step whose source link carried
      the invalidation bit (Algorithm 4 line 10: validation must fail), and
      no step from a node the stepping domain itself already invalidated.
    - [step-from-freed]: no traversal step out of an already-freed node —
      the temporal twin of the deterministic UAF detector.
    - [phantom]: no event at all may carry {!phantom_uid}, the retire-bag
      filler header; one in a trace means a bag slot leaked into a real
      retire/free/protection path.

    A [Crash] event (fault injection: a handle died and a survivor reported
    it) closes every protection interval the victim domain had open: the
    reaping that follows [report_crashed] withdraws those slots from the
    reporter's domain, which per-domain Unprotect attribution would
    otherwise never match, and the crash is precisely the moment the
    victim's claims stop counting. Frees enabled by the reaping sort after
    the Crash, so a clean chaos run replays clean.

    Ring wraparound is tolerated: events below [complete_from] update
    replay state but never raise violations, since their context may have
    been overwritten. *)

type violation = {
  v_seq : int;  (** sequence number of the offending event *)
  v_dom : int;
  v_uid : int;
  v_rule : string;  (** stable rule id, e.g. ["protect-window"] *)
  v_detail : string;  (** human-readable diagnostic *)
}

type summary = {
  events : int;
  domains : int;
  allocs : int;
  frees : int;
  protects : int;
  steps : int;
  spans : int;
  unlink_batches : int;
  crashes : int;  (** fault-injected handle deaths reported in the trace *)
  below_horizon : int;  (** events before [complete_from], state-only *)
}

val phantom_uid : int
(** [Smr_core.Mem.phantom_uid] restated ([-2]) so obs stays dependency-free;
    test_obs pins the two together. Distinct from [-1], the "no node"
    sentinel of Step events. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_summary : Format.formatter -> summary -> unit

val run : ?complete_from:int -> Trace.event array -> (summary, violation list) result
(** Replay [events] (must be sorted by [seq]; {!Trace.snapshot} and
    {!Trace.read_raw} both are). Returns all violations, most severe first
    (by rule, then by sequence number), or a summary when clean. *)

val run_snapshot : Trace.snapshot -> (summary, violation list) result
