(** Live [/metrics] scrape endpoint: a dependency-free HTTP/1.0 listener
    serving Prometheus text from a {!Metrics} registry.

    One background domain owns a nonblocking select loop; the page is
    rebuilt {e lazily} by running the [sample] callback into a fresh
    registry when a scrape arrives and the cached page is older than
    [every] seconds. That inverts the usual periodic-sampler design on
    purpose: an unscraped server does no sampling work, two scrapes inside
    one TTL window see one consistent snapshot, and the scraper's own
    cadence (not a server-side timer) sets the effective resolution.

    The [sample] callback runs on the listener domain and must therefore
    only read concurrency-safe state (atomics, counter snapshots) — every
    producer-side API it is meant to call ([Service.Telemetry.add_*],
    reactor/collector stats) is safe by construction.

    Response writes go through a partial-write loop gated on
    [Fault.Net_write], so fault plans can stall a scrape mid-response or
    kill it (a killed scrape drops that connection only; the endpoint
    itself survives). *)

type t

val start :
  ?every:float ->
  ?chunk:int ->
  sample:(Metrics.t -> unit) ->
  Unix.sockaddr ->
  t
(** Bind, listen and spawn the listener domain. [every] (default 1.0 s) is
    the page TTL; [chunk] (default 64 KiB) caps bytes per [write] — a test
    knob forcing the partial-write path. Binding to port 0 works; recover
    the chosen port with {!port}.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** Bound TCP port (0 for a Unix-domain socket). *)

val scrapes : t -> int
(** Successful [GET /metrics] responses built so far. *)

val stop : t -> unit
(** Close the listener and every open connection, join the domain.
    Idempotent. *)

val response_for : t -> string -> string
(** [response_for t raw]: the full HTTP response (status line, headers,
    body) for one raw request. Exposed for unit tests; the listener itself
    goes through the same path. *)

val handle_request : refresh:(unit -> string) -> string -> string
(** Pure request handler: parses the request line, serves [refresh ()] as
    the 200 body for [GET /metrics] (query strings ignored), 404 for any
    other path, 405 for non-GET methods, 400 for a malformed request
    line. *)
