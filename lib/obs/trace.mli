(** SMR event tracer: per-domain, single-writer, fixed-capacity rings.

    Every instrumented site calls {!emit}, which is one atomic load and a
    branch when tracing is disabled and allocates nothing either way (events
    live in preallocated flat int arrays). Each domain writes only its own
    ring; a global sequence counter stamps every event, so the merged trace
    is totally ordered and doubles as a protocol-replay log for {!Check}.

    Emission-order discipline (what makes replay checking sound): an event
    announcing that a resource is {e released} (Unprotect) is emitted
    {e before} the releasing store, and an event announcing an {e acquired}
    or {e completed} state (Protect after validation, Invalidate after the
    links are marked, Free after the state CAS) is emitted {e after} the
    operation it describes. Any real free is then separated from the
    protections that guarded against it by a happens-before chain through
    the slot or epoch atomics, so a violation in the merged order is a
    violation of the protocol, not an artifact of emission racing. *)

type kind =
  | Alloc  (** header allocated; [uid] *)
  | Retire  (** classic retirement; [uid] *)
  | Unlink  (** retirement via TryUnlink; [uid], [a] = unlink batch id *)
  | Invalidate  (** node invalidated; [uid], [a] = unlink batch id *)
  | Free  (** block freed; [uid], [a] = 1 for an RC cascade of a live block *)
  | Protect  (** validated protection established; [uid] *)
  | Unprotect  (** protection about to be withdrawn; [uid] *)
  | Validation_fail  (** protection validation failed; [uid] = target or -1 *)
  | Epoch_advance  (** [a] = new epoch (EBR/PEBR global, HP++ fence epoch) *)
  | Reclaim_pass  (** reclamation pass entered; [a] = retired-bag length *)
  | Step
      (** traversal step; [uid] = source node (-1 unknown), [a] = target
          node (-1 null), [b] = tag bits read from the source link *)
  | Span  (** timed operation; [a] = op code, [b] = duration ns, [ts] = start *)
  | Crash
      (** a crashed handle was reported dead; [a] = the {e victim}'s domain
          id (the event itself is emitted by the surviving reporter).
          Emitted before the victim's protections are withdrawn, so in
          merged order every Free enabled by the reaping sorts after it. *)
  | Handoff
      (** a mutator handed a full retire bag to the background collector;
          [a] = bag length, [b] = queue occupancy after the enqueue *)
  | Drain
      (** the collector finished one drain cycle; [a] = bags drained,
          [b] = headers still pending after the cycle *)
  | Adapt
      (** the collector adjusted a scheme's adaptive reclaim threshold;
          [a] = new threshold, [b] = pending garbage that drove it *)
  | Req_recv
      (** server decoded a whole request frame off a socket; [uid] = frame
          id, [a] = request opcode, [b] = session queue depth after the
          enqueue (or -1 on a RETRY reject) *)
  | Req_dispatch
      (** server popped the frame off the session queue to serve it;
          [uid] = frame id *)
  | Req_reply
      (** server finished the shard op and buffered the reply; [uid] = frame
          id, [a] = response opcode, [b] = serve duration ns *)
  | Req_wire
      (** the last byte of the reply reached the kernel send buffer;
          [uid] = frame id *)
  | Req_send
      (** client wrote the last byte of the request to the kernel;
          [uid] = frame id *)
  | Req_done
      (** client decoded the matching reply; [uid] = frame id,
          [a] = response opcode *)

val kind_code : kind -> int
val kind_of_code : int -> kind
val kind_name : kind -> string

type event = {
  seq : int;  (** global emission order *)
  ts : int;  (** clock at emission (ns with the default clock) *)
  dom : int;  (** emitting domain id *)
  kind : kind;
  uid : int;
  a : int;
  b : int;
}

(** {1 Recording} *)

val enabled : unit -> bool
(** "Should this site prepare arguments and call {!emit}": true when
    recording, and also while the deterministic scheduler ([lib/check]) is
    installed — emit sites double as its yield points, and the yield must
    fire on the same sites whether or not the ring records. One load of the
    combined [Fault.Hook] word. *)

val recording : unit -> bool
(** True iff {!emit} actually writes to the rings (the trace bit alone). *)

val enable : ?capacity:int -> unit -> unit
(** Start recording into fresh rings of [capacity] events per domain
    (default [32768]); previously recorded events are discarded. When a ring
    wraps, the oldest events are overwritten and counted as dropped. *)

val disable : unit -> unit
(** Stop recording. Recorded events stay available to {!snapshot}. *)

val reset : unit -> unit
(** Drop all recorded events and rings. *)

val emit : kind -> int -> int -> int -> unit
(** [emit kind uid a b]: record one event, stamped with the global sequence
    counter and the current clock. No-op (one load, one branch, no
    allocation) when disabled. *)

val emit_at : ts:int -> kind -> int -> int -> int -> unit
(** {!emit} with an explicit timestamp: used for spans, whose [ts] is their
    start time. *)

val set_clock : (unit -> int) -> unit
(** Replace the timestamp source (default: [Unix.gettimeofday] scaled to
    integer nanoseconds). Install a monotonic source for trace timelines. *)

(** {1 Reading back} *)

type snapshot = {
  events : event array;  (** merged across domains, sorted by [seq] *)
  dropped : int;  (** events lost to ring wraparound, all rings *)
  complete_from : int;
      (** the merged stream has no gaps at [seq >= complete_from]: below it
          some ring may have overwritten events. 0 when nothing dropped. *)
}

val snapshot : unit -> snapshot
(** Merge every ring. Only sound at quiescence (no concurrent emitters). *)

val write_raw : out_channel -> snapshot -> unit
(** One-line header plus one [seq ts dom kind uid a b] line per event: the
    checker-artifact format read back by {!read_raw} / [trace_check.exe]. *)

val read_raw : in_channel -> snapshot
(** @raise Failure on a malformed file. *)
