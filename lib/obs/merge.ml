(* Client/server trace correlation.

   Both sides stamp wire-level events keyed by the same frame id (the
   client picks it, the server echoes it), so every completed request is an
   NTP-style exchange: client Req_send at [cs], server Req_recv at [sr],
   server Req_wire at [sw], client Req_done at [cd], all on different
   clocks. Assuming symmetric network delay, the server-minus-client clock
   offset estimate for one frame is (([sr] - [cs]) + ([sw] - [cd])) / 2;
   asymmetric queueing perturbs individual estimates, so we take the median
   over all complete exchanges and report the spread as a quality signal.

   The merged snapshot lives in the server clock: server events verbatim,
   client events shifted by the offset, renumbered after the last server
   seq (the replay checker ignores wire-level kinds, so a merged raw file
   still replay-checks against the server's SMR protocol events), and moved
   to fresh domain ids so client and server tracks never collide. *)

type correlation = {
  offset_ns : int;  (* median server_ts - client_ts *)
  pairs : int;  (* complete four-event exchanges found *)
  spread_ns : int;  (* max - min per-frame estimate *)
}

(* Synthesized Span op codes, chosen well above the shardkv op table. *)
let op_rpc = 100 (* client: send -> done *)
let op_queue = 101 (* server: recv -> dispatch *)
let op_serve = 102 (* server: dispatch -> reply *)
let op_write = 103 (* server: reply -> wire *)

let span_name = function
  | 100 -> Some "net.rpc"
  | 101 -> Some "net.queue"
  | 102 -> Some "net.serve"
  | 103 -> Some "net.write"
  | _ -> None

type stamps = {
  mutable cs : int;
  mutable cd : int;
  mutable sr : int;
  mutable sw : int;
}

let stamps_of ~(client : Trace.snapshot) ~(server : Trace.snapshot) =
  let tbl : (int, stamps) Hashtbl.t = Hashtbl.create 1024 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some s -> s
    | None ->
        let s = { cs = min_int; cd = min_int; sr = min_int; sw = min_int } in
        Hashtbl.add tbl id s;
        s
  in
  Array.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Req_send -> (get e.uid).cs <- e.ts
      | Trace.Req_done -> (get e.uid).cd <- e.ts
      | _ -> ())
    client.events;
  Array.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Req_recv when e.b >= 0 -> (get e.uid).sr <- e.ts
      | Trace.Req_wire -> (get e.uid).sw <- e.ts
      | Trace.Req_reply ->
          (* wire stamp may be missing (trace stopped first): the buffered-
             reply stamp is the closest server-side bound we have *)
          let s = get e.uid in
          if s.sw = min_int then s.sw <- e.ts
      | _ -> ())
    server.events;
  tbl

let estimate_offset ~client ~server =
  let tbl = stamps_of ~client ~server in
  let estimates = ref [] in
  Hashtbl.iter
    (fun _ s ->
      if s.cs > min_int && s.cd > min_int && s.sr > min_int && s.sw > min_int
      then
        estimates := ((s.sr - s.cs) + (s.sw - s.cd)) / 2 :: !estimates)
    tbl;
  match !estimates with
  | [] -> None
  | es ->
      let a = Array.of_list es in
      Array.sort compare a;
      let n = Array.length a in
      Some
        {
          offset_ns = a.(n / 2);
          pairs = n;
          spread_ns = a.(n - 1) - a.(0);
        }

let merge ~(client : Trace.snapshot) ~(server : Trace.snapshot) =
  let corr =
    match estimate_offset ~client ~server with
    | Some c -> c
    | None -> { offset_ns = 0; pairs = 0; spread_ns = 0 }
  in
  let max_seq =
    Array.fold_left (fun m (e : Trace.event) -> max m e.seq) (-1) server.events
  in
  let max_dom =
    Array.fold_left (fun m (e : Trace.event) -> max m e.dom) (-1) server.events
  in
  let dom_shift = max_dom + 1 in
  let shifted =
    Array.mapi
      (fun i (e : Trace.event) ->
        {
          e with
          Trace.seq = max_seq + 1 + i;
          ts = e.ts + corr.offset_ns;
          dom = e.dom + dom_shift;
        })
      client.events
  in
  let events = Array.append server.events shifted in
  ( corr,
    {
      Trace.events;
      dropped = server.dropped + client.dropped;
      complete_from = server.complete_from;
    } )

(* Turn matched Req_* instants into Span events so the Chrome exporter
   renders queue/serve/write/rpc as bars. Works on a merged snapshot (all
   timestamps on one clock); spans are appended with fresh seqs, on the
   domain of their opening event. *)
let synthesize_spans (snap : Trace.snapshot) =
  let opens : (int * int, int * int) Hashtbl.t = Hashtbl.create 1024 in
  (* key: (frame id, op code) -> (start ts, dom) *)
  let spans = ref [] in
  let open_at op (e : Trace.event) = Hashtbl.replace opens (e.uid, op) (e.ts, e.dom) in
  let close op (e : Trace.event) =
    match Hashtbl.find_opt opens (e.uid, op) with
    | Some (ts0, dom) when e.ts >= ts0 ->
        Hashtbl.remove opens (e.uid, op);
        spans :=
          { Trace.seq = 0; ts = ts0; dom; kind = Trace.Span; uid = e.uid;
            a = op; b = e.ts - ts0 }
          :: !spans
    | _ -> ()
  in
  Array.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Req_send -> open_at op_rpc e
      | Trace.Req_done -> close op_rpc e
      | Trace.Req_recv when e.b >= 0 ->
          open_at op_queue e
      | Trace.Req_dispatch ->
          close op_queue e;
          open_at op_serve e
      | Trace.Req_reply ->
          close op_serve e;
          open_at op_write e
      | Trace.Req_wire -> close op_write e
      | _ -> ())
    snap.events;
  let max_seq =
    Array.fold_left (fun m (e : Trace.event) -> max m e.seq) (-1) snap.events
  in
  let extra =
    List.mapi
      (fun i e -> { e with Trace.seq = max_seq + 1 + i })
      (List.rev !spans)
  in
  {
    snap with
    Trace.events = Array.append snap.events (Array.of_list extra);
  }
