(** Client/server trace correlation for the networked service.

    Both sides of a netkv exchange stamp wire-level {!Trace} events keyed
    by the frame id the client picked and the server echoed, so every
    completed request is an NTP-style exchange with four timestamps on two
    clocks. {!estimate_offset} recovers the server-minus-client clock
    offset as the median of per-frame estimates
    [((recv - send) + (wire - done)) / 2]; {!merge} rebases the client
    trace into the server clock and appends it, giving one totally-ordered
    snapshot that still replay-checks (the checker ignores wire-level
    kinds); {!synthesize_spans} turns the matched instants into Chrome
    [Span] bars — client rpc, server queue/serve/write — so "where did this
    p99 request spend its time" is readable off one timeline. *)

type correlation = {
  offset_ns : int;  (** median server-minus-client clock offset *)
  pairs : int;  (** complete four-event exchanges the estimate used *)
  spread_ns : int;  (** max - min per-frame estimate: quality signal *)
}

val estimate_offset :
  client:Trace.snapshot -> server:Trace.snapshot -> correlation option
(** [None] when no frame id has all four stamps (e.g. traces from unrelated
    runs). *)

val merge :
  client:Trace.snapshot ->
  server:Trace.snapshot ->
  correlation * Trace.snapshot
(** Server events verbatim; client events shifted into the server clock,
    renumbered after the last server seq, and moved to domain ids above
    every server domain. With no correlation pairs the offset falls back to
    0 (and [pairs = 0] says so). *)

val synthesize_spans : Trace.snapshot -> Trace.snapshot
(** Append [Span] events for every matched open/close pair of wire-level
    instants: client [Req_send]→[Req_done] becomes a [net.rpc] span, server
    [Req_recv]→[Req_dispatch] a [net.queue] span, [Req_dispatch]→
    [Req_reply] [net.serve], [Req_reply]→[Req_wire] [net.write]. Expects a
    single-clock (merged) snapshot. *)

val span_name : int -> string option
(** Names for the synthesized span op codes; [None] for codes this module
    did not mint (the shardkv op table owns those). *)

val op_rpc : int
val op_queue : int
val op_serve : int
val op_write : int
