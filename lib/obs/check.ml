type violation = {
  v_seq : int;
  v_dom : int;
  v_uid : int;
  v_rule : string;
  v_detail : string;
}

type summary = {
  events : int;
  domains : int;
  allocs : int;
  frees : int;
  protects : int;
  steps : int;
  spans : int;
  unlink_batches : int;
  crashes : int;
  below_horizon : int;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s] seq=%d dom=%d uid=%d: %s" v.v_rule v.v_seq v.v_dom
    v.v_uid v.v_detail

let pp_summary ppf s =
  Format.fprintf ppf
    "%d events over %d domain(s): %d allocs, %d frees, %d validated \
     protections, %d steps, %d spans, %d unlink batches%s%s"
    s.events s.domains s.allocs s.frees s.protects s.steps s.spans
    s.unlink_batches
    (if s.crashes > 0 then Printf.sprintf ", %d crash(es)" s.crashes else "")
    (if s.below_horizon > 0 then
       Printf.sprintf " (%d below the wraparound horizon, state-only)"
         s.below_horizon
     else "")

(* Per-uid replay state. [alloc_seq]/[retire_seq]/[free_seq] are -1 until the
   event is seen. [batch] is the unlink batch key, or None for classic
   retirement. [open_protects] counts validated protections currently open
   on this uid across all domains; [protects_by_dom] keeps the per-domain
   share so an unmatched Unprotect (from an unvalidated protection) cannot
   close another domain's interval. *)
type ustate = {
  mutable alloc_seq : int;
  mutable retire_seq : int;
  mutable free_seq : int;
  mutable batch : (int * int) option; (* (dom, batch id) *)
  mutable invalidate_seq : int;
  mutable invalidate_dom : int;
  mutable open_protects : int;
  mutable protects_by_dom : (int * int) list; (* dom -> open count *)
  mutable last_protect_seq : int;
  mutable last_protect_dom : int;
}

type bstate = {
  mutable members : int list; (* uids retired under this batch *)
  mutable invalidated : int; (* members invalidated so far *)
}

(* The invalid bit of Smr_core.Tagged, restated here so obs stays
   dependency-free; test_obs pins the two together. *)
let tagged_invalid_bit = 2

(* Smr_core.Mem.phantom_uid, likewise restated (and pinned by test_obs).
   The phantom is an array filler for retire bags; no event may ever carry
   its uid — a phantom in a trace means a bag slot leaked into a retire,
   free or protection path. Distinct from -1, the "no node" Step sentinel. *)
let phantom_uid = -2

let run ?(complete_from = 0) (events : Trace.event array) =
  let ustates : (int, ustate) Hashtbl.t = Hashtbl.create 4096 in
  let batches : (int * int, bstate) Hashtbl.t = Hashtbl.create 64 in
  let doms : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  let allocs = ref 0
  and frees = ref 0
  and protects = ref 0
  and steps = ref 0
  and spans = ref 0
  and crashes = ref 0
  and below = ref 0 in
  let ustate uid =
    match Hashtbl.find_opt ustates uid with
    | Some u -> u
    | None ->
        let u =
          {
            alloc_seq = -1;
            retire_seq = -1;
            free_seq = -1;
            batch = None;
            invalidate_seq = -1;
            invalidate_dom = -1;
            open_protects = 0;
            protects_by_dom = [];
            last_protect_seq = -1;
            last_protect_dom = -1;
          }
        in
        Hashtbl.add ustates uid u;
        u
  in
  let prev_seq = ref (-1) in
  Array.iter
    (fun (e : Trace.event) ->
      if e.seq <= !prev_seq then
        invalid_arg "Check.run: events not strictly ordered by seq";
      prev_seq := e.seq;
      Hashtbl.replace doms e.dom ();
      (* Events below the horizon feed state but never raise: their
         context may have been dropped by ring wraparound. *)
      let checked = e.seq >= complete_from in
      if not checked then incr below;
      let flag rule detail =
        if checked then
          violations :=
            {
              v_seq = e.seq;
              v_dom = e.dom;
              v_uid = e.uid;
              v_rule = rule;
              v_detail = detail;
            }
            :: !violations
      in
      (* A uid is fully observed only when its Alloc lies above the horizon;
         lifecycle rules about *missing* prior events are restricted to
         those, since a dropped prefix could hide the event. *)
      let fully_observed u = u.alloc_seq >= complete_from in
      if e.uid = phantom_uid || (e.kind = Trace.Step && e.a = phantom_uid)
      then
        flag "phantom"
          (Printf.sprintf
             "%s event carries the phantom header uid %d: a retire-bag \
              filler slot leaked into a real SMR path"
             (Trace.kind_name e.kind) phantom_uid);
      match e.kind with
      | Trace.Alloc ->
          incr allocs;
          let u = ustate e.uid in
          if u.alloc_seq >= 0 then
            flag "lifecycle"
              (Printf.sprintf "uid %d allocated twice (first at seq %d)" e.uid
                 u.alloc_seq);
          u.alloc_seq <- e.seq
      | Trace.Retire | Trace.Unlink ->
          let u = ustate e.uid in
          if u.free_seq >= 0 then
            flag "lifecycle"
              (Printf.sprintf "uid %d retired after being freed at seq %d"
                 e.uid u.free_seq);
          (* Unlink annotates the Retire that Mem.retire_mark already
             emitted for the same uid (HP++ TryUnlink emits both), so only a
             repeated Retire counts as a double retirement. *)
          if e.kind = Trace.Retire && u.retire_seq >= 0 && fully_observed u
          then
            flag "lifecycle"
              (Printf.sprintf "uid %d retired twice (first at seq %d)" e.uid
                 u.retire_seq);
          if u.retire_seq < 0 then u.retire_seq <- e.seq;
          if e.kind = Trace.Unlink then begin
            let key = (e.dom, e.a) in
            u.batch <- Some key;
            let b =
              match Hashtbl.find_opt batches key with
              | Some b -> b
              | None ->
                  let b = { members = []; invalidated = 0 } in
                  Hashtbl.add batches key b;
                  b
            in
            b.members <- e.uid :: b.members
          end
      | Trace.Invalidate ->
          let u = ustate e.uid in
          u.invalidate_seq <- e.seq;
          u.invalidate_dom <- e.dom;
          (match Hashtbl.find_opt batches (e.dom, e.a) with
          | Some b -> b.invalidated <- b.invalidated + 1
          | None -> ());
          if u.free_seq >= 0 then
            flag "invalidate-before-free"
              (Printf.sprintf "uid %d invalidated after being freed at seq %d"
                 e.uid u.free_seq)
      | Trace.Free ->
          incr frees;
          let u = ustate e.uid in
          let cascade = e.a = 1 in
          if u.free_seq >= 0 && fully_observed u then
            flag "lifecycle"
              (Printf.sprintf "uid %d freed twice (first at seq %d)" e.uid
                 u.free_seq);
          if u.retire_seq < 0 && (not cascade) && fully_observed u then
            flag "lifecycle"
              (Printf.sprintf "uid %d freed without a preceding retire" e.uid);
          if u.open_protects > 0 then
            flag "protect-window"
              (Printf.sprintf
                 "uid %d freed while %d validated protection(s) were open \
                  (latest: dom %d at seq %d)"
                 e.uid u.open_protects u.last_protect_dom u.last_protect_seq);
          (match u.batch with
          | Some key when fully_observed u -> (
              match Hashtbl.find_opt batches key with
              | Some b ->
                  let missing =
                    List.filter
                      (fun m ->
                        let mu = ustate m in
                        mu.invalidate_seq < 0 || mu.invalidate_seq > e.seq)
                      b.members
                  in
                  if missing <> [] then
                    flag "invalidate-before-free"
                      (Printf.sprintf
                         "uid %d (unlink batch %d of dom %d) freed before \
                          the whole batch was invalidated; missing: %s"
                         e.uid (snd key) (fst key)
                         (String.concat ","
                            (List.map string_of_int missing)))
              | None -> ())
          | _ -> ());
          u.free_seq <- e.seq
      | Trace.Protect ->
          incr protects;
          let u = ustate e.uid in
          if u.free_seq >= 0 then
            flag "protect-window"
              (Printf.sprintf
                 "uid %d: validated protection established after free at seq \
                  %d"
                 e.uid u.free_seq);
          u.open_protects <- u.open_protects + 1;
          u.last_protect_seq <- e.seq;
          u.last_protect_dom <- e.dom;
          let cur =
            match List.assoc_opt e.dom u.protects_by_dom with
            | Some c -> c
            | None -> 0
          in
          u.protects_by_dom <-
            (e.dom, cur + 1) :: List.remove_assoc e.dom u.protects_by_dom
      | Trace.Unprotect -> (
          let u = ustate e.uid in
          (* Unvalidated protections emit Unprotect with no matching
             Protect: only close an interval this domain actually opened. *)
          match List.assoc_opt e.dom u.protects_by_dom with
          | Some c when c > 0 ->
              u.protects_by_dom <-
                (e.dom, c - 1) :: List.remove_assoc e.dom u.protects_by_dom;
              u.open_protects <- u.open_protects - 1
          | _ -> ())
      | Trace.Step ->
          incr steps;
          if e.b land tagged_invalid_bit <> 0 then
            flag "step-from-invalidated"
              (Printf.sprintf
                 "step from uid %d to uid %d read a link carrying the \
                  invalidation bit (tag %d)"
                 e.uid e.a e.b);
          if e.uid >= 0 then begin
            let u = ustate e.uid in
            if u.free_seq >= 0 then
              flag "step-from-freed"
                (Printf.sprintf "step out of uid %d freed at seq %d" e.uid
                   u.free_seq);
            if u.invalidate_seq >= 0 && u.invalidate_dom = e.dom then
              flag "step-from-invalidated"
                (Printf.sprintf
                   "dom %d stepped out of uid %d which it invalidated itself \
                    at seq %d"
                   e.dom e.uid u.invalidate_seq)
          end
      | Trace.Span -> incr spans
      | Trace.Crash ->
          (* [a] is the victim's domain. Its open protection intervals die
             with it: the reaper withdraws the slots from its own domain,
             which per-domain Unprotect attribution would never match. The
             wipe is instantaneous — a later (reused) domain id opening
             fresh protections is unaffected. *)
          incr crashes;
          Hashtbl.iter
            (fun _ u ->
              match List.assoc_opt e.a u.protects_by_dom with
              | Some c when c > 0 ->
                  u.protects_by_dom <- List.remove_assoc e.a u.protects_by_dom;
                  u.open_protects <- u.open_protects - c
              | _ -> ())
            ustates
      | Trace.Validation_fail | Trace.Epoch_advance | Trace.Reclaim_pass
      (* Collector pipeline events carry batch statistics, not lifecycle
         transitions: the invariants they could violate (free-under-
         protection, invalidate-before-free) are already enforced on the
         Free/Invalidate events the drain cycle itself emits. *)
      | Trace.Handoff | Trace.Drain | Trace.Adapt -> ()
      (* Wire-level request spans are timing markers keyed by frame id, not
         block uids: nothing lifecycle-shaped to check. *)
      | Trace.Req_recv | Trace.Req_dispatch | Trace.Req_reply
      | Trace.Req_wire | Trace.Req_send | Trace.Req_done -> ())
    events;
  match !violations with
  | [] ->
      Ok
        {
          events = Array.length events;
          domains = Hashtbl.length doms;
          allocs = !allocs;
          frees = !frees;
          protects = !protects;
          steps = !steps;
          spans = !spans;
          unlink_batches = Hashtbl.length batches;
          crashes = !crashes;
          below_horizon = !below;
        }
  | vs ->
      let severity = function
        | "phantom" -> 0
        | "protect-window" -> 1
        | "step-from-freed" -> 2
        | "invalidate-before-free" -> 3
        | "step-from-invalidated" -> 4
        | _ -> 5
      in
      Error
        (List.sort
           (fun a b ->
             match compare (severity a.v_rule) (severity b.v_rule) with
             | 0 -> compare a.v_seq b.v_seq
             | c -> c)
           vs)

let run_snapshot (s : Trace.snapshot) =
  run ~complete_from:s.complete_from s.events
