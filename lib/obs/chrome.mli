(** Chrome trace-event (about://tracing, Perfetto) exporter for trace
    snapshots. Each per-domain operation becomes a complete span; SMR events
    inside it become instant events on the same track. *)

val default_span_name : int -> string
(** Span name for operation index [op] when no [span_name] is supplied. *)

val to_buffer : ?span_name:(int -> string) -> Trace.snapshot -> Buffer.t -> unit
(** Append the snapshot as a Chrome [traceEvents] JSON document. *)

val to_string : ?span_name:(int -> string) -> Trace.snapshot -> string

val write : ?span_name:(int -> string) -> string -> Trace.snapshot -> unit
(** [write path snap] writes the JSON document to [path]. *)
