type kind =
  | Alloc
  | Retire
  | Unlink
  | Invalidate
  | Free
  | Protect
  | Unprotect
  | Validation_fail
  | Epoch_advance
  | Reclaim_pass
  | Step
  | Span
  | Crash
  | Handoff
  | Drain
  | Adapt
  | Req_recv
  | Req_dispatch
  | Req_reply
  | Req_wire
  | Req_send
  | Req_done

let kind_code = function
  | Alloc -> 0
  | Retire -> 1
  | Unlink -> 2
  | Invalidate -> 3
  | Free -> 4
  | Protect -> 5
  | Unprotect -> 6
  | Validation_fail -> 7
  | Epoch_advance -> 8
  | Reclaim_pass -> 9
  | Step -> 10
  | Span -> 11
  | Crash -> 12
  | Handoff -> 13
  | Drain -> 14
  | Adapt -> 15
  | Req_recv -> 16
  | Req_dispatch -> 17
  | Req_reply -> 18
  | Req_wire -> 19
  | Req_send -> 20
  | Req_done -> 21

let kind_of_code = function
  | 0 -> Alloc
  | 1 -> Retire
  | 2 -> Unlink
  | 3 -> Invalidate
  | 4 -> Free
  | 5 -> Protect
  | 6 -> Unprotect
  | 7 -> Validation_fail
  | 8 -> Epoch_advance
  | 9 -> Reclaim_pass
  | 10 -> Step
  | 11 -> Span
  | 12 -> Crash
  | 13 -> Handoff
  | 14 -> Drain
  | 15 -> Adapt
  | 16 -> Req_recv
  | 17 -> Req_dispatch
  | 18 -> Req_reply
  | 19 -> Req_wire
  | 20 -> Req_send
  | 21 -> Req_done
  | c -> invalid_arg ("Trace.kind_of_code: " ^ string_of_int c)

let kind_name = function
  | Alloc -> "alloc"
  | Retire -> "retire"
  | Unlink -> "unlink"
  | Invalidate -> "invalidate"
  | Free -> "free"
  | Protect -> "protect"
  | Unprotect -> "unprotect"
  | Validation_fail -> "validation_fail"
  | Epoch_advance -> "epoch_advance"
  | Reclaim_pass -> "reclaim_pass"
  | Step -> "step"
  | Span -> "span"
  | Crash -> "crash"
  | Handoff -> "handoff"
  | Drain -> "drain"
  | Adapt -> "adapt"
  | Req_recv -> "req_recv"
  | Req_dispatch -> "req_dispatch"
  | Req_reply -> "req_reply"
  | Req_wire -> "req_wire"
  | Req_send -> "req_send"
  | Req_done -> "req_done"

type event = {
  seq : int;
  ts : int;
  dom : int;
  kind : kind;
  uid : int;
  a : int;
  b : int;
}

(* Ring slots are [stride] consecutive ints in one flat array: no per-event
   boxes, so an enabled emit writes six ints and moves a cursor. *)
let stride = 8
let f_seq = 0
let f_ts = 1
let f_kind = 2
let f_uid = 3
let f_a = 4
let f_b = 5

type ring = {
  gen : int; (* tracer generation this ring belongs to *)
  dom : int;
  buf : int array;
  cap : int; (* capacity in events *)
  mutable n : int; (* total events ever written; kept = min n cap *)
}

module Hook = Fault.Hook

(* The tracing on/off bit lives in the combined {!Fault.Hook} word, shared
   with the fault layer and the deterministic scheduler, so every
   instrumented site pays one atomic load however many concerns are armed.
   [enabled] answers "should this site prepare and call emit": true when
   recording, and also when the scheduler is installed — emit is a yield
   point, and it must fire on the same sites whether or not the tracer
   records (schedule trails stay comparable across traced and bare runs). *)
(* Module-local binding of the shared word: the guards below are the
   hottest loads in the tree, and reaching the atomic through [Hook.word]'s
   module block measurably slows the disarmed path (see hook.mli). *)
let hook_flags = Hook.flags

let[@inline] enabled () =
  Atomic.get hook_flags land (Hook.trace_bit lor Hook.sched_bit) <> 0

let recording () = Atomic.get hook_flags land Hook.trace_bit <> 0
let seq_counter = Atomic.make 0

(* Bumped by [reset]: rings from an older generation are abandoned where
   they lie (domains still holding one mint a fresh ring on next emit). *)
let generation = Atomic.make 0
let ring_capacity = Atomic.make (1 lsl 15)
let rings : ring list Atomic.t = Atomic.make []

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)
let clock = Atomic.make default_clock
let set_clock f = Atomic.set clock f

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let rec register_ring r =
  let cur = Atomic.get rings in
  if not (Atomic.compare_and_set rings cur (r :: cur)) then register_ring r

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  let gen = Atomic.get generation in
  match !cell with
  | Some r when r.gen = gen -> r
  | _ ->
      let cap = Atomic.get ring_capacity in
      let r =
        {
          gen;
          dom = (Domain.self () :> int);
          buf = Array.make (cap * stride) 0;
          cap;
          n = 0;
        }
      in
      register_ring r;
      cell := Some r;
      r

let emit_enabled ~ts k uid a b =
  let r = my_ring () in
  let seq = Atomic.fetch_and_add seq_counter 1 in
  let i = r.n mod r.cap * stride in
  let buf = r.buf in
  buf.(i + f_seq) <- seq;
  buf.(i + f_ts) <- ts;
  buf.(i + f_kind) <- kind_code k;
  buf.(i + f_uid) <- uid;
  buf.(i + f_a) <- a;
  buf.(i + f_b) <- b;
  r.n <- r.n + 1

(* Slow path, entered only when some hook bit is set: yield to the
   scheduler first (sched bit), then record (trace bit). The two are
   independent so a schedule replay visits identical yield sites with the
   ring on or off. *)
let emit_hooked f ~ts k uid a b =
  if f land Hook.sched_bit <> 0 then
    Hook.yield (Hook.site_trace_base + kind_code k);
  if f land Hook.trace_bit <> 0 then
    emit_enabled ~ts:(if ts >= 0 then ts else (Atomic.get clock) ()) k uid a b

let[@inline] emit k uid a b =
  let f = Atomic.get hook_flags in
  if f <> 0 then emit_hooked f ~ts:(-1) k uid a b

let[@inline] emit_at ~ts k uid a b =
  let f = Atomic.get hook_flags in
  if f <> 0 then emit_hooked f ~ts k uid a b

let reset () =
  Atomic.incr generation;
  Atomic.set rings [];
  Atomic.set seq_counter 0

let enable ?(capacity = 1 lsl 15) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity";
  reset ();
  Atomic.set ring_capacity capacity;
  Hook.set_bit Hook.trace_bit

let disable () = Hook.clear_bit Hook.trace_bit

type snapshot = { events : event array; dropped : int; complete_from : int }

let ring_event r j =
  (* j-th oldest kept event *)
  let kept = min r.n r.cap in
  let first = r.n - kept in
  let i = (first + j) mod r.cap * stride in
  let buf = r.buf in
  {
    seq = buf.(i + f_seq);
    ts = buf.(i + f_ts);
    dom = r.dom;
    kind = kind_of_code buf.(i + f_kind);
    uid = buf.(i + f_uid);
    a = buf.(i + f_a);
    b = buf.(i + f_b);
  }

let snapshot () =
  let rs = Atomic.get rings in
  let total = List.fold_left (fun acc r -> acc + min r.n r.cap) 0 rs in
  let events = Array.make total { seq = 0; ts = 0; dom = 0; kind = Alloc; uid = 0; a = 0; b = 0 } in
  let pos = ref 0 in
  let dropped = ref 0 in
  let complete_from = ref 0 in
  List.iter
    (fun r ->
      let kept = min r.n r.cap in
      dropped := !dropped + (r.n - kept);
      if r.n > r.cap && kept > 0 then begin
        let oldest_kept = (ring_event r 0).seq in
        if oldest_kept > !complete_from then complete_from := oldest_kept
      end;
      for j = 0 to kept - 1 do
        events.(!pos) <- ring_event r j;
        incr pos
      done)
    rs;
  Array.sort (fun x y -> compare x.seq y.seq) events;
  { events; dropped = !dropped; complete_from = !complete_from }

let write_raw oc snap =
  Printf.fprintf oc "# obs-trace v1 dropped=%d complete_from=%d\n" snap.dropped
    snap.complete_from;
  Array.iter
    (fun e ->
      Printf.fprintf oc "%d %d %d %d %d %d %d\n" e.seq e.ts e.dom
        (kind_code e.kind) e.uid e.a e.b)
    snap.events

let read_raw ic =
  let header = input_line ic in
  let dropped, complete_from =
    try
      Scanf.sscanf header "# obs-trace v1 dropped=%d complete_from=%d"
        (fun d c -> (d, c))
    with _ -> failwith "Trace.read_raw: bad header"
  in
  let events = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" then
         let e =
           try
             Scanf.sscanf line "%d %d %d %d %d %d %d"
               (fun seq ts dom k uid a b ->
                 { seq; ts; dom; kind = kind_of_code k; uid; a; b })
           with _ -> failwith ("Trace.read_raw: bad line: " ^ line)
         in
         events := e :: !events
     done
   with End_of_file -> ());
  let events = Array.of_list (List.rev !events) in
  Array.sort (fun x y -> compare x.seq y.seq) events;
  { events; dropped; complete_from }
