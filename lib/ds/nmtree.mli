(** Natarajan-Mittal external BST: edge-flagging with a spliced routing path retired per remove.

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      module C :
        sig
          type 'n protect_outcome =
            'n Ds_common.Make(S).protect_outcome =
              Ok of 'n Ds_common.Tagged.t
            | Invalid
          val uid_of_hdr : Ds_common.Mem.header option -> int
          val trace_step :
            node_header:('a -> Ds_common.Mem.header) ->
            src:Ds_common.Mem.header option ->
            validated:bool -> 'a Ds_common.Tagged.t -> unit
          val try_protect :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> 'a protect_outcome
          val protect_pessimistic :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> bool
          val with_crit :
            S.handle ->
            Smr_core.Stats.t ->
            (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
        end
      val flag_bit : int
      val tag_bit : int
      val is_flagged : 'a Tagged.t -> bool
      val is_tagged : 'a Tagged.t -> bool
      val inf1 : int
      val inf2 : int
      type kind = Leaf | Internal
      type 'v node = {
        hdr : Mem.header;
        key : int;
        value : 'v option;
        kind : kind;
        left : 'v node Link.t;
        right : 'v node Link.t;
      }
      val node_header : 'a node -> Mem.header
      type 'v t = { scheme : S.t; root : 'v node; }
      type local = {
        handle : S.handle;
        hp_ancestor : S.guard;
        hp_successor : S.guard;
        hp_parent : S.guard;
        mutable hp_leaf : S.guard;
        mutable hp_cur : S.guard;
      }
      type 'v seek_record = {
        sr_ancestor : 'v node;
        sr_ancestor_link : 'v node Link.t;
        sr_ancestor_rec : 'v node Tagged.t;
        sr_successor : 'v node;
        sr_parent : 'v node;
        sr_parent_link : 'v node Link.t;
        sr_parent_rec : 'v node Tagged.t;
        sr_leaf : 'v node;
      }
      val mk_node :
        Smr_core.Stats.t ->
        key:int ->
        value:'a option ->
        kind:kind ->
        left:'a node Smr_core.Tagged.t ->
        right:'a node Smr_core.Tagged.t -> 'a node
      val create : S.t -> 'a t
      val scheme : 'a t -> S.t
      val stats : 'a t -> Smr_core.Stats.t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val child_link : 'a node -> int -> 'a node Link.t
      val seek :
        'a t -> local -> int -> [> `Done of 'a seek_record | `Prot | `Retry ]
      val invalidate_nodes : 'a node list -> unit
      val collect_spliced : 'a node -> int -> 'a node list
      val cleanup : local -> int -> 'v seek_record -> bool
      val get : 'a t -> local -> int -> 'a option
      val insert : 'a t -> local -> int -> 'a -> bool
      val remove : 'a t -> local -> int -> bool
      val to_list : 'a t -> (int * 'a) list
      val size : 'a t -> int
      val assert_reachable_not_freed : 'a t -> unit
    end
