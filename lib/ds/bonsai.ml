(** Bonsai tree (Clements et al., ASPLOS 2012), non-blocking variant: a
    weight-balanced search tree with immutable nodes, updated by copying the
    affected path and swinging a single root pointer with CAS.

    This is the paper's odd duck among the seven benchmark structures:
    - an update retires the whole replaced path in one [try_unlink] with an
      {e empty frontier} — the unlinked nodes' children are either fellow
      unlinked nodes or shared subtrees still reachable from the new root —
      so "HP++ does not incur any overhead" (paper §5);
    - the original HP can only validate a protection against the root
      pointer, so {e any} concurrent update aborts an HP read;
    - reference counting pays for every shared-subtree link created by path
      copying ([incr_ref]) and must cascade destruction through
      [retire_with_children] — the paper's explanation for RC's poor Bonsai
      throughput.

    Updates validate against the root for every scheme (a Bonsai update is a
    read phase plus one CAS — access-aware in the paper's sense); reads use
    the scheme's own protection. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v;
    left : 'v node option;
    right : 'v node option;
    size : int;
    invalid : bool Atomic.t;
  }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; root : 'v node Link.t }

  type local = {
    handle : S.handle;
    mutable hp_parent : S.guard;
    mutable hp_child : S.guard;
    mutable upd_guards : S.guard list;
    mutable upd_used : S.guard list;
  }

  exception Restart

  let create scheme = { scheme; root = Link.null () }
  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    {
      handle;
      hp_parent = S.guard handle;
      hp_child = S.guard handle;
      upd_guards = [];
      upd_used = [];
    }

  let clear_local l =
    S.release l.hp_parent;
    S.release l.hp_child;
    List.iter S.release l.upd_guards;
    List.iter S.release l.upd_used

  (* --- update-side machinery -------------------------------------------- *)

  (* Per-operation context: the root record the rebuild started from, the
     old nodes it replaces, and the new nodes it creates. *)
  type 'v ctx = {
    root_rec : 'v node Tagged.t;
    mutable replaced : 'v node list;
    mutable created : 'v node list;
    mutable pending_incrs : ('v node * Mem.header) list;
        (* (creator, old child): new links to surviving old subtrees,
           counted at commit only for creators that made it into the new
           tree *)
    mutable scrapped : 'v node list;
        (* nodes created by this op and then deconstructed by a rotation:
           they belong to neither tree *)
  }

  let take_guard l =
    match l.upd_guards with
    | g :: rest ->
        l.upd_guards <- rest;
        l.upd_used <- g :: l.upd_used;
        g
    | [] ->
        let g = S.guard l.handle in
        l.upd_used <- g :: l.upd_used;
        g

  let reset_guards l =
    List.iter S.release l.upd_used;
    l.upd_guards <- List.rev_append l.upd_used l.upd_guards;
    l.upd_used <- []

  (* Protect an old node touched by the rebuild. The validation is the
     root-pointer over-approximation: if the root moved, our CAS is doomed
     anyway, so restart. *)
  let guard_old t l ctx n =
    if S.needs_protection then begin
      let g = take_guard l in
      S.protect g n.hdr;
      if not (S.protection_valid l.handle) then raise Restart;
      if not (Link.get t.root == ctx.root_rec) then raise Restart
    end;
    Mem.check_access n.hdr

  let node_size = function None -> 0 | Some n -> n.size
  let weight n = node_size n + 1

  (* Create a new node; links it gives to surviving old subtrees are queued
     for reference counting at commit time. New children need no count: they
     were born with refcount 1 — this very link. *)
  let mk ctx ~is_old ~key ~value ~left ~right stats_ =
    let n =
      {
        hdr = Mem.make stats_;
        key;
        value;
        left;
        right;
        size = node_size left + node_size right + 1;
        invalid = Atomic.make false;
      }
    in
    ctx.created <- n :: ctx.created;
    if S.counts_references then begin
      let count_child = function
        | Some c when is_old c ->
            ctx.pending_incrs <- (n, c.hdr) :: ctx.pending_incrs
        | _ -> ()
      in
      count_child left;
      count_child right
    end;
    n

  (* Deconstruct an old node: it will not appear in the new tree. *)
  let consume ctx n = ctx.replaced <- n :: ctx.replaced

  (* Deconstruct a node this very operation created: it appears in neither
     tree, so it must not be retired, and the links it queued for reference
     counting never materialize. *)
  let scrap ctx n = ctx.scrapped <- n :: ctx.scrapped

  (* Adams-style weight-balanced rebalancing (delta = 3, ratio = 2): called
     on a subtree whose one side changed by at most one element. All nodes
     passed in are new copies or shared subtrees; restructuring an old
     shared child consumes it. *)
  let delta = 3
  let ratio = 2

  let rebalance t l ctx st ~is_old ~key ~value ~left ~right =
    let node ~key ~value ~left ~right = mk ctx ~is_old ~key ~value ~left ~right st in
    let read n =
      if is_old n then guard_old t l ctx n;
      n
    in
    if weight left + weight right <= 2 then node ~key ~value ~left ~right
    else if weight right > delta * weight left then begin
      (* right too heavy *)
      let r = read (Option.get right) in
      if is_old r then consume ctx r else scrap ctx r;
      let rl = Option.map read r.left and rr = Option.map read r.right in
      if weight rl < ratio * weight rr then
        (* single left rotation *)
        node ~key:r.key ~value:r.value
          ~left:(Some (node ~key ~value ~left ~right:rl))
          ~right:rr
      else begin
        (* double rotation: pull up r.left *)
        let rl = Option.get rl in
        if is_old rl then consume ctx rl else scrap ctx rl;
        node ~key:rl.key ~value:rl.value
          ~left:(Some (node ~key ~value ~left ~right:rl.left))
          ~right:(Some (node ~key:r.key ~value:r.value ~left:rl.right ~right:rr))
      end
    end
    else if weight left > delta * weight right then begin
      let lf = read (Option.get left) in
      if is_old lf then consume ctx lf else scrap ctx lf;
      let ll = Option.map read lf.left and lr = Option.map read lf.right in
      if weight lr < ratio * weight ll then
        node ~key:lf.key ~value:lf.value ~left:ll
          ~right:(Some (node ~key ~value ~left:lr ~right))
      else begin
        let lr = Option.get lr in
        if is_old lr then consume ctx lr else scrap ctx lr;
        node ~key:lr.key ~value:lr.value
          ~left:(Some (node ~key:lf.key ~value:lf.value ~left:ll ~right:lr.left))
          ~right:(Some (node ~key ~value ~left:lr.right ~right))
      end
    end
    else node ~key ~value ~left ~right

  (* One attempted update: [rebuild] maps the protected old tree to a new
     tree (or None when the operation is a no-op). Raises [Restart] when a
     protection fails mid-read. *)
  let update t l ~noop (rebuild : 'v ctx -> is_old:('v node -> bool) -> 'v node Tagged.t -> ('v node option * 'a) option) =
    let attempt () =
      reset_guards l;
      let root_rec = Link.get t.root in
      let ctx =
        {
          root_rec;
          replaced = [];
          created = [];
          pending_incrs = [];
          scrapped = [];
        }
      in
      (* Old nodes are those not created by this operation. The created list
         is short (O(log n)), so membership by physical scan is fine. *)
      let is_old n = not (List.memq n ctx.created) in
      match rebuild ctx ~is_old root_rec with
      | None -> `Done_noop
      | Some (new_root, result) ->
          let desired = Tagged.make new_root in
          (* The unlink frontier: children of replaced nodes that survive
             (the shared subtree roots). A reader standing on a replaced but
             not-yet-invalidated node may still step into them, so they must
             stay protected until the whole batch is invalidated — the
             paper's Figure 6 second scenario, one tree level at a time. *)
          let in_replaced n = List.memq n ctx.replaced in
          let frontier =
            List.concat_map
              (fun n ->
                List.filter_map
                  (function
                    | Some c when not (in_replaced c) -> Some c.hdr
                    | _ -> None)
                  [ n.left; n.right ])
              ctx.replaced
          in
          let committed =
            S.try_unlink l.handle ~frontier
              ~do_unlink:(fun () ->
                if Link.cas_clean t.root root_rec desired then
                  Some (if S.counts_references then [] else ctx.replaced)
                else None)
              ~node_header
              ~invalidate:(fun _ ->
                List.iter
                  (fun n -> Atomic.set n.invalid true)
                  ctx.replaced)
          in
          if committed then begin
            List.iter (fun _ -> Stats.on_discard (stats t)) ctx.scrapped;
            if S.counts_references then begin
              (* Count the new tree's links into surviving old subtrees, and
                 the root link if it was transferred to an old node. Links
                 queued by scrapped creators never materialized. Every
                 replaced node except the old root is also decremented by
                 its replaced parent's destruction cascade, so pre-
                 compensate. All increments precede the deferred retires. *)
              List.iter
                (fun (creator, hdr) ->
                  if not (List.memq creator ctx.scrapped) then
                    S.incr_ref hdr)
                ctx.pending_incrs;
              (match new_root with
              | Some nr when is_old nr -> S.incr_ref nr.hdr
              | _ -> ());
              let old_root = Tagged.ptr ctx.root_rec in
              List.iter
                (fun z ->
                  match old_root with
                  | Some r when r == z -> ()
                  | _ -> S.incr_ref z.hdr)
                ctx.replaced;
              List.iter
                (fun n ->
                  S.retire_with_children l.handle n.hdr ~children:(fun () ->
                      List.filter_map
                        (Option.map node_header)
                        [ n.left; n.right ]))
                ctx.replaced
            end;
            `Committed result
          end
          else begin
            List.iter (fun _ -> Stats.on_discard (stats t)) ctx.created;
            `Lost
          end
    in
    C.with_crit l.handle (stats t) (fun () ->
        match attempt () with
        | `Committed result -> `Done result
        | `Done_noop -> `Done noop
        | `Lost -> `Retry
        | exception Restart -> `Prot)

  (* --- operations -------------------------------------------------------- *)

  let insert t l key value =
    let st = stats t in
    update t l ~noop:false (fun ctx ~is_old root_rec ->
          let rec go = function
            | None -> Some (mk ctx ~is_old ~key ~value ~left:None ~right:None st)
            | Some n ->
                guard_old t l ctx n;
                if key = n.key then None
                else if key < n.key then (
                  match go n.left with
                  | None -> None
                  | Some left ->
                      consume ctx n;
                      Some
                        (rebalance t l ctx st ~is_old ~key:n.key ~value:n.value
                           ~left:(Some left) ~right:n.right))
                else
                  match go n.right with
                  | None -> None
                  | Some right ->
                      consume ctx n;
                      Some
                        (rebalance t l ctx st ~is_old ~key:n.key ~value:n.value
                           ~left:n.left ~right:(Some right))
          in
          match go (Tagged.ptr root_rec) with
          | None -> None
          | Some root -> Some (Some root, true))

  (* Delete: standard BST removal on the copied path; joining two subtrees
     pulls up the minimum of the right side. *)
  let remove t l key =
    let st = stats t in
    update t l ~noop:false (fun ctx ~is_old root_rec ->
          let rec min_node n =
            guard_old t l ctx n;
            match n.left with None -> n | Some c -> min_node c
          in
          (* remove the minimum, returning the new subtree *)
          let rec drop_min n =
            guard_old t l ctx n;
            consume ctx n;
            match n.left with
            | None -> n.right
            | Some c ->
                Some
                  (rebalance t l ctx st ~is_old ~key:n.key ~value:n.value
                     ~left:(drop_min c) ~right:n.right)
          in
          let rec go = function
            | None -> None (* key absent *)
            | Some n -> (
                guard_old t l ctx n;
                if key = n.key then begin
                  consume ctx n;
                  match (n.left, n.right) with
                  | None, r -> Some r
                  | l_, None -> Some l_
                  | l_, Some r ->
                      let succ = min_node r in
                      Some
                        (Some
                           (rebalance t l ctx st ~is_old ~key:succ.key
                              ~value:succ.value ~left:l_ ~right:(drop_min r)))
                end
                else if key < n.key then
                  match go n.left with
                  | None -> None
                  | Some left ->
                      consume ctx n;
                      Some
                        (Some
                           (rebalance t l ctx st ~is_old ~key:n.key
                              ~value:n.value ~left ~right:n.right))
                else
                  match go n.right with
                  | None -> None
                  | Some right ->
                      consume ctx n;
                      Some
                        (Some
                           (rebalance t l ctx st ~is_old ~key:n.key
                              ~value:n.value ~left:n.left ~right)))
          in
          match go (Tagged.ptr root_rec) with
          | None -> None
          | Some root -> Some (root, true))

  (* --- read side --------------------------------------------------------- *)

  let swap_read_guards l =
    let p = l.hp_parent in
    l.hp_parent <- l.hp_child;
    l.hp_child <- p

  (* Protect [n] for reading, descending from [parent]. Optimistic schemes
     validate with the under-approximation "the parent has not been
     invalidated" (all members of an update's replaced set are invalidated
     before any is freed, and a replaced child implies a replaced parent in
     the same set). HP falls back to "the root has not moved". *)
  let protect_read t l ~root_rec ~parent n =
    if S.needs_protection then begin
      S.protect l.hp_child n.hdr;
      if not (S.protection_valid l.handle) then raise Restart;
      if S.supports_optimistic then begin
        match parent with
        | Some p -> if Atomic.get p.invalid then raise Restart
        | None -> if Atomic.get n.invalid then raise Restart
      end
      else if not (Link.get t.root == root_rec) then raise Restart
    end;
    Mem.check_access n.hdr

  let get t l key =
    C.with_crit l.handle (stats t) (fun () ->
        let root_rec = Link.get t.root in
        let rec go parent = function
          | None -> `Done None
          | Some n ->
              protect_read t l ~root_rec ~parent n;
              swap_read_guards l;
              if key = n.key then `Done (Some n.value)
              else if key < n.key then go (Some n) n.left
              else go (Some n) n.right
        in
        match go None (Tagged.ptr root_rec) with
        | r -> r
        | exception Restart -> `Prot)

  (* Long-running snapshot read: fold over every binding reachable from one
     root read. Under EBR-family schemes this pins an epoch for the whole
     walk; under HP++ it holds per-node protections and only restarts if a
     node it stands on is invalidated — the paper's Figure 10 workload. *)
  let fold t l ~init ~f =
    C.with_crit l.handle (stats t) (fun () ->
        let root_rec = Link.get t.root in
        let rec go parent acc = function
          | None -> acc
          | Some n ->
              protect_read t l ~root_rec ~parent n;
              (* keep the parent protected while walking both subtrees: use
                 fresh guards per level *)
              let g = take_guard l in
              S.protect g n.hdr;
              let acc = go (Some n) acc n.left in
              let acc = f acc n.key n.value in
              go (Some n) acc n.right
        in
        match
          let acc = go None init (Tagged.ptr root_rec) in
          reset_guards l;
          acc
        with
        | acc -> `Done acc
        | exception Restart ->
            reset_guards l;
            `Prot)

  (* Quiescent helpers. *)

  let to_list t =
    let rec walk acc = function
      | None -> acc
      | Some n -> walk ((n.key, n.value) :: walk acc n.right) n.left
    in
    walk [] (Tagged.ptr (Link.get_quiescent t.root))

  let size_quiescent t = node_size (Tagged.ptr (Link.get_quiescent t.root))
  let size t = size_quiescent t

  let assert_reachable_not_freed t =
    let rec walk = function
      | None -> ()
      | Some n ->
          assert (not (Mem.is_freed n.hdr));
          walk n.left;
          walk n.right
    in
    walk (Tagged.ptr (Link.get_quiescent t.root))

  (* Balance invariant check for tests. *)
  let assert_balanced t =
    let rec walk = function
      | None -> ()
      | Some n ->
          assert (n.size = node_size n.left + node_size n.right + 1);
          if weight n.left + weight n.right > 2 then begin
            assert (weight n.left <= delta * weight n.right);
            assert (weight n.right <= delta * weight n.left)
          end;
          walk n.left;
          walk n.right
    in
    walk (Tagged.ptr (Link.get_quiescent t.root))
end
