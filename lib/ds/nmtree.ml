(** Natarajan–Mittal lock-free external BST (PPoPP 2014) — a headline case
    for HP++: its traversal ignores in-progress deletions (edge flags/tags),
    so the original HP cannot protect it (paper Table 2, footnote 4);
    {!Make.create} rejects HP.

    Internal nodes route, leaves store values. Deletion marks {e edges}: the
    deleter {e flags} the edge to the doomed leaf, {e tags} the sibling
    edge, and splices at the {e ancestor} — one CAS that can remove a whole
    path of nodes whose edges were already tagged by pending deletes. That
    splice is the HP++ [try_unlink]: the surviving sibling is the frontier,
    and the spliced nodes' child edges are invalidated before retirement. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  (* Edge bits: bit 0 = flag (leaf edge, deletion pending), bit 2 = tag
     (sibling edge, frozen); bit 1 is HP++'s invalidation. *)
  let flag_bit = Tagged.deleted_bit
  let tag_bit = 4

  let is_flagged r = Tagged.tag r land flag_bit <> 0
  let is_tagged r = Tagged.tag r land tag_bit <> 0

  (* Sentinel keys: all user keys must be < inf1. *)
  let inf1 = max_int - 1
  let inf2 = max_int

  type kind = Leaf | Internal

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v option;
    kind : kind;
    left : 'v node Link.t;
    right : 'v node Link.t;
  }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; root : 'v node (* R sentinel *) }

  type local = {
    handle : S.handle;
    hp_ancestor : S.guard;
    hp_successor : S.guard;
    hp_parent : S.guard;
    mutable hp_leaf : S.guard;
    mutable hp_cur : S.guard;
  }

  type 'v seek_record = {
    sr_ancestor : 'v node;
    sr_ancestor_link : 'v node Link.t;
    sr_ancestor_rec : 'v node Tagged.t;
    sr_successor : 'v node;
    sr_parent : 'v node;
    sr_parent_link : 'v node Link.t;
    sr_parent_rec : 'v node Tagged.t;
    sr_leaf : 'v node;
  }

  let mk_node stats ~key ~value ~kind ~left ~right =
    {
      hdr = Mem.make stats;
      key;
      value;
      kind;
      left = Link.make left;
      right = Link.make right;
    }

  let create scheme =
    if not S.supports_optimistic then
      raise
        (Smr.Smr_intf.Unsupported_scheme
           ("NMTree's traversal ignores in-progress deletions, which "
          ^ S.name ^ " cannot protect (paper Table 2)"));
    let stats = S.stats scheme in
    let leaf k =
      mk_node stats ~key:k ~value:None ~kind:Leaf ~left:Tagged.null
        ~right:Tagged.null
    in
    let s =
      mk_node stats ~key:inf1 ~value:None ~kind:Internal
        ~left:(Tagged.make (Some (leaf inf1)))
        ~right:(Tagged.make (Some (leaf inf2)))
    in
    let r =
      mk_node stats ~key:inf2 ~value:None ~kind:Internal
        ~left:(Tagged.make (Some s))
        ~right:(Tagged.make (Some (leaf inf2)))
    in
    { scheme; root = r }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    {
      handle;
      hp_ancestor = S.guard handle;
      hp_successor = S.guard handle;
      hp_parent = S.guard handle;
      hp_leaf = S.guard handle;
      hp_cur = S.guard handle;
    }

  let clear_local l =
    S.release l.hp_ancestor;
    S.release l.hp_successor;
    S.release l.hp_parent;
    S.release l.hp_leaf;
    S.release l.hp_cur

  let child_link n key = if key < n.key then n.left else n.right

  (* Descend from the root, remembering the deepest edge that was untagged:
     its source is the ancestor where a splice for [key]'s leaf must happen. *)
  let seek t l key =
    let protect_step src_link expected =
      match
        C.try_protect ~node_header l.hp_cur l.handle ~src_link expected
      with
      | C.Invalid -> None
      | C.Ok r -> Some r
    in
    let r = t.root in
    let r_rec = Link.get r.left in
    match protect_step r.left r_rec with
    | None -> `Prot
    | Some r_rec -> (
        match Tagged.ptr r_rec with
        | None -> `Retry
        | Some s ->
            (* [s] protected by hp_cur; pin it under the successor role. *)
            S.protect l.hp_successor s.hdr;
            let s_rec = Link.get s.left in
            (match protect_step s.left s_rec with
            | None -> `Prot
            | Some s_rec -> (
                match Tagged.ptr s_rec with
                | None -> `Retry
                | Some first_leaf ->
                    let rec walk ancestor ancestor_link ancestor_rec successor
                        parent parent_link parent_rec leaf =
                      if leaf.kind = Leaf then
                        `Done
                          {
                            sr_ancestor = ancestor;
                            sr_ancestor_link = ancestor_link;
                            sr_ancestor_rec = ancestor_rec;
                            sr_successor = successor;
                            sr_parent = parent;
                            sr_parent_link = parent_link;
                            sr_parent_rec = parent_rec;
                            sr_leaf = leaf;
                          }
                      else
                        let link = child_link leaf key in
                        match protect_step link (Link.get link) with
                        | None -> `Prot
                        | Some next_rec -> (
                            match Tagged.ptr next_rec with
                            | None -> `Retry
                            | Some next ->
                                Mem.check_access next.hdr;
                                let anc, anc_link, anc_rec, succ =
                                  if not (is_tagged parent_rec) then
                                    (parent, parent_link, parent_rec, leaf)
                                  else
                                    (ancestor, ancestor_link, ancestor_rec,
                                     successor)
                                in
                                (* Re-pin roles; every node pinned here is
                                   currently protected by an older slot. *)
                                S.protect l.hp_ancestor anc.hdr;
                                S.protect l.hp_successor succ.hdr;
                                S.protect l.hp_parent leaf.hdr;
                                let g = l.hp_leaf in
                                l.hp_leaf <- l.hp_cur;
                                l.hp_cur <- g;
                                walk anc anc_link anc_rec succ leaf link
                                  next_rec next)
                    in
                    Mem.check_access first_leaf.hdr;
                    let g = l.hp_leaf in
                    l.hp_leaf <- l.hp_cur;
                    l.hp_cur <- g;
                    S.protect l.hp_ancestor r.hdr;
                    S.protect l.hp_parent s.hdr;
                    walk r r.left r_rec s s s.left s_rec first_leaf)))

  let invalidate_nodes nodes =
    List.iter
      (fun n ->
        Link.mark_invalid n.left;
        Link.mark_invalid n.right)
      nodes

  (* Nodes spliced out by the ancestor CAS: the routing path from the old
     successor down to the doomed leaf. All edges on it are flagged or
     tagged, hence frozen. *)
  let collect_spliced successor key =
    let rec walk n acc =
      let acc = n :: acc in
      if n.kind = Leaf then List.rev acc
      else
        match Tagged.ptr (Link.get (child_link n key)) with
        | Some m -> walk m acc
        | None -> List.rev acc
    in
    walk successor []

  (* Remove [sr_leaf] (whose parent edge we or a helper flagged): tag the
     sibling edge, then splice at the ancestor. Returns true when the splice
     succeeded (by us). *)
  let cleanup l key (sr : 'v seek_record) =
    let parent = sr.sr_parent in
    Mem.check_access parent.hdr;
    let leaf_on_left =
      match Tagged.ptr (Link.get parent.left) with
      | Some n -> n == sr.sr_leaf
      | None -> false
    in
    let sibling_link = if leaf_on_left then parent.right else parent.left in
    let rec tag_sibling () =
      let r = Link.get sibling_link in
      if is_tagged r then r
      else if Link.cas sibling_link r (Tagged.set_bits r tag_bit) then
        Tagged.set_bits r tag_bit
      else tag_sibling ()
    in
    let sib_rec = tag_sibling () in
    match Tagged.ptr sib_rec with
    | None -> false
    | Some sibling ->
        S.try_unlink l.handle
          ~frontier:[ sibling.hdr ]
          ~do_unlink:(fun () ->
            if
              Link.cas_clean sr.sr_ancestor_link sr.sr_ancestor_rec
                (Tagged.make (Some sibling))
            then Some (collect_spliced sr.sr_successor key)
            else None)
          ~node_header ~invalidate:invalidate_nodes

  let get t l key =
    if key >= inf1 then invalid_arg "Nmtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        match seek t l key with
        | (`Prot | `Retry) as r -> r
        | `Done sr ->
            if sr.sr_leaf.key = key then `Done sr.sr_leaf.value else `Done None)

  let insert t l key value =
    if key >= inf1 then invalid_arg "Nmtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        match seek t l key with
        | (`Prot | `Retry) as r -> r
        | `Done sr ->
            let leaf = sr.sr_leaf in
            if leaf.key = key then `Done false
            else begin
              Mem.check_access leaf.hdr;
              let st = stats t in
              let new_leaf =
                mk_node st ~key ~value:(Some value) ~kind:Leaf
                  ~left:Tagged.null ~right:Tagged.null
              in
              let lo_leaf, hi_leaf =
                if key < leaf.key then (new_leaf, leaf) else (leaf, new_leaf)
              in
              let internal =
                mk_node st ~key:(max key leaf.key) ~value:None ~kind:Internal
                  ~left:(Tagged.make (Some lo_leaf))
                  ~right:(Tagged.make (Some hi_leaf))
              in
              if
                Link.cas_clean sr.sr_parent_link sr.sr_parent_rec
                  (Tagged.make (Some internal))
              then `Done true
              else begin
                (* Undo the accounting for the two discarded nodes and help
                   a pending delete if that is what blocked us. *)
                Stats.on_discard st;
                Stats.on_discard st;
                let r = Link.get sr.sr_parent_link in
                (match Tagged.ptr r with
                | Some n when n == leaf && is_flagged r ->
                    ignore (cleanup l key sr)
                | _ -> ());
                `Retry
              end
            end)

  let remove t l key =
    if key >= inf1 then invalid_arg "Nmtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        let rec injection () =
          match seek t l key with
          | (`Prot | `Retry) as r -> r
          | `Done sr ->
              let leaf = sr.sr_leaf in
              if leaf.key <> key then `Done false
              else if
                Link.cas_clean sr.sr_parent_link sr.sr_parent_rec
                  (Tagged.make ~tag:flag_bit (Some leaf))
              then begin
                (* We own the deletion; splice until done or helped. *)
                if cleanup l key sr then `Done true
                else pursue leaf
              end
              else begin
                (* Someone else flagged this leaf: help, then retry. *)
                let r = Link.get sr.sr_parent_link in
                (match Tagged.ptr r with
                | Some n when n == leaf && is_flagged r ->
                    ignore (cleanup l key sr)
                | _ -> ());
                injection ()
              end
        and pursue leaf =
          (* Our flag is planted; re-seek until the leaf is spliced out
             (possibly by a helper). *)
          match seek t l key with
          | `Prot -> `Prot_owned leaf
          | `Retry -> pursue leaf
          | `Done sr ->
              if sr.sr_leaf != leaf then `Done true
              else if cleanup l key sr then `Done true
              else pursue leaf
        in
        match injection () with
        | `Prot_owned _ ->
            (* Protection failed after the linearization point (the flag
               CAS): the operation already succeeded; helpers finish the
               splice (paper §4.2 recovery discussion). *)
            `Done true
        | (`Prot | `Retry | `Done _) as r -> r)

  (* Quiescent helpers. *)

  let to_list t =
    let rec walk n acc =
      match n.kind with
      | Leaf ->
          if n.key >= inf1 then acc
          else (n.key, Option.get n.value) :: acc
      | Internal ->
          let go link acc =
            match Tagged.ptr (Link.get_quiescent link) with
            | Some m -> walk m acc
            | None -> acc
          in
          go n.left (go n.right acc)
    in
    List.sort compare (walk t.root [])

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    let rec walk n =
      assert (not (Mem.is_freed n.hdr));
      let go link =
        match Tagged.ptr (Link.get_quiescent link) with
        | Some m -> walk m
        | None -> ()
      in
      go n.left;
      go n.right
    in
    walk t.root
end
