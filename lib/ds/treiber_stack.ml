(** Treiber's stack (1986) — the paper's §2.2 running example for
    HP-with-over-approximation (Figure 2).

    Nodes are immutable once pushed, and deletion happens only at the entry
    point (the top), so classic [retire] is safe with every scheme. With
    HP-family schemes, [pop] validates protection by re-checking that [top]
    still holds the protected node. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = { hdr : Mem.header; value : 'v; next : 'v node option }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; top : 'v node Link.t }
  type local = { handle : S.handle; hp : S.guard }

  let create scheme = { scheme; top = Link.null () }
  let scheme t = t.scheme
  let stats t = S.stats t.scheme
  let make_local handle = { handle; hp = S.guard handle }
  let clear_local l = S.release l.hp

  let push t l value =
    let hdr = Mem.make (stats t) in
    C.with_crit l.handle (stats t) (fun () ->
        let top_t = Link.get t.top in
        let node = { hdr; value; next = Tagged.ptr top_t } in
        if Link.cas_clean t.top top_t (Tagged.make (Some node)) then `Done ()
        else `Retry)

  let pop t l =
    C.with_crit l.handle (stats t) (fun () ->
        let top_t = Link.get t.top in
        match Tagged.ptr top_t with
        | None -> `Done None
        | Some n ->
            if
              not
                (C.protect_pessimistic ~node_header l.hp l.handle
                   ~src_link:t.top top_t)
            then `Prot
            else begin
              Mem.check_access n.hdr;
              if Link.cas_clean t.top top_t (Tagged.make n.next) then begin
                S.retire l.handle n.hdr;
                `Done (Some n.value)
              end
              else `Retry
            end)

  let peek t l =
    C.with_crit l.handle (stats t) (fun () ->
        let top_t = Link.get t.top in
        match Tagged.ptr top_t with
        | None -> `Done None
        | Some n ->
            if
              not
                (C.protect_pessimistic ~node_header l.hp l.handle
                   ~src_link:t.top top_t)
            then `Prot
            else begin
              Mem.check_access n.hdr;
              `Done (Some n.value)
            end)

  (* Quiescent helpers. *)

  let to_list t =
    let rec walk acc = function
      | None -> List.rev acc
      | Some n -> walk (n.value :: acc) n.next
    in
    walk [] (Tagged.ptr (Link.get_quiescent t.top))

  let length t = List.length (to_list t)
end
