(** Scheme-generic protection helpers shared by the data structures: TryProtect (optimistic and pessimistic), critical-section retry loop, trace hooks.

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Trace = Obs.Trace
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      type 'n protect_outcome = Ok of 'n Tagged.t | Invalid
      val uid_of_hdr : Mem.header option -> int
      val trace_step :
        node_header:('a -> Mem.header) ->
        src:Mem.header option -> validated:bool -> 'a Tagged.t -> unit
      val try_protect :
        ?src:Mem.header ->
        node_header:('a -> Mem.header) ->
        S.guard ->
        S.handle -> src_link:'a Link.t -> 'a Tagged.t -> 'a protect_outcome
      val protect_pessimistic :
        ?src:Mem.header ->
        node_header:('a -> Mem.header) ->
        S.guard -> S.handle -> src_link:'a Link.t -> 'a Tagged.t -> bool
      val with_crit :
        S.handle ->
        Smr_core.Stats.t -> (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
    end
