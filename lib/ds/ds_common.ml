(** Scheme-generic protection helpers shared by the data structures. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link

module Trace = Obs.Trace

module Make (S : Smr.Smr_intf.S) = struct
  (** Outcome of protecting the target of a link (paper Algorithm 3
      TryProtect). [Ok l] is the current value of [src_link] — same target
      as requested, possibly retagged; [Invalid] means the source node has
      been invalidated (or, under PEBR, this thread neutralized) and the
      caller must recover, typically by restarting the operation. *)
  type 'n protect_outcome = Ok of 'n Tagged.t | Invalid

  let uid_of_hdr = function Some h -> Mem.uid h | None -> -1

  (* A validated protection (the slot store survived validation) plus the
     traversal step it enables. The Step event records the tag bits actually
     read from [src_link]: a scheme or structure that wrongly proceeds past
     an invalidated link would record the invalid bit here, which is exactly
     what the trace-replay checker flags. *)
  let trace_step ~node_header ~src ~validated l =
    if Trace.enabled () then begin
      let dst = Tagged.ptr l in
      (match dst with
      | Some n when validated ->
          Trace.emit Trace.Protect (Mem.uid (node_header n)) 0 0
      | _ -> ());
      Trace.emit Trace.Step (uid_of_hdr src)
        (match dst with Some n -> Mem.uid (node_header n) | None -> -1)
        (Tagged.tag l)
    end

  (* Under-approximating validation: protection only fails when [src_link]
     carries the invalidation bit; logical-deletion tags are ignored, so
     optimistic traversal through deleted chains succeeds. If the link moved
     to a new target, chase it (announcing protection anew each time).
     [?src] is the node [src_link] lives in, for the trace only. *)
  let try_protect ?src ~node_header guard handle ~src_link expected =
    if not S.needs_protection then begin
      if Trace.enabled () then
        trace_step ~node_header ~src ~validated:false expected;
      Ok expected
    end
    else
      let rec loop exp =
        (match Tagged.ptr exp with
        | Some n -> S.protect guard (node_header n)
        | None -> ());
        if not (S.protection_valid handle) then begin
          Trace.emit Trace.Validation_fail (uid_of_hdr src) 0 0;
          Invalid
        end
        else
          let l = Link.get src_link in
          if Tagged.is_invalid l then begin
            Trace.emit Trace.Validation_fail (uid_of_hdr src) (Tagged.tag l) 0;
            Invalid
          end
          else if Tagged.same_ptr l exp then begin
            if Trace.enabled () then
              trace_step ~node_header ~src ~validated:true l;
            Ok l
          end
          else loop l
      in
      loop expected

  (* Over-approximating validation (original HP, paper §2.2): succeed only
     if [src_link] still holds exactly [expected]'s target with a clean tag;
     any change — including the source's logical deletion — fails. *)
  let protect_pessimistic ?src ~node_header guard handle ~src_link expected =
    if not S.needs_protection then begin
      if Trace.enabled () then
        trace_step ~node_header ~src ~validated:false expected;
      true
    end
    else begin
      (match Tagged.ptr expected with
      | Some n -> S.protect guard (node_header n)
      | None -> ());
      if
        S.protection_valid handle
        &&
        let l = Link.get src_link in
        Tagged.same_ptr l expected && Tagged.tag l = 0
      then begin
        if Trace.enabled () then
          trace_step ~node_header ~src ~validated:true expected;
        true
      end
      else begin
        Trace.emit Trace.Validation_fail (uid_of_hdr src) 0 0;
        false
      end
    end

  (* Run [body] inside a critical section until it completes. [`Prot] is a
     protection failure (counted, paper §4.3); [`Retry] is ordinary CAS
     contention. Both refresh the critical section so a long string of
     retries cannot pin the epoch, and back off exponentially so a burst of
     contention does not degenerate into a CAS storm. *)
  let with_crit handle stats body =
    S.crit_enter handle;
    let backoff = Smr_core.Backoff.create () in
    let rec loop () =
      match body () with
      | `Done result ->
          S.crit_exit handle;
          result
      | `Prot ->
          Smr_core.Stats.on_protection_failure stats;
          S.crit_refresh handle;
          Smr_core.Backoff.once backoff;
          loop ()
      | `Retry ->
          S.crit_refresh handle;
          Smr_core.Backoff.once backoff;
          loop ()
    in
    loop ()
end
