(** Heller et al. lazy list: lock-based updates, wait-free contains over an optimistic traversal.

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      module C :
        sig
          type 'n protect_outcome =
            'n Ds_common.Make(S).protect_outcome =
              Ok of 'n Ds_common.Tagged.t
            | Invalid
          val uid_of_hdr : Ds_common.Mem.header option -> int
          val trace_step :
            node_header:('a -> Ds_common.Mem.header) ->
            src:Ds_common.Mem.header option ->
            validated:bool -> 'a Ds_common.Tagged.t -> unit
          val try_protect :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> 'a protect_outcome
          val protect_pessimistic :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> bool
          val with_crit :
            S.handle ->
            Smr_core.Stats.t ->
            (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
        end
      type 'v node = {
        hdr : Mem.header;
        key : int;
        value : 'v;
        next : 'v node Link.t;
        marked : bool Atomic.t;
        lock : Mutex.t;
      }
      val node_header : 'a node -> Mem.header
      type 'v t = {
        scheme : S.t;
        head_link : 'v node Link.t;
        head_lock : Mutex.t;
      }
      type 'v pred = Head | Node of 'v node
      val pred_link : 'a t -> 'a pred -> 'a node Link.t
      val pred_lock : 'a t -> 'b pred -> Mutex.t
      val pred_marked : 'a pred -> bool
      type local = {
        handle : S.handle;
        mutable hp_prev : S.guard;
        mutable hp_cur : S.guard;
      }
      val create : S.t -> 'a t
      val scheme : 'a t -> S.t
      val stats : 'a t -> Smr_core.Stats.t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val swap_guards : local -> unit
      val walk :
        'a t ->
        local -> int -> [> `Done of 'a pred * 'a node option | `Prot ]
      val contains : 'a t -> local -> int -> 'a option
      val get : 'a t -> local -> int -> 'a option
      val validated :
        'a t ->
        pred:'a pred -> cur:'a node option -> (unit -> 'b) -> 'b option
      val insert : 'a t -> local -> int -> 'a -> bool
      val remove : 'a t -> local -> int -> bool
      val to_list : 'a t -> (int * 'a) list
      val size : 'a t -> int
      val assert_reachable_not_freed : 'a t -> unit
    end
