(** Ellen et al. non-blocking external BST with helping via update descriptors (IFlag/DFlag/Mark).

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      module C :
        sig
          type 'n protect_outcome =
            'n Ds_common.Make(S).protect_outcome =
              Ok of 'n Ds_common.Tagged.t
            | Invalid
          val uid_of_hdr : Ds_common.Mem.header option -> int
          val trace_step :
            node_header:('a -> Ds_common.Mem.header) ->
            src:Ds_common.Mem.header option ->
            validated:bool -> 'a Ds_common.Tagged.t -> unit
          val try_protect :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> 'a protect_outcome
          val protect_pessimistic :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> bool
          val with_crit :
            S.handle ->
            Smr_core.Stats.t ->
            (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
        end
      val inf1 : int
      val inf2 : int
      type kind = Leaf | Internal
      type state = Clean | IFlag | DFlag | Mark
      type 'v update = { state : state; info : 'v info option; gen : int; }
      and 'v info = I of 'v iinfo | D of 'v dinfo
      and 'v iinfo = {
        i_p : 'v node;
        i_l_rec : 'v node Tagged.t;
        i_l_link : 'v node Link.t;
        i_new_internal : 'v node;
      }
      and 'v dinfo = {
        d_gp : 'v node;
        d_p : 'v node;
        d_l : 'v node;
        d_pupdate : 'v update;
        d_gp_rec : 'v node Tagged.t;
        d_gp_link : 'v node Link.t;
      }
      and 'v node = {
        hdr : Mem.header;
        key : int;
        value : 'v option;
        kind : kind;
        left : 'v node Link.t;
        right : 'v node Link.t;
        update : 'v update Atomic.t;
      }
      val node_header : 'a node -> Mem.header
      val clean_gen : int Atomic.t
      val fresh_clean : unit -> 'a update
      val clean_update : 'a update
      type 'v t = { scheme : S.t; root : 'v node; }
      type local = {
        handle : S.handle;
        hp_gp : S.guard;
        hp_p : S.guard;
        mutable hp_l : S.guard;
        mutable hp_cur : S.guard;
      }
      type 'v search_result = {
        s_gp : 'v node;
        s_p : 'v node;
        s_l : 'v node;
        s_gpupdate : 'v update;
        s_pupdate : 'v update;
        s_p_rec : 'v node Tagged.t;
        s_p_link : 'v node Link.t;
        s_l_rec : 'v node Tagged.t;
        s_l_link : 'v node Link.t;
      }
      val mk_node :
        Smr_core.Stats.t ->
        key:int ->
        value:'a option ->
        kind:kind ->
        left:'a node Smr_core.Tagged.t ->
        right:'a node Smr_core.Tagged.t -> 'a node
      val create : S.t -> 'a t
      val scheme : 'a t -> S.t
      val stats : 'a t -> Smr_core.Stats.t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val child_link : 'a node -> int -> 'a node Link.t
      val protect_step :
        local ->
        src:'a node ->
        src_link:'b node Ds_common.Link.t ->
        'b node Ds_common.Tagged.t ->
        'b node Ds_common.Tagged.t option
      val invalidate_nodes : 'a node list -> unit
      val help_insert : 'v iinfo -> 'v update -> unit
      val help_marked : local -> 'v dinfo -> 'v update -> unit
      val help_delete : local -> 'v dinfo -> 'v update -> bool
      val help : local -> 'v update -> unit
      val search :
        'a t ->
        local -> int -> [> `Done of 'a search_result | `Prot | `Retry ]
      val get : 'a t -> local -> int -> 'a option
      val insert : 'a t -> local -> int -> 'a -> bool
      val remove : 'a t -> local -> int -> bool
      val to_list : 'a t -> (int * 'a) list
      val size : 'a t -> int
      val assert_reachable_not_freed : 'a t -> unit
    end
