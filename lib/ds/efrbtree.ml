(** Ellen–Fatourou–Ruppert–van Breugel non-blocking external BST
    (PODC 2010), coordinated by operation descriptors with helping.

    Every mutation first flags the affected internal node's [update] field
    with a descriptor ([IFlag]/[DFlag]/[Mark]); any thread meeting a flag
    helps the pending operation to completion. Because helpers can prove
    reachability of the descriptor's nodes from the descriptor itself, this
    tree is protectable by the original HP (paper Table 2 and Appendix B) —
    unlike NMTree. With HP++, the delete splice is a [try_unlink] whose
    frontier is the surviving sibling subtree root.

    Descriptors themselves are reclaimed by the runtime GC here; a C
    implementation must manage them too, which is why the paper's
    evaluation omits EFRBTree + reference counting (descriptor cycles). We
    mirror that omission: {!Make.create} rejects RC. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  let inf1 = max_int - 1
  let inf2 = max_int

  type kind = Leaf | Internal
  type state = Clean | IFlag | DFlag | Mark

  (* [update] holds a fresh record per transition, so physical-equality CAS
     is exactly the paper's (state, info-pointer) double-word CAS. [gen]
     makes CLEAN records structurally distinct so the compiler cannot lift
     them to one shared static block, which would reintroduce ABA. *)
  type 'v update = { state : state; info : 'v info option; gen : int }

  and 'v info = I of 'v iinfo | D of 'v dinfo

  and 'v iinfo = {
    i_p : 'v node;
    i_l_rec : 'v node Tagged.t; (* p's child record pointing at l *)
    i_l_link : 'v node Link.t; (* the child field holding it *)
    i_new_internal : 'v node;
  }

  and 'v dinfo = {
    d_gp : 'v node;
    d_p : 'v node;
    d_l : 'v node;
    d_pupdate : 'v update; (* p's update read at search time *)
    d_gp_rec : 'v node Tagged.t; (* gp's child record pointing at p *)
    d_gp_link : 'v node Link.t; (* the child field holding it *)
  }

  and 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v option;
    kind : kind;
    left : 'v node Link.t;
    right : 'v node Link.t;
    update : 'v update Atomic.t;
  }

  let node_header n = n.hdr

  (* Unflagging must install a physically fresh record: the paper's CLEAN
     word keeps the op pointer to distinguish generations, and a recurring
     record lets a stale flag CAS succeed after the children changed (ABA),
     silently losing an update. The generation counter guarantees a fresh
     allocation — an all-constant literal would be statically shared. *)
  let clean_gen = Atomic.make 0

  let fresh_clean () =
    { state = Clean; info = None; gen = Atomic.fetch_and_add clean_gen 1 }

  let clean_update = { state = Clean; info = None; gen = -1 }

  type 'v t = { scheme : S.t; root : 'v node }

  type local = {
    handle : S.handle;
    hp_gp : S.guard;
    hp_p : S.guard;
    mutable hp_l : S.guard;
    mutable hp_cur : S.guard;
  }

  type 'v search_result = {
    s_gp : 'v node;
    s_p : 'v node;
    s_l : 'v node;
    s_gpupdate : 'v update;
    s_pupdate : 'v update;
    s_p_rec : 'v node Tagged.t; (* gp -> p *)
    s_p_link : 'v node Link.t;
    s_l_rec : 'v node Tagged.t; (* p -> l *)
    s_l_link : 'v node Link.t;
  }

  let mk_node stats ~key ~value ~kind ~left ~right =
    {
      hdr = Mem.make stats;
      key;
      value;
      kind;
      left = Link.make left;
      right = Link.make right;
      update = Atomic.make clean_update;
    }

  let create scheme =
    if S.name = "RC" then
      raise
        (Smr.Smr_intf.Unsupported_scheme
           "EFRBTree with reference counting needs weak pointers to break \
            descriptor cycles (paper footnote 12)");
    let stats = S.stats scheme in
    let leaf k =
      mk_node stats ~key:k ~value:None ~kind:Leaf ~left:Tagged.null
        ~right:Tagged.null
    in
    let s =
      mk_node stats ~key:inf1 ~value:None ~kind:Internal
        ~left:(Tagged.make (Some (leaf inf1)))
        ~right:(Tagged.make (Some (leaf inf2)))
    in
    let r =
      mk_node stats ~key:inf2 ~value:None ~kind:Internal
        ~left:(Tagged.make (Some s))
        ~right:(Tagged.make (Some (leaf inf2)))
    in
    { scheme; root = r }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    {
      handle;
      hp_gp = S.guard handle;
      hp_p = S.guard handle;
      hp_l = S.guard handle;
      hp_cur = S.guard handle;
    }

  let clear_local l =
    S.release l.hp_gp;
    S.release l.hp_p;
    S.release l.hp_l;
    S.release l.hp_cur

  let child_link n key = if key < n.key then n.left else n.right

  (* Protect the target of [src_link]. Optimistic schemes use HP++
     TryProtect; HP validates with the over-approximation "the link is
     unchanged and the source is not marked for splicing" (a marked source
     is about to be spliced out together with one child). *)
  let protect_step l ~src ~src_link expected =
    if S.supports_optimistic then
      match
        C.try_protect ~node_header l.hp_cur l.handle ~src_link expected
      with
      | C.Invalid -> None
      | C.Ok r -> Some r
    else begin
      (match Tagged.ptr expected with
      | Some n -> S.protect l.hp_cur n.hdr
      | None -> ());
      if not (S.protection_valid l.handle) then None
      else if
        Tagged.same_ptr (Link.get src_link) expected
        && (Atomic.get src.update).state <> Mark
      then Some expected
      else None
    end

  let invalidate_nodes nodes =
    List.iter
      (fun n ->
        Link.mark_invalid n.left;
        Link.mark_invalid n.right)
      nodes

  (* HelpInsert: swing p's child from the old leaf to the new internal node
     (the old leaf is reused below it, nothing is retired), then unflag. *)
  let help_insert (op : 'v iinfo) iflag_rec =
    ignore
      (Link.cas_clean op.i_l_link op.i_l_rec
         (Tagged.make (Some op.i_new_internal)));
    ignore (Atomic.compare_and_set op.i_p.update iflag_rec (fresh_clean ()))

  (* HelpMarked: splice out [d_p] and [d_l]; the sibling subtree root is the
     unlink frontier. Exactly one helper's CAS wins and retires both nodes;
     everyone then unflags the grandparent. *)
  let help_marked l (op : 'v dinfo) dflag_rec =
    let p = op.d_p in
    let sibling_link =
      match Tagged.ptr (Link.get p.left) with
      | Some n when n == op.d_l -> p.right
      | _ -> p.left
    in
    let sib_rec = Link.get sibling_link in
    (match Tagged.ptr sib_rec with
    | None -> ()
    | Some sibling ->
        ignore
          (S.try_unlink l.handle
             ~frontier:[ sibling.hdr ]
             ~do_unlink:(fun () ->
               if
                 Link.cas_clean op.d_gp_link op.d_gp_rec
                   (Tagged.untagged sib_rec)
               then Some [ op.d_p; op.d_l ]
               else None)
             ~node_header ~invalidate:invalidate_nodes));
    ignore (Atomic.compare_and_set op.d_gp.update dflag_rec (fresh_clean ()))

  (* HelpDelete: mark p (or recognize our own mark), then splice; on
     interference, help the blocker and roll the DFlag back. Returns whether
     the delete completed. *)
  let rec help_delete l (op : 'v dinfo) dflag_rec =
    let mark_rec = { state = Mark; info = Some (D op); gen = 0 } in
    if Atomic.compare_and_set op.d_p.update op.d_pupdate mark_rec then begin
      help_marked l op dflag_rec;
      true
    end
    else
      let current = Atomic.get op.d_p.update in
      match (current.state, current.info) with
      | Mark, Some (D o) when o == op ->
          help_marked l op dflag_rec;
          true
      | _ ->
          help l current;
          ignore (Atomic.compare_and_set op.d_gp.update dflag_rec (fresh_clean ()));
          false

  and help l (u : 'v update) =
    match (u.state, u.info) with
    | IFlag, Some (I op) -> help_insert op u
    | Mark, Some (D op) -> help_marked l op u
    | DFlag, Some (D op) -> ignore (help_delete l op u)
    | _ -> ()

  (* Search: descend to a leaf, recording grandparent/parent, their update
     fields, and the child records needed for the CASes. The sentinel
     structure guarantees at least two internal nodes above any leaf. *)
  let search t l key =
    let r = t.root in
    let r_up = Atomic.get r.update in
    let r_rec = Link.get (child_link r key) in
    match protect_step l ~src:r ~src_link:(child_link r key) r_rec with
    | None -> `Prot
    | Some r_rec -> (
        match Tagged.ptr r_rec with
        | None -> `Retry
        | Some s ->
            S.protect l.hp_p s.hdr;
            let rec walk gp p gpupdate pupdate p_rec p_link cur cur_rec
                cur_link =
              (* [cur] protected by hp_cur/hp_l rotation *)
              if cur.kind = Leaf then
                `Done
                  {
                    s_gp = gp;
                    s_p = p;
                    s_l = cur;
                    s_gpupdate = gpupdate;
                    s_pupdate = pupdate;
                    s_p_rec = p_rec;
                    s_p_link = p_link;
                    s_l_rec = cur_rec;
                    s_l_link = cur_link;
                  }
              else
                let up = Atomic.get cur.update in
                let link = child_link cur key in
                let rec0 = Link.get link in
                match protect_step l ~src:cur ~src_link:link rec0 with
                | None -> `Prot
                | Some next_rec -> (
                    match Tagged.ptr next_rec with
                    | None -> `Retry
                    | Some next ->
                        Mem.check_access next.hdr;
                        (* roles shift: gp <- p, p <- cur, l <- next *)
                        S.protect l.hp_gp p.hdr;
                        S.protect l.hp_p cur.hdr;
                        let g = l.hp_l in
                        l.hp_l <- l.hp_cur;
                        l.hp_cur <- g;
                        walk p cur pupdate up cur_rec cur_link next next_rec
                          link)
            in
            let s_up = Atomic.get s.update in
            let link = child_link s key in
            let rec0 = Link.get link in
            (match protect_step l ~src:s ~src_link:link rec0 with
            | None -> `Prot
            | Some first_rec -> (
                match Tagged.ptr first_rec with
                | None -> `Retry
                | Some first ->
                    Mem.check_access first.hdr;
                    let g = l.hp_l in
                    l.hp_l <- l.hp_cur;
                    l.hp_cur <- g;
                    S.protect l.hp_gp r.hdr;
                    S.protect l.hp_p s.hdr;
                    walk r s r_up s_up r_rec (child_link r key) first
                      first_rec link)))

  let get t l key =
    if key >= inf1 then invalid_arg "Efrbtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        match search t l key with
        | (`Prot | `Retry) as r -> r
        | `Done sr ->
            if sr.s_l.key = key then `Done sr.s_l.value else `Done None)

  let insert t l key value =
    if key >= inf1 then invalid_arg "Efrbtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        match search t l key with
        | (`Prot | `Retry) as r -> r
        | `Done sr ->
            if sr.s_l.key = key then `Done false
            else if sr.s_pupdate.state <> Clean then begin
              help l sr.s_pupdate;
              `Retry
            end
            else begin
              let st = stats t in
              let leaf = sr.s_l in
              let new_leaf =
                mk_node st ~key ~value:(Some value) ~kind:Leaf
                  ~left:Tagged.null ~right:Tagged.null
              in
              let lo_leaf, hi_leaf =
                if key < leaf.key then (new_leaf, leaf) else (leaf, new_leaf)
              in
              let internal =
                mk_node st ~key:(max key leaf.key) ~value:None ~kind:Internal
                  ~left:(Tagged.make (Some lo_leaf))
                  ~right:(Tagged.make (Some hi_leaf))
              in
              let op =
                {
                  i_p = sr.s_p;
                  i_l_rec = sr.s_l_rec;
                  i_l_link = sr.s_l_link;
                  i_new_internal = internal;
                }
              in
              let iflag_rec = { state = IFlag; info = Some (I op); gen = 0 } in
              if Atomic.compare_and_set sr.s_p.update sr.s_pupdate iflag_rec
              then begin
                help_insert op iflag_rec;
                `Done true
              end
              else begin
                Stats.on_discard st;
                Stats.on_discard st;
                help l (Atomic.get sr.s_p.update);
                `Retry
              end
            end)

  let remove t l key =
    if key >= inf1 then invalid_arg "Efrbtree: key too large";
    C.with_crit l.handle (stats t) (fun () ->
        match search t l key with
        | (`Prot | `Retry) as r -> r
        | `Done sr ->
            if sr.s_l.key <> key then `Done false
            else if sr.s_gpupdate.state <> Clean then begin
              help l sr.s_gpupdate;
              `Retry
            end
            else if sr.s_pupdate.state <> Clean then begin
              help l sr.s_pupdate;
              `Retry
            end
            else begin
              let op =
                {
                  d_gp = sr.s_gp;
                  d_p = sr.s_p;
                  d_l = sr.s_l;
                  d_pupdate = sr.s_pupdate;
                  d_gp_rec = sr.s_p_rec;
                  d_gp_link = sr.s_p_link;
                }
              in
              let dflag_rec = { state = DFlag; info = Some (D op); gen = 0 } in
              if Atomic.compare_and_set sr.s_gp.update sr.s_gpupdate dflag_rec
              then
                if help_delete l op dflag_rec then `Done true else `Retry
              else begin
                help l (Atomic.get sr.s_gp.update);
                `Retry
              end
            end)

  (* Quiescent helpers. *)

  let to_list t =
    let rec walk n acc =
      match n.kind with
      | Leaf ->
          if n.key >= inf1 then acc else (n.key, Option.get n.value) :: acc
      | Internal ->
          let go link acc =
            match Tagged.ptr (Link.get_quiescent link) with
            | Some m -> walk m acc
            | None -> acc
          in
          go n.left (go n.right acc)
    in
    List.sort compare (walk t.root [])

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    let rec walk n =
      assert (not (Mem.is_freed n.hdr));
      let go link =
        match Tagged.ptr (Link.get_quiescent link) with
        | Some m -> walk m
        | None -> ()
      in
      go n.left;
      go n.right
    in
    walk t.root
end
