(** Harris–Michael linked list (Michael, SPAA 2002): the HP-compatible,
    pessimistic ordered list of the paper's §2.2.

    Traversal is hand-over-hand: each step protects the next node and
    validates with the over-approximation "the previous link still holds the
    node, untagged" — so the traversal never steps out of a logically
    deleted node and instead eagerly unlinks it. Works with every scheme. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v;
    next : 'v node Link.t;
  }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; head : 'v node Link.t }

  type local = {
    handle : S.handle;
    mutable hp_prev : S.guard;
    mutable hp_cur : S.guard;
  }

  let create scheme = { scheme; head = Link.null () }
  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    { handle; hp_prev = S.guard handle; hp_cur = S.guard handle }

  let clear_local l =
    S.release l.hp_prev;
    S.release l.hp_cur

  let swap_guards l =
    let p = l.hp_prev in
    l.hp_prev <- l.hp_cur;
    l.hp_cur <- p

  (* One traversal attempt from the head. Returns [`Prot] on a failed
     protection validation (restart from scratch), [`Retry] when a cleanup
     CAS lost a race, or [`Done (found, prev_link, cur_t, cur)] positioned
     at the first node with key >= [key] ([cur_t] is the current record of
     [prev_link], the expected value for a subsequent CAS). *)
  let find_attempt t l key =
    let rec advance prev_link cur_t =
      match Tagged.ptr cur_t with
      | None -> `Done (false, prev_link, cur_t, None)
      | Some cur ->
          if
            not
              (C.protect_pessimistic ~node_header l.hp_cur l.handle
                 ~src_link:prev_link cur_t)
          then `Prot
          else begin
            Mem.check_access cur.hdr;
            let next_t = Link.get cur.next in
            if Tagged.is_deleted next_t then begin
              (* [cur] is logically deleted: unlink it before moving on
                 (the pessimism HP requires). *)
              let desired = Tagged.make (Tagged.ptr next_t) in
              if Link.cas_clean prev_link cur_t desired then begin
                S.retire l.handle cur.hdr;
                advance prev_link desired
              end
              else `Retry
            end
            else if cur.key >= key then
              `Done (cur.key = key, prev_link, cur_t, Some cur)
            else begin
              swap_guards l;
              advance cur.next next_t
            end
          end
    in
    advance t.head (Link.get t.head)

  let get t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match find_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, _, _, cur) ->
            if found then `Done (Option.map (fun n -> n.value) cur)
            else `Done None)

  let insert t l key value =
    let fresh = ref None in
    C.with_crit l.handle (stats t) (fun () ->
        match find_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, prev_link, cur_t, _) ->
            if found then begin
              (match !fresh with
              | Some _ -> Stats.on_discard (stats t)
              | None -> ());
              `Done false
            end
            else
              let node =
                match !fresh with
                | Some n -> n
                | None ->
                    let n =
                      {
                        hdr = Mem.make (stats t);
                        key;
                        value;
                        next = Link.null ();
                      }
                    in
                    fresh := Some n;
                    n
              in
              Link.set node.next (Tagged.make (Tagged.ptr cur_t));
              if Link.cas_clean prev_link cur_t (Tagged.make (Some node)) then
                `Done true
              else `Retry)

  let remove t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match find_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, prev_link, cur_t, cur) ->
            if not found then `Done false
            else
              let cur = Option.get cur in
              let next_t = Link.get cur.next in
              if Tagged.is_deleted next_t then `Retry (* someone else won *)
              else if
                not
                  (Link.cas_clean cur.next next_t
                     (Tagged.set_bits next_t Tagged.deleted_bit))
              then `Retry
              else begin
                (* Logical deletion done; physically unlink if we can, else
                   a later traversal will. Only the unlinker retires. *)
                let desired = Tagged.make (Tagged.ptr next_t) in
                if Link.cas_clean prev_link cur_t desired then
                  S.retire l.handle cur.hdr;
                `Done true
              end)

  (* Quiescent helpers (single-threaded use only). *)

  let to_list t =
    let rec walk acc tg =
      match Tagged.ptr tg with
      | None -> List.rev acc
      | Some n ->
          let next_t = Link.get_quiescent n.next in
          let acc =
            if Tagged.is_deleted next_t then acc else (n.key, n.value) :: acc
          in
          walk acc next_t
    in
    walk [] (Link.get_quiescent t.head)

  let size t = List.length (to_list t)

  (* Every node physically linked from the head must not be freed; walks
     marked nodes too. Quiescent test invariant. *)
  let assert_reachable_not_freed t =
    let rec walk tg =
      match Tagged.ptr tg with
      | None -> ()
      | Some n ->
          assert (not (Mem.is_freed n.hdr));
          walk (Link.get_quiescent n.next)
    in
    walk (Link.get_quiescent t.head)
end
