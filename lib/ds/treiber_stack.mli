(** Treiber stack; pop protects the head before dereferencing it.

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      module C :
        sig
          type 'n protect_outcome =
            'n Ds_common.Make(S).protect_outcome =
              Ok of 'n Ds_common.Tagged.t
            | Invalid
          val uid_of_hdr : Ds_common.Mem.header option -> int
          val trace_step :
            node_header:('a -> Ds_common.Mem.header) ->
            src:Ds_common.Mem.header option ->
            validated:bool -> 'a Ds_common.Tagged.t -> unit
          val try_protect :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> 'a protect_outcome
          val protect_pessimistic :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> bool
          val with_crit :
            S.handle ->
            Smr_core.Stats.t ->
            (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
        end
      type 'v node = { hdr : Mem.header; value : 'v; next : 'v node option; }
      val node_header : 'a node -> Mem.header
      type 'v t = { scheme : S.t; top : 'v node Link.t; }
      type local = { handle : S.handle; hp : S.guard; }
      val create : S.t -> 'a t
      val scheme : 'a t -> S.t
      val stats : 'a t -> Smr_core.Stats.t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val push : 'a t -> local -> 'a -> unit
      val pop : 'a t -> local -> 'a option
      val peek : 'a t -> local -> 'a option
      val to_list : 'a t -> 'a list
      val length : 'a t -> int
    end
