(** Lock-free skiplist (Herlihy–Shavit), with the wait-free get used by the
    paper for every scheme except HP.

    Towers are arrays of tagged links, one per level, marked independently.
    Physical deletion is per level: any traversal that meets a marked node
    snips that level through [S.try_unlink], with the severed level's
    successor as the frontier and the severed link invalidated in the same
    batch. A tower carries a [remaining] count of levels still linked (plus
    levels its insert still owes); the snip — or the insert giving up its
    unlinked upper levels — that drops the count to zero retires the node.
    This is the multi-link generalization of the paper's chain unlink: each
    level is its own unlink with its own frontier and invalidation flag. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats
module Rng = Smr_core.Rng

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  let max_height = 16

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v;
    next : 'v node Link.t array;
    remaining : int Atomic.t;
  }

  let node_header n = n.hdr
  let height n = Array.length n.next

  (* A position above a tower: either the head's link array or a node's. *)
  type 'v pred = { links : 'v node Link.t array; node : 'v node option }

  type 'v t = { scheme : S.t; head : 'v node Link.t array }

  type local = {
    handle : S.handle;
    rng : Rng.t;
    mutable hp_pred : S.guard;
    mutable hp_cur : S.guard;
    pred_guards : S.guard array;
    target_guard : S.guard;
  }

  let create scheme =
    { scheme; head = Array.init max_height (fun _ -> Link.null ()) }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let locals_seed = Atomic.make 1

  let make_local handle =
    {
      handle;
      rng = Rng.create ~seed:(Atomic.fetch_and_add locals_seed 1 * 0x9E3779B9);
      hp_pred = S.guard handle;
      hp_cur = S.guard handle;
      pred_guards = Array.init max_height (fun _ -> S.guard handle);
      target_guard = S.guard handle;
    }

  let clear_local l =
    S.release l.hp_pred;
    S.release l.hp_cur;
    Array.iter S.release l.pred_guards;
    S.release l.target_guard

  let swap_guards l =
    let p = l.hp_pred in
    l.hp_pred <- l.hp_cur;
    l.hp_cur <- p

  let random_height l =
    let bits = Int64.to_int (Rng.next l.rng) in
    let rec count h bits =
      if h >= max_height || bits land 1 = 0 then h else count (h + 1) (bits lsr 1)
    in
    count 1 bits

  let invalidate_level n lvl _fully_unlinked = Link.mark_invalid n.next.(lvl)

  (* Sever [cur]'s link at [lvl] out of [pred_links]. The frontier is the
     level's successor; the severed link is invalidated in the deferred
     batch; the tower is retired iff this was its last accounted level. *)
  let snip l ~pred_links ~lvl ~cur ~cur_t ~next_t =
    let desired = Tagged.make (Tagged.ptr next_t) in
    let frontier =
      match Tagged.ptr next_t with Some f -> [ f.hdr ] | None -> []
    in
    let ok =
      S.try_unlink l.handle ~frontier
        ~do_unlink:(fun () ->
          if Link.cas_clean pred_links.(lvl) cur_t desired then
            Some
              (if Atomic.fetch_and_add cur.remaining (-1) = 1 then [ cur ]
               else [])
          else None)
        ~node_header
        ~invalidate:(invalidate_level cur lvl)
    in
    if ok then Some desired else None

  (* An insert that cannot link its upper levels anymore (its node got
     removed, or protection failed after the linearization point) still owes
     the tower's level accounting for them. *)
  let give_up_levels l node ~from_level =
    let owed = height node - from_level in
    if
      owed > 0
      && Atomic.fetch_and_add node.remaining (-owed) = owed
    then
      ignore
        (S.try_unlink l.handle ~frontier:[]
           ~do_unlink:(fun () -> Some [ node ])
           ~node_header
           ~invalidate:(fun _ ->
             Array.iter Link.mark_invalid node.next))

  (* One full descent. [`Done (found, preds, pred_ts, succs)] records, per
     level, the last tower strictly before [key], the link record read from
     it, and its successor. *)
  let find_attempt t l key =
    let preds = Array.make max_height { links = t.head; node = None } in
    let pred_ts = Array.make max_height Tagged.null in
    let succs = Array.make max_height None in
    let protect_cur pred_links lvl cur_t =
      if S.supports_optimistic then
        match
          C.try_protect ~node_header l.hp_cur l.handle
            ~src_link:pred_links.(lvl) cur_t
        with
        | C.Invalid -> None
        | C.Ok cur_t -> Some cur_t
      else if
        C.protect_pessimistic ~node_header l.hp_cur l.handle
          ~src_link:pred_links.(lvl) cur_t
      then Some cur_t
      else None
    in
    let rec level lvl pred =
      if lvl < 0 then
        `Done
          ( (match succs.(0) with Some c -> c.key = key | None -> false),
            preds,
            pred_ts,
            succs )
      else
        let rec walk pred cur_t =
          match protect_cur pred.links lvl cur_t with
          | None -> `Prot
          | Some cur_t -> (
              match Tagged.ptr cur_t with
              | None -> descend pred cur_t None
              | Some cur ->
                  Mem.check_access cur.hdr;
                  let next_t = Link.get cur.next.(lvl) in
                  if Tagged.is_deleted next_t then
                    match
                      snip l ~pred_links:pred.links ~lvl ~cur ~cur_t ~next_t
                    with
                    | Some desired -> walk pred desired
                    | None -> `Retry
                  else if cur.key < key then begin
                    swap_guards l;
                    walk { links = cur.next; node = Some cur } next_t
                  end
                  else descend pred cur_t (Some cur))
        and descend pred cur_t succ =
          preds.(lvl) <- pred;
          pred_ts.(lvl) <- cur_t;
          succs.(lvl) <- succ;
          (match pred.node with
          | Some p -> S.protect l.pred_guards.(lvl) p.hdr
          | None -> ());
          level (lvl - 1) pred
        in
        walk pred (Link.get pred.links.(lvl))
    in
    level (max_height - 1) { links = t.head; node = None }

  (* Link levels [1 .. height-1] of a freshly inserted [node]; level 0 is
     already linked (the linearization point), so failures here only affect
     level accounting, never the operation's result. *)
  let link_upper t l node =
    let rec level lvl =
      if lvl >= height node then ()
      else
        match find_attempt t l node.key with
        | `Prot ->
            S.crit_refresh l.handle;
            give_up_levels l node ~from_level:lvl
        | `Retry -> level lvl
        | `Done (_, preds, pred_ts, succs) ->
            let still_there =
              match succs.(0) with Some n -> n == node | None -> false
            in
            if not still_there then
              (* the node has already been removed *)
              give_up_levels l node ~from_level:lvl
            else
              let mine = Link.get node.next.(lvl) in
              if Tagged.is_deleted mine then
                give_up_levels l node ~from_level:lvl
              else if
                not (Link.cas_clean node.next.(lvl) mine (Tagged.make succs.(lvl)))
              then level lvl (* lost to a concurrent marker: re-check *)
              else if
                Link.cas_clean preds.(lvl).links.(lvl) pred_ts.(lvl)
                  (Tagged.make (Some node))
              then level (lvl + 1)
              else level lvl
    in
    level 1

  let get_optimistic t l key =
    let rec level lvl pred cur_t =
      match
        C.try_protect ~node_header l.hp_cur l.handle ~src_link:pred.links.(lvl)
          cur_t
      with
      | C.Invalid -> `Prot
      | C.Ok cur_t -> (
          let descend pred =
            if lvl = 0 then `Done None
            else level (lvl - 1) pred (Link.get pred.links.(lvl - 1))
          in
          match Tagged.ptr cur_t with
          | None -> descend pred
          | Some cur ->
              Mem.check_access cur.hdr;
              let next_t = Link.get cur.next.(lvl) in
              if cur.key < key then begin
                swap_guards l;
                level lvl { links = cur.next; node = Some cur } next_t
              end
              else if cur.key = key && lvl = 0 then
                `Done
                  (if Tagged.is_deleted next_t then None else Some cur.value)
              else if cur.key = key && not (Tagged.is_deleted next_t) then
                `Done (Some cur.value)
              else descend pred)
    in
    let start = { links = t.head; node = None } in
    level (max_height - 1) start (Link.get t.head.(max_height - 1))

  let get t l key =
    C.with_crit l.handle (stats t) (fun () ->
        if S.supports_optimistic then get_optimistic t l key
        else
          match find_attempt t l key with
          | (`Prot | `Retry) as r -> r
          | `Done (found, _, _, succs) ->
              if not found then `Done None
              else
                let c = Option.get succs.(0) in
                `Done
                  (if Tagged.is_deleted (Link.get c.next.(0)) then None
                   else Some c.value))

  let insert t l key value =
    let fresh = ref None in
    C.with_crit l.handle (stats t) (fun () ->
        match find_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, preds, pred_ts, succs) ->
            if found then begin
              (match !fresh with
              | Some _ -> Stats.on_discard (stats t)
              | None -> ());
              `Done false
            end
            else
              let node =
                match !fresh with
                | Some n -> n
                | None ->
                    let h = random_height l in
                    let n =
                      {
                        hdr = Mem.make (stats t);
                        key;
                        value;
                        next = Array.init h (fun _ -> Link.null ());
                        remaining = Atomic.make h;
                      }
                    in
                    fresh := Some n;
                    n
              in
              Link.set node.next.(0) (Tagged.make succs.(0));
              if
                Link.cas_clean preds.(0).links.(0) pred_ts.(0)
                  (Tagged.make (Some node))
              then begin
                link_upper t l node;
                `Done true
              end
              else `Retry)

  let remove t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match find_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, _, _, succs) ->
            if not found then `Done false
            else begin
              let x = Option.get succs.(0) in
              S.protect l.target_guard x.hdr;
              (* Mark from the top down; level 0 last — winning its mark CAS
                 is the linearization point and makes us the remover. *)
              for lvl = height x - 1 downto 1 do
                let rec mark () =
                  let r = Link.get x.next.(lvl) in
                  if not (Tagged.is_deleted r) then
                    if
                      not
                        (Link.cas x.next.(lvl) r
                           (Tagged.set_bits r Tagged.deleted_bit))
                    then mark ()
                in
                mark ()
              done;
              let rec mark_bottom () =
                let r = Link.get x.next.(0) in
                if Tagged.is_deleted r then `Done false
                else if
                  Link.cas_clean x.next.(0) r
                    (Tagged.set_bits r Tagged.deleted_bit)
                then begin
                  (* Help unlink: one clean descent snips every level this
                     thread can still see. Other traversals finish the job
                     if ours fails. *)
                  let rec cleanup budget =
                    if budget > 0 then
                      match find_attempt t l key with
                      | `Done _ -> ()
                      | `Prot ->
                          S.crit_refresh l.handle;
                          cleanup (budget - 1)
                      | `Retry -> cleanup (budget - 1)
                  in
                  cleanup 16;
                  `Done true
                end
                else mark_bottom ()
              in
              mark_bottom ()
            end)

  (* Quiescent helpers. *)

  let to_list t =
    let rec walk acc tg =
      match Tagged.ptr tg with
      | None -> List.rev acc
      | Some n ->
          let next_t = Link.get_quiescent n.next.(0) in
          let acc =
            if Tagged.is_deleted next_t then acc else (n.key, n.value) :: acc
          in
          walk acc next_t
    in
    walk [] (Link.get_quiescent t.head.(0))

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    Array.iter
      (fun link ->
        let rec walk tg =
          match Tagged.ptr tg with
          | None -> ()
          | Some n ->
              assert (not (Mem.is_freed n.hdr));
              walk (Link.get_quiescent n.next.(0))
        in
        walk (Link.get_quiescent link))
      t.head
end
