(** Michael–Scott queue (PODC 1996) — cited by the paper (§4.2) as a
    structure where only the tail node mutates and unlinking happens at the
    head, so Assumption 1 holds and classic HP retirement suffices. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = { hdr : Mem.header; value : 'v option; next : 'v node Link.t }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; head : 'v node Link.t; tail : 'v node Link.t }
  type local = { handle : S.handle; hp_head : S.guard; hp_next : S.guard }

  let create scheme =
    let stats = S.stats scheme in
    let dummy = { hdr = Mem.make stats; value = None; next = Link.null () } in
    let d = Tagged.make (Some dummy) in
    { scheme; head = Link.make d; tail = Link.make d }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    { handle; hp_head = S.guard handle; hp_next = S.guard handle }

  let clear_local l =
    S.release l.hp_head;
    S.release l.hp_next

  let enqueue t l value =
    let hdr = Mem.make (stats t) in
    let node = { hdr; value = Some value; next = Link.null () } in
    C.with_crit l.handle (stats t) (fun () ->
        let tail_t = Link.get t.tail in
        let tl = Tagged.get_exn tail_t in
        if
          not
            (C.protect_pessimistic ~node_header l.hp_head l.handle
               ~src_link:t.tail tail_t)
        then `Prot
        else begin
          Mem.check_access tl.hdr;
          let next_t = Link.get tl.next in
          match Tagged.ptr next_t with
          | None ->
              if Link.cas_clean tl.next next_t (Tagged.make (Some node))
              then begin
                (* Swing the tail; losing this CAS is fine (someone helped). *)
                ignore
                  (Link.cas_clean t.tail tail_t (Tagged.make (Some node)));
                `Done ()
              end
              else `Retry
          | Some _ ->
              (* Tail lags behind: help advance it. *)
              ignore
                (Link.cas_clean t.tail tail_t (Tagged.untagged next_t));
              `Retry
        end)

  let dequeue t l =
    C.with_crit l.handle (stats t) (fun () ->
        let head_t = Link.get t.head in
        let h = Tagged.get_exn head_t in
        if
          not
            (C.protect_pessimistic ~node_header l.hp_head l.handle
               ~src_link:t.head head_t)
        then `Prot
        else begin
          Mem.check_access h.hdr;
          let tail_t = Link.get t.tail in
          let next_t = Link.get h.next in
          match Tagged.ptr next_t with
          | None -> `Done None
          | Some n ->
              if Tagged.same_ptr head_t tail_t then begin
                (* Help the lagging tail past the dummy. *)
                ignore (Link.cas_clean t.tail tail_t (Tagged.untagged next_t));
                `Retry
              end
              else begin
                (* Protect [n], then validate: while [head] still holds [h],
                   [n] cannot have been retired, so the protection is safe. *)
                S.protect l.hp_next n.hdr;
                if not (S.protection_valid l.handle) then `Prot
                else if not (Tagged.same_ptr (Link.get t.head) head_t) then
                  `Retry
                else begin
                  Mem.check_access n.hdr;
                  let value = n.value in
                  if Link.cas_clean t.head head_t (Tagged.untagged next_t)
                  then begin
                    S.retire l.handle h.hdr;
                    `Done value
                  end
                  else `Retry
                end
              end
        end)

  (* Quiescent helpers. *)

  (* [head] points at the current dummy, whose [value] is whatever the
     last dequeue returned (dequeue advances [head] without clearing the
     field), so the walk must skip the first node unconditionally — only
     the initial dummy carries [None]. Matching on [value] instead would
     re-include the last-dequeued element (caught by the model checker:
     test/check_corpus/msqueue-to-list-model.case). *)
  let to_list t =
    let rec walk acc tg =
      match Tagged.ptr tg with
      | None -> List.rev acc
      | Some n ->
          let acc = match n.value with Some v -> v :: acc | None -> acc in
          walk acc (Link.get_quiescent n.next)
    in
    match Tagged.ptr (Link.get_quiescent t.head) with
    | None -> []
    | Some dummy -> walk [] (Link.get_quiescent dummy.next)

  let length t = List.length (to_list t)
end
