(** Harris's linked list (Harris, DISC 2001) with the wait-free get of
    Herlihy–Shavit — "HHSList" in the paper's evaluation — protected with
    HP++ exactly as in paper Algorithm 4.

    Traversal is {e optimistic}: it walks through chains of logically
    deleted nodes and unlinks a whole chain with one CAS. This is
    incompatible with the original HP ({!Make.create} raises
    {!Smr.Smr_intf.Unsupported_scheme}); with HP++/PEBR, protection fails
    only on invalidation/neutralization, and with EBR/NR/RC protection is
    free, so [get] is wait-free there and lock-free here (paper §4.3). *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v;
    next : 'v node Link.t;
  }

  let node_header n = n.hdr

  type 'v t = { scheme : S.t; head : 'v node Link.t }

  type local = {
    handle : S.handle;
    mutable hp_prev : S.guard;
    mutable hp_cur : S.guard;
    mutable hp_anchor : S.guard;
    mutable hp_anchor_next : S.guard;
  }

  (* The pending chain unlink: CAS [a_link] from [a_expected] (pointing at
     the first deleted node of the chain) to the frontier. *)
  type 'v anchor_info = {
    a_link : 'v node Link.t;
    a_expected : 'v node Tagged.t;
    a_first : 'v node; (* = anchor_next: first node of the deleted chain *)
  }

  let create scheme =
    if not S.supports_optimistic then
      raise
        (Smr.Smr_intf.Unsupported_scheme
           ("HHSList traverses logically deleted chains, which " ^ S.name
          ^ " cannot protect (paper 2.3)"));
    { scheme; head = Link.null () }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    {
      handle;
      hp_prev = S.guard handle;
      hp_cur = S.guard handle;
      hp_anchor = S.guard handle;
      hp_anchor_next = S.guard handle;
    }

  let clear_local l =
    S.release l.hp_prev;
    S.release l.hp_cur;
    S.release l.hp_anchor;
    S.release l.hp_anchor_next

  let swap_prev_cur l =
    let p = l.hp_prev in
    l.hp_prev <- l.hp_cur;
    l.hp_cur <- p

  let swap_anchor_prev l =
    let a = l.hp_anchor in
    l.hp_anchor <- l.hp_prev;
    l.hp_prev <- a

  let swap_anchor_next_prev l =
    let a = l.hp_anchor_next in
    l.hp_anchor_next <- l.hp_prev;
    l.hp_prev <- a

  (* Nodes of the just-unlinked chain, from its first node up to (not
     including) the frontier. Their links are frozen (all are logically
     deleted), so this walk is deterministic. *)
  let collect_chain first until =
    let is_until n = match until with Some c -> n == c | None -> false in
    let rec walk n acc =
      if is_until n then List.rev acc
      else
        let acc = n :: acc in
        match Tagged.ptr (Link.get n.next) with
        | Some m -> walk m acc
        | None -> List.rev acc
    in
    walk first []

  let invalidate_node n = Link.mark_invalid n.next

  (* Paper Algorithm 4 TrySearch. One attempt; [`Done (found, prev_link,
     expected, cur)] leaves [prev_link] holding [expected] whose target is
     [cur], the first non-deleted node with key >= [key]. *)
  let search_attempt t l key =
    let finish ~found prev_link cur_t cur_opt anchor =
      match anchor with
      | None -> (
          match cur_opt with
          | Some c when Tagged.is_deleted (Link.get c.next) -> `Retry
          | _ -> `Done (found, prev_link, cur_t, cur_opt))
      | Some a ->
          let frontier =
            match cur_opt with Some c -> [ c.hdr ] | None -> []
          in
          let desired = Tagged.make cur_opt in
          let unlinked =
            S.try_unlink l.handle ~frontier
              ~do_unlink:(fun () ->
                if Link.cas_clean a.a_link a.a_expected desired then
                  Some (collect_chain a.a_first cur_opt)
                else None)
              ~node_header ~invalidate:(List.iter invalidate_node)
          in
          if not unlinked then `Retry
          else begin
            match cur_opt with
            | Some c when Tagged.is_deleted (Link.get c.next) -> `Retry
            | _ -> `Done (found, a.a_link, desired, cur_opt)
          end
    in
    let rec loop prev_node prev_link cur_t anchor =
      match
        C.try_protect
          ?src:(match prev_node with Some p -> Some p.hdr | None -> None)
          ~node_header l.hp_cur l.handle ~src_link:prev_link cur_t
      with
      | C.Invalid -> `Prot
      | C.Ok cur_t -> (
          match Tagged.ptr cur_t with
          | None -> finish ~found:false prev_link cur_t None anchor
          | Some cur ->
              Mem.check_access cur.hdr;
              let next_t = Link.get cur.next in
              if not (Tagged.is_deleted next_t) then
                if cur.key >= key then
                  finish ~found:(cur.key = key) prev_link cur_t (Some cur)
                    anchor
                else begin
                  swap_prev_cur l;
                  loop (Some cur) cur.next next_t None
                end
              else begin
                (* [cur] is logically deleted: optimistic traversal walks
                   through it, remembering where the chain started. *)
                let anchor =
                  match anchor with
                  | None ->
                      swap_anchor_prev l;
                      Some
                        {
                          a_link = prev_link;
                          a_expected = cur_t;
                          a_first = cur;
                        }
                  | Some a ->
                      (match prev_node with
                      | Some p when p == a.a_first -> swap_anchor_next_prev l
                      | _ -> ());
                      Some a
                in
                swap_prev_cur l;
                loop (Some cur) cur.next next_t anchor
              end)
    in
    loop None t.head (Link.get t.head) None

  (* Wait-free (under EBR/NR/RC; lock-free under HP++/PEBR) search that
     ignores logical deletion entirely and never writes. *)
  let get t l key =
    C.with_crit l.handle (stats t) (fun () ->
        let rec walk src prev_link cur_t =
          match
            C.try_protect ?src ~node_header l.hp_cur l.handle
              ~src_link:prev_link cur_t
          with
          | C.Invalid -> `Prot
          | C.Ok cur_t -> (
              match Tagged.ptr cur_t with
              | None -> `Done None
              | Some cur ->
                  Mem.check_access cur.hdr;
                  let next_t = Link.get cur.next in
                  if cur.key > key then `Done None
                  else if cur.key = key then
                    `Done
                      (if Tagged.is_deleted next_t then None
                       else Some cur.value)
                  else begin
                    swap_prev_cur l;
                    walk (Some cur.hdr) cur.next next_t
                  end)
        in
        walk None t.head (Link.get t.head))

  let insert t l key value =
    let fresh = ref None in
    C.with_crit l.handle (stats t) (fun () ->
        match search_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, prev_link, cur_t, cur_opt) ->
            if found then begin
              (match !fresh with
              | Some _ -> Stats.on_discard (stats t)
              | None -> ());
              `Done false
            end
            else
              let node =
                match !fresh with
                | Some n -> n
                | None ->
                    let n =
                      {
                        hdr = Mem.make (stats t);
                        key;
                        value;
                        next = Link.null ();
                      }
                    in
                    fresh := Some n;
                    n
              in
              Link.set node.next (Tagged.make cur_opt);
              if Link.cas_clean prev_link cur_t (Tagged.make (Some node)) then
                `Done true
              else `Retry)

  let remove t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match search_attempt t l key with
        | (`Prot | `Retry) as r -> r
        | `Done (found, prev_link, cur_t, cur_opt) ->
            if not found then `Done false
            else
              let cur = Option.get cur_opt in
              let next_t = Link.get cur.next in
              if Tagged.is_deleted next_t then `Retry
              else if
                not
                  (Link.cas_clean cur.next next_t
                     (Tagged.set_bits next_t Tagged.deleted_bit))
              then `Retry
              else begin
                (* Logically deleted (linearization point). Physical
                   deletion must go through TryUnlink so the frontier is
                   protected and [cur] invalidated before it is retired. *)
                let frontier =
                  match Tagged.ptr next_t with
                  | Some n -> [ n.hdr ]
                  | None -> []
                in
                ignore
                  (S.try_unlink l.handle ~frontier
                     ~do_unlink:(fun () ->
                       if
                         Link.cas_clean prev_link cur_t
                           (Tagged.make (Tagged.ptr next_t))
                       then Some [ cur ]
                       else None)
                     ~node_header ~invalidate:(List.iter invalidate_node));
                `Done true
              end)

  (* Quiescent helpers (single-threaded use only). *)

  let to_list t =
    let rec walk acc tg =
      match Tagged.ptr tg with
      | None -> List.rev acc
      | Some n ->
          let next_t = Link.get_quiescent n.next in
          let acc =
            if Tagged.is_deleted next_t then acc else (n.key, n.value) :: acc
          in
          walk acc next_t
    in
    walk [] (Link.get_quiescent t.head)

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    let rec walk tg =
      match Tagged.ptr tg with
      | None -> ()
      | Some n ->
          assert (not (Mem.is_freed n.hdr));
          walk (Link.get_quiescent n.next)
    in
    walk (Link.get_quiescent t.head)
end
