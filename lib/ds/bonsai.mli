(** External Bonsai balanced tree (paper §5): weight-balanced BST whose updates rebuild a path copy and retire the replaced subtree in one batch.

    Signature inferred from the implementation; the full surface stays
    exported because the harness, tests and sibling modules consume the
    node representations directly. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats
module Make :
  functor (S : Smr.Smr_intf.S) ->
    sig
      module C :
        sig
          type 'n protect_outcome =
            'n Ds_common.Make(S).protect_outcome =
              Ok of 'n Ds_common.Tagged.t
            | Invalid
          val uid_of_hdr : Ds_common.Mem.header option -> int
          val trace_step :
            node_header:('a -> Ds_common.Mem.header) ->
            src:Ds_common.Mem.header option ->
            validated:bool -> 'a Ds_common.Tagged.t -> unit
          val try_protect :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> 'a protect_outcome
          val protect_pessimistic :
            ?src:Ds_common.Mem.header ->
            node_header:('a -> Ds_common.Mem.header) ->
            S.guard ->
            S.handle ->
            src_link:'a Ds_common.Link.t ->
            'a Ds_common.Tagged.t -> bool
          val with_crit :
            S.handle ->
            Smr_core.Stats.t ->
            (unit -> [< `Done of 'a | `Prot | `Retry ]) -> 'a
        end
      type 'v node = {
        hdr : Mem.header;
        key : int;
        value : 'v;
        left : 'v node option;
        right : 'v node option;
        size : int;
        invalid : bool Atomic.t;
      }
      val node_header : 'a node -> Mem.header
      type 'v t = { scheme : S.t; root : 'v node Link.t; }
      type local = {
        handle : S.handle;
        mutable hp_parent : S.guard;
        mutable hp_child : S.guard;
        mutable upd_guards : S.guard list;
        mutable upd_used : S.guard list;
      }
      exception Restart
      val create : S.t -> 'a t
      val scheme : 'a t -> S.t
      val stats : 'a t -> Smr_core.Stats.t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      type 'v ctx = {
        root_rec : 'v node Tagged.t;
        mutable replaced : 'v node list;
        mutable created : 'v node list;
        mutable pending_incrs : ('v node * Mem.header) list;
        mutable scrapped : 'v node list;
      }
      val take_guard : local -> S.guard
      val reset_guards : local -> unit
      val guard_old : 'a t -> local -> 'a ctx -> 'b node -> unit
      val node_size : 'a node option -> int
      val weight : 'a node option -> int
      val mk :
        'a ctx ->
        is_old:('a node -> bool) ->
        key:int ->
        value:'a ->
        left:'a node option ->
        right:'a node option -> Smr_core.Stats.t -> 'a node
      val consume : 'a ctx -> 'a node -> unit
      val scrap : 'a ctx -> 'a node -> unit
      val delta : int
      val ratio : int
      val rebalance :
        'a t ->
        local ->
        'a ctx ->
        Smr_core.Stats.t ->
        is_old:('a node -> bool) ->
        key:int ->
        value:'a -> left:'a node option -> right:'a node option -> 'a node
      val update :
        'v t ->
        local ->
        noop:'a ->
        ('v ctx ->
         is_old:('v node -> bool) ->
         'v node Tagged.t -> ('v node option * 'a) option) ->
        'a
      val insert : 'a t -> local -> int -> 'a -> bool
      val remove : 'a t -> local -> int -> bool
      val swap_read_guards : local -> unit
      val protect_read :
        'a t ->
        local ->
        root_rec:'a node Smr_core.Tagged.t ->
        parent:'b node option -> 'c node -> unit
      val get : 'a t -> local -> int -> 'a option
      val fold : 'a t -> local -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
      val to_list : 'a t -> (int * 'a) list
      val size_quiescent : 'a t -> int
      val size : 'a t -> int
      val assert_reachable_not_freed : 'a t -> unit
      val assert_balanced : 'a t -> unit
    end
