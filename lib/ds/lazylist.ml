(** Lazy list (Heller, Herlihy, Luchangco, Moir, Scherer, Shavit, OPODIS
    2006): a lock-based sorted list with lock-free wait-free membership —
    the first row of the paper's Table 2.

    Updates lock the two affected nodes and validate under the locks;
    [contains] traverses with no locks at all, walking through marked nodes
    (optimistic traversal), which makes the structure inapplicable to the
    original HP. With HP++ it is the paper's showcase for {e lock-based}
    recovery (§4.2): operations are access-aware — a read phase that writes
    nothing followed by a write phase under locks — so a protection failure
    can only happen in the read phase, where restarting is trivial; once
    the locks are held, the locked nodes cannot be invalidated and
    protection cannot fail. *)

module Mem = Smr_core.Mem
module Tagged = Smr_core.Tagged
module Link = Smr_core.Link
module Stats = Smr_core.Stats

module Make (S : Smr.Smr_intf.S) = struct
  module C = Ds_common.Make (S)

  type 'v node = {
    hdr : Mem.header;
    key : int;
    value : 'v;
    next : 'v node Link.t;
    marked : bool Atomic.t; (* logical deletion, separate from the link *)
    lock : Mutex.t;
  }

  let node_header n = n.hdr

  type 'v t = {
    scheme : S.t;
    head_link : 'v node Link.t;
    head_lock : Mutex.t;
  }

  (* An update's predecessor: the head sentinel (never marked, locked via
     the structure) or a real node. *)
  type 'v pred = Head | Node of 'v node

  let pred_link t = function Head -> t.head_link | Node n -> n.next
  let pred_lock t = function Head -> t.head_lock | Node n -> n.lock
  let pred_marked = function Head -> false | Node n -> Atomic.get n.marked

  type local = {
    handle : S.handle;
    mutable hp_prev : S.guard;
    mutable hp_cur : S.guard;
  }

  let create scheme =
    if not S.supports_optimistic then
      raise
        (Smr.Smr_intf.Unsupported_scheme
           ("the lazy list's wait-free contains walks marked nodes, which "
          ^ S.name ^ " cannot protect (paper Table 2)"));
    { scheme; head_link = Link.null (); head_lock = Mutex.create () }

  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  let make_local handle =
    { handle; hp_prev = S.guard handle; hp_cur = S.guard handle }

  let clear_local l =
    S.release l.hp_prev;
    S.release l.hp_cur

  let swap_guards l =
    let p = l.hp_prev in
    l.hp_prev <- l.hp_cur;
    l.hp_cur <- p

  (* Read phase: walk (through marked nodes) to the first node with
     key >= [key]. Protection is hand-over-hand HP++-style; the sentinel
     needs no protection. Returns the predecessor and the candidate. *)
  let walk t l key =
    let rec go prev cur_t =
      match
        C.try_protect ~node_header l.hp_cur l.handle
          ~src_link:(pred_link t prev) cur_t
      with
      | C.Invalid -> `Prot
      | C.Ok cur_t -> (
          match Tagged.ptr cur_t with
          | None -> `Done (prev, None)
          | Some cur ->
              Mem.check_access cur.hdr;
              if cur.key >= key then `Done (prev, Some cur)
              else begin
                swap_guards l;
                go (Node cur) (Link.get cur.next)
              end)
    in
    go Head (Link.get t.head_link)

  let contains t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match walk t l key with
        | `Prot -> `Prot
        | `Done (_, Some cur) when cur.key = key ->
            `Done
              (if Atomic.get cur.marked then None else Some cur.value)
        | `Done _ -> `Done None)

  let get = contains

  (* Write phase helper: lock pred then cur (list order — a consistent
     order, so no deadlock) and validate the Heller conditions. Locked,
     unmarked nodes cannot be invalidated (only unlinked nodes are, and
     unlinking requires the locks), so protection cannot fail from here
     on. *)
  let validated t ~pred ~cur f =
    Mutex.lock (pred_lock t pred);
    (match cur with Some c -> Mutex.lock c.lock | None -> ());
    let ok =
      (not (pred_marked pred))
      && (match cur with Some c -> not (Atomic.get c.marked) | None -> true)
      &&
      match (Tagged.ptr (Link.get (pred_link t pred)), cur) with
      | Some n, Some c -> n == c
      | None, None -> true
      | _ -> false
    in
    let result = if ok then Some (f ()) else None in
    (match cur with Some c -> Mutex.unlock c.lock | None -> ());
    Mutex.unlock (pred_lock t pred);
    result

  let insert t l key value =
    let fresh = ref None in
    C.with_crit l.handle (stats t) (fun () ->
        match walk t l key with
        | `Prot -> `Prot
        | `Done (pred, cur) -> (
            match cur with
            | Some c when c.key = key ->
                (match !fresh with
                | Some _ -> Stats.on_discard (stats t)
                | None -> ());
                `Done false
            | _ -> (
                let node =
                  match !fresh with
                  | Some n -> n
                  | None ->
                      let n =
                        {
                          hdr = Mem.make (stats t);
                          key;
                          value;
                          next = Link.null ();
                          marked = Atomic.make false;
                          lock = Mutex.create ();
                        }
                      in
                      fresh := Some n;
                      n
                in
                match
                  (* smr-lint: allow F1 — validated locks pred and cur before any deref; locked, unmarked nodes cannot be unlinked, hence never invalidated or freed (Heller validation) *)
                  validated t ~pred ~cur (fun () ->
                      Link.set node.next (Tagged.make cur);
                      Link.set (pred_link t pred) (Tagged.make (Some node)))
                with
                | Some () -> `Done true
                | None -> `Retry)))

  let remove t l key =
    C.with_crit l.handle (stats t) (fun () ->
        match walk t l key with
        | `Prot -> `Prot
        | `Done (_, None) -> `Done false
        | `Done (pred, Some cur) ->
            if cur.key <> key then `Done false
            else if Atomic.get cur.marked then `Done false
            else (
              match
                (* smr-lint: allow F1 — validated locks pred and cur before any deref; locked, unmarked nodes cannot be unlinked, hence never invalidated or freed (Heller validation) *)
                validated t ~pred ~cur:(Some cur) (fun () ->
                    (* logical deletion: the linearization point *)
                    Atomic.set cur.marked true;
                    (* physical deletion under the locks cannot fail, so
                       do_unlink always succeeds; the frontier is cur's
                       successor, invalidated flag on cur's link. *)
                    let next_t = Link.get cur.next in
                    let frontier =
                      match Tagged.ptr next_t with
                      | Some n -> [ n.hdr ]
                      | None -> []
                    in
                    ignore
                      (S.try_unlink l.handle ~frontier
                         ~do_unlink:(fun () ->
                           Link.set (pred_link t pred)
                             (Tagged.untagged next_t);
                           Some [ cur ])
                         ~node_header
                         ~invalidate:
                           (List.iter (fun n -> Link.mark_invalid n.next))))
              with
              | Some () -> `Done true
              | None -> `Retry))

  (* Quiescent helpers. *)

  let to_list t =
    let rec go acc tg =
      match Tagged.ptr tg with
      | None -> List.rev acc
      | Some n ->
          let acc =
            if Atomic.get n.marked then acc else (n.key, n.value) :: acc
          in
          go acc (Link.get_quiescent n.next)
    in
    go [] (Link.get_quiescent t.head_link)

  let size t = List.length (to_list t)

  let assert_reachable_not_freed t =
    let rec go tg =
      match Tagged.ptr tg with
      | None -> ()
      | Some n ->
          assert (not (Mem.is_freed n.hdr));
          go (Link.get_quiescent n.next)
    in
    go (Link.get_quiescent t.head_link)
end
