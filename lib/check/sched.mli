(** Deterministic cooperative scheduler over real domains.

    Runs N logical threads (thunks) so that exactly one executes at a time;
    control transfers only at the instrumented SMR hook sites
    ([Obs.Trace.emit] / [Fault.hit] under {!Fault.Hook.sched_bit}), which
    become the yield points. Between two yields a logical thread runs
    uninterrupted, so an interleaving is fully described by the sequence of
    scheduling decisions — a small array of ints — and replaying those
    decisions replays the run bit-for-bit.

    Mechanically each logical thread runs on a worker domain from a
    persistent pool, parked on a mutex/condvar baton. Handoffs {e block}
    (no spinning): the container this runs on may have a single core, and a
    spin-waiting baton would serialize through OS scheduling quanta and
    destroy both speed and determinism of wall-clock-bounded sweeps.

    Yields from domains that are not scheduled logical threads (the driver,
    a background collector) are no-ops, so the scheduler tolerates
    bystander instrumentation without capturing it. *)

exception Overflow
(** Raised inside every logical thread when a run exceeds [max_steps]
    yields: the schedule is livelocked (e.g. two threads ping-ponging
    retries). The run's verdict is "overflow", not a violation. *)

type policy = step:int -> site:int -> alts:int array -> int
(** Scheduling decision: called at every choice point with more than one
    candidate. [alts] are the runnable thread ids; when the yielding thread
    is itself runnable it is [alts.(0)], so returning [0] means "keep
    running" and any other index is a preemption. [site] is the yield site
    ({!Fault.Hook.site_fault_base}[ + point_code] or
    {!Fault.Hook.site_trace_base}[ + kind_code]), {!site_start} for the
    initial handoff and {!site_exit} when a thread just finished. [step] is
    the 0-based decision index. Returns an index into [alts] (clamped). *)

val site_start : int
val site_exit : int

type outcome = {
  choices : int array;  (** thread id chosen at each decision point *)
  trail : (int * int) array;
      (** (thread id, yield site) at every yield, in execution order: the
          canonical schedule trace replay and determinism tests compare *)
  steps : int;  (** total yields *)
  overflowed : bool;
  exns : exn option array;
      (** per-thread backstop: an exception that escaped a thread body
          (thread bodies normally catch their own) *)
}

val run : ?max_steps:int -> policy:policy -> (unit -> unit) array -> outcome
(** Run the thunks to completion under [policy] (default [max_steps]
    20000). Installs the scheduler hook for the duration of the call and
    uninstalls it before returning, even on exceptions. Not reentrant: one
    [run] at a time per process. *)

val tick : unit -> int
(** Logical clock for operation histories: strictly increasing across the
    run, advanced only by the caller. Only meaningful from the running
    logical thread (or the driver outside [run]), which is exactly where
    histories are recorded; successive ops get distinct invocation/return
    stamps even when no yield separates them. *)

val self : unit -> int
(** Logical thread id of the calling domain, [-1] for bystanders. *)

val teardown_pool : unit -> unit
(** Join the worker-domain pool. Registered via [at_exit] automatically;
    exposed for drivers that want a clean shutdown point. *)
