(** Pure sequential reference models and the linearizability check.

    The models are the sequential specifications the concurrent structures
    are diffed against: an association list for maps (insert-if-absent, the
    same spec [test/support/linearizability.ml] uses for shardkv), a list
    for the Treiber stack (head = top), a list for the MS queue
    (head = front).

    {!check} is a Wing–Gong style search: find an order of the completed
    operations, consistent with the real-time order the deterministic
    scheduler's logical clock observed, under which every operation's
    result matches the model — and which drives the model to the observed
    final contents. Operations killed mid-flight by fault injection are
    {e optional}: the search may apply their effect or drop them, since a
    crash can land on either side of the linearization point. *)

type result = RUnit | RBool of bool | ROpt of int option

val result_to_string : result -> string

type state =
  | SMap of (int * int) list  (** sorted by key *)
  | SStack of int list  (** top first *)
  | SQueue of int list  (** front first *)

val state_to_string : state -> string
val init : Gen.kind -> state

val apply : state -> Gen.op -> state * result
(** Sequential specification of one operation. *)

type entry = {
  op : Gen.op;
  res : result;  (** ignored when [killed] *)
  inv : int;  (** {!Sched.tick} at invocation *)
  ret : int;  (** {!Sched.tick} at return; [max_int] when [killed] *)
  killed : bool;
}

val check : Gen.kind -> entries:entry list -> final:state option -> bool
(** True iff the history linearizes (and, when [final] is given, some
    witness order also reproduces the final contents). Memoized DFS over
    (pending-set, model-state); at most 62 entries. *)
