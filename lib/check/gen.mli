(** Seeded operation-sequence generation for the model-based checker.

    Everything is derived from a {!Smr_core.Rng} (splitmix64): the same
    seed always yields the same scripts, so a failing case is identified by
    [(ds, scheme, seed, sizes)] alone before shrinking pins the concrete
    ops. Inserted values are unique per (thread, position) so the
    linearizability checker can tell {e which} racing insert took effect. *)

type op =
  | Insert of int * int  (** key, value; insert-if-absent, returns whether it inserted *)
  | Remove of int
  | Get of int
  | Push of int
  | Pop
  | Enq of int
  | Deq

type kind = KMap | KStack | KQueue

val kind_name : kind -> string
val op_kind : op -> kind
val op_to_string : op -> string

val op_of_string : string -> op
(** @raise Failure on an unrecognized rendering. *)

val script :
  kind -> rng:Smr_core.Rng.t -> tid:int -> nops:int -> keyspace:int -> op list
(** One thread's ops. Map scripts draw keys from [\[0, keyspace)] with
    weights insert 40 / remove 30 / get 30; stack and queue scripts mix
    push/enq 60 / pop/deq 40. *)

val scripts :
  kind -> seed:int -> threads:int -> nops:int -> keyspace:int -> op list array
(** Per-thread scripts from one seed. *)
