(** One model-check run: a case (scripts × scheme × fault plan) executed
    under one deterministic schedule, then judged.

    After the concurrent phase the harness tears the SUT down (clean
    detach for threads that finished, [report_crashed] recovery for killed
    or aborted ones), drains quiescent garbage, and asserts the
    meta-properties every schedule must satisfy:

    - no lifecycle exception escaped an operation ([Mem.Use_after_free] /
      [Double_retire] / [Invalid_free] — the uid-tracking UAF detector);
    - the structural sweep passes (reachable-not-freed, key uniqueness);
    - the completed operations' results linearize against the sequential
      reference model, killed ops optional, and some witness order
      reproduces the observed final contents;
    - a reclaiming scheme drained to zero unreclaimed blocks (clean runs)
      or a small kill residue (killed runs);
    - when the case records a trace, the offline protocol checker
      ({!Obs.Check}) replays it clean.

    A schedule-step overflow (livelocked interleaving) is reported as
    [`Overflow], not a violation, and skips the checks. *)

type case = {
  ds : string;
  scheme : string;
  threshold : int;  (** reclaim threshold for the scheme under test *)
  scripts : Gen.op list array;  (** one op list per logical thread *)
  fault : (Fault.point * int) option;
      (** arm [Kill] at this point on the [n]-th hit, counted from the
          start of the concurrent phase (setup does not consume hits) *)
  traced : bool;  (** record a trace and replay it through {!Obs.Check} *)
}

val case_to_string : case -> string

type vkind = Model_div | Uaf | Structural | Leak | Trace_bad | Exn_other

val vkind_name : vkind -> string
val vkind_of_name : string -> vkind

type violation = { vkind : vkind; detail : string }

type report = {
  outcome : [ `Pass | `Violation of violation | `Overflow ];
  choices : int array;  (** scheduling decisions taken, for replay *)
  trail : (int * int) array;  (** (tid, yield site) sequence *)
  steps : int;
  killed : int option;  (** tid the fault plan killed, if it fired *)
}

val max_kill_residue : int
(** Unreclaimed blocks tolerated after a killed run (crash recovery hands
    the victim's bag to survivors, but a few blocks can legitimately wait
    for the next pass). *)

val run_case : policy:Sched.policy -> ?max_steps:int -> case -> report
(** @raise Invalid_argument on an unknown or unsupported (ds, scheme). *)

val render_trail : (int * int) array -> string
(** Human-readable one-line-per-yield rendering ("tid site-name"); the
    determinism tests compare these byte-for-byte. *)
