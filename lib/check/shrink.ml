(* Counterexample minimization: greedily try structurally smaller cases
   (drop a whole thread, drop one op) and keep any reduction on which the
   violation still reproduces, to a fixpoint. Reproduction is delegated to
   the caller-supplied [refind] (usually {!Explore.refind} with the parent
   report's choices as the first replay attempt), so the shrinker itself
   stays policy-agnostic. *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let candidates (case : Harness.case) =
  let n = Array.length case.scripts in
  let drop_thread =
    if n <= 1 then []
    else
      List.init n (fun t ->
          {
            case with
            scripts =
              Array.of_list
                (List.filteri
                   (fun i _ -> i <> t)
                   (Array.to_list case.scripts));
          })
  in
  let drop_op =
    List.concat
      (List.init n (fun t ->
           List.init
             (List.length case.scripts.(t))
             (fun j ->
               let scripts = Array.copy case.scripts in
               scripts.(t) <- drop_nth scripts.(t) j;
               { case with scripts })))
  in
  (* Whole threads first: one success removes many ops at once. *)
  drop_thread @ drop_op

let shrink ~refind (case : Harness.case) (report : Harness.report) =
  let rec loop case (report : Harness.report) =
    let rec try_c = function
      | [] -> (case, report)
      | c :: rest -> (
          match refind c report.Harness.choices with
          | Some r -> loop c r
          | None -> try_c rest)
    in
    try_c (candidates case)
  in
  loop case report
