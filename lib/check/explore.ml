module Rng = Smr_core.Rng

let replay tids : Sched.policy =
 fun ~step ~site:_ ~alts ->
  if step >= Array.length tids then 0
  else begin
    let want = tids.(step) in
    let idx = ref 0 in
    let found = ref false in
    Array.iteri
      (fun i t ->
        if (not !found) && t = want then begin
          idx := i;
          found := true
        end)
      alts;
    !idx
  end

let random_policy ~seed ?(p_switch = 4) () : Sched.policy =
  let rng = Rng.create ~seed in
  fun ~step:_ ~site ~alts ->
    let n = Array.length alts in
    if n <= 1 then 0
    else if site < 0 then Rng.below rng n
    else if Rng.below rng p_switch = 0 then 1 + Rng.below rng (n - 1)
    else 0

type search_result =
  [ `Clean of int | `Found of Harness.report * int | `Budget of int ]

(* Prefix-replay DFS. Each run logs, per decision, how many alternatives
   were actually selectable (1 when the preemption budget is spent at a
   yield decision, the full candidate count otherwise) and which index was
   taken. Backtracking bumps the deepest decision with an untried
   alternative and replays the prefix; replay is sound because runs are
   deterministic, so the same prefix reproduces the same availabilities. *)
let dfs ?(preemptions = 2) ?(max_runs = max_int) ?(max_wall_ms = max_int) exec =
  let deadline =
    if max_wall_ms = max_int then infinity
    else Unix.gettimeofday () +. (float_of_int max_wall_ms /. 1000.)
  in
  let prefix = ref [||] in
  let runs = ref 0 in
  let rec loop () =
    if !runs >= max_runs || Unix.gettimeofday () > deadline then `Budget !runs
    else begin
      let avail_log = ref [] and chosen_log = ref [] in
      let used = ref 0 in
      let policy ~step ~site ~alts =
        let n = Array.length alts in
        let yield_decision = site >= 0 in
        let avail = if yield_decision && !used >= preemptions then 1 else n in
        let want = if step < Array.length !prefix then !prefix.(step) else 0 in
        let chosen = if want >= avail || want < 0 then 0 else want in
        avail_log := avail :: !avail_log;
        chosen_log := chosen :: !chosen_log;
        if yield_decision && chosen > 0 then incr used;
        chosen
      in
      incr runs;
      let report = exec policy in
      if Sys.getenv_opt "MC_DEBUG" <> None then
        Printf.eprintf "run %d: prefix=[%s] decisions=%d avail=[%s]\n%!" !runs
          (String.concat ","
             (Array.to_list (Array.map string_of_int !prefix)))
          (List.length !chosen_log)
          (String.concat ","
             (List.rev_map string_of_int !avail_log));
      match report.Harness.outcome with
      | `Violation _ -> `Found (report, !runs)
      | `Pass | `Overflow ->
          let avail = Array.of_list (List.rev !avail_log) in
          let chosen = Array.of_list (List.rev !chosen_log) in
          let k = ref (Array.length chosen - 1) in
          while !k >= 0 && chosen.(!k) + 1 >= avail.(!k) do
            decr k
          done;
          if !k < 0 then `Clean !runs
          else begin
            prefix :=
              Array.append (Array.sub chosen 0 !k) [| chosen.(!k) + 1 |];
            loop ()
          end
    end
  in
  loop ()

let refind ?(preemptions = 2) ?(max_runs = 200) ?(random_seeds = 30) case
    choices =
  let violating (r : Harness.report) =
    match r.outcome with `Violation _ -> Some r | _ -> None
  in
  match violating (Harness.run_case ~policy:(replay choices) case) with
  | Some r -> Some r
  | None -> (
      match
        dfs ~preemptions ~max_runs (fun policy ->
            Harness.run_case ~policy case)
      with
      | `Found (r, _) -> Some r
      | `Clean _ | `Budget _ ->
          let rec try_seed s =
            if s >= random_seeds then None
            else
              match
                violating
                  (Harness.run_case
                     ~policy:(random_policy ~seed:(s * 7919) ())
                     case)
              with
              | Some r -> Some r
              | None -> try_seed (s + 1)
          in
          try_seed 0)
