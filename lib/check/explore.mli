(** Schedule-space exploration policies and search drivers.

    Three ways to pick interleavings:

    - {!replay}: follow a recorded choice sequence (corpus regression
      replay, shrinking);
    - {!random_policy}: seeded random walk — mostly run on, preempt with
      probability 1/[p_switch] (larger structures where exhaustive
      enumeration is hopeless);
    - {!dfs}: bounded-exhaustive enumeration, preemption-bounded the way
      stateless model checkers bound it: at most [preemptions] decisions
      per run may switch away from a runnable thread, everything else is
      explored exhaustively by prefix replay with deepest-first
      backtracking. The schedule space collapses from exponential in trail
      length to O(trail^preemptions) runs. *)

val replay : int array -> Sched.policy
(** Follow the recorded chosen-tid sequence; out-of-range or impossible
    entries fall back to "keep running". *)

val random_policy : seed:int -> ?p_switch:int -> unit -> Sched.policy
(** Fresh splitmix64 stream per call; [p_switch] defaults to 4 (25%
    preemption per decision). Thread-exit handoffs pick uniformly. *)

type search_result =
  [ `Clean of int  (** exhausted the bounded space; runs executed *)
  | `Found of Harness.report * int  (** first violation; runs executed *)
  | `Budget of int  (** run or wall budget hit before exhaustion *) ]

val dfs :
  ?preemptions:int ->
  ?max_runs:int ->
  ?max_wall_ms:int ->
  (Sched.policy -> Harness.report) ->
  search_result
(** [preemptions] defaults to 2. The callback runs one full case under the
    given policy — typically [fun p -> Harness.run_case ~policy:p case]. *)

val refind :
  ?preemptions:int ->
  ?max_runs:int ->
  ?random_seeds:int ->
  Harness.case ->
  int array ->
  Harness.report option
(** Re-establish a violation on a (usually reduced) case: replay the given
    choice sequence first, then a budgeted {!dfs}, then a few random
    seeds. [None] when nothing reproduces — the reduction was too big. *)
