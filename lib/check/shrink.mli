(** Greedy counterexample minimization for model-check violations. *)

val candidates : Harness.case -> Harness.case list
(** One-step reductions, most aggressive first (drop a thread, then drop a
    single op). *)

val shrink :
  refind:(Harness.case -> int array -> Harness.report option) ->
  Harness.case ->
  Harness.report ->
  Harness.case * Harness.report
(** Reduce to a fixpoint: repeatedly take the first candidate on which
    [refind] (given the current violating choice sequence as a replay
    hint) re-establishes a violation. Returns the minimal case and its
    violating report. *)
