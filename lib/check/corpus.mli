(** Regression-corpus entries: a shrunk counterexample pinned as a text
    file — the concrete per-thread scripts, the fault plan, and the exact
    schedule (chosen-tid sequence) that exhibited the violation.

    [expect] records what the entry pinned {e before} the fix: replaying a
    corpus entry on fixed code must pass, and [model_check.exe replay
    --expect-violation] demonstrates the original failure on unfixed
    trees. The format is line-oriented and hand-editable:

    {v
    # model-check case v1
    ds msqueue
    scheme EBR
    threshold 1
    traced false
    fault retire 2
    thread enq 1001 ; deq
    thread deq
    choices 0 0 1 1 0
    expect model
    note found by sweep, shrunk from 2x3 ops
    v} *)

type entry = {
  case : Harness.case;
  choices : int array;
  expect : Harness.vkind option;
  notes : string list;
}

val to_string : entry -> string

val of_string : string -> entry
(** @raise Failure on malformed input. *)

val load : string -> entry
val save : string -> entry -> unit

val replay : entry -> Harness.report
(** Run the entry's case under its recorded schedule. *)
