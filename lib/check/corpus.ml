type entry = {
  case : Harness.case;
  choices : int array;
  expect : Harness.vkind option;
  notes : string list;
}

let point_of_name s =
  match
    List.find_opt (fun p -> Fault.point_name p = s) Fault.all_points
  with
  | Some p -> p
  | None -> failwith ("Corpus: unknown fault point " ^ s)

let to_string e =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# model-check case v1";
  line "ds %s" e.case.ds;
  line "scheme %s" e.case.scheme;
  line "threshold %d" e.case.threshold;
  line "traced %b" e.case.traced;
  (match e.case.fault with
  | None -> ()
  | Some (p, n) -> line "fault %s %d" (Fault.point_name p) n);
  Array.iter
    (fun ops ->
      line "thread %s" (String.concat " ; " (List.map Gen.op_to_string ops)))
    e.case.scripts;
  line "choices %s"
    (String.concat " " (Array.to_list (Array.map string_of_int e.choices)));
  (match e.expect with
  | None -> ()
  | Some v -> line "expect %s" (Harness.vkind_name v));
  List.iter (fun n -> line "note %s" n) e.notes;
  Buffer.contents b

let of_string s =
  let ds = ref None
  and scheme = ref None
  and threshold = ref 1
  and traced = ref false
  and fault = ref None
  and scripts = ref []
  and choices = ref [||]
  and expect = ref None
  and notes = ref [] in
  let strip_prefix p l =
    let lp = String.length p in
    if String.length l >= lp && String.sub l 0 lp = p then
      Some (String.trim (String.sub l lp (String.length l - lp)))
    else None
  in
  String.split_on_char '\n' s
  |> List.iter (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then ()
         else
           match strip_prefix "ds " l with
           | Some v -> ds := Some v
           | None -> (
               match strip_prefix "scheme " l with
               | Some v -> scheme := Some v
               | None -> (
                   match strip_prefix "threshold " l with
                   | Some v -> threshold := int_of_string v
                   | None -> (
                       match strip_prefix "traced " l with
                       | Some v -> traced := bool_of_string v
                       | None -> (
                           match strip_prefix "fault " l with
                           | Some v -> (
                               match String.split_on_char ' ' v with
                               | [ p; n ] ->
                                   fault :=
                                     Some (point_of_name p, int_of_string n)
                               | _ -> failwith ("Corpus: bad fault line " ^ l))
                           | None -> (
                               match strip_prefix "thread " l with
                               | Some v ->
                                   let ops =
                                     if String.trim v = "" then []
                                     else
                                       String.split_on_char ';' v
                                       |> List.map Gen.op_of_string
                                   in
                                   scripts := ops :: !scripts
                               | None -> (
                                   match strip_prefix "choices" l with
                                   | Some v ->
                                       choices :=
                                         (if v = "" then [||]
                                          else
                                            String.split_on_char ' ' v
                                            |> List.filter (fun x -> x <> "")
                                            |> List.map int_of_string
                                            |> Array.of_list)
                                   | None -> (
                                       match strip_prefix "expect " l with
                                       | Some v ->
                                           expect :=
                                             Some (Harness.vkind_of_name v)
                                       | None -> (
                                           match strip_prefix "note " l with
                                           | Some v -> notes := v :: !notes
                                           | None ->
                                               failwith
                                                 ("Corpus: bad line " ^ l))))))))));
  let req name = function
    | Some v -> v
    | None -> failwith ("Corpus: missing " ^ name)
  in
  {
    case =
      {
        Harness.ds = req "ds" !ds;
        scheme = req "scheme" !scheme;
        threshold = !threshold;
        scripts = Array.of_list (List.rev !scripts);
        fault = !fault;
        traced = !traced;
      };
    choices = !choices;
    expect = !expect;
    notes = List.rev !notes;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = really_input_string ic n in
      try of_string b
      with Failure m -> failwith (path ^ ": " ^ m))

let save path e =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string e))

let replay e = Harness.run_case ~policy:(Explore.replay e.choices) e.case
