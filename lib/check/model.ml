type result = RUnit | RBool of bool | ROpt of int option

let result_to_string = function
  | RUnit -> "()"
  | RBool b -> string_of_bool b
  | ROpt None -> "none"
  | ROpt (Some v) -> Printf.sprintf "some %d" v

type state =
  | SMap of (int * int) list
  | SStack of int list
  | SQueue of int list

let state_to_string = function
  | SMap kvs ->
      "{"
      ^ String.concat "; "
          (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) kvs)
      ^ "}"
  | SStack vs | SQueue vs ->
      "[" ^ String.concat "; " (List.map string_of_int vs) ^ "]"

let init = function
  | Gen.KMap -> SMap []
  | Gen.KStack -> SStack []
  | Gen.KQueue -> SQueue []

(* Association lists stay sorted by key so structurally equal states hash
   and compare equal in the memo table. *)
let rec assoc_insert k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: _ as l when k < k' -> (k, v) :: l
  | kv :: rest -> kv :: assoc_insert k v rest

let apply state op =
  match (state, op) with
  | SMap kvs, Gen.Insert (k, v) ->
      if List.mem_assoc k kvs then (state, RBool false)
      else (SMap (assoc_insert k v kvs), RBool true)
  | SMap kvs, Gen.Remove k ->
      if List.mem_assoc k kvs then (SMap (List.remove_assoc k kvs), RBool true)
      else (state, RBool false)
  | SMap kvs, Gen.Get k -> (state, ROpt (List.assoc_opt k kvs))
  | SStack vs, Gen.Push v -> (SStack (v :: vs), RUnit)
  | SStack [], Gen.Pop -> (state, ROpt None)
  | SStack (v :: vs), Gen.Pop -> (SStack vs, ROpt (Some v))
  | SQueue vs, Gen.Enq v -> (SQueue (vs @ [ v ]), RUnit)
  | SQueue [], Gen.Deq -> (state, ROpt None)
  | SQueue (v :: vs), Gen.Deq -> (SQueue vs, ROpt (Some v))
  | _ -> invalid_arg "Model.apply: op does not match state kind"

type entry = {
  op : Gen.op;
  res : result;
  inv : int;
  ret : int;
  killed : bool;
}

let check kind ~entries ~final =
  let ops = Array.of_list entries in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Model.check: too many entries";
  (* Memo of failed (pending-set, state) pairs; successes return
     immediately, so only dead ends are stored. *)
  let failed : (int * state, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec go mask state =
    if mask = 0 then
      match final with None -> true | Some f -> state = f
    else if Hashtbl.mem failed (mask, state) then false
    else begin
      (* An entry can linearize first iff no pending entry returned before
         it was invoked. *)
      let min_ret = ref max_int in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 && ops.(i).ret < !min_ret then
          min_ret := ops.(i).ret
      done;
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let bit = 1 lsl !i in
        if mask land bit <> 0 && ops.(!i).inv <= !min_ret then begin
          let e = ops.(!i) in
          let rest = mask lxor bit in
          if e.killed then begin
            (* A killed op may have taken effect or not; its result was
               never observed either way. *)
            let st', _ = apply state e.op in
            ok := go rest state || go rest st'
          end
          else begin
            let st', r = apply state e.op in
            if r = e.res then ok := go rest st'
          end
        end;
        incr i
      done;
      if not !ok then Hashtbl.replace failed (mask, state) ();
      !ok
    end
  in
  go ((1 lsl n) - 1) (init kind)
