exception Overflow

type policy = step:int -> site:int -> alts:int array -> int

let site_start = -2
let site_exit = -1

type outcome = {
  choices : int array;
  trail : (int * int) array;
  steps : int;
  overflowed : bool;
  exns : exn option array;
}

(* Tiny growable int vector: trail/choices recording must not allocate a
   box per entry while holding the scheduler lock. *)
module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }
  let clear v = v.len <- 0

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.a 0 v.len
end

let default_policy ~step:_ ~site:_ ~alts:_ = 0

(* One global scheduler instance: runs are strictly sequential (model
   checking enumerates schedules one at a time), so a single mutable record
   reinitialized by [run] is enough, and [yield_site] can find it without
   threading state through the hook callback. All mutable fields are
   accessed either under [m] or by the unique baton holder; every baton
   transfer goes through [m], which carries the happens-before edges. *)
type st = {
  m : Mutex.t;
  cv : Condition.t;
  mutable runnable : bool array;
  mutable current : int; (* thread holding the baton; -1 = none *)
  mutable overflow : bool;
  mutable steps : int;
  mutable decisions : int;
  mutable max_steps : int;
  mutable policy : policy;
  choices : Vec.t;
  trail : Vec.t; (* flattened (tid, site) pairs *)
  mutable clock : int;
  mutable exns : exn option array;
}

let g =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    runnable = [||];
    current = -1;
    overflow = false;
    steps = 0;
    decisions = 0;
    max_steps = 0;
    policy = default_policy;
    choices = Vec.create ();
    trail = Vec.create ();
    clock = 0;
    exns = [||];
  }

let tid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)
let self () = Domain.DLS.get tid_key

let tick () =
  g.clock <- g.clock + 1;
  g.clock

(* Runnable candidates with [me] first (continuing is always alts.(0) so
   policies and the preemption-bounded enumerator can treat index 0 as "no
   context switch"). Pass [me = -1] for start/exit decisions. *)
let alts_of s ~me =
  let n = Array.length s.runnable in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if s.runnable.(i) then incr count
  done;
  let out = Array.make !count 0 in
  let pos = ref 0 in
  if me >= 0 && s.runnable.(me) then begin
    out.(0) <- me;
    pos := 1
  end;
  for i = 0 to n - 1 do
    if s.runnable.(i) && i <> me then begin
      out.(!pos) <- i;
      incr pos
    end
  done;
  out

(* Consult the policy at a choice point (caller holds [s.m]) and record the
   chosen tid. Forced choices (a single candidate) skip the policy and are
   not recorded: they carry no information, so replay arrays stay minimal. *)
let choose s ~site ~alts =
  if Array.length alts = 1 then alts.(0)
  else begin
    let idx = s.policy ~step:s.decisions ~site ~alts in
    let idx = if idx < 0 || idx >= Array.length alts then 0 else idx in
    s.decisions <- s.decisions + 1;
    let tid = alts.(idx) in
    Vec.push s.choices tid;
    tid
  end

let yield_site site =
  let me = Domain.DLS.get tid_key in
  if me >= 0 then begin
    let s = g in
    Mutex.lock s.m;
    if s.overflow then begin
      Mutex.unlock s.m;
      raise Overflow
    end;
    Vec.push s.trail me;
    Vec.push s.trail site;
    s.steps <- s.steps + 1;
    if s.steps > s.max_steps then begin
      s.overflow <- true;
      Condition.broadcast s.cv;
      Mutex.unlock s.m;
      raise Overflow
    end;
    let next = choose s ~site ~alts:(alts_of s ~me) in
    if next <> me then begin
      s.current <- next;
      Condition.broadcast s.cv;
      while s.current <> me && not s.overflow do
        Condition.wait s.cv s.m
      done;
      let aborted = s.overflow in
      Mutex.unlock s.m;
      if aborted then raise Overflow
    end
    else Mutex.unlock s.m
  end

(* A finished (or aborted) thread hands the baton on. During overflow the
   policy is not consulted — every surviving thread is being woken to
   unwind, order is irrelevant and the policy's bookkeeping may be spent. *)
let finish me =
  let s = g in
  Mutex.lock s.m;
  s.runnable.(me) <- false;
  let alts = alts_of s ~me:(-1) in
  if Array.length alts = 0 then s.current <- -1
  else if s.overflow then s.current <- alts.(0)
  else s.current <- choose s ~site:site_exit ~alts;
  Condition.broadcast s.cv;
  Mutex.unlock s.m

let body me f () =
  Domain.DLS.set tid_key me;
  let s = g in
  Mutex.lock s.m;
  while s.current <> me && not s.overflow do
    Condition.wait s.cv s.m
  done;
  let scheduled = s.current = me && not s.overflow in
  Mutex.unlock s.m;
  if scheduled then begin
    try f () with
    | Overflow -> ()
    | e -> s.exns.(me) <- Some e
  end;
  finish me;
  Domain.DLS.set tid_key (-1)

(* {1 Worker pool} — persistent domains parked between runs, so a sweep of
   thousands of schedules does not pay a domain spawn per logical thread. *)

type slot = {
  sm : Mutex.t;
  scv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable busy : bool;
  mutable quit : bool;
}

let pool : (slot * unit Domain.t) list ref = ref []
let pool_lock = Mutex.create ()

let rec worker slot =
  Mutex.lock slot.sm;
  while slot.job = None && not slot.quit do
    Condition.wait slot.scv slot.sm
  done;
  match slot.job with
  | None -> Mutex.unlock slot.sm (* quit *)
  | Some f ->
      Mutex.unlock slot.sm;
      (try f () with _ -> ());
      Mutex.lock slot.sm;
      slot.job <- None;
      slot.busy <- false;
      Condition.broadcast slot.scv;
      Mutex.unlock slot.sm;
      worker slot

let teardown_pool () =
  Mutex.lock pool_lock;
  let ds = !pool in
  pool := [];
  Mutex.unlock pool_lock;
  List.iter
    (fun (slot, _) ->
      Mutex.lock slot.sm;
      slot.quit <- true;
      Condition.broadcast slot.scv;
      Mutex.unlock slot.sm)
    ds;
  List.iter (fun (_, d) -> Domain.join d) ds

let teardown_registered = ref false

let acquire n =
  Mutex.lock pool_lock;
  if not !teardown_registered then begin
    teardown_registered := true;
    at_exit teardown_pool
  end;
  while List.length !pool < n do
    let slot =
      {
        sm = Mutex.create ();
        scv = Condition.create ();
        job = None;
        busy = false;
        quit = false;
      }
    in
    let d = Domain.spawn (fun () -> worker slot) in
    pool := !pool @ [ (slot, d) ]
  done;
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (slot, _) :: rest -> slot :: take (k - 1) rest
  in
  let slots = take n !pool in
  Mutex.unlock pool_lock;
  slots

let assign slot f =
  Mutex.lock slot.sm;
  slot.job <- Some f;
  slot.busy <- true;
  Condition.broadcast slot.scv;
  Mutex.unlock slot.sm

let await_idle slot =
  Mutex.lock slot.sm;
  while slot.busy do
    Condition.wait slot.scv slot.sm
  done;
  Mutex.unlock slot.sm

let run ?(max_steps = 20000) ~policy fs =
  let n = Array.length fs in
  if n = 0 then
    { choices = [||]; trail = [||]; steps = 0; overflowed = false; exns = [||] }
  else begin
    g.runnable <- Array.make n true;
    g.current <- -1;
    g.overflow <- false;
    g.steps <- 0;
    g.decisions <- 0;
    g.max_steps <- max_steps;
    g.policy <- policy;
    g.clock <- 0;
    g.exns <- Array.make n None;
    Vec.clear g.choices;
    Vec.clear g.trail;
    let slots = acquire n in
    Fault.Hook.install_sched yield_site;
    Fun.protect
      ~finally:(fun () -> Fault.Hook.uninstall_sched ())
      (fun () ->
        List.iteri (fun i slot -> assign slot (body i fs.(i))) slots;
        Mutex.lock g.m;
        g.current <- choose g ~site:site_start ~alts:(alts_of g ~me:(-1));
        Condition.broadcast g.cv;
        while g.current <> -1 do
          Condition.wait g.cv g.m
        done;
        Mutex.unlock g.m;
        List.iter await_idle slots);
    g.policy <- default_policy;
    let flat = Vec.to_array g.trail in
    let trail =
      Array.init (Array.length flat / 2) (fun i ->
          (flat.(2 * i), flat.((2 * i) + 1)))
    in
    {
      choices = Vec.to_array g.choices;
      trail;
      steps = g.steps;
      overflowed = g.overflow;
      exns = g.exns;
    }
  end
