module Rng = Smr_core.Rng

type op =
  | Insert of int * int
  | Remove of int
  | Get of int
  | Push of int
  | Pop
  | Enq of int
  | Deq

type kind = KMap | KStack | KQueue

let kind_name = function KMap -> "map" | KStack -> "stack" | KQueue -> "queue"

let op_kind = function
  | Insert _ | Remove _ | Get _ -> KMap
  | Push _ | Pop -> KStack
  | Enq _ | Deq -> KQueue

let op_to_string = function
  | Insert (k, v) -> Printf.sprintf "ins %d %d" k v
  | Remove k -> Printf.sprintf "del %d" k
  | Get k -> Printf.sprintf "get %d" k
  | Push v -> Printf.sprintf "push %d" v
  | Pop -> "pop"
  | Enq v -> Printf.sprintf "enq %d" v
  | Deq -> "deq"

let op_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "ins"; k; v ] -> Insert (int_of_string k, int_of_string v)
  | [ "del"; k ] -> Remove (int_of_string k)
  | [ "get"; k ] -> Get (int_of_string k)
  | [ "push"; v ] -> Push (int_of_string v)
  | [ "pop" ] -> Pop
  | [ "enq"; v ] -> Enq (int_of_string v)
  | [ "deq" ] -> Deq
  | _ -> failwith ("Gen.op_of_string: " ^ s)

(* Values are [(tid + 1) * 1000 + position]: globally unique, and a value
   seen in a result names exactly one (thread, op). *)
let script kind ~rng ~tid ~nops ~keyspace =
  List.init nops (fun i ->
      let v = ((tid + 1) * 1000) + i in
      match kind with
      | KMap ->
          let key = Rng.below rng keyspace in
          let r = Rng.below rng 10 in
          if r < 4 then Insert (key, v)
          else if r < 7 then Remove key
          else Get key
      | KStack -> if Rng.below rng 10 < 6 then Push v else Pop
      | KQueue -> if Rng.below rng 10 < 6 then Enq v else Deq)

let scripts kind ~seed ~threads ~nops ~keyspace =
  let rng = Rng.create ~seed in
  Array.init threads (fun tid -> script kind ~rng ~tid ~nops ~keyspace)
