module Mem = Smr_core.Mem

type case = {
  ds : string;
  scheme : string;
  threshold : int;
  scripts : Gen.op list array;
  fault : (Fault.point * int) option;
  traced : bool;
}

let case_to_string c =
  let fault =
    match c.fault with
    | None -> "none"
    | Some (p, n) -> Printf.sprintf "kill %s %d" (Fault.point_name p) n
  in
  Printf.sprintf "%s/%s thr=%d fault=%s %s" c.ds c.scheme c.threshold fault
    (String.concat " | "
       (Array.to_list
          (Array.map
             (fun ops -> String.concat ";" (List.map Gen.op_to_string ops))
             c.scripts)))

type vkind = Model_div | Uaf | Structural | Leak | Trace_bad | Exn_other

let vkind_name = function
  | Model_div -> "model"
  | Uaf -> "uaf"
  | Structural -> "structural"
  | Leak -> "leak"
  | Trace_bad -> "trace"
  | Exn_other -> "exn"

let vkind_of_name = function
  | "model" -> Model_div
  | "uaf" -> Uaf
  | "structural" -> Structural
  | "leak" -> Leak
  | "trace" -> Trace_bad
  | "exn" -> Exn_other
  | s -> failwith ("Harness.vkind_of_name: " ^ s)

type violation = { vkind : vkind; detail : string }

type report = {
  outcome : [ `Pass | `Violation of violation | `Overflow ];
  choices : int array;
  trail : (int * int) array;
  steps : int;
  killed : int option;
}

let max_kill_residue = 64

let site_name site =
  if site = Sched.site_start then "start"
  else if site = Sched.site_exit then "exit"
  else if site >= Fault.Hook.site_trace_base then
    "t:" ^ Obs.Trace.kind_name (Obs.Trace.kind_of_code (site - Fault.Hook.site_trace_base))
  else "f:" ^ Fault.point_name (match site - Fault.Hook.site_fault_base with
    | 0 -> Fault.Retire
    | 1 -> Fault.Protect
    | 2 -> Fault.Unlink
    | 3 -> Fault.Reclaim
    | 4 -> Fault.Crit
    | 5 -> Fault.Net_read
    | 6 -> Fault.Net_write
    | _ -> Fault.Collector)

let render_trail trail =
  String.concat "\n"
    (Array.to_list
       (Array.map (fun (tid, site) -> Printf.sprintf "%d %s" tid (site_name site)) trail))

let hist_to_string entries =
  String.concat "; "
    (List.map
       (fun (e : Model.entry) ->
         Printf.sprintf "%s->%s%s" (Gen.op_to_string e.op)
           (if e.killed then "killed" else Model.result_to_string e.res)
           (Printf.sprintf "@[%d,%s]" e.inv
              (if e.ret = max_int then "-" else string_of_int e.ret)))
       entries)

let is_lifecycle_exn = function
  | Mem.Use_after_free _ | Mem.Double_retire _ | Mem.Invalid_free _ -> true
  | _ -> false

let run_case ~policy ?(max_steps = 20000) case =
  match Sut.find ~ds:case.ds ~scheme:case.scheme with
  | None ->
      invalid_arg
        (Printf.sprintf "Harness.run_case: no SUT for %s/%s" case.ds
           case.scheme)
  | Some m ->
      let module M = (val m : Sut.SUT) in
      let n = Array.length case.scripts in
      M.pin_rngs ();
      Fault.reset ();
      if case.traced then Obs.Trace.enable ~capacity:(1 lsl 15) ();
      Fun.protect
        ~finally:(fun () ->
          Fault.reset ();
          if case.traced then Obs.Trace.disable ())
      @@ fun () ->
      let t = M.make ~threshold:case.threshold in
      let locals = Array.init n (fun _ -> M.attach t) in
      let hist : Model.entry list array = Array.make n [] in
      let completed = Array.make n false in
      let exns : exn option array = Array.make n None in
      let killed = ref None in
      let fs =
        Array.init n (fun i () ->
            let l = locals.(i) in
            (* The clean close runs here, inside the scheduled body, not in
               the driver's teardown: the offline checker attributes
               Unprotect events per domain, so guard releases must come
               from the domain that published the protections — and an
               armed kill landing mid-detach is exactly the crash-recovery
               edge the session-lifecycle tests pin. *)
            let rec go = function
              | [] -> (
                  match M.detach t l with
                  | () -> completed.(i) <- true
                  | exception Fault.Killed _ -> killed := Some i
                  | exception Sched.Overflow -> raise Sched.Overflow
                  | exception e -> exns.(i) <- Some e)
              | op :: rest -> (
                  let inv = Sched.tick () in
                  match M.apply t l op with
                  | r ->
                      let ret = Sched.tick () in
                      hist.(i) <-
                        { Model.op; res = r; inv; ret; killed = false }
                        :: hist.(i);
                      go rest
                  | exception Fault.Killed _ ->
                      hist.(i) <-
                        {
                          Model.op;
                          res = Model.RUnit;
                          inv;
                          ret = max_int;
                          killed = true;
                        }
                        :: hist.(i);
                      killed := Some i
                  | exception Sched.Overflow -> raise Sched.Overflow
                  | exception e -> exns.(i) <- Some e)
            in
            go case.scripts.(i))
      in
      (match case.fault with
      | None -> ()
      | Some (p, after) -> Fault.arm ~point:p ~action:Fault.Kill ~after ());
      let out = Sched.run ~max_steps ~policy fs in
      Fault.reset ();
      (* Backstop: an exception the thread body did not classify. *)
      Array.iteri
        (fun i e -> if exns.(i) = None && e <> None then exns.(i) <- e)
        out.exns;
      (* Teardown: threads that ran to completion already detached inside
         their own body; everything that stopped mid-protocol (killed,
         lifecycle exception, overflow abort) goes through crash
         recovery. *)
      Array.iteri
        (fun i l -> if not completed.(i) then M.recover t l)
        locals;
      M.drain t;
      let mk outcome =
        {
          outcome;
          choices = out.choices;
          trail = out.trail;
          steps = out.steps;
          killed = !killed;
        }
      in
      if out.overflowed then mk `Overflow
      else begin
        let violations = ref [] in
        let add vkind detail = violations := { vkind; detail } :: !violations in
        Array.iteri
          (fun i e ->
            match e with
            | None -> ()
            | Some e ->
                add
                  (if is_lifecycle_exn e then Uaf else Exn_other)
                  (Printf.sprintf "thread %d: %s" i (Printexc.to_string e)))
          exns;
        (match M.structural t with
        | () -> ()
        | exception e ->
            add Structural (Printexc.to_string e));
        let final =
          match M.contents t with
          | s -> Some s
          | exception e ->
              add
                (if is_lifecycle_exn e then Uaf else Structural)
                ("contents: " ^ Printexc.to_string e);
              None
        in
        (match final with
        | Some f ->
            let entries = Array.to_list hist |> List.concat_map List.rev in
            if not (Model.check M.kind ~entries ~final:(Some f)) then
              add Model_div
                (Printf.sprintf "history does not linearize to %s: %s"
                   (Model.state_to_string f) (hist_to_string entries))
        | None -> ());
        (if M.reclaims then
           let u = M.unreclaimed t in
           match !killed with
           | None ->
               if u > 0 then
                 add Leak (Printf.sprintf "%d unreclaimed after drain" u)
           | Some _ ->
               if u > max_kill_residue then
                 add Leak
                   (Printf.sprintf "%d unreclaimed after killed run (bound %d)"
                      u max_kill_residue));
        (if case.traced then begin
           Obs.Trace.disable ();
           match Obs.Check.run_snapshot (Obs.Trace.snapshot ()) with
           | Ok _ -> ()
           | Error vs ->
               add Trace_bad
                 (String.concat "; "
                    (List.map
                       (fun v -> Format.asprintf "%a" Obs.Check.pp_violation v)
                       (match vs with a :: b :: c :: _ -> [ a; b; c ] | l -> l)))
         end);
        match List.rev !violations with
        | [] -> mk `Pass
        | v :: _ -> mk (`Violation v)
      end
