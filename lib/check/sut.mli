(** Systems-under-test: uniform first-class-module wrappers tying one data
    structure to one reclamation scheme for the model-based harness.

    Each wrapper builds the scheme with a {e tiny} reclaim threshold (the
    case's [threshold], typically 1–4): a 2-thread 3-op schedule must
    actually reach retire-bag scans, invalidation and frees, or the
    interleavings being enumerated never exercise the reclamation protocol
    at all. The production default of 128 would make every model-check run
    trivially reclaim-free. *)

module type SUT = sig
  val ds : string
  val scheme : string
  val kind : Gen.kind

  val reclaims : bool
  (** False for NR, which never frees: the drained-to-zero check is
      meaningless there. *)

  type t
  type local

  val make : threshold:int -> t
  val attach : t -> local

  val apply : t -> local -> Gen.op -> Model.result
  (** Run one operation through the real structure. May raise
      [Fault.Killed] (fault injection) or a [Mem] lifecycle exception (a
      detected bug). *)

  val detach : t -> local -> unit
  (** Clean close for a thread that finished its script. *)

  val recover : t -> local -> unit
  (** Crash-path close for a thread that died mid-protocol (killed,
      use-after-free, schedule overflow): survivors complete its
      obligations via [report_crashed]. *)

  val drain : t -> unit
  (** Post-run: adopt orphans and run reclamation passes until quiescent
      garbage is freed. *)

  val contents : t -> Model.state
  (** Quiescent contents, in the reference model's representation. *)

  val structural : t -> unit
  (** Structure-specific invariant sweep (reachable-not-freed, key
      uniqueness); raises on violation. *)

  val unreclaimed : t -> int

  val pin_rngs : unit -> unit
  (** Reset any global RNG state the structure consumes (skiplist tower
      heights) so the same case replays identically across runs. *)
end

type sut = (module SUT)

val structures : string list
val schemes : string list

val valid : ds:string -> scheme:string -> bool
(** False for the pairs the paper marks unsupported (hhslist × HP). *)

val all_pairs : (string * string) list

val find : ds:string -> scheme:string -> sut option
