(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** A point-in-time, scheme-agnostic snapshot of a running service: request
    throughput, per-operation latency summaries, per-shard occupancy, and
    the reclamation counters ({!Smr_core.Stats}) that tie service behaviour
    back to the paper's garbage metrics. Built by [Shardkv.snapshot];
    rendered as text ({!pp}) or JSON ({!to_json}). *)

type op = Get | Put | Delete | Multi_get

let op_name = function
  | Get -> "get"
  | Put -> "put"
  | Delete -> "delete"
  | Multi_get -> "multi_get"

let all_ops = [ Get; Put; Delete; Multi_get ]
let op_index = function Get -> 0 | Put -> 1 | Delete -> 2 | Multi_get -> 3

type t = {
  scheme : string;
  shards : int;
  sessions : int; (* worker domains that ever attached *)
  dead_sessions : int; (* sessions lost to crashes (dead or reaped) *)
  elapsed : float; (* seconds of load the snapshot covers *)
  total_ops : int;
  qps : float;
  per_op : (op * Histogram.summary) list; (* ops with zero count omitted *)
  occupancy : int array; (* per-shard key count; only valid at quiescence *)
  live : int;
  unreclaimed : int;
  peak_unreclaimed : int;
  peak_live : int;
  heavy_fences : int;
  protection_failures : int;
}

let summary_json (s : Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean_ns", Json.Float s.mean);
      ("p50_ns", Json.Int s.p50);
      ("p90_ns", Json.Int s.p90);
      ("p99_ns", Json.Int s.p99);
      ("p999_ns", Json.Int s.p999);
      ("max_ns", Json.Int s.max);
    ]

let to_json t =
  Json.Obj
    [
      ("scheme", Json.String t.scheme);
      ("shards", Json.Int t.shards);
      ("sessions", Json.Int t.sessions);
      ("dead_sessions", Json.Int t.dead_sessions);
      ("elapsed_s", Json.Float t.elapsed);
      ("total_ops", Json.Int t.total_ops);
      ("throughput_qps", Json.Float t.qps);
      ( "latency",
        Json.Obj
          (List.map (fun (op, s) -> (op_name op, summary_json s)) t.per_op) );
      ( "shard_occupancy",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.occupancy))
      );
      ( "garbage",
        Json.Obj
          [
            ("live", Json.Int t.live);
            ("unreclaimed", Json.Int t.unreclaimed);
            ("peak_unreclaimed", Json.Int t.peak_unreclaimed);
            ("peak_live", Json.Int t.peak_live);
            ("heavy_fences", Json.Int t.heavy_fences);
            ("protection_failures", Json.Int t.protection_failures);
          ] );
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d shard(s), %d session(s)%s, %.2fs — %d ops (%.0f qps)@,"
    t.scheme t.shards t.sessions
    (if t.dead_sessions > 0 then Printf.sprintf " (%d dead)" t.dead_sessions
     else "")
    t.elapsed t.total_ops t.qps;
  List.iter
    (fun (op, s) ->
      Format.fprintf ppf "  %-9s %a@," (op_name op)
        (Histogram.pp_summary ~unit_name:"us" ~scale:1e3)
        s)
    t.per_op;
  Format.fprintf ppf "  occupancy: %d keys over %d shards (min %d, max %d)@,"
    (Array.fold_left ( + ) 0 t.occupancy)
    (Array.length t.occupancy)
    (Array.fold_left min max_int t.occupancy)
    (Array.fold_left max 0 t.occupancy);
  Format.fprintf ppf
    "  garbage: unreclaimed %d (peak %d), live %d (peak %d), heavy fences %d, \
     protection failures %d@]"
    t.unreclaimed t.peak_unreclaimed t.live t.peak_live t.heavy_fences
    t.protection_failures
