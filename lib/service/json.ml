(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** A minimal JSON document builder — enough for machine-readable benchmark
    and service-stats output without adding a dependency the container may
    not have. Emission only; no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      let s = Printf.sprintf "%.17g" x in
      (* prefer the shortest representation that round-trips *)
      let short = Printf.sprintf "%.6g" x in
      if float_of_string short = x then short else s

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  add buf j;
  Buffer.contents buf

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
