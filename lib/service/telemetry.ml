(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** Bridges from the repo's concrete stats types to the value-generic
    {!Obs.Metrics} builder. [Obs] knows nothing about [Smr_core.Stats],
    [Service_stats] or [Histogram]; this module is where the names, labels
    and unit conventions of the Prometheus exposition are decided, so every
    binary that exposes [--metrics] renders the same families. *)

module Metrics = Obs.Metrics
module Stats = Smr_core.Stats

(* Reclamation counters, labelled by scheme. Monotone counts are counters;
   instantaneous and peak block counts are gauges (a peak can reset with the
   Stats it came from). *)
let add_smr_stats m ?(labels = []) (s : Stats.t) =
  let c name help v =
    Metrics.counter m ~help ~labels name (float_of_int v)
  and g name help v = Metrics.gauge m ~help ~labels name (float_of_int v) in
  c "smr_blocks_allocated_total" "Blocks ever allocated" (Stats.allocated s);
  c "smr_blocks_freed_total" "Blocks reclaimed" (Stats.freed s);
  c "smr_blocks_retired_total" "Blocks retired (became garbage)"
    (Stats.retired_total s);
  c "smr_heavy_fences_total" "Heavy fences issued by reclaimers"
    (Stats.heavy_fences s);
  c "smr_protection_failures_total" "Failed protect validations"
    (Stats.protection_failures s);
  g "smr_blocks_live" "Blocks allocated and not yet freed" (Stats.live s);
  g "smr_blocks_unreclaimed" "Retired blocks awaiting reclamation"
    (Stats.unreclaimed s);
  g "smr_blocks_unreclaimed_peak" "Peak of smr_blocks_unreclaimed"
    (Stats.peak_unreclaimed s);
  g "smr_blocks_live_peak" "Peak of smr_blocks_live" (Stats.peak_live s)

(* A latency histogram as a Prometheus summary in seconds (the conventional
   unit), quantiles from the repo's bounded-error histogram. *)
let add_latency m ?(labels = []) name (s : Histogram.summary) =
  let sec ns = float_of_int ns /. 1e9 in
  Metrics.summary m ~labels name
    ~help:"Request latency (seconds)"
    ~quantiles:
      [
        (0.5, sec s.Histogram.p50);
        (0.9, sec s.Histogram.p90);
        (0.99, sec s.Histogram.p99);
        (0.999, sec s.Histogram.p999);
        (1.0, sec s.Histogram.max);
      ]
    ~count:s.Histogram.count
    ~sum:(s.Histogram.mean *. float_of_int s.Histogram.count /. 1e9)

(* Native-histogram bridge: a raw Histogram.t rendered as cumulative
   le-buckets on a fixed decade ladder (1 µs .. 10 s, in seconds — the
   repo records nanoseconds). Preferred over [add_latency]'s summary
   whenever the caller still holds the histogram rather than a summary:
   bucket counts aggregate across shards and stay monotone across scrapes,
   quantiles do neither (DESIGN.md §14). *)
let latency_ladder_ns =
  [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000;
     1_000_000_000; 10_000_000_000 |]

let add_histogram m ?(labels = []) ?(help = "Latency (seconds)") name
    (h : Histogram.t) =
  let buckets =
    Array.to_list
      (Array.map
         (fun le_ns -> (float_of_int le_ns /. 1e9, Histogram.count_le h le_ns))
         latency_ladder_ns)
  in
  Metrics.histogram m ~labels ~help name ~buckets ~count:(Histogram.count h)
    ~sum:(Histogram.mean h *. float_of_int (Histogram.count h) /. 1e9)

(* Background-collector introspection (PR 7's pipeline), labelled by scheme:
   the live series ROADMAP item 1 needs to decide when async_reclaim can
   default on — ring pressure, pending backlog, how long garbage survives. *)
let add_collector_stats m ?(labels = []) (st : Smr.Collector.stats) =
  let c name help v = Metrics.counter m ~help ~labels name (float_of_int v)
  and g name help v = Metrics.gauge m ~help ~labels name (float_of_int v) in
  g "smr_collector_ring_occupancy" "Bags queued in the handoff ring"
    st.Smr.Collector.ring_occupancy;
  g "smr_collector_ring_capacity" "Handoff ring capacity"
    st.Smr.Collector.ring_capacity;
  g "smr_collector_pending_blocks"
    "Headers in collector-private pending after the last drain cycle"
    st.Smr.Collector.pending;
  g "smr_collector_pass_age"
    "Scan passes the currently-pending garbage has survived"
    st.Smr.Collector.pass_age;
  let ctrs = st.Smr.Collector.ctrs in
  c "smr_collector_handoffs_total" "Bags handed to the collector"
    ctrs.Smr.Collector.handoffs;
  c "smr_collector_fallbacks_total"
    "Inline reclaims forced by a full or stopped collector"
    ctrs.Smr.Collector.fallbacks;
  c "smr_collector_drains_total" "Drain cycles run" ctrs.Smr.Collector.drains;
  c "smr_collector_drained_bags_total" "Bags consumed by drain cycles"
    ctrs.Smr.Collector.drained_bags;
  c "smr_collector_steals_total"
    "Queued bags absorbed into mutators' inline scans"
    ctrs.Smr.Collector.steals;
  let hist name help (h : Smr.Collector.histogram) =
    Metrics.histogram m ~labels ~help name ~buckets:h.Smr.Collector.buckets
      ~count:h.Smr.Collector.count ~sum:h.Smr.Collector.sum
  in
  hist "smr_collector_drain_duration_seconds" "Per-cycle drain wall time"
    st.Smr.Collector.drain_duration;
  hist "smr_collector_garbage_age_passes"
    "Scan passes a block survived before being freed (cohort-approximate)"
    st.Smr.Collector.garbage_age

(* Everything a shardkv snapshot knows, labelled by scheme and shard count. *)
let add_service_snapshot m (t : Service_stats.t) =
  let labels =
    [ ("scheme", t.Service_stats.scheme);
      ("shards", string_of_int t.Service_stats.shards) ]
  in
  Metrics.counter m ~labels ~help:"Requests served"
    "shardkv_requests_total"
    (float_of_int t.Service_stats.total_ops);
  Metrics.gauge m ~labels ~help:"Observed request throughput"
    "shardkv_throughput_qps" t.Service_stats.qps;
  Metrics.gauge m ~labels ~help:"Worker sessions that ever attached"
    "shardkv_sessions" (float_of_int t.Service_stats.sessions);
  List.iter
    (fun (op, s) ->
      add_latency m
        ~labels:(labels @ [ ("op", Service_stats.op_name op) ])
        "shardkv_request_latency_seconds" s)
    t.Service_stats.per_op;
  Array.iteri
    (fun i n ->
      Metrics.gauge m
        ~labels:(labels @ [ ("shard", string_of_int i) ])
        ~help:"Keys resident per shard (valid at quiescence)"
        "shardkv_shard_keys" (float_of_int n))
    t.Service_stats.occupancy;
  let g name help v = Metrics.gauge m ~labels ~help name (float_of_int v) in
  g "shardkv_blocks_live" "Blocks live under this cell"
    t.Service_stats.live;
  g "shardkv_blocks_unreclaimed" "Retired blocks awaiting reclamation"
    t.Service_stats.unreclaimed;
  g "shardkv_blocks_unreclaimed_peak" "Peak unreclaimed during the cell"
    t.Service_stats.peak_unreclaimed;
  g "shardkv_blocks_live_peak" "Peak live during the cell"
    t.Service_stats.peak_live;
  g "shardkv_heavy_fences" "Heavy fences issued during the cell"
    t.Service_stats.heavy_fences;
  g "shardkv_protection_failures" "Failed protect validations during the cell"
    t.Service_stats.protection_failures

(* Tracer self-accounting, so a scrape shows whether the trace it sits next
   to is complete. *)
let add_trace_snapshot m (s : Obs.Trace.snapshot) =
  Metrics.counter m ~help:"Trace events captured" "obs_trace_events_total"
    (float_of_int (Array.length s.Obs.Trace.events));
  Metrics.counter m ~help:"Trace events lost to ring wraparound"
    "obs_trace_events_dropped_total"
    (float_of_int s.Obs.Trace.dropped)
