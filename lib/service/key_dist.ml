(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** Key distributions for load generation: uniform, and the YCSB-flavoured
    Zipfian sampler (Gray et al.'s rejection-free inversion with precomputed
    zeta), optionally scrambled so that hot ranks scatter across the key
    space — and therefore across shards — instead of clustering at 0. *)

module Rng = Smr_core.Rng

type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  scramble : bool;
}

type t = Uniform of int | Zipf of zipf

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. (float_of_int i ** theta))
  done;
  !s

let uniform n =
  if n < 1 then invalid_arg "Key_dist.uniform";
  Uniform n

let zipfian ?(scramble = true) ?(theta = 0.99) n =
  if n < 1 then invalid_arg "Key_dist.zipfian";
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Key_dist.zipfian: theta must be in (0, 1)";
  if n = 1 then Uniform 1
  else
    let zetan = zeta n theta in
    Zipf
      {
        n;
        theta;
        alpha = 1.0 /. (1.0 -. theta);
        zetan;
        eta =
          (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
          /. (1.0 -. (zeta 2 theta /. zetan));
        scramble;
      }

let of_name ?theta name n =
  match name with
  | "uniform" -> uniform n
  | "zipfian" -> zipfian ?theta n
  | s -> invalid_arg ("Key_dist.of_name: " ^ s)

let name = function Uniform _ -> "uniform" | Zipf _ -> "zipfian"
let key_space = function Uniform n -> n | Zipf z -> z.n

(* splitmix64 finalizer on the 63-bit native int *)
let scramble_rank n rank =
  let h = rank in
  let h = (h lxor (h lsr 33)) * 0xFF51AFD7ED558CC in
  let h = (h lxor (h lsr 29)) * 0xC4CEB9FE1A85EC5 in
  let h = h lxor (h lsr 32) in
  (h land max_int) mod n

let next t rng =
  match t with
  | Uniform n -> Rng.below rng n
  | Zipf z ->
      let u = Rng.float rng in
      let uz = u *. z.zetan in
      let rank =
        if uz < 1.0 then 0
        else if uz < 1.0 +. (0.5 ** z.theta) then 1
        else
          int_of_float
            (float_of_int z.n *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha))
      in
      let rank = if rank >= z.n then z.n - 1 else if rank < 0 then 0 else rank in
      if z.scramble then scramble_rank z.n rank else rank
