(** HDR-style latency histogram: power-of-two exponent buckets, each split
    into [2^sub_bits] linear sub-buckets, giving a bounded relative error of
    [2^-(sub_bits-1)] at every magnitude with O(1) recording and a small,
    mergeable footprint.

    Values are non-negative integers (the service records nanoseconds).
    One histogram has a {e single writer}: each worker domain owns its own
    and the collector merges them after the workers quiesce — that is what
    keeps recording lock-free without atomics on the hot path. *)

type t

val create : ?sub_bits:int -> ?max_exp:int -> unit -> t
(** [create ()] covers values in [[0, 2^max_exp)] (default [max_exp = 40]:
    ~18 minutes in nanoseconds) with [2^sub_bits] sub-buckets per octave
    (default [sub_bits = 5]: ≤ 3.2% relative error). Values at or past the
    top are clamped into the final bucket but still tracked exactly by
    {!max_value}. *)

val record : t -> int -> unit
(** Record one value. Negative values clamp to 0. Single-writer. *)

val record_corrected : t -> interval:int -> int -> unit
(** [record_corrected t ~interval v] records [v] and then backfills the
    observations hidden by coordinated omission (HdrHistogram's
    [recordValueWithExpectedInterval]): when [v] exceeds [interval] — the
    expected gap between samples — the stalled sampler {e missed} requests
    that would have seen latencies [v - interval], [v - 2*interval], ...;
    each is recorded too (down to [interval]). With [interval <= 0] this is
    plain {!record}. Corrected tail percentiles are therefore never below
    the uncorrected ones for the same inputs. *)

val count : t -> int
val max_value : t -> int

val count_le : t -> int -> int
(** [count_le t v]: recordings with value [<= v], at bucket resolution —
    buckets straddling [v] are excluded, so this is a lower bound, exact
    when [v] is a bucket's inclusive upper bound ([2^j - 1] always
    qualifies). Monotone in [v]. The native-histogram bridge in [Telemetry]
    is built on it. *)

val mean : t -> float
(** Exact mean of recorded values (tracked as a running sum, not
    reconstructed from buckets). 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [(0, 100]]: an upper bound of the bucket
    holding the [p]-th percentile observation (and never above the true
    maximum). 0 when empty. *)

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counts into [dst]. Both must share [sub_bits]/[max_exp].
    @raise Invalid_argument otherwise. *)

val merge : t list -> t
(** Fresh histogram holding the sum of all inputs (default parameters when
    the list is empty). *)

val reset : t -> unit

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

val summary : t -> summary
val pp_summary : unit_name:string -> scale:float -> Format.formatter -> summary -> unit
(** Human-readable one-liner; recorded values are divided by [scale] and
    suffixed with [unit_name] (e.g. [~unit_name:"us" ~scale:1e3] for
    nanosecond recordings). *)
