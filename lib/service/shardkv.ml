(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** shardkv: a sharded in-process KV store. The key space is
    hash-partitioned across a power-of-two number of shards, each an
    independently reclaimed {!Smr_ds.Hashmap} bucket array; every shard
    shares one reclamation domain so garbage accounting stays global.

    Requests go through a {e session} holding the SMR registration, the
    traversal guards, and the per-operation latency histograms. Sessions
    come in two flavours sharing one lifecycle:

    - {e implicit}, one per worker domain, cached in domain-local storage
      ([get]/[put]/[delete]/[multi_get]): worker domains register with the
      scheme once, not per request, and record latency without touching
      any shared state;
    - {e explicit} ([attach] + the [*_s] operations): the caller owns the
      session object — the networked server attaches one per {e connection}
      so a dropped connection abandons exactly one SMR registration, which
      [crash] + [reap_dead] then recover. An explicit session is
      single-threaded state: all its operations must run on one domain at a
      time (a reactor pins each connection to one domain).

    [put] has insert-if-absent semantics (the underlying map is a set-map):
    it returns [false] when the key is already present. This is exactly the
    sequential specification the linearizability checker in
    [test/support/linearizability.ml] validates. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Map = Smr_ds.Hashmap.Make (S)
  module St = Service_stats

  (* Session lifecycle: [live] while its owner (worker domain or network
     connection) is presumed running; [detaching] while a clean close is
     running [unregister]; [detached] once it finished (nothing to
     recover); [dead] once the owner crashed without completing a detach;
     [reaped] after a survivor handed the dead handle to
     [S.report_crashed]. live -> detaching and live -> dead are one-way
     CASes, so a racing detach/crash resolves to exactly one; a detach
     that {e dies mid-close} (fault injection inside [unregister]'s
     reclamation pass, a real crash between unhooking and unregistering)
     moves detaching -> dead so the reaper can still recover it —
     committing straight to [detached] before [unregister] ran would
     strand the session: armed slots, undonated retire bag, and no state
     [reap_dead]'s CAS could ever claim. *)
  let session_live = 0

  let session_dead = 1
  let session_reaped = 2
  let session_detached = 3
  let session_detaching = 4

  type session = {
    handle : S.handle;
    local : Map.local;
    lat : Histogram.t array; (* indexed by Service_stats.op_index *)
    ops : int Atomic.t;
    state : int Atomic.t;
  }

  type 'v t = {
    scheme : S.t;
    shards : 'v Map.t array;
    mask : int;
    dls : session option Domain.DLS.key;
    lock : Mutex.t; (* guards [sessions]; never taken on the request path *)
    mutable sessions : session list;
  }

  let create ?config ?(shards = 4) ?(buckets_per_shard = 128) () =
    if shards < 1 then invalid_arg "Shardkv.create: shards";
    let n =
      let rec up n = if n >= shards then n else up (n * 2) in
      up 1
    in
    let scheme = S.create ?config () in
    {
      scheme;
      shards =
        Array.init n (fun _ -> Map.create_sized ~buckets:buckets_per_shard scheme);
      mask = n - 1;
      dls = Domain.DLS.new_key (fun () -> None);
      lock = Mutex.create ();
      sessions = [];
    }

  let shard_count t = Array.length t.shards
  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  (* Stop the background collector (if [async_reclaim] started one) and
     salvage any queued bags into the scheme's orphanage, so a final flush
     observes every retired block. No-op in inline mode. *)
  let shutdown t = S.shutdown t.scheme

  (* A different multiplier/shift pair than Hashmap's bucket hash, so shard
     choice and in-shard bucket choice use decorrelated bits. The multiply
     must be parenthesized: [lsr] binds tighter than [*] in OCaml, so
     without them this evaluates [(key * (C lsr 33)) land mask] — low
     product bits, making the shard a pure function of [key mod shards]
     (the distribution test in test_service pins this down). *)
  let shard_of t key = (key * 0x1C69B3F74AC4AE35) lsr 33 land t.mask

  (* {1 Explicit sessions} — one per owner (connection, worker, ...). *)

  let attach t =
    let handle = S.register t.scheme in
    let s =
      {
        handle;
        local = Map.make_local handle;
        lat = Array.init (List.length St.all_ops) (fun _ -> Histogram.create ());
        ops = Atomic.make 0;
        state = Atomic.make session_live;
      }
    in
    Mutex.lock t.lock;
    t.sessions <- s :: t.sessions;
    Mutex.unlock t.lock;
    s

  (* Clean close: run from the domain that owns [s], after its last
     operation. Idempotent, and a no-op on a crashed session (the handle
     must then go through [reap_dead], not [unregister]). The detached
     state is only committed after [unregister] returns; if the owner dies
     mid-close the session is marked dead and the exception propagates, so
     a survivor's [reap_dead] completes the handle's obligations via
     [report_crashed]. That hand-off is sound because every fault point
     inside [unregister] precedes the slot withdrawal and bag donation:
     a partially-unregistered handle still looks like a crashed live one. *)
  let detach_session s =
    if Atomic.compare_and_set s.state session_live session_detaching then begin
      match
        Map.clear_local s.local;
        S.unregister s.handle
      with
      | () ->
          Atomic.set s.state session_detached
          (* the session record stays in [t.sessions]: its histograms feed
             the next snapshot even after the owner is gone *)
      | exception e ->
          Atomic.set s.state session_dead;
          raise e
    end

  (* Mark [s] dead without detaching: its SMR registration stays armed
     (slots set, epoch possibly pinned) exactly as a crashed owner would
     leave it. Call when the owner can no longer touch the session — from
     the victim domain as the last thing it does, or from a reactor that
     just watched the session's connection drop. *)
  let crash s =
    ignore (Atomic.compare_and_set s.state session_live session_dead)

  (* {1 Implicit per-domain sessions} — cached in domain-local storage. *)

  let session t =
    match Domain.DLS.get t.dls with
    | Some s -> s
    | None ->
        let s = attach t in
        Domain.DLS.set t.dls (Some s);
        s

  let detach t =
    match Domain.DLS.get t.dls with
    | None -> ()
    | Some s ->
        detach_session s;
        Domain.DLS.set t.dls None

  (* {1 Crash handling} — fault injection / watchdog integration. *)

  (* [crash] for the calling domain's implicit session. *)
  let crash_session t =
    match Domain.DLS.get t.dls with
    | None -> ()
    | Some s ->
        crash s;
        Domain.DLS.set t.dls None

  (* Reap every dead session: a surviving thread completes each crashed
     handle's protocol obligations via [S.report_crashed]. Returns how many
     sessions were reaped. Safe to call repeatedly (dead -> reaped is a
     one-way CAS, so each handle is reported exactly once). *)
  let reap_dead t =
    Mutex.lock t.lock;
    let sessions = t.sessions in
    Mutex.unlock t.lock;
    List.fold_left
      (fun n s ->
        if Atomic.compare_and_set s.state session_dead session_reaped then begin
          S.report_crashed s.handle;
          n + 1
        end
        else n)
      0 sessions

  let now_ns () = Int64.to_int (Monotonic_clock.now ())

  (* Span events are stamped with the op's own start time ([emit_at]), not
     the tracer clock, so the Perfetto track shows true latency; a = op
     index, b = duration in ns. *)
  let timed s op f =
    let t0 = now_ns () in
    let r = f () in
    let dt = now_ns () - t0 in
    (* Histogram writes (plain stores) happen before the atomic count
       increment: a snapshot that reads [ops] sees histograms at least that
       fresh, so the sum can under-report in-flight ops but never tear. *)
    Histogram.record s.lat.(St.op_index op) dt;
    Atomic.incr s.ops;
    if Obs.Trace.enabled () then
      Obs.Trace.emit_at ~ts:t0 Obs.Trace.Span (-1) (St.op_index op) dt;
    r

  let get_s t s key =
    timed s St.Get (fun () -> Map.get t.shards.(shard_of t key) s.local key)

  let put_s t s key value =
    timed s St.Put (fun () ->
        Map.insert t.shards.(shard_of t key) s.local key value)

  let delete_s t s key =
    timed s St.Delete (fun () ->
        Map.remove t.shards.(shard_of t key) s.local key)

  let get t key = get_s t (session t) key
  let put t key value = put_s t (session t) key value
  let delete t key = delete_s t (session t) key

  (* One request, one timing record; the lookups are grouped by shard so
     each shard's bucket array is walked while hot. *)
  let multi_get_s t s keys =
    timed s St.Multi_get (fun () ->
        let out = Array.make (Array.length keys) None in
        let groups = Array.make (Array.length t.shards) [] in
        Array.iteri
          (fun pos key ->
            let sh = shard_of t key in
            groups.(sh) <- pos :: groups.(sh))
          keys;
        Array.iteri
          (fun sh positions ->
            match positions with
            | [] -> ()
            | _ ->
                let m = t.shards.(sh) in
                List.iter
                  (fun pos -> out.(pos) <- Map.get m s.local keys.(pos))
                  positions)
          groups;
        out)

  let multi_get t keys = multi_get_s t (session t) keys

  (* Untimed bulk insert for prefill: routed like [put] but kept out of the
     latency histograms and the request count. *)
  let load t pairs =
    let s = session t in
    Array.iter
      (fun (key, value) ->
        ignore (Map.insert t.shards.(shard_of t key) s.local key value))
      pairs

  (* {1 Quiescent helpers} — only sound with no concurrent writers. *)

  let shard_sizes t = Array.map Map.size t.shards
  let size t = Array.fold_left ( + ) 0 (shard_sizes t)
  let to_list t = Array.to_list t.shards |> List.concat_map Map.to_list

  (* Sweep every shard for reachable-but-freed nodes (the UAF detector's
     structural invariant) and check per-shard key uniqueness. Returns the
     total key count. *)
  let validate t =
    Array.iter Map.assert_reachable_not_freed t.shards;
    Array.fold_left
      (fun acc m ->
        let contents = Map.to_list m in
        let keys = List.map fst contents in
        if keys <> List.sort_uniq compare keys then
          failwith "Shardkv.validate: duplicate keys in a shard";
        acc + List.length keys)
      0 t.shards

  (* [degraded]: exclude dead/reaped sessions from the op count and latency
     merge — the service's view after losing domains, where crashed workers'
     half-recorded histograms should not pollute the living percentiles.
     The default includes every session that ever attached (detached ones
     included, as before). *)
  let snapshot ?(degraded = false) t ~elapsed =
    Mutex.lock t.lock;
    let sessions = t.sessions in
    Mutex.unlock t.lock;
    let dead_sessions =
      List.length
        (List.filter
           (fun s ->
             let st = Atomic.get s.state in
             st = session_dead || st = session_reaped)
           sessions)
    in
    let counted =
      if degraded then
        List.filter
          (fun s ->
            let st = Atomic.get s.state in
            st = session_live || st = session_detached)
          sessions
      else sessions
    in
    let total_ops =
      List.fold_left (fun acc s -> acc + Atomic.get s.ops) 0 counted
    in
    let per_op =
      List.filter_map
        (fun op ->
          let merged =
            Histogram.merge
              (List.map (fun s -> s.lat.(St.op_index op)) counted)
          in
          if Histogram.count merged = 0 then None
          else Some (op, Histogram.summary merged))
        St.all_ops
    in
    let st = S.stats t.scheme in
    let module Stats = Smr_core.Stats in
    {
      St.scheme = S.name;
      shards = Array.length t.shards;
      sessions = List.length sessions;
      dead_sessions;
      elapsed;
      total_ops;
      qps = (if elapsed > 0.0 then float_of_int total_ops /. elapsed else 0.0);
      per_op;
      occupancy = shard_sizes t;
      live = Stats.live st;
      unreclaimed = Stats.unreclaimed st;
      peak_unreclaimed = Stats.peak_unreclaimed st;
      peak_live = Stats.peak_live st;
      heavy_fences = Stats.heavy_fences st;
      protection_failures = Stats.protection_failures st;
    }
end
