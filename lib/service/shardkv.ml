(* smr-lint: allow R5 — shardkv demo internals consumed only by bin/ and test/; the service layer is an integration exercise, not a published API *)
(** shardkv: a sharded in-process KV store. The key space is
    hash-partitioned across a power-of-two number of shards, each an
    independently reclaimed {!Smr_ds.Hashmap} bucket array; every shard
    shares one reclamation domain so garbage accounting stays global.

    Requests go through a per-domain {e session} (cached in domain-local
    storage) holding the SMR registration, the traversal guards, and the
    per-operation latency histograms — worker domains register with the
    scheme once, not per request, and record latency without touching any
    shared state.

    [put] has insert-if-absent semantics (the underlying map is a set-map):
    it returns [false] when the key is already present. This is exactly the
    sequential specification the linearizability checker in
    [test/support/linearizability.ml] validates. *)

module Make (S : Smr.Smr_intf.S) = struct
  module Map = Smr_ds.Hashmap.Make (S)
  module St = Service_stats

  type session = {
    handle : S.handle;
    local : Map.local;
    lat : Histogram.t array; (* indexed by Service_stats.op_index *)
    mutable ops : int;
  }

  type 'v t = {
    scheme : S.t;
    shards : 'v Map.t array;
    mask : int;
    dls : session option Domain.DLS.key;
    lock : Mutex.t; (* guards [sessions]; never taken on the request path *)
    mutable sessions : session list;
  }

  let create ?config ?(shards = 4) ?(buckets_per_shard = 128) () =
    if shards < 1 then invalid_arg "Shardkv.create: shards";
    let n =
      let rec up n = if n >= shards then n else up (n * 2) in
      up 1
    in
    let scheme = S.create ?config () in
    {
      scheme;
      shards =
        Array.init n (fun _ -> Map.create_sized ~buckets:buckets_per_shard scheme);
      mask = n - 1;
      dls = Domain.DLS.new_key (fun () -> None);
      lock = Mutex.create ();
      sessions = [];
    }

  let shard_count t = Array.length t.shards
  let scheme t = t.scheme
  let stats t = S.stats t.scheme

  (* A different multiplier/shift pair than Hashmap's bucket hash, so shard
     choice and in-shard bucket choice use decorrelated bits. *)
  let shard_of t key = key * 0x1C69B3F74AC4AE35 lsr 33 land t.mask

  let session t =
    match Domain.DLS.get t.dls with
    | Some s -> s
    | None ->
        let handle = S.register t.scheme in
        let s =
          {
            handle;
            local = Map.make_local handle;
            lat = Array.init (List.length St.all_ops) (fun _ -> Histogram.create ());
            ops = 0;
          }
        in
        Domain.DLS.set t.dls (Some s);
        Mutex.lock t.lock;
        t.sessions <- s :: t.sessions;
        Mutex.unlock t.lock;
        s

  let detach t =
    match Domain.DLS.get t.dls with
    | None -> ()
    | Some s ->
        Map.clear_local s.local;
        S.unregister s.handle;
        (* the session record stays in [t.sessions]: its histograms feed the
           next snapshot even after the worker domain is gone *)
        Domain.DLS.set t.dls None

  let now_ns () = Int64.to_int (Monotonic_clock.now ())

  (* Span events are stamped with the op's own start time ([emit_at]), not
     the tracer clock, so the Perfetto track shows true latency; a = op
     index, b = duration in ns. *)
  let timed s op f =
    let t0 = now_ns () in
    let r = f () in
    let dt = now_ns () - t0 in
    Histogram.record s.lat.(St.op_index op) dt;
    s.ops <- s.ops + 1;
    if Obs.Trace.enabled () then
      Obs.Trace.emit_at ~ts:t0 Obs.Trace.Span (-1) (St.op_index op) dt;
    r

  let get t key =
    let s = session t in
    timed s St.Get (fun () -> Map.get t.shards.(shard_of t key) s.local key)

  let put t key value =
    let s = session t in
    timed s St.Put (fun () ->
        Map.insert t.shards.(shard_of t key) s.local key value)

  let delete t key =
    let s = session t in
    timed s St.Delete (fun () ->
        Map.remove t.shards.(shard_of t key) s.local key)

  (* One request, one timing record; the lookups are grouped by shard so
     each shard's bucket array is walked while hot. *)
  let multi_get t keys =
    let s = session t in
    timed s St.Multi_get (fun () ->
        let out = Array.make (Array.length keys) None in
        let groups = Array.make (Array.length t.shards) [] in
        Array.iteri
          (fun pos key ->
            let sh = shard_of t key in
            groups.(sh) <- pos :: groups.(sh))
          keys;
        Array.iteri
          (fun sh positions ->
            match positions with
            | [] -> ()
            | _ ->
                let m = t.shards.(sh) in
                List.iter
                  (fun pos -> out.(pos) <- Map.get m s.local keys.(pos))
                  positions)
          groups;
        out)

  (* Untimed bulk insert for prefill: routed like [put] but kept out of the
     latency histograms and the request count. *)
  let load t pairs =
    let s = session t in
    Array.iter
      (fun (key, value) ->
        ignore (Map.insert t.shards.(shard_of t key) s.local key value))
      pairs

  (* {1 Quiescent helpers} — only sound with no concurrent writers. *)

  let shard_sizes t = Array.map Map.size t.shards
  let size t = Array.fold_left ( + ) 0 (shard_sizes t)
  let to_list t = Array.to_list t.shards |> List.concat_map Map.to_list

  (* Sweep every shard for reachable-but-freed nodes (the UAF detector's
     structural invariant) and check per-shard key uniqueness. Returns the
     total key count. *)
  let validate t =
    Array.iter Map.assert_reachable_not_freed t.shards;
    Array.fold_left
      (fun acc m ->
        let contents = Map.to_list m in
        let keys = List.map fst contents in
        if keys <> List.sort_uniq compare keys then
          failwith "Shardkv.validate: duplicate keys in a shard";
        acc + List.length keys)
      0 t.shards

  let snapshot t ~elapsed =
    Mutex.lock t.lock;
    let sessions = t.sessions in
    Mutex.unlock t.lock;
    let total_ops = List.fold_left (fun acc s -> acc + s.ops) 0 sessions in
    let per_op =
      List.filter_map
        (fun op ->
          let merged =
            Histogram.merge
              (List.map (fun s -> s.lat.(St.op_index op)) sessions)
          in
          if Histogram.count merged = 0 then None
          else Some (op, Histogram.summary merged))
        St.all_ops
    in
    let st = S.stats t.scheme in
    let module Stats = Smr_core.Stats in
    {
      St.scheme = S.name;
      shards = Array.length t.shards;
      sessions = List.length sessions;
      elapsed;
      total_ops;
      qps = (if elapsed > 0.0 then float_of_int total_ops /. elapsed else 0.0);
      per_op;
      occupancy = shard_sizes t;
      live = Stats.live st;
      unreclaimed = Stats.unreclaimed st;
      peak_unreclaimed = Stats.peak_unreclaimed st;
      peak_live = Stats.peak_live st;
      heavy_fences = Stats.heavy_fences st;
      protection_failures = Stats.protection_failures st;
    }
end
