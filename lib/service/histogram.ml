(* Bucket layout (HdrHistogram's): bucket 0 is [0, 2^sub_bits) at unit
   resolution — one slot per value. Every later bucket k >= 1 covers
   [2^(sub_bits+k-1), 2^(sub_bits+k)) with 2^(sub_bits-1) sub-buckets of
   width 2^k, so the index of a value v >= 2^sub_bits is found by shifting v
   right until it fits in [sub_half, sub_count). *)

type t = {
  sub_bits : int;
  sub_count : int; (* 1 lsl sub_bits *)
  sub_half : int; (* sub_count / 2 *)
  max_exp : int;
  counts : int array;
  mutable total : int;
  mutable max_v : int;
  mutable sum : float;
}

let create ?(sub_bits = 5) ?(max_exp = 40) () =
  if sub_bits < 1 || sub_bits > 16 then invalid_arg "Histogram.create: sub_bits";
  if max_exp <= sub_bits || max_exp > 61 then
    invalid_arg "Histogram.create: max_exp";
  let sub_count = 1 lsl sub_bits in
  {
    sub_bits;
    sub_count;
    sub_half = sub_count / 2;
    max_exp;
    (* exponent buckets 1 .. max_exp - sub_bits, each sub_half wide *)
    counts = Array.make (sub_count + ((max_exp - sub_bits) * (sub_count / 2))) 0;
    total = 0;
    max_v = 0;
    sum = 0.0;
  }

(* Index of the bucket containing [v] (v >= 0), clamped to the last one. *)
let index t v =
  if v < t.sub_count then v
  else begin
    (* k = floor(log2 v) - sub_bits + 1: shifts until v fits a half-bucket *)
    let k = ref 0 and x = ref v in
    while !x >= t.sub_count do
      incr k;
      x := !x lsr 1
    done;
    let i = t.sub_count + ((!k - 1) * t.sub_half) + (!x - t.sub_half) in
    min i (Array.length t.counts - 1)
  end

(* Highest value mapping to bucket [i] (inclusive upper bound). *)
let highest_equivalent t i =
  if i < t.sub_count then i
  else
    let k = ((i - t.sub_count) / t.sub_half) + 1 in
    let off = (i - t.sub_count) mod t.sub_half in
    ((t.sub_half + off) lsl k) + (1 lsl k) - 1

(* Lowest value mapping to bucket [i]. *)
let lowest_equivalent t i =
  if i < t.sub_count then i
  else
    let k = ((i - t.sub_count) / t.sub_half) + 1 in
    let off = (i - t.sub_count) mod t.sub_half in
    (t.sub_half + off) lsl k

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  if v > t.max_v then t.max_v <- v;
  t.sum <- t.sum +. float_of_int v

(* HdrHistogram's recordValueWithExpectedInterval: when a recorded value is
   larger than the expected sampling interval, the requests that *would*
   have been issued during the stall were never measured (coordinated
   omission) — backfill them at [v - interval], [v - 2*interval], ...

   The backfills form the arithmetic sequence [v - k*interval] for
   [k = 1 .. v/interval - 1], which can be millions of values when a
   deeply-backlogged request completes (a 19 s latency at a 4 µs expected
   interval is ~4.5M backfills — recording them one by one stalls the very
   load generator whose measurements this corrects). Instead, walk the
   buckets the sequence spans and count the k hitting each bucket's value
   range in closed form: O(buckets), independent of [v / interval]. *)
let record_corrected t ~interval v =
  let v = if v < 0 then 0 else v in
  record t v;
  if interval > 0 && v >= 2 * interval then begin
    let kmax = (v / interval) - 1 in
    let last = Array.length t.counts - 1 in
    for b = index t interval to index t v do
      let lo = lowest_equivalent t b in
      let hi =
        let h = highest_equivalent t b in
        (* the clamped last bucket also holds values past its nominal range *)
        if b = last && v > h then v else h
      in
      (* k with lo <= v - k*interval <= hi: ceil((v-hi)/i) .. floor((v-lo)/i);
         the max/min clamps absorb truncated division on the boundaries *)
      let k1 = max 1 ((v - hi + interval - 1) / interval) in
      let k2 = min kmax ((v - lo) / interval) in
      if k2 >= k1 then begin
        let n = k2 - k1 + 1 in
        t.counts.(b) <- t.counts.(b) + n;
        t.total <- t.total + n;
        (* sum of the n values v - k*interval, k in [k1, k2] *)
        t.sum <-
          t.sum
          +. (float_of_int n
              *. (float_of_int v
                 -. (float_of_int interval *. float_of_int (k1 + k2) /. 2.0)))
      end
    done
  end

let count t = t.total
let max_value t = t.max_v

(* Cumulative count of recordings <= v, at bucket resolution: only buckets
   wholly below the threshold contribute, so the result is a lower bound
   that is exact whenever [v] is a bucket's inclusive upper bound — which
   the Prometheus bucket ladder in [Telemetry] picks by construction. *)
let count_le t v =
  if v < 0 || t.total = 0 then 0
  else begin
    let idx = index t v in
    let acc = ref 0 in
    for i = 0 to idx do
      if highest_equivalent t i <= v then acc := !acc + t.counts.(i)
    done;
    !acc
  end
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
      if x < 1 then 1 else if x > t.total then t.total else x
    in
    let n = Array.length t.counts in
    let cum = ref 0 and i = ref 0 and res = ref t.max_v in
    (try
       while !i < n do
         cum := !cum + t.counts.(!i);
         if !cum >= target then begin
           (* the final bucket also holds clamped overflow values, whose
              only faithful upper bound is the tracked maximum *)
           res :=
             (if !i = n - 1 then t.max_v
              else min (highest_equivalent t !i) t.max_v);
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !res
  end

let merge_into ~src ~dst =
  if src.sub_bits <> dst.sub_bits || src.max_exp <> dst.max_exp then
    invalid_arg "Histogram.merge_into: shape mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v;
  dst.sum <- dst.sum +. src.sum

let merge = function
  | [] -> create ()
  | first :: _ as all ->
      let dst = create ~sub_bits:first.sub_bits ~max_exp:first.max_exp () in
      List.iter (fun src -> merge_into ~src ~dst) all;
      dst

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.max_v <- 0;
  t.sum <- 0.0

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

let summary t =
  {
    count = t.total;
    mean = mean t;
    p50 = percentile t 50.0;
    p90 = percentile t 90.0;
    p99 = percentile t 99.0;
    p999 = percentile t 99.9;
    max = t.max_v;
  }

let pp_summary ~unit_name ~scale ppf s =
  let f v = float_of_int v /. scale in
  Format.fprintf ppf
    "n=%d mean=%.2f%s p50=%.2f%s p90=%.2f%s p99=%.2f%s p999=%.2f%s max=%.2f%s"
    s.count (s.mean /. scale) unit_name (f s.p50) unit_name (f s.p90) unit_name
    (f s.p99) unit_name (f s.p999) unit_name (f s.max) unit_name
