module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Orphanage = Smr.Orphanage
module Retire_bag = Smr.Retire_bag
module Collector = Smr.Collector
module Trace = Obs.Trace

let name = "EBR"
let robust = false
let supports_optimistic = true
let counts_references = false
let needs_protection = false

(* A participant's presence word: 0 when quiescent, [epoch * 2 + 1] when
   inside a critical section pinned at [epoch]. One word so that enter/exit
   are single SC stores. *)
let quiescent = 0
let pinned_at epoch = (epoch lsl 1) lor 1
let is_pinned status = status land 1 = 1
let pinned_epoch status = status lsr 1

type entry = int * (unit -> unit)

type t = {
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  global_epoch : int Atomic.t;
  participants : participant list Atomic.t;
  orphans : entry Orphanage.t;
  (* Adaptive defer threshold: fixed at [config.reclaim_threshold] in
     inline mode, retuned by the collector from observed garbage. *)
  adaptive : int Atomic.t;
  (* Collector-domain-private accumulation; see lib/hp/hp.ml. *)
  pending : entry Retire_bag.t;
  (* smr-lint: allow R3 — written once in [create] before [t] escapes; read-only afterwards *)
  mutable collector : entry Retire_bag.t Collector.t option;
}

and participant = { status : int Atomic.t; alive : bool Atomic.t }

type handle = {
  shared : t;
  me : participant;
  dom : int; (* registering domain, stamped on Crash trace events *)
  (* Single-owner: swaps only on the owning domain's handoff path. *)
  mutable bag : entry Retire_bag.t;
  mutable defers_since_collect : int;
  (* Defers since the last event that covered this handle's garbage — an
     inline pass or a successful handoff. Gates the async fallback pass:
     bag {e length} would ratchet (unripe survivors keep it high after
     every pass), driving scans denser than the inline cadence. *)
  mutable defers_since_pass : int;
}

type guard = unit

let entry_dummy : entry = (0, ignore)
let stats t = t.stats

let rec push_participant t p =
  let cur = Atomic.get t.participants in
  if not (Atomic.compare_and_set t.participants cur (p :: cur)) then
    push_participant t p

let global_epoch t = Atomic.get t.global_epoch

let crit_enter h =
  Atomic.set h.me.status (pinned_at (Atomic.get h.shared.global_epoch));
  (* Crash window: the critical section is pinned. A kill leaves this
     participant pinning the epoch forever (EBR's non-robustness) until
     report_crashed marks it dead; a stall parks the victim pinned. *)
  if Fault.enabled () then Fault.hit Fault.Crit

let crit_exit h = Atomic.set h.me.status quiescent
let crit_refresh h = crit_enter h

let guard _ = ()
let protect () _ = ()
let release () = ()
let protection_valid _ = true

(* Advance the global epoch iff every live pinned participant has observed
   the current one. A stalled critical section therefore pins the epoch:
   this is exactly EBR's non-robustness. Dead participants encountered along
   the way are pruned from the list (best-effort CAS) instead of being
   re-filtered on every future attempt. *)
let try_advance t =
  let epoch = Atomic.get t.global_epoch in
  let ps = Atomic.get t.participants in
  let all_current = ref true and any_dead = ref false in
  List.iter
    (fun p ->
      if not (Atomic.get p.alive) then any_dead := true
      else
        let s = Atomic.get p.status in
        if is_pinned s && pinned_epoch s <> epoch then all_current := false)
    ps;
  if !any_dead then begin
    let pruned = List.filter (fun p -> Atomic.get p.alive) ps in
    (* Losing the race (a concurrent register) just postpones the pruning
       to the next advance attempt. *)
    ignore (Atomic.compare_and_set t.participants ps pruned)
  end;
  if !all_current && Atomic.compare_and_set t.global_epoch epoch (epoch + 1)
  then Trace.emit Trace.Epoch_advance (-1) (epoch + 1) 0

(* Free every entry whose grace period has passed. Shared by the inline
   pass and the collector drain; the caller has adopted orphans already. *)
let free_ripe t bag =
  let epoch = Atomic.get t.global_epoch in
  let before = Retire_bag.length bag in
  Retire_bag.filter_in_place
    (fun (e, thunk) ->
      if e + 2 <= epoch then begin
        thunk ();
        false
      end
      else true)
    bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1) (before - Retire_bag.length bag) epoch

let collect h =
  let t = h.shared in
  (* Crash window, deliberately placed BEFORE the filter below: EBR bags
     hold (epoch, thunk) pairs, and a bag torn mid-filter_in_place cannot
     be salvaged — closures carry no uid to dedup by and no freed-state to
     skip on. Killing at the pass entry keeps the bag consistent, so
     report_crashed can adopt it verbatim. (HP/HP++/PEBR, whose bags hold
     inspectable headers, take the harder mid-filter kill instead.) *)
  if Fault.enabled () then Fault.hit Fault.Reclaim;
  h.defers_since_collect <- 0;
  h.defers_since_pass <- 0;
  Stats.note_peaks t.stats;
  try_advance t;
  Orphanage.adopt_into t.orphans ~dst:h.bag;
  free_ripe t h.bag

(* Collector drain: fold handed-off bags and orphans into [t.pending],
   advance the epoch once for the whole batch, free what is ripe. No fault
   point inside the filter for the same tearing reason as [collect]; the
   [Fault.Collector] point at the loop top covers collector crashes, where
   the pending bag is between cycles and hence consistent. *)
let drain t bags n =
  for i = 0 to n - 1 do
    Retire_bag.transfer ~src:bags.(i) ~dst:t.pending
  done;
  Orphanage.adopt_into t.orphans ~dst:t.pending;
  if not (Retire_bag.is_empty t.pending) then begin
    Stats.note_peaks t.stats;
    try_advance t;
    free_ripe t t.pending
  end;
  let left = Retire_bag.length t.pending in
  if Trace.enabled () then Trace.emit Trace.Drain (-1) n left;
  let garbage = Stats.unreclaimed t.stats in
  let cur = Atomic.get t.adaptive in
  let next =
    (* the handoff grain is pinned: a bigger batch would amortize the
       snapshot only slightly better, but every queued bag is unreclaimed
       garbage, and growing the grain also widens the ring and drain-batch
       terms of the peak — own-bag + queued-ring must fit the inline peak
       envelope. The clamp still guards the policy arithmetic. *)
    Collector.adapt_threshold ~cur
      ~lo:(max 16 (t.config.reclaim_threshold / 8))
      ~hi:(max 16 (t.config.reclaim_threshold / 8))
      ~pending:garbage
  in
  if next <> cur then begin
    Atomic.set t.adaptive next;
    if Trace.enabled () then Trace.emit Trace.Adapt (-1) next garbage
  end;
  left

let create ?(config = Smr.Smr_intf.default_config) () =
  let t =
    {
      stats = Stats.create ();
      config;
      global_epoch = Atomic.make 0;
      participants = Atomic.make [];
      orphans = Orphanage.create ();
      adaptive =
        (* async mode starts at the low bound: hand off small bags early
           and often (a ring push costs nanoseconds), so queued garbage
           stays near the inline peak; the drain-side policy grows the
           batch only while garbage stays low *)
        Atomic.make
          (if config.async_reclaim then
             min config.reclaim_threshold
               (max 16 (config.reclaim_threshold / 8))
           else config.reclaim_threshold);
      pending = Retire_bag.create entry_dummy;
      collector = None;
    }
  in
  if config.async_reclaim then
    t.collector <-
      Some
        (Collector.spawn ~capacity:config.handoff_capacity ~length:Retire_bag.length
           ~drain:(drain t)
           ~dummy:(Retire_bag.create ~capacity:1 entry_dummy)
           ());
  t

let register shared =
  let me = { status = Atomic.make quiescent; alive = Atomic.make true } in
  push_participant shared me;
  {
    shared;
    me;
    dom = (Domain.self () :> int);
    bag =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        entry_dummy;
    defers_since_collect = 0;
    defers_since_pass = 0;
  }

(* Threshold crossed: hand the full bag to the collector (taking a
   recycled empty one back) or keep accumulating until the configured
   baseline before paying the inline pass — a starved collector degrades
   this path to exactly the inline cadence, never a denser one. *)
(* Fold every queued bag into [dst] so the caller's imminent pass covers
   them too: the ring drains even when the collector is starved of cpu or
   dead, pinning async peak garbage near the inline envelope. *)
let absorb_queued c ~dst =
  let rec go () =
    match Collector.steal c with
    | Some b ->
        Retire_bag.transfer ~src:b ~dst;
        Collector.recycle c b;
        go ()
    | None -> ()
  in
  go ()

let collect_or_handoff h =
  let t = h.shared in
  let baseline = t.config.reclaim_threshold in
  match t.collector with
  | Some c when Collector.running c ->
      let full = h.bag in
      let len = Retire_bag.length full in
      h.defers_since_collect <- 0;
      (* Only small bags enter the ring. A bag that grew toward baseline
         during a ring-full spell — or that carries unripe epoch survivors
         after an inline pass — would park a near-baseline slug of garbage
         in the queue behind a starved collector (one ill-timed admission
         is exactly an inline peak's worth on top of the steady state).
         Oversized stragglers finish the inline path instead, which
         absorbs the queue anyway. *)
      if len <= 2 * Atomic.get t.adaptive && Collector.offer c full then begin
        (* the ring owns [full] now; replace it before the next push *)
        h.bag <-
          (match Collector.take_bag c with
          | Some b -> b
          | None ->
              Retire_bag.create ~capacity:(2 * Atomic.get t.adaptive)
                entry_dummy);
        h.defers_since_pass <- 0;
        if Trace.enabled () then
          Trace.emit Trace.Handoff (-1) len (Collector.occupancy c);
        (* Keep the epoch ticking at handoff cadence: the collector frees a
           handed-off entry only once its grace period has passed, and on a
           busy machine the collector's own advance attempts may lag. An
           attempt is one participant-list scan + CAS — noise next to the
           scan it saves the drain from re-running. *)
        try_advance t
      end
      else begin
        (* Advance even on a failed offer: the queued and local garbage
           keeps ripening while the ring is backed up, so the eventual
           pass (here or on the collector) frees it wholesale. *)
        try_advance t;
        if h.defers_since_pass >= baseline then begin
          absorb_queued c ~dst:h.bag;
          collect h
        end
      end
  | Some c ->
      Collector.note_fallback c;
      h.defers_since_collect <- 0;
      if h.defers_since_pass >= baseline then begin
        absorb_queued c ~dst:h.bag;
        collect h
      end
  | None -> collect h

let defer h thunk =
  let epoch = Atomic.get h.shared.global_epoch in
  Retire_bag.push h.bag (epoch, thunk);
  h.defers_since_collect <- h.defers_since_collect + 1;
  h.defers_since_pass <- h.defers_since_pass + 1;
  if h.defers_since_collect >= Atomic.get h.shared.adaptive then
    collect_or_handoff h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  let t = h.shared in
  defer h (fun () ->
      Mem.free_mark hdr;
      Stats.on_free t.stats)

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h =
  (* Up to three passes so a quiescent system drains completely: each pass
     can advance the epoch by one and freeing needs a lag of two. *)
  collect h;
  collect h;
  collect h

let unregister h =
  crit_exit h;
  collect h;
  Orphanage.add h.shared.orphans h.bag;
  Atomic.set h.me.alive false

let shutdown t =
  match t.collector with
  | None -> ()
  | Some c ->
      Collector.shutdown c ~recover:(Orphanage.add t.orphans);
      (* Leftover pending entries are consistent (no fault point tears the
         pending bag — see [drain]); donate them verbatim with their
         retirement epochs intact. *)
      Orphanage.add t.orphans t.pending

(* Crash recovery: mark the participant dead — the next try_advance prunes
   it and the epoch is unpinned, which is all the "rescue" EBR admits —
   and hand its bag to the orphanage with the retirement epochs intact.
   The bag is adopted verbatim: the only reclaim-pass injection point sits
   before the filter (see [collect]), so a crashed owner cannot have left
   it torn. *)
let report_crashed h =
  Trace.emit Trace.Crash (-1) h.dom 0;
  Atomic.set h.me.alive false;
  Orphanage.add h.shared.orphans h.bag

let collector_counters t = Option.map Collector.counters t.collector
let collector_stats t = Option.map Collector.stats t.collector
