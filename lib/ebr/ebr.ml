module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Retire_bag = Smr.Retire_bag
module Trace = Obs.Trace

let name = "EBR"
let robust = false
let supports_optimistic = true
let counts_references = false
let needs_protection = false

(* A participant's presence word: 0 when quiescent, [epoch * 2 + 1] when
   inside a critical section pinned at [epoch]. One word so that enter/exit
   are single SC stores. *)
let quiescent = 0
let pinned_at epoch = (epoch lsl 1) lor 1
let is_pinned status = status land 1 = 1
let pinned_epoch status = status lsr 1

type t = {
  stats : Stats.t;
  config : Smr.Smr_intf.config;
  global_epoch : int Atomic.t;
  participants : participant list Atomic.t;
  orphans : (int * (unit -> unit)) list Atomic.t;
}

and participant = { status : int Atomic.t; alive : bool Atomic.t }

type handle = {
  shared : t;
  me : participant;
  dom : int; (* registering domain, stamped on Crash trace events *)
  bag : (int * (unit -> unit)) Retire_bag.t;
  mutable defers_since_collect : int;
}

type guard = unit

let create ?(config = Smr.Smr_intf.default_config) () =
  {
    stats = Stats.create ();
    config;
    global_epoch = Atomic.make 0;
    participants = Atomic.make [];
    orphans = Atomic.make [];
  }

let stats t = t.stats

let rec push_participant t p =
  let cur = Atomic.get t.participants in
  if not (Atomic.compare_and_set t.participants cur (p :: cur)) then
    push_participant t p

let register shared =
  let me = { status = Atomic.make quiescent; alive = Atomic.make true } in
  push_participant shared me;
  {
    shared;
    me;
    dom = (Domain.self () :> int);
    bag =
      Retire_bag.create ~capacity:(2 * shared.config.reclaim_threshold)
        (0, ignore);
    defers_since_collect = 0;
  }

let global_epoch t = Atomic.get t.global_epoch

let crit_enter h =
  Atomic.set h.me.status (pinned_at (Atomic.get h.shared.global_epoch));
  (* Crash window: the critical section is pinned. A kill leaves this
     participant pinning the epoch forever (EBR's non-robustness) until
     report_crashed marks it dead; a stall parks the victim pinned. *)
  if Fault.enabled () then Fault.hit Fault.Crit

let crit_exit h = Atomic.set h.me.status quiescent
let crit_refresh h = crit_enter h

let guard _ = ()
let protect () _ = ()
let release () = ()
let protection_valid _ = true

(* Advance the global epoch iff every live pinned participant has observed
   the current one. A stalled critical section therefore pins the epoch:
   this is exactly EBR's non-robustness. Dead participants encountered along
   the way are pruned from the list (best-effort CAS) instead of being
   re-filtered on every future attempt. *)
let try_advance t =
  let epoch = Atomic.get t.global_epoch in
  let ps = Atomic.get t.participants in
  let all_current = ref true and any_dead = ref false in
  List.iter
    (fun p ->
      if not (Atomic.get p.alive) then any_dead := true
      else
        let s = Atomic.get p.status in
        if is_pinned s && pinned_epoch s <> epoch then all_current := false)
    ps;
  if !any_dead then begin
    let pruned = List.filter (fun p -> Atomic.get p.alive) ps in
    (* Losing the race (a concurrent register) just postpones the pruning
       to the next advance attempt. *)
    ignore (Atomic.compare_and_set t.participants ps pruned)
  end;
  if !all_current && Atomic.compare_and_set t.global_epoch epoch (epoch + 1)
  then Trace.emit Trace.Epoch_advance (-1) (epoch + 1) 0

let rec adopt_orphans t =
  let cur = Atomic.get t.orphans in
  match cur with
  | [] -> []
  | _ -> if Atomic.compare_and_set t.orphans cur [] then cur else adopt_orphans t

let collect h =
  let t = h.shared in
  (* Crash window, deliberately placed BEFORE the filter below: EBR bags
     hold (epoch, thunk) pairs, and a bag torn mid-filter_in_place cannot
     be salvaged — closures carry no uid to dedup by and no freed-state to
     skip on. Killing at the pass entry keeps the bag consistent, so
     report_crashed can adopt it verbatim. (HP/HP++/PEBR, whose bags hold
     inspectable headers, take the harder mid-filter kill instead.) *)
  if Fault.enabled () then Fault.hit Fault.Reclaim;
  h.defers_since_collect <- 0;
  Stats.note_peaks t.stats;
  try_advance t;
  let epoch = Atomic.get t.global_epoch in
  List.iter (Retire_bag.push h.bag) (adopt_orphans t);
  let before = Retire_bag.length h.bag in
  Retire_bag.filter_in_place
    (fun (e, thunk) ->
      if e + 2 <= epoch then begin
        thunk ();
        false
      end
      else true)
    h.bag;
  if Trace.enabled () then
    Trace.emit Trace.Reclaim_pass (-1)
      (before - Retire_bag.length h.bag)
      epoch

let defer h thunk =
  let epoch = Atomic.get h.shared.global_epoch in
  Retire_bag.push h.bag (epoch, thunk);
  h.defers_since_collect <- h.defers_since_collect + 1;
  if h.defers_since_collect >= h.shared.config.reclaim_threshold then collect h

let retire h hdr =
  Mem.retire_mark hdr;
  Stats.on_retire h.shared.stats;
  let t = h.shared in
  defer h (fun () ->
      Mem.free_mark hdr;
      Stats.on_free t.stats)

let retire_with_children h hdr ~children:_ = retire h hdr
let incr_ref _ = ()

let try_unlink h ~frontier:_ ~do_unlink ~node_header ~invalidate:_ =
  match do_unlink () with
  | None -> false
  | Some nodes ->
      List.iter (fun n -> retire h (node_header n)) nodes;
      true

let flush h =
  (* Up to three passes so a quiescent system drains completely: each pass
     can advance the epoch by one and freeing needs a lag of two. *)
  collect h;
  collect h;
  collect h

let rec add_orphans t entries =
  match entries with
  | [] -> ()
  | _ ->
      let cur = Atomic.get t.orphans in
      if not (Atomic.compare_and_set t.orphans cur (List.rev_append entries cur))
      then add_orphans t entries

let unregister h =
  crit_exit h;
  collect h;
  add_orphans h.shared (Retire_bag.to_list h.bag);
  Retire_bag.clear h.bag;
  Atomic.set h.me.alive false

(* Crash recovery: mark the participant dead — the next try_advance prunes
   it and the epoch is unpinned, which is all the "rescue" EBR admits —
   and hand its bag to the orphanage with the retirement epochs intact.
   The bag is adopted verbatim: the only reclaim-pass injection point sits
   before the filter (see [collect]), so a crashed owner cannot have left
   it torn. *)
let report_crashed h =
  Trace.emit Trace.Crash (-1) h.dom 0;
  Atomic.set h.me.alive false;
  add_orphans h.shared (Retire_bag.to_list h.bag);
  Retire_bag.clear h.bag
