(** Epoch-based reclamation (Fraser/Harris; crossbeam-style).

    Threads bracket operations in critical sections ([crit_enter]/
    [crit_exit]); a global epoch advances only when every active thread has
    observed the current epoch, and garbage retired in epoch [e] is freed
    once the global epoch reaches [e + 2]. Per-pointer [protect] is a no-op
    ([needs_protection = false]); any traversal — including optimistic
    traversal of logically deleted chains — is safe inside a critical
    section.

    EBR is {e not robust}: a stalled critical section pins the epoch and the
    amount of unreclaimed garbage grows without bound (paper §2.4; measured
    in the robustness tests and Figure 11). *)

include Smr.Smr_intf.S

val defer : handle -> (unit -> unit) -> unit
(** Run a thunk after the current grace period (two epoch advances). Used by
    the reference-counting scheme to defer decrements; [retire] is
    [defer (free)]. *)

val global_epoch : t -> int
val try_advance : t -> unit

val collector_counters : t -> Smr.Collector.counters option
(** Handoff/fallback/drain counters of the background collector, when
    [config.async_reclaim] started one; [None] in inline mode. *)
