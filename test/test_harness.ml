(* Harness-level units: the workload mix generator actually produces the
   configured operation ratios, and the metric name table stays total. *)

module Workload = Bench_harness.Workload
module Bench_types = Bench_harness.Bench_types
module Rng = Smr_core.Rng

let test_pick_ratios () =
  List.iter
    (fun (w : Workload.t) ->
      let rng = Rng.create ~seed:0x1234 in
      let n = 100_000 in
      let ins = ref 0 and del = ref 0 and get = ref 0 in
      for _ = 1 to n do
        match Workload.pick w rng with
        | Workload.Insert -> incr ins
        | Workload.Delete -> incr del
        | Workload.Get -> incr get
      done;
      let pct x = float_of_int x *. 100.0 /. float_of_int n in
      let close what expected got =
        if Float.abs (pct got -. float_of_int expected) > 1.0 then
          Alcotest.failf "%s/%s: expected ~%d%%, got %.2f%%" w.Workload.name
            what expected (pct got)
      in
      close "insert" w.Workload.insert_pct !ins;
      close "delete" w.Workload.delete_pct !del;
      close "get" (100 - w.Workload.insert_pct - w.Workload.delete_pct) !get)
    Workload.all

let test_pick_exhaustive_writes () =
  (* a 50/50 write-only mix must never produce a Get *)
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    match Workload.pick Workload.write_only rng with
    | Workload.Get -> Alcotest.fail "write-only produced a Get"
    | _ -> ()
  done

let sample_result : Bench_types.result =
  {
    ops = 1000;
    wall = 2.0;
    throughput_mops = 0.5;
    offered_rps = 750000.0;
    achieved_rps = 500000.0;
    peak_unreclaimed = 42;
    avg_unreclaimed = 21.5;
    peak_live = 99;
    heavy_fences = 7;
    protection_failures = 3;
    allocated = 5000;
    freed = 4000;
    retired_total = 4100;
  }

let test_metric_of_name_known () =
  let expected =
    [
      ("throughput", 0.5);
      ("offered-rps", 750000.0);
      ("achieved-rps", 500000.0);
      ("peak-unreclaimed", 42.0);
      ("avg-unreclaimed", 21.5);
      ("peak-live", 99.0);
      ("heavy-fences", 7.0);
      ("protection-failures", 3.0);
      ("allocated", 5000.0);
      ("freed", 4000.0);
      ("retired-total", 4100.0);
    ]
  in
  List.iter
    (fun (name, v) ->
      let m = Bench_types.metric_of_name name in
      Alcotest.(check (float 1e-9)) name v (m sample_result))
    expected

let test_metric_of_name_unknown () =
  Alcotest.check_raises "unknown metric"
    (Invalid_argument "unknown metric: bogus") (fun () ->
      let (_ : Bench_types.metric) = Bench_types.metric_of_name "bogus" in
      ())

let test_collector_rows () =
  Bench_harness.Collector.reset ();
  Bench_harness.Collector.set_experiment "unit";
  Bench_harness.Collector.add
    ~extra:[ ("note", Service.Json.String "unit-extra") ]
    ~ds:"HashMap" ~scheme:"HP++" ~threads:2 ~key_range:1024
    ~workload:"read-write" sample_result;
  let json = Service.Json.to_string (Bench_harness.Collector.to_json ()) in
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length needle and h = String.length json in
           let rec scan i =
             i + n <= h && (String.sub json i n = needle || scan (i + 1))
           in
           scan 0)
      then Alcotest.failf "JSON missing %S in %s" needle json)
    [
      "\"experiment\":\"unit\"";
      "\"ds\":\"HashMap\"";
      "\"scheme\":\"HP++\"";
      "\"throughput_mops\":0.5";
      "\"offered_rps\":750000";
      "\"achieved_rps\":500000";
      "\"protection_failures\":3";
      "\"note\":\"unit-extra\"";
    ];
  Bench_harness.Collector.reset ()

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          case "pick matches configured ratios" test_pick_ratios;
          case "write-only never reads" test_pick_exhaustive_writes;
        ] );
      ( "bench_types",
        [
          case "metric_of_name resolves all known" test_metric_of_name_known;
          case "metric_of_name rejects unknown" test_metric_of_name_unknown;
        ] );
      ("collector", [ case "rows serialize to JSON" test_collector_rows ]);
    ]
