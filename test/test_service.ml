(* Service-layer units: the latency histogram's bucket math, the key
   distributions, shardkv's map semantics across shards, and shardkv
   linearizability on a single shard via the exact checker. *)

module H = Service.Histogram
module Key_dist = Service.Key_dist
module Json = Service.Json
module St = Service.Service_stats
module Lin = Test_support.Linearizability
module Pool = Smr_core.Domain_pool
module Rng = Smr_core.Rng

(* --- histogram ---------------------------------------------------------- *)

let test_hist_exact_small () =
  (* bucket 0 stores values < 2^sub_bits at unit resolution: exact *)
  let h = H.create () in
  for v = 0 to 31 do
    H.record h v
  done;
  Alcotest.(check int) "count" 32 (H.count h);
  Alcotest.(check int) "max" 31 (H.max_value h);
  Alcotest.(check int) "p50" 15 (H.percentile h 50.0);
  Alcotest.(check int) "p100" 31 (H.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "mean" 15.5 (H.mean h)

let test_hist_single_value_roundtrip () =
  (* one recorded value comes back exactly at any magnitude: the percentile
     is clamped by the true max *)
  List.iter
    (fun v ->
      let h = H.create () in
      H.record h v;
      Alcotest.(check int) (Printf.sprintf "p50 of %d" v) v (H.percentile h 50.0))
    [ 0; 1; 31; 32; 33; 1000; 65535; 1_000_000; 123_456_789; 1 lsl 39 ]

let test_hist_relative_error () =
  (* two values in one bucket: the reported percentile is an upper bound
     within the bucket's relative error (2^-(sub_bits-1) ~ 6.25%, half that
     on average) *)
  let h = H.create () in
  H.record h 1000;
  H.record h 1001;
  let p50 = H.percentile h 50.0 in
  if p50 < 1000 || p50 > 1023 then
    Alcotest.failf "p50=%d outside bucket [1000, 1023]" p50;
  Alcotest.(check int) "count" 2 (H.count h)

let test_hist_overflow () =
  (* values past the top bucket clamp but keep their exact maximum *)
  let huge = 1 lsl 50 in
  let h = H.create () in
  H.record h huge;
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check int) "max survives clamp" huge (H.max_value h);
  Alcotest.(check int) "p50 reports the true max" huge (H.percentile h 50.0);
  (* mixed: overflow values dominate the tail only *)
  for _ = 1 to 998 do
    H.record h 100
  done;
  H.record h huge;
  let p50 = H.percentile h 50.0 in
  if p50 < 100 || p50 > 103 then
    Alcotest.failf "p50 small: %d outside bucket [100, 103]" p50;
  Alcotest.(check int) "p999+ huge" huge (H.percentile h 99.95)

let test_hist_merge () =
  let h1 = H.create () and h2 = H.create () and all = H.create () in
  let rng = Rng.create ~seed:42 in
  for i = 1 to 5000 do
    let v = Rng.below rng 1_000_000 in
    H.record (if i mod 2 = 0 then h1 else h2) v;
    H.record all v
  done;
  let m = H.merge [ h1; h2 ] in
  Alcotest.(check int) "count" (H.count all) (H.count m);
  Alcotest.(check int) "max" (H.max_value all) (H.max_value m);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%.1f" p)
        (H.percentile all p) (H.percentile m p))
    [ 10.0; 50.0; 90.0; 99.0; 99.9; 100.0 ];
  Alcotest.(check (float 1e-6)) "mean" (H.mean all) (H.mean m)

let test_hist_merge_mismatch () =
  let a = H.create ~sub_bits:5 () and b = H.create ~sub_bits:6 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge_into: shape mismatch") (fun () ->
      H.merge_into ~src:a ~dst:b)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "p99 empty" 0 (H.percentile h 99.0);
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (H.mean h);
  let s = H.summary h in
  Alcotest.(check int) "summary count" 0 s.H.count

(* --- key distributions -------------------------------------------------- *)

let test_dist_bounds () =
  let rng = Rng.create ~seed:9 in
  List.iter
    (fun d ->
      for _ = 1 to 20_000 do
        let k = Key_dist.next d rng in
        if k < 0 || k >= 1000 then
          Alcotest.failf "%s out of bounds: %d" (Key_dist.name d) k
      done)
    [
      Key_dist.uniform 1000;
      Key_dist.zipfian ~scramble:false 1000;
      Key_dist.zipfian ~scramble:true ~theta:0.5 1000;
    ]

let test_zipf_skew () =
  (* unscrambled: rank 0 is the hottest key, far above uniform's 0.1% *)
  let rng = Rng.create ~seed:77 in
  let d = Key_dist.zipfian ~scramble:false 1000 in
  let zero = ref 0 and n = 50_000 in
  for _ = 1 to n do
    if Key_dist.next d rng = 0 then incr zero
  done;
  let freq = float_of_int !zero /. float_of_int n in
  if freq < 0.05 then Alcotest.failf "zipf rank-0 frequency %.4f too low" freq;
  (* scrambled: same skew, but the hot rank is scattered somewhere else *)
  let ds = Key_dist.zipfian ~scramble:true 1000 in
  let counts = Array.make 1000 0 in
  for _ = 1 to n do
    let k = Key_dist.next ds rng in
    counts.(k) <- counts.(k) + 1
  done;
  let hottest = Array.fold_left max 0 counts in
  if float_of_int hottest /. float_of_int n < 0.05 then
    Alcotest.fail "scrambled zipf lost its skew"

(* --- shardkv semantics -------------------------------------------------- *)

module KV = Service.Shardkv.Make (Hp_plus)

let test_shardkv_basic () =
  let kv = KV.create ~shards:4 () in
  for k = 1 to 1000 do
    Alcotest.(check bool) "fresh put" true (KV.put kv k (k * 2))
  done;
  Alcotest.(check bool) "duplicate put" false (KV.put kv 500 0);
  for k = 1 to 1000 do
    Alcotest.(check (option int)) "get" (Some (k * 2)) (KV.get kv k)
  done;
  Alcotest.(check (option int)) "absent" None (KV.get kv 5000);
  for k = 1 to 500 do
    Alcotest.(check bool) "delete" true (KV.delete kv k)
  done;
  Alcotest.(check bool) "re-delete" false (KV.delete kv 1);
  Alcotest.(check int) "size" 500 (KV.size kv);
  Alcotest.(check int) "validate count" 500 (KV.validate kv);
  let occ = KV.shard_sizes kv in
  Alcotest.(check int) "occupancy sums" 500 (Array.fold_left ( + ) 0 occ);
  KV.detach kv

let test_shardkv_multi_get () =
  let kv = KV.create ~shards:8 () in
  for k = 0 to 99 do
    ignore (KV.put kv k k)
  done;
  let keys = [| 5; 200; 17; 99; 300; 0 |] in
  let out = KV.multi_get kv keys in
  Alcotest.(check (array (option int)))
    "multi_get in input order"
    [| Some 5; None; Some 17; Some 99; None; Some 0 |]
    out;
  KV.detach kv

let test_shardkv_routing_coverage () =
  (* sequential keys must spread over every shard, not alias to one *)
  let kv = KV.create ~shards:8 () in
  for k = 0 to 9999 do
    ignore (KV.put kv k k)
  done;
  Array.iteri
    (fun i n -> if n = 0 then Alcotest.failf "shard %d empty" i)
    (KV.shard_sizes kv);
  KV.detach kv

let test_shardkv_snapshot_json () =
  let kv = KV.create ~shards:2 () in
  for k = 1 to 50 do
    ignore (KV.put kv k k);
    ignore (KV.get kv k)
  done;
  ignore (KV.delete kv 1);
  ignore (KV.multi_get kv [| 1; 2; 3 |]);
  let snap = KV.snapshot kv ~elapsed:1.0 in
  Alcotest.(check int) "total ops" 102 snap.St.total_ops;
  Alcotest.(check (float 1e-9)) "qps" 102.0 snap.St.qps;
  Alcotest.(check int) "all four ops present" 4 (List.length snap.St.per_op);
  let json = Json.to_string (St.to_json snap) in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length json in
      let rec scan i = i + n <= h && (String.sub json i n = needle || scan (i + 1)) in
      if not (scan 0) then Alcotest.failf "snapshot JSON missing %S" needle)
    [ "\"scheme\":\"HP++\""; "p50_ns"; "p99_ns"; "p999_ns"; "throughput_qps";
      "shard_occupancy"; "multi_get" ];
  KV.detach kv

(* --- shard routing distribution ----------------------------------------- *)

(* Pearson chi-square of independence between [key mod shards] and the
   chosen shard, over sequential keys. A multiplicative hash that keeps
   only LOW product bits is a bijection on key mod 2^k — its sequential
   marginal is perfectly uniform, so a plain occupancy check cannot see
   the bug; what it cannot do is make the shard independent of the key's
   own low bits. df = (shards - 1)^2. *)
let chi2_independence shard_of ~shards ~n =
  let counts = Array.make_matrix shards shards 0 in
  let col_totals = Array.make shards 0 in
  for key = 0 to n - 1 do
    let row = key mod shards and col = shard_of key in
    counts.(row).(col) <- counts.(row).(col) + 1;
    col_totals.(col) <- col_totals.(col) + 1
  done;
  let chi2 = ref 0.0 in
  for row = 0 to shards - 1 do
    for col = 0 to shards - 1 do
      (* sequential keys: every row total is exactly n / shards *)
      let expected =
        float_of_int (n / shards)
        *. float_of_int col_totals.(col)
        /. float_of_int n
      in
      if expected > 0.0 then
        let d = float_of_int counts.(row).(col) -. expected in
        chi2 := !chi2 +. (d *. d /. expected)
    done
  done;
  !chi2

(* Marginal chi-square over strided keys (df = shards - 1): a low-bits hash
   sends every multiple of [stride = shards] to one shard. *)
let chi2_stride shard_of ~shards ~n =
  let counts = Array.make shards 0 in
  for i = 0 to n - 1 do
    let s = shard_of (i * shards) in
    counts.(s) <- counts.(s) + 1
  done;
  let expected = float_of_int n /. float_of_int shards in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0.0 counts

let test_shard_hash_distribution () =
  let shards = 8 in
  let kv = KV.create ~shards () in
  let mask = shards - 1 in
  let fixed key = KV.shard_of kv key in
  (* The pre-fix expression, verbatim: [lsr] binds tighter than [*], so
     this multiplies by (C lsr 33) and keeps the LOW product bits. *)
  let old key = key * 0x1C69B3F74AC4AE35 lsr 33 land mask in
  (* 4x df is far beyond any plausible statistical fluctuation, yet orders
     of magnitude below the broken hash's score. *)
  let df_ind = float_of_int ((shards - 1) * (shards - 1)) in
  let df_marg = float_of_int (shards - 1) in
  let ind_fixed = chi2_independence fixed ~shards ~n:65536 in
  let ind_old = chi2_independence old ~shards ~n:65536 in
  if ind_fixed > 4.0 *. df_ind then
    Alcotest.failf "fixed hash: shard depends on low key bits (chi2 %.1f)"
      ind_fixed;
  if ind_old <= 4.0 *. df_ind then
    Alcotest.failf
      "old precedence-bug hash passed the independence test (chi2 %.1f)"
      ind_old;
  let st_fixed = chi2_stride fixed ~shards ~n:8192 in
  let st_old = chi2_stride old ~shards ~n:8192 in
  if st_fixed > 4.0 *. df_marg then
    Alcotest.failf "fixed hash: stride-%d keys skewed (chi2 %.1f)" shards
      st_fixed;
  if st_old <= 4.0 *. df_marg then
    Alcotest.failf "old hash spread strided keys (chi2 %.1f)" st_old;
  (* realistic key-population sanity: the DISTINCT keys of a scrambled
     zipfian draw spread evenly (per-draw counts would only measure the
     workload's own skew — a hot key always lands on one shard) *)
  let rng = Rng.create ~seed:13 in
  let d = Key_dist.zipfian ~scramble:true 100_000 in
  let seen = Hashtbl.create 4096 in
  for _ = 1 to 20_000 do
    Hashtbl.replace seen (Key_dist.next d rng) ()
  done;
  let counts = Array.make shards 0 in
  Hashtbl.iter (fun k () -> counts.(fixed k) <- counts.(fixed k) + 1) seen;
  let uniques = Hashtbl.length seen in
  let expected = float_of_int uniques /. float_of_int shards in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let dv = float_of_int c -. expected in
        acc +. (dv *. dv /. expected))
      0.0 counts
  in
  if chi2 > 4.0 *. df_marg then
    Alcotest.failf "fixed hash: zipfian key population skewed (chi2 %.1f)" chi2

(* --- shardkv linearizability on a single shard -------------------------- *)

module Lin_check (S : Smr.Smr_intf.S) = struct
  module K = Service.Shardkv.Make (S)

  let run () =
    for round = 1 to 3 do
      let kv = K.create ~shards:1 () in
      let recorder = Lin.make_recorder () in
      let keys = 24 in
      let logs =
        Pool.run ~n:3 (fun i ->
            let tl = Lin.thread_log recorder in
            let rng = Rng.create ~seed:(round * 1000 + i) in
            for _ = 1 to 100 do
              let key = Rng.below rng keys in
              ignore
                (match Rng.below rng 3 with
                | 0 ->
                    Lin.record tl ~op:Lin.Insert ~key (fun () ->
                        K.put kv key key)
                | 1 ->
                    Lin.record tl ~op:Lin.Remove ~key (fun () ->
                        K.delete kv key)
                | _ ->
                    Lin.record tl ~op:Lin.Get ~key (fun () ->
                        K.get kv key <> None))
            done;
            K.detach kv;
            tl)
      in
      Lin.merge recorder (Array.to_list logs);
      Alcotest.(check int) "recorded" 300 (Lin.total_events recorder);
      (match Lin.check recorder with
      | () -> ()
      | exception Lin.Not_linearizable k ->
          Alcotest.failf "shardkv history not linearizable at key %d (round %d)"
            k round);
      ignore (K.validate kv)
    done
end

let case name f = Alcotest.test_case name `Quick f

let () =
  let module L1 = Lin_check (Hp_plus) in
  let module L2 = Lin_check (Ebr) in
  let module L3 = Lin_check (Pebr) in
  Alcotest.run "service"
    [
      ( "histogram",
        [
          case "exact below sub-bucket range" test_hist_exact_small;
          case "single-value round-trip" test_hist_single_value_roundtrip;
          case "bounded relative error" test_hist_relative_error;
          case "overflow past top bucket" test_hist_overflow;
          case "merge equals combined recording" test_hist_merge;
          case "merge shape mismatch rejected" test_hist_merge_mismatch;
          case "empty histogram" test_hist_empty;
        ] );
      ( "key_dist",
        [
          case "all draws in bounds" test_dist_bounds;
          case "zipfian skew present" test_zipf_skew;
        ] );
      ( "shardkv",
        [
          case "put/get/delete across shards" test_shardkv_basic;
          case "multi_get preserves order" test_shardkv_multi_get;
          case "routing covers every shard" test_shardkv_routing_coverage;
          case "shard hash distribution" test_shard_hash_distribution;
          case "snapshot and JSON" test_shardkv_snapshot_json;
        ] );
      ( "linearizability",
        [
          case "single shard, HP++" L1.run;
          case "single shard, EBR" L2.run;
          case "single shard, PEBR" L3.run;
        ] );
    ]
