(* Chaos regression tests: seeded kills and stalls at SMR protocol points,
   crash recovery through report_crashed, and the fault layer's own
   mechanics. The fault plan is global, so every test resets it on entry —
   a failing assertion must not poison its successors. *)

module Mem = Smr_core.Mem
module Stats = Smr_core.Stats
module Slots = Smr.Slots
module Pool = Smr_core.Domain_pool
module St = Service.Service_stats

let base = Smr.Smr_intf.default_config

(* Small thresholds so every protocol point is reached within a short
   churn: reclamation every 16 retires, invalidation every 4 unlinks. *)
let cfg = { base with reclaim_threshold = 16; invalidate_threshold = 4 }

(* --- the fault layer itself --------------------------------------------- *)

let test_fire_exactly_once () =
  Fault.reset ();
  let stats = Stats.create () in
  Fault.arm ~point:Fault.Retire ~action:Fault.Kill ~after:3 ();
  Alcotest.(check bool) "armed" true (Fault.enabled ());
  let survived = ref 0 in
  (try
     for _ = 1 to 10 do
       Mem.retire_mark (Mem.make stats);
       incr survived
     done
   with Fault.Killed p ->
     Alcotest.(check string) "killed at the armed point" "retire"
       (Fault.point_name p));
  Alcotest.(check int) "fired on the third hit" 2 !survived;
  Alcotest.(check bool) "fired" true (Fault.fired ());
  Alcotest.(check bool) "disarmed after firing" false (Fault.enabled ());
  Alcotest.(check bool) "victim domain recorded" true
    (Fault.victim_dom () <> None);
  (* a spent plan never fires again *)
  Mem.retire_mark (Mem.make stats);
  Fault.reset ()

let test_seeded_plans_deterministic () =
  Fault.reset ();
  let p1 = Fault.arm_seeded ~seed:42 ~points:Fault.all_points () in
  Fault.reset ();
  let p2 = Fault.arm_seeded ~seed:42 ~points:Fault.all_points () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "after in 1..400" true
    (p1.Fault.after >= 1 && p1.Fault.after <= 400);
  let varied =
    List.exists
      (fun seed ->
        Fault.reset ();
        Fault.arm_seeded ~seed ~points:Fault.all_points () <> p1)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "plans vary across seeds" true varied;
  Fault.reset ()

(* --- kill matrix: one structure per scheme, every reachable point ------- *)

module Kill_matrix
    (S : Smr.Smr_intf.S)
    (L : sig
      type local
      type 'v t

      val create : S.t -> 'v t
      val make_local : S.handle -> local
      val clear_local : local -> unit
      val insert : 'v t -> local -> int -> 'v -> bool
      val remove : 'v t -> local -> int -> bool
      val get : 'v t -> local -> int -> 'v option
      val assert_reachable_not_freed : 'v t -> unit
    end) =
struct
  let keys = 240

  (* Churn the list until the armed plan kills the victim, then hand the
     dead handle to a survivor and drive the system to quiescence. The
     victim's handle and traversal guards are abandoned exactly as a
     crashed domain would leave them: no clear_local, no unregister. *)
  let kill_at point after () =
    Fault.reset ();
    let t = S.create ~config:cfg () in
    let l = L.create t in
    let victim = S.register t in
    let lo = L.make_local victim in
    for k = 0 to keys - 1 do
      ignore (L.insert l lo k k)
    done;
    Fault.arm ~point ~action:Fault.Kill ~after ();
    let killed = ref false in
    (try
       for round = 0 to 99 do
         for k = 0 to keys - 1 do
           ignore (L.remove l lo k);
           ignore (L.insert l lo k (k + round))
         done
       done
     with Fault.Killed p ->
       killed := true;
       Alcotest.(check string) "killed at the armed point"
         (Fault.point_name point) (Fault.point_name p));
    if not !killed then
      Alcotest.failf "plan at %s never fired" (Fault.point_name point);
    let survivor = S.register t in
    let lo2 = L.make_local survivor in
    S.report_crashed victim;
    for k = 0 to keys - 1 do
      ignore (L.remove l lo2 k);
      ignore (L.get l lo2 k)
    done;
    (* no node the survivor can still reach was freed out from under it *)
    L.assert_reachable_not_freed l;
    L.clear_local lo2;
    S.flush survivor;
    S.flush survivor;
    S.flush survivor;
    (* A kill inside try_unlink's per-header loop can strand headers that
       were counted retired but never reached a bag, so recovery cannot
       drain to exactly zero — but the residue is bounded by one unlink
       batch, not by the churn. *)
    let leaked = Stats.unreclaimed (S.stats t) in
    if leaked > 16 then
      Alcotest.failf "%d unreclaimed blocks after recovery from a %s kill"
        leaked (Fault.point_name point);
    S.unregister survivor;
    Fault.reset ()

  let cases points =
    List.map
      (fun (point, after) ->
        Alcotest.test_case
          (Printf.sprintf "kill at %s (hit %d)" (Fault.point_name point) after)
          `Quick (kill_at point after))
      points
end

module Kill_hp = Kill_matrix (Hp) (Smr_ds.Hmlist.Make (Hp))
module Kill_hpp = Kill_matrix (Hp_plus) (Smr_ds.Hhslist.Make (Hp_plus))
module Kill_ebr = Kill_matrix (Ebr) (Smr_ds.Hhslist.Make (Ebr))
module Kill_pebr = Kill_matrix (Pebr) (Smr_ds.Hhslist.Make (Pebr))

(* --- robustness split under an unreported crash ------------------------- *)

(* The victim dies pinned inside a critical section and nobody has run
   report_crashed yet. EBR (robust = false) accumulates garbage in
   proportion to the churn; PEBR (robust = true) neutralizes the corpse
   under memory pressure and stays bounded. Reporting the crash must let
   both drain. *)
let crit_kill_churn (module S : Smr.Smr_intf.S) ~churn =
  Fault.reset ();
  let t = S.create ~config:{ base with reclaim_threshold = 8 } () in
  let victim = S.register t in
  Fault.arm ~point:Fault.Crit ~action:Fault.Kill ();
  (try S.crit_enter victim with Fault.Killed _ -> ());
  Alcotest.(check bool) "victim killed pinned" true (Fault.fired ());
  let worker = S.register t in
  for _ = 1 to churn do
    S.retire worker (Mem.make (S.stats t))
  done;
  S.flush worker;
  let unreported = Stats.unreclaimed (S.stats t) in
  S.report_crashed victim;
  S.flush worker;
  S.flush worker;
  let drained = Stats.unreclaimed (S.stats t) in
  S.unregister worker;
  Fault.reset ();
  (unreported, drained)

let test_ebr_unreported_crash_unbounded () =
  Alcotest.(check bool) "EBR declared non-robust" false Ebr.robust;
  let unreported, drained = crit_kill_churn (module Ebr) ~churn:2000 in
  if unreported < 1990 then
    Alcotest.failf "EBR freed %d blocks past a dead pinned participant"
      (2000 - unreported);
  Alcotest.(check int) "drains after report_crashed" 0 drained

let test_pebr_unreported_crash_bounded () =
  Alcotest.(check bool) "PEBR declared robust" true Pebr.robust;
  let unreported, drained = crit_kill_churn (module Pebr) ~churn:2000 in
  if unreported > 100 then
    Alcotest.failf "PEBR garbage %d not bounded by neutralization" unreported;
  Alcotest.(check int) "drains after report_crashed" 0 drained

(* --- stall: the paper's stalled-thread experiment in miniature ---------- *)

let test_stall_robustness_split () =
  (* EBR: a victim stalled inside a critical section pins the epoch, so a
     churning worker's garbage grows with the churn. *)
  Fault.reset ();
  let ebr_peak =
    let t = Ebr.create ~config:{ base with reclaim_threshold = 8 } () in
    Fault.arm ~point:Fault.Crit ~action:Fault.Stall ();
    let victim =
      Domain.spawn (fun () ->
          let h = Ebr.register t in
          Ebr.crit_enter h;
          (* parks in the hook pinned *)
          Ebr.crit_exit h;
          Ebr.unregister h)
    in
    Fault.await_stalled ();
    let worker = Ebr.register t in
    for _ = 1 to 2000 do
      Ebr.retire worker (Mem.make (Ebr.stats t))
    done;
    Ebr.flush worker;
    let peak = Stats.unreclaimed (Ebr.stats t) in
    Fault.release ();
    Domain.join victim;
    Ebr.flush worker;
    Ebr.flush worker;
    Alcotest.(check int) "EBR drains once the victim resumes" 0
      (Stats.unreclaimed (Ebr.stats t));
    Ebr.unregister worker;
    peak
  in
  Fault.reset ();
  (* HP++: the same stall holds one hazard slot mid-publication; only the
     block it names survives reclamation. *)
  let hpp_peak =
    let t = Hp_plus.create ~config:{ base with reclaim_threshold = 8 } () in
    let stats = Hp_plus.stats t in
    let pinned = Mem.make stats in
    Fault.arm ~point:Fault.Protect ~action:Fault.Stall ();
    let victim =
      Domain.spawn (fun () ->
          let h = Hp_plus.register t in
          let g = Hp_plus.guard h in
          Hp_plus.protect g pinned;
          (* parks in the hook, slot published *)
          Hp_plus.release g;
          Hp_plus.unregister h)
    in
    Fault.await_stalled ();
    let worker = Hp_plus.register t in
    Hp_plus.retire worker pinned;
    for _ = 1 to 2000 do
      Hp_plus.retire worker (Mem.make stats)
    done;
    Hp_plus.flush worker;
    let peak = Stats.unreclaimed stats in
    Alcotest.(check bool) "the protected block is what survives" false
      (Mem.is_freed pinned);
    Fault.release ();
    Domain.join victim;
    Hp_plus.flush worker;
    Alcotest.(check int) "HP++ drains fully after the victim resumes" 0
      (Stats.unreclaimed stats);
    Hp_plus.unregister worker;
    peak
  in
  Fault.reset ();
  Alcotest.(check bool) "HP++ peak bounded by a constant" true (hpp_peak <= 16);
  if ebr_peak < 10 * max 1 hpp_peak then
    Alcotest.failf "stall split collapsed: EBR peak %d vs HP++ peak %d"
      ebr_peak hpp_peak

(* --- slot registry reaping ---------------------------------------------- *)

let test_slots_reap_dead_handle () =
  Fault.reset ();
  let reg = Slots.create () in
  let stats = Stats.create () in
  let dead = Slots.register reg in
  let s = Slots.acquire dead in
  Slots.set s (Mem.make stats);
  let total = Slots.total_slots reg in
  let scan = Slots.scan_create () in
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "protection visible before reap" 1 (Slots.scan_size scan);
  Slots.reap dead;
  Slots.scan_snapshot reg scan;
  Alcotest.(check int) "withdrawn by reap" 0 (Slots.scan_size scan);
  (* the dead handle's chunks are parked for reuse, not leaked *)
  let fresh = Slots.register reg in
  Alcotest.(check int) "chunks reused, registry bounded" total
    (Slots.total_slots reg);
  Slots.unregister fresh

(* --- maybe_collect: no reclaim pass on an empty bag --------------------- *)

(* Regression: with invalidate_threshold > reclaim_threshold, the unlink
   counter alone used to trip a full reclaim pass (hazard snapshot, sort,
   heavy fence) every reclaim_threshold unlinks while every header was
   still parked in unlinkeds awaiting invalidation — the pass freed
   nothing. The pass is now gated on a non-empty retire bag. *)
let test_no_empty_bag_reclaim () =
  Fault.reset ();
  let t =
    Hp_plus.create
      ~config:
        { base with reclaim_threshold = 4; invalidate_threshold = 64;
          epoched_fence = true }
      ()
  in
  let h = Hp_plus.register t in
  let stats = Hp_plus.stats t in
  for _ = 1 to 20 do
    ignore
      (Hp_plus.try_unlink h ~frontier:[]
         ~do_unlink:(fun () -> Some [ Mem.make stats ])
         ~node_header:Fun.id
         ~invalidate:(fun _ -> ()))
  done;
  Alcotest.(check int) "no heavy fence while the bag is empty" 0
    (Stats.heavy_fences stats);
  Alcotest.(check int) "all 20 parked awaiting invalidation" 20
    (Hp_plus.pending_unlinked h);
  Hp_plus.flush h;
  Alcotest.(check int) "flush still drains everything" 0
    (Stats.unreclaimed stats);
  Hp_plus.unregister h

(* --- shardkv: session crash, reaping, degraded snapshot ----------------- *)

module KV = Service.Shardkv.Make (Hp_plus)

let test_shardkv_crash_reap_degraded () =
  Fault.reset ();
  let kv = KV.create ~shards:4 () in
  let per_worker = 200 in
  ignore
    (Pool.run ~n:3 (fun i ->
         for k = 0 to per_worker - 1 do
           ignore (KV.put kv ((i * 1000) + k) k)
         done;
         if i = 0 then KV.crash_session kv else KV.detach kv));
  let full = KV.snapshot kv ~elapsed:1.0 in
  Alcotest.(check int) "dead session visible" 1 full.St.dead_sessions;
  Alcotest.(check int) "full snapshot counts every session" (3 * per_worker)
    full.St.total_ops;
  let degraded = KV.snapshot ~degraded:true kv ~elapsed:1.0 in
  Alcotest.(check int) "degraded snapshot drops the victim's ops"
    (2 * per_worker) degraded.St.total_ops;
  Alcotest.(check int) "still one dead session" 1 degraded.St.dead_sessions;
  Alcotest.(check int) "one session reaped" 1 (KV.reap_dead kv);
  Alcotest.(check int) "reaping is idempotent" 0 (KV.reap_dead kv);
  ignore (KV.validate kv);
  KV.detach kv

let () =
  Alcotest.run "fault"
    [
      ( "layer",
        [
          Alcotest.test_case "plans fire exactly once" `Quick
            test_fire_exactly_once;
          Alcotest.test_case "seeded plans deterministic" `Quick
            test_seeded_plans_deterministic;
        ] );
      ( "kill:HP/HMList",
        Kill_hp.cases
          [ (Fault.Retire, 35); (Fault.Protect, 50); (Fault.Reclaim, 5) ] );
      ( "kill:HP++/HHSList",
        Kill_hpp.cases
          [
            (Fault.Retire, 35); (Fault.Protect, 50); (Fault.Unlink, 7);
            (Fault.Reclaim, 5);
          ] );
      ( "kill:EBR/HHSList",
        Kill_ebr.cases
          [ (Fault.Retire, 35); (Fault.Crit, 23); (Fault.Reclaim, 5) ] );
      ( "kill:PEBR/HHSList",
        Kill_pebr.cases
          [
            (Fault.Retire, 35); (Fault.Protect, 50); (Fault.Crit, 23);
            (Fault.Reclaim, 5);
          ] );
      ( "unreported",
        [
          Alcotest.test_case "EBR garbage unbounded until report" `Quick
            test_ebr_unreported_crash_unbounded;
          Alcotest.test_case "PEBR garbage bounded by neutralization" `Quick
            test_pebr_unreported_crash_bounded;
        ] );
      ( "stall",
        [
          Alcotest.test_case "EBR vs HP++ robustness split" `Quick
            test_stall_robustness_split;
        ] );
      ( "slots",
        [
          Alcotest.test_case "reap withdraws a dead handle" `Quick
            test_slots_reap_dead_handle;
        ] );
      ( "hp_plus",
        [
          Alcotest.test_case "no reclaim pass on an empty bag" `Quick
            test_no_empty_bag_reclaim;
        ] );
      ( "shardkv",
        [
          Alcotest.test_case "crash, reap, degraded snapshot" `Quick
            test_shardkv_crash_reap_degraded;
        ] );
    ]
