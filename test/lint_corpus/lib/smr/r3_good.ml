(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R3 good twin: the sanctioned handle/shared split — mutables live in the
   per-domain handle, shared state is all-Atomic. *)

type shared = { head : int Atomic.t }
type handle = { shared : shared; mutable my_epoch : int }
