(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R2 good twin: invalidation first, then the frees. *)

let flush d =
  do_invalidation d.bag;
  List.iter (fun h -> Mem.free_mark h) d.bag;
  d.bag <- []
