(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R3 seed: a plain mutable field in a record that carries cross-domain
   shared state (an Atomic lives beside it) — an OCaml memory-model data
   race waiting for a second domain. *)

type slot = { value : int Atomic.t; mutable owner : int }
