(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R2 seed: frees precede batch invalidation, so a concurrent reader can
   still validate a protection on memory that is already gone. *)

let flush d =
  List.iter (fun h -> Mem.free_mark h) d.bag;
  do_invalidation d.bag;
  d.bag <- []
