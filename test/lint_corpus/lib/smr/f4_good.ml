(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F4 good twin: on offer success the bag slot is replaced and never
   touched again; the inline free runs only on the failure path, where the
   mutator still owns the bag. *)

let flush t =
  let bag = t.pending in
  if Collector.offer t.ring bag then t.pending <- []
  else List.iter (fun h -> Mem.free_mark h) bag
