(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F4 seed: mutator-side use of a retire bag after Collector.offer
   succeeded. The ring owns the bag from the success point on; freeing it
   here races the collector domain's drain. *)

let flush t =
  let bag = t.pending in
  if Collector.offer t.ring bag then
    List.iter (fun h -> Mem.free_mark h) bag
  else push_back t bag
