(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F2 seed: the protected-pointer escape named by ISSUE 9. The head is
   protected but never validated, and the merely-Protected pointer is
   returned — the hazard slot is released when the caller's window ends,
   yet the caller will treat the value as safe. *)

let peek t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  Tagged.ptr cur
