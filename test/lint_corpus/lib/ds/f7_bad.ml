(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F7 seed: a declared quiescent read in a function that also CASes. The
   no-concurrent-writers contract of Link.get_quiescent cannot hold in a
   function that itself synchronizes. *)

let rotate t =
  let cur = Link.get_quiescent t.head in
  ignore (Link.cas t.head cur cur)
