(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F7 good twin: quiescent reads in a read-only sweep (drop-phase
   traversal); the function performs no synchronization at all. *)

let length t =
  let rec go acc l =
    match Tagged.ptr (Link.get_quiescent l) with
    | None -> acc
    | Some n -> go (acc + 1) n.next
  in
  go 0 t.head
