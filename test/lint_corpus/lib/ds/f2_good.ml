(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F2 good twin: protection is validated before the pointer escapes. *)

let peek t l =
  let cur = Link.get t.head in
  S.protect l.hp cur;
  if S.protection_valid l.handle then Tagged.ptr cur else None
