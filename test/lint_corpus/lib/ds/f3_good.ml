(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F3 good twin: Treiber pop — the node is unlinked by the CAS before it
   is retired, and reading [n.value] after the retire is legal because
   this domain still holds the validated protection. *)

let pop t l =
  match C.try_protect ~src:None ~node_header l.hp t.head (Link.get t.head) with
  | C.Invalid -> None
  | C.Ok cur -> (
      match Tagged.ptr cur with
      | None -> None
      | Some n ->
          if Link.cas t.head cur (Link.get n.next) then begin
            S.retire l.handle cur;
            Some n.value
          end
          else None)
