(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F1 good twin: the same traversal validated step by step through
   try_protect, so every dereference happens under a Validated pointer. *)

let lookup t l key =
  let rec go src link expected =
    match C.try_protect ~src ~node_header l.hp link expected with
    | C.Invalid -> None
    | C.Ok cur -> (
        match Tagged.ptr cur with
        | None -> None
        | Some n -> if n.key = key then Some n.value else go None n.next cur)
  in
  go None t.head (Link.get t.head)
