(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F1 seed: the classic raw traversal. Every node is fetched with a plain
   Link.get and dereferenced with no protection, so Validated never
   dominates the field accesses. *)

let lookup t key =
  let rec go l =
    match Tagged.ptr (Link.get l) with
    | None -> None
    | Some n -> if n.key = key then Some n.value else go n.next
  in
  go t.head
