(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F3 seed: retire-after-publish. The node was CASed into the shared head
   and is therefore reachable by every other domain, yet it is retired on
   the success path — only unlinked nodes may be retired. *)

let push t l v =
  let n = { value = v; next = Link.make Tagged.null } in
  let h = Link.get t.head in
  Link.set n.next h;
  if Link.cas t.head h (Tagged.make (Some n)) then S.retire l.handle n
