(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F5 seed: a blocking socket write inside an epoch critical section. A
   stalled peer pins this domain's epoch and with it every domain's
   reclamation. *)

let publish handle stats fd page =
  with_crit handle stats (fun () ->
      ignore (Unix.write fd page 0 (Bytes.length page)))
