(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F6 seed: PR 2's stats read-order bug, resurrected per ISSUE 9. Both
   operands of one subtraction sweep monotonic counters; OCaml evaluates
   operands right-to-left, so the decreasing side (freed) is swept first
   and a reader preempted between the sweeps observes an overshoot. *)

let unreclaimed s = retired_total s - freed s
