(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R4 seed: a Trace.emit argument that allocates with no
   `if Trace.enabled ()` guard — the cost is paid even when tracing is
   off. *)

let record t n = Trace.emit Trace.Retire (List.length (collect t n)) 0 0
