(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F6 good twin: the increasing side is bound first, so the subtraction
   can only undershoot (a momentarily stale gauge, never a phantom). *)

let unreclaimed s =
  let r = retired_total s in
  r - freed s
