(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* F5 good twin: the crit section only snapshots; the blocking write
   happens after crit-exit. *)

let publish handle stats fd =
  let page = with_crit handle stats (fun () -> render stats) in
  ignore (Unix.write fd page 0 (Bytes.length page))
