(* R5 seed: a lib module with no .mli and no suppression — the only
   corpus file without the allow missing-mli pragma, by design. *)

let x = 1
