(* smr-lint: allow missing-mli — corpus fixture: parsed, never compiled *)

(* R4 good twin: the allocating emit is guarded. *)

let record t n =
  if Trace.enabled () then
    Trace.emit Trace.Retire (List.length (collect t n)) 0 0
